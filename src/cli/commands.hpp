#pragma once
// Command-dispatch table of the sva-timing CLI.
//
// Every subcommand is one entry: a name, a handler, and its usage/help
// lines.  main.cpp stays a thin shell (global options, failpoints,
// signal handlers, exit reports); adding a command means adding a table
// row here, not growing main().  The analyze/optimize handlers run
// locally or -- with --connect PATH -- ship the identical job spec to a
// `sva serve` daemon through server/client.hpp.

#include <string>
#include <vector>

#include "engine/options.hpp"

namespace sva {

/// One CLI subcommand.  `args` arrives with the global options already
/// stripped; handlers may consume per-command flags from it.
struct CommandSpec {
  const char* name;
  int (*handler)(std::vector<std::string>& args, const EngineOptions& opts);
  /// One usage line for the help text, e.g. "analyze <bench...>".
  const char* usage_line;
  /// Short description shown next to the usage line.
  const char* summary;
};

/// The full dispatch table, in help-text order.
const std::vector<CommandSpec>& command_table();

/// Print the usage text (built from the table plus the global-options
/// epilogue) and return the usage exit code.
int usage();

/// Look up `command` and run it; unknown commands print usage.
int dispatch_command(const std::string& command,
                     std::vector<std::string>& args,
                     const EngineOptions& opts);

}  // namespace sva
