#include "cli/commands.hpp"

#include <cctype>
#include <cstdio>
#include <stdexcept>

#include "util/logging.hpp"

#include "cell/liberty_writer.hpp"
#include "core/flow.hpp"
#include "engine/thread_pool.hpp"
#include "litho/pitch_curve.hpp"
#include "netlist/bench_format.hpp"
#include "netlist/verilog.hpp"
#include "opt/sizing.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "server/client.hpp"
#include "server/jobs.hpp"
#include "server/server.hpp"
#include "sta/path_report.hpp"
#include "util/cache_gc.hpp"
#include "util/cancel.hpp"
#include "util/serialize.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace sva {

namespace {

// Warm-start / snapshot the persistent context-library cache around a
// command.  A failed load degrades to a cold run inside try_load; a failed
// save must not fail the command (the analysis already succeeded), so it
// only warns.
void cache_warm_start(const ContextCache& cache, const EngineOptions& opts) {
  if (opts.cache_enabled()) cache.try_load(opts.cache_dir);
}

/// Flow configuration with the persistent-cache directory plumbed in, so
/// SvaFlow construction itself warm-starts (library OPC + pitch table
/// restored from the setup snapshot).
FlowConfig flow_config(const EngineOptions& opts) {
  FlowConfig cfg;
  if (opts.cache_enabled()) cfg.cache_dir = opts.cache_dir;
  cfg.fault_policy = opts.fault_policy();
  return cfg;
}

void cache_snapshot(const ContextCache& cache, const EngineOptions& opts) {
  if (!opts.cache_enabled()) return;
  try {
    cache.save(opts.cache_dir);
  } catch (const std::exception& e) {
    log_warn("context cache: snapshot failed (", e.what(), ")");
  }
}

/// The checkpoint file a cancelled run journals to: --checkpoint PATH, or
/// the command's documented default in the working directory.
std::string checkpoint_path(const EngineOptions& opts,
                            const char* command_default) {
  return opts.checkpoint_path.empty() ? command_default
                                      : opts.checkpoint_path;
}

/// Remote jobs run in the daemon's process; checkpoint journals would
/// land on the server's disk where no --resume can find them, so the
/// combination is refused up front.
void reject_checkpoint_flags_remote(const EngineOptions& opts) {
  if (!opts.resume_path.empty() || !opts.checkpoint_path.empty())
    throw std::runtime_error(
        "--resume/--checkpoint cannot be combined with --connect "
        "(daemon jobs are not journalled)");
}

/// --deadline SEC as the per-request deadline_ms a daemon job carries.
std::uint64_t remote_deadline_ms(const EngineOptions& opts) {
  return opts.deadline_seconds > 0.0
             ? static_cast<std::uint64_t>(opts.deadline_seconds * 1000.0)
             : 0;
}

/// --retries N as the client's transient-retry budget.
ClientRetryConfig client_retry(const EngineOptions& opts) {
  ClientRetryConfig retry;
  retry.retries = static_cast<int>(opts.retries);
  return retry;
}

int cmd_list(std::vector<std::string>&, const EngineOptions&) {
  Table table({"Benchmark", "PIs", "POs", "Gates"});
  for (const auto& spec : iscas85_specs())
    table.add_row({spec.name, std::to_string(spec.primary_inputs),
                   std::to_string(spec.primary_outputs),
                   std::to_string(spec.gate_count)});
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_analyze(std::vector<std::string>& args, const EngineOptions& opts) {
  if (args.empty()) return usage();
  AnalyzeJobSpec spec;
  spec.circuits = args;
  spec.strict = opts.strict;
  if (!opts.connect_path.empty()) {
    reject_checkpoint_flags_remote(opts);
    return run_remote_analyze(opts.connect_path,
                              {spec, remote_deadline_ms(opts)},
                              client_retry(opts));
  }
  spec.resume_path = opts.resume_path;
  spec.checkpoint_path = checkpoint_path(opts, "sva_analyze.ckpt");
  const SvaFlow flow{flow_config(opts)};
  cache_warm_start(flow.context_cache(), opts);
  ThreadPool pool(opts.threads);
  const JobResult result =
      run_analyze_job(flow, pool, spec, &global_cancel_token());
  cache_snapshot(flow.context_cache(), opts);
  return emit_job_result(result);
}

int cmd_paths(std::vector<std::string>& args, const EngineOptions& opts) {
  if (args.empty()) return usage();
  const std::string name = args[0];
  std::size_t k = 3;
  for (std::size_t i = 1; i < args.size(); ++i)
    if (args[i] == "-n") k = parse_size_flag("-n", flag_value(args, i));
  const SvaFlow flow{flow_config(opts)};
  cache_warm_start(flow.context_cache(), opts);
  const Netlist netlist = flow.make_benchmark(name);
  const Placement placement = flow.make_placement(netlist);
  const Sta sta(netlist, flow.characterized(), flow.config().sta);
  const auto nps = extract_nps(placement);
  const auto versions = assign_versions(nps, flow.config().bins);
  const SvaCornerScale wc(netlist, flow.context_library(), versions,
                          flow.config().budget, Corner::Worst,
                          flow.config().arc_policy, &nps,
                          &flow.context_cache());
  ThreadPool pool(opts.threads);
  const StaResult result = sta.run_parallel(wc, pool, &global_cancel_token());
  cache_snapshot(flow.context_cache(), opts);
  const auto paths = worst_paths(netlist, sta, wc, k);
  std::printf("%s: SVA worst-case design delay %.3f ns\n\n", name.c_str(),
              units::ps_to_ns(result.critical_delay_ps));
  std::printf("%s", render_paths(netlist, paths, result).c_str());
  return 0;
}

/// optimize's circuit + flag tokens -> job spec; shared by cmd_optimize
/// and `sva batch` file lines so both paths accept the same grammar.
OptimizeJobSpec parse_optimize_spec(const std::vector<std::string>& args) {
  OptimizeJobSpec spec;
  spec.circuit = args[0];
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string flag = args[i];
    if (flag == "--clock") {
      spec.clock_period_ps =
          parse_double_flag(flag, flag_value(args, i)) * 1000.0;
    } else if (flag == "--max-moves") {
      spec.max_moves = parse_size_flag(flag, flag_value(args, i));
    } else if (flag == "--window") {
      spec.window_ps = parse_double_flag(flag, flag_value(args, i));
    } else if (flag == "--corner") {
      const std::string& mode = flag_value(args, i);
      if (mode == "sva") {
        spec.corner_mode = 0;
      } else if (mode == "trad") {
        spec.corner_mode = 1;
      } else {
        throw std::runtime_error("--corner expects 'sva' or 'trad', got '" +
                                 mode + "'");
      }
    } else if (flag == "--csv") {
      spec.csv_path = flag_value(args, i);
    } else {
      throw std::runtime_error("unknown optimize flag '" + flag + "'");
    }
  }
  return spec;
}

/// ssta's circuit + flag tokens -> job spec (same sharing as above).
SstaJobSpec parse_ssta_spec(const std::vector<std::string>& args) {
  SstaJobSpec spec;
  spec.circuit = args[0];
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string flag = args[i];
    if (flag == "--clock") {
      spec.clock_period_ps =
          parse_double_flag(flag, flag_value(args, i)) * 1000.0;
    } else if (flag == "--quantile") {
      spec.quantile = parse_double_flag(flag, flag_value(args, i));
    } else if (flag == "--mc") {
      spec.mc_samples = parse_size_flag(flag, flag_value(args, i));
    } else if (flag == "--global-share") {
      spec.global_share = parse_double_flag(flag, flag_value(args, i));
    } else if (flag == "--csv") {
      spec.csv_path = flag_value(args, i);
    } else {
      throw std::runtime_error("unknown ssta flag '" + flag + "'");
    }
  }
  return spec;
}

int cmd_optimize(std::vector<std::string>& args, const EngineOptions& opts) {
  if (args.empty()) return usage();
  OptimizeJobSpec spec = parse_optimize_spec(args);
  if (!opts.connect_path.empty()) {
    reject_checkpoint_flags_remote(opts);
    return run_remote_optimize(opts.connect_path,
                               {spec, remote_deadline_ms(opts)},
                               client_retry(opts));
  }
  spec.resume_path = opts.resume_path;
  spec.checkpoint_path = checkpoint_path(opts, "sva_optimize.ckpt");
  const SvaFlow flow{flow_config(opts)};
  const SizedLibrary sized(flow.library(), flow.config().electrical,
                           flow.library_opc_results(), flow.boundary_model(),
                           flow.config().bins);
  // The sized library's expanded context cache hashes differently from the
  // base flow's, so both snapshots coexist in the same cache directory.
  cache_warm_start(sized.context_cache(), opts);
  ThreadPool pool(opts.threads);
  const JobResult result =
      run_optimize_job(flow, sized, pool, spec, &global_cancel_token());
  cache_snapshot(sized.context_cache(), opts);
  return emit_job_result(result);
}

int cmd_ssta(std::vector<std::string>& args, const EngineOptions& opts) {
  if (args.empty()) return usage();
  SstaJobSpec spec = parse_ssta_spec(args);
  if (!opts.connect_path.empty()) {
    reject_checkpoint_flags_remote(opts);
    return run_remote_ssta(opts.connect_path, {spec, remote_deadline_ms(opts)},
                           client_retry(opts));
  }
  const SvaFlow flow{flow_config(opts)};
  cache_warm_start(flow.context_cache(), opts);
  ThreadPool pool(opts.threads);
  const JobResult result =
      run_ssta_job(flow, pool, spec, &global_cancel_token());
  cache_snapshot(flow.context_cache(), opts);
  return emit_job_result(result);
}

/// `sva batch FILE --connect URI`: ship every job line of FILE to the
/// daemon in one BatchRequest over one connection.  Each non-empty,
/// non-'#' line is `analyze|optimize|ssta <args...>` with exactly the
/// grammar of the standalone command; results come back in file order,
/// and a malformed or failing line poisons only its own slot.
int cmd_batch(std::vector<std::string>& args, const EngineOptions& opts) {
  if (args.size() != 1) return usage();
  if (opts.connect_path.empty()) {
    std::fprintf(stderr, "batch requires --connect URI\n");
    return usage();
  }
  reject_checkpoint_flags_remote(opts);
  const std::string text = read_file_bytes(args[0]);

  BatchRequest request;
  std::vector<std::string> labels;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(begin, end - begin);
    begin = end + 1;

    std::vector<std::string> tokens;
    std::size_t pos = 0;
    while (pos < line.size()) {
      while (pos < line.size() && std::isspace(static_cast<unsigned char>(line[pos]))) ++pos;
      const std::size_t start = pos;
      while (pos < line.size() && !std::isspace(static_cast<unsigned char>(line[pos]))) ++pos;
      if (pos > start) tokens.push_back(line.substr(start, pos - start));
    }
    if (tokens.empty() || tokens[0][0] == '#') continue;

    const std::string verb = tokens[0];
    std::vector<std::string> rest(tokens.begin() + 1, tokens.end());
    if (rest.empty())
      throw std::runtime_error("batch line '" + line +
                               "': expected a benchmark after '" + verb + "'");
    BatchItem item;
    if (verb == "analyze") {
      AnalyzeJobSpec spec;
      spec.circuits = rest;
      spec.strict = opts.strict;
      item.kind = static_cast<std::uint8_t>(MsgType::AnalyzeRequest);
      item.body = encode_analyze_request({spec, remote_deadline_ms(opts)});
    } else if (verb == "optimize") {
      item.kind = static_cast<std::uint8_t>(MsgType::OptimizeRequest);
      item.body = encode_optimize_request(
          {parse_optimize_spec(rest), remote_deadline_ms(opts)});
    } else if (verb == "ssta") {
      item.kind = static_cast<std::uint8_t>(MsgType::SstaRequest);
      item.body = encode_ssta_request(
          {parse_ssta_spec(rest), remote_deadline_ms(opts)});
    } else {
      throw std::runtime_error("batch line '" + line +
                               "': unknown job kind '" + verb +
                               "' (expected analyze, optimize, or ssta)");
    }
    request.items.push_back(std::move(item));
    labels.push_back(line);
  }
  if (request.items.empty())
    throw std::runtime_error("batch file '" + args[0] +
                             "' contains no job lines");
  return run_remote_batch(opts.connect_path, request, labels,
                          client_retry(opts));
}

int cmd_serve(std::vector<std::string>& args, const EngineOptions& opts) {
  ServerConfig cfg;
  // The daemon caches clean analyze/ssta results by default; --result-cache 0
  // turns it off.
  cfg.result_cache_capacity = 128;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string flag = args[i];
    if (flag == "--socket") {
      cfg.socket_path = flag_value(args, i);
    } else if (flag == "--listen") {
      cfg.listen_address = flag_value(args, i);
    } else if (flag == "--max-conns") {
      cfg.max_conns = parse_size_flag(flag, flag_value(args, i));
      if (cfg.max_conns == 0)
        throw std::runtime_error("--max-conns expects a positive integer");
    } else if (flag == "--read-timeout-ms") {
      cfg.conn_limits.read_timeout_ms =
          parse_size_flag(flag, flag_value(args, i));
    } else if (flag == "--write-timeout-ms") {
      cfg.conn_limits.write_timeout_ms =
          parse_size_flag(flag, flag_value(args, i));
    } else if (flag == "--idle-timeout-ms") {
      cfg.conn_limits.idle_timeout_ms =
          parse_size_flag(flag, flag_value(args, i));
    } else if (flag == "--queue-depth") {
      cfg.queue_depth = parse_size_flag(flag, flag_value(args, i));
      if (cfg.queue_depth == 0)
        throw std::runtime_error("--queue-depth expects a positive integer");
    } else if (flag == "--lanes") {
      cfg.lanes = parse_size_flag(flag, flag_value(args, i));
      if (cfg.lanes == 0)
        throw std::runtime_error("--lanes expects a positive integer");
    } else if (flag == "--result-cache") {
      cfg.result_cache_capacity = parse_size_flag(flag, flag_value(args, i));
    } else if (flag == "--watchdog-stall-ms") {
      cfg.watchdog_stall_ms = parse_size_flag(flag, flag_value(args, i));
    } else if (flag == "--watchdog-grace-ms") {
      cfg.watchdog_grace_ms = parse_size_flag(flag, flag_value(args, i));
    } else {
      throw std::runtime_error("unknown serve flag '" + flag + "'");
    }
  }
  if (cfg.socket_path.empty() && cfg.listen_address.empty()) {
    std::fprintf(stderr,
                 "serve requires --socket PATH and/or --listen HOST:PORT\n");
    return usage();
  }
  if (opts.cache_enabled()) cfg.cache_dir = opts.cache_dir;
  // Announce the bound endpoints on stdout: with --listen HOST:0 the
  // kernel picks the port, and scripts discover it from this line.
  cfg.announce = true;
  // Pay the expensive setup exactly once: the flow (library OPC, pitch
  // table, context cache) stays hot for every job the daemon answers.
  const SvaFlow flow{flow_config(opts)};
  cache_warm_start(flow.context_cache(), opts);
  ThreadPool pool(opts.threads);
  TimingServer server(flow, cfg);
  const int rc = server.serve(pool, &global_cancel_token());
  cache_snapshot(flow.context_cache(), opts);
  return rc;
}

int cmd_metrics(std::vector<std::string>& args, const EngineOptions& opts) {
  if (opts.connect_path.empty()) {
    std::fprintf(stderr, "metrics requires --connect PATH\n");
    return usage();
  }
  bool json = false;
  for (const std::string& flag : args) {
    if (flag == "--json") {
      json = true;
    } else {
      throw std::runtime_error("unknown metrics flag '" + flag + "'");
    }
  }
  const MetricsResponse m = fetch_remote_metrics(opts.connect_path);
  if (json)
    std::printf("%s\n", m.json.c_str());
  else
    std::printf("server metrics:\n%s",
                m.rendered.empty() ? "  (none)\n" : m.rendered.c_str());
  return 0;
}

int cmd_ping(std::vector<std::string>&, const EngineOptions& opts) {
  if (opts.connect_path.empty()) {
    std::fprintf(stderr, "ping requires --connect PATH\n");
    return usage();
  }
  HealthResponse h;
  try {
    h = fetch_remote_health(opts.connect_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: daemon unreachable (%s)\n", e.what());
    return kExitFatal;
  }
  std::string lanes;
  for (const char state : h.lane_states) {
    if (!lanes.empty()) lanes += ' ';
    lanes += lane_state_name(static_cast<LaneState>(state));
  }
  std::printf("daemon healthy: uptime %.1f s, queue %llu/%llu, "
              "jobs served %llu, lanes poisoned %llu\n"
              "lanes: %s\n",
              static_cast<double>(h.uptime_ms) / 1000.0,
              static_cast<unsigned long long>(h.queue_depth),
              static_cast<unsigned long long>(h.queue_capacity),
              static_cast<unsigned long long>(h.jobs_served),
              static_cast<unsigned long long>(h.lanes_poisoned),
              lanes.c_str());
  return kExitOk;
}

int cmd_shutdown(std::vector<std::string>&, const EngineOptions& opts) {
  if (opts.connect_path.empty()) {
    std::fprintf(stderr, "shutdown requires --connect PATH\n");
    return usage();
  }
  request_remote_shutdown(opts.connect_path);
  std::printf("server draining\n");
  return 0;
}

int cmd_pitch_curve(std::vector<std::string>& args, const EngineOptions&) {
  const std::string out_path = args.empty() ? "" : args[0];
  const OpticsConfig optics;
  const LithoProcess process(optics, 90.0, 240.0);
  const auto curve =
      through_pitch_curve(process, 90.0, pitch_sweep(240.0, 1000.0, 30));
  Series series{"printed CD", {}, {}};
  for (const auto& p : curve) {
    series.x.push_back(p.pitch);
    series.y.push_back(p.cd);
    std::printf("%8.1f  %8.3f\n", p.pitch, p.cd);
  }
  if (!out_path.empty()) {
    write_text_file(out_path, series_to_csv({series}));
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

int cmd_export_lib(std::vector<std::string>& args, const EngineOptions& opts) {
  if (args.empty()) return usage();
  const std::string path = args[0];
  const bool expanded =
      args.size() > 1 && (args[1] == "--expanded" || args[1] == "-x");
  const SvaFlow flow{flow_config(opts)};
  const std::string lib =
      expanded ? to_liberty_expanded(flow.characterized(),
                                     flow.context_library(), "sva90_context")
               : to_liberty(flow.characterized(), "sva90");
  write_text_file(path, lib);
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), lib.size());
  return 0;
}

int cmd_verilog(std::vector<std::string>& args, const EngineOptions& opts) {
  if (args.size() < 2) return usage();
  const SvaFlow flow{flow_config(opts)};
  const Netlist netlist = flow.make_benchmark(args[0]);
  write_verilog_file(args[1], netlist);
  std::printf("wrote %s (%zu gates)\n", args[1].c_str(),
              netlist.gates().size());
  return 0;
}

int cmd_bench_file(std::vector<std::string>& args, const EngineOptions& opts) {
  if (args.empty()) return usage();
  const std::string path = args[0];
  const SvaFlow flow{flow_config(opts)};
  cache_warm_start(flow.context_cache(), opts);
  const Netlist netlist =
      load_bench_file(path, flow.library(), "bench_design");
  const Placement placement = flow.make_placement(netlist);
  const CircuitAnalysis a = flow.analyze(netlist, placement);
  cache_snapshot(flow.context_cache(), opts);
  std::printf("%s: %zu gates\n", path.c_str(), a.gate_count);
  std::printf("  traditional: %.3f / %.3f / %.3f ns\n",
              units::ps_to_ns(a.trad_nom_ps), units::ps_to_ns(a.trad_bc_ps),
              units::ps_to_ns(a.trad_wc_ps));
  std::printf("  SVA-aware:   %.3f / %.3f / %.3f ns  (reduction %s)\n",
              units::ps_to_ns(a.sva_nom_ps), units::ps_to_ns(a.sva_bc_ps),
              units::ps_to_ns(a.sva_wc_ps),
              fmt_pct(a.uncertainty_reduction(), 1).c_str());
  return 0;
}

/// One eviction pass over the cache directory (also runs pre-dispatch when
/// --cache-gc accompanies another command; main.cpp reuses this handler).
int cmd_cache_gc(std::vector<std::string>&, const EngineOptions& opts) {
  CacheGcConfig cfg;
  cfg.max_total_bytes = opts.cache_gc_max_mb * std::size_t{1024} * 1024;
  cfg.max_age_days = opts.cache_gc_max_age_days;
  const CacheGcStats stats = run_cache_gc(opts.cache_dir, cfg);
  std::printf("%s (%s)\n", stats.summary().c_str(), opts.cache_dir.c_str());
  return kExitOk;
}

}  // namespace

const std::vector<CommandSpec>& command_table() {
  static const std::vector<CommandSpec> kTable = {
      {"analyze", cmd_analyze, "analyze <bench...>",
       "corner analysis (traditional vs SVA); --connect runs it remotely"},
      {"paths", cmd_paths, "paths <bench> [-n K]",
       "worst K paths under the SVA WC corner"},
      {"optimize", cmd_optimize, "optimize <bench> [flags]",
       "variation-aware ECO: size + respace until the clock\n"
       "                         is met (flags: --clock NS, --max-moves K,\n"
       "                         --window PS, --corner sva|trad, --csv PATH;\n"
       "                         default clock: 97% of the unoptimized\n"
       "                         corner delay); --connect runs it remotely"},
      {"ssta", cmd_ssta, "ssta <bench> [flags]",
       "block-based statistical STA: canonical first-order\n"
       "                         delays, Clark max, per-arc criticality\n"
       "                         (flags: --clock NS, --quantile Q, --mc N,\n"
       "                         --global-share F, --csv PATH; default CSV:\n"
       "                         ssta_criticality.csv); --connect runs it\n"
       "                         remotely"},
      {"batch", cmd_batch, "batch <file>",
       "ship every job line of <file> (analyze/optimize/ssta\n"
       "                         <args...>, '#' comments) to the daemon at\n"
       "                         --connect in one connection; results arrive\n"
       "                         in file order and a bad line fails only its\n"
       "                         own slot"},
      {"serve", cmd_serve, "serve --socket PATH|--listen HOST:PORT [flags]",
       "long-lived daemon: load the library once, then answer\n"
       "                         analyze/optimize/ssta jobs from concurrent\n"
       "                         clients over a Unix socket and/or TCP\n"
       "                         (flags: --queue-depth N (8), --lanes N\n"
       "                         (hardware), --result-cache N (128, 0 = off),\n"
       "                         --max-conns N (64), --read-timeout-ms /\n"
       "                         --write-timeout-ms / --idle-timeout-ms MS\n"
       "                         (0 = off), --watchdog-stall-ms MS,\n"
       "                         --watchdog-grace-ms MS)"},
      {"metrics", cmd_metrics, "metrics [--json]",
       "server-wide metrics of the daemon at --connect PATH"},
      {"ping", cmd_ping, "ping",
       "health-probe the daemon at --connect PATH (exit 0 when\n"
       "                         it answers: uptime, queue, lane states)"},
      {"shutdown", cmd_shutdown, "shutdown",
       "gracefully drain the daemon at --connect PATH"},
      {"pitch-curve", cmd_pitch_curve, "pitch-curve [out.csv]",
       "through-pitch printed-CD curve"},
      {"export-lib", cmd_export_lib, "export-lib <out.lib> [--expanded]",
       "write the (expanded) .lib"},
      {"verilog", cmd_verilog, "verilog <bench> <out.v>",
       "dump a benchmark as Verilog"},
      {"bench", cmd_bench_file, "bench <file.bench>",
       "analyze an ISCAS .bench netlist"},
      {"list", cmd_list, "list", "built-in benchmark circuits"},
      {"cache-gc", cmd_cache_gc, "cache-gc",
       "evict old/oversized cache entries, then exit"},
  };
  return kTable;
}

int usage() {
  std::printf("usage: sva-timing <command> [args] [--threads N] [--metrics]\n");
  for (const CommandSpec& cmd : command_table())
    std::printf("  %-22s %s\n", cmd.usage_line, cmd.summary);
  std::printf(
      "global options:\n"
      "  --threads N            worker threads for analyze/paths/optimize/\n"
      "                         serve (default: hardware concurrency)\n"
      "  --metrics              print engine counters/timers on exit\n"
      "  --metrics-json PATH    write the metrics snapshot as JSON to PATH\n"
      "                         on exit ('-' = stdout)\n"
      "  --connect URI          ship analyze/optimize/ssta/batch to the\n"
      "                         `serve` daemon at this endpoint (no local\n"
      "                         library build); URI is unix:PATH,\n"
      "                         tcp:HOST:PORT, or a bare socket path\n"
      "  --retries N            with --connect: retry transient daemon\n"
      "                         failures (busy, refused, dropped before a\n"
      "                         response) up to N times with exponential\n"
      "                         backoff + jitter (default 0)\n"
      "  --cache-dir DIR        persistent context-library cache directory\n"
      "                         (default: $SVA_CACHE_DIR or .sva_cache)\n"
      "  --no-cache             run cold; neither load nor save the cache\n"
      "  --keep-going           degrade gracefully on recoverable faults\n"
      "                         (default; warnings via --diagnostics)\n"
      "  --strict               fail fast: any recoverable fault aborts\n"
      "                         the run with exit code 1\n"
      "  --diagnostics          print the structured diagnostics report\n"
      "                         (severity, component, error code) on exit\n"
      "  --deadline SEC         wall-clock time box: expiry winds the run\n"
      "                         down cooperatively (checkpointing where\n"
      "                         supported) and exits with code 4; with\n"
      "                         --connect it rides along as the job's\n"
      "                         server-side deadline\n"
      "  --checkpoint PATH      where a cancelled analyze/optimize journals\n"
      "                         its state (default sva_<command>.ckpt)\n"
      "  --resume PATH          continue an interrupted analyze/optimize\n"
      "                         from its checkpoint; the final result is\n"
      "                         bit-identical to an uninterrupted run\n"
      "  --cache-gc             run cache eviction before the command\n"
      "                         (knobs: --cache-gc-max-mb N, default 512;\n"
      "                         --cache-gc-max-age-days D, default 30)\n"
      "fault injection:\n"
      "  SVA_FAILPOINTS=name=action,...   arm failpoints (actions: throw,\n"
      "                         prob(p), delay(ms), corrupt); see DESIGN.md\n"
      "exit codes:\n"
      "  0  success (degradations possible; inspect --diagnostics)\n"
      "  1  fatal error, or any fault under --strict, or a busy/failed\n"
      "     daemon job\n"
      "  2  usage error\n"
      "  3  --keep-going run completed but one or more jobs failed\n"
      "  4  cancelled (SIGINT/SIGTERM or --deadline); analyze/optimize\n"
      "     write a checkpoint first -- continue with --resume\n"
      "  (optimize: 1 also means the clock was not met)\n");
  return kExitUsage;
}

int dispatch_command(const std::string& command,
                     std::vector<std::string>& args,
                     const EngineOptions& opts) {
  for (const CommandSpec& cmd : command_table())
    if (command == cmd.name) return cmd.handler(args, opts);
  return usage();
}

}  // namespace sva
