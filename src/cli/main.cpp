// sva-timing: command-line driver for the systematic-variation aware
// timing flow.
//
//   sva-timing analyze C432 C880          Table-2 style corner analysis
//   sva-timing paths C432 -n 3            worst paths under the SVA corners
//   sva-timing pitch-curve                through-pitch CD curve (CSV)
//   sva-timing export-lib out.lib [-x]    write the (expanded) .lib
//   sva-timing verilog C432 out.v         dump a benchmark as Verilog
//   sva-timing bench FILE.bench           analyze an ISCAS .bench file
//   sva-timing list                       available built-in benchmarks

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "cell/liberty_writer.hpp"
#include "core/flow.hpp"
#include "engine/batch.hpp"
#include "engine/metrics.hpp"
#include "engine/options.hpp"
#include "engine/thread_pool.hpp"
#include "litho/pitch_curve.hpp"
#include "netlist/bench_format.hpp"
#include "netlist/verilog.hpp"
#include "opt/eco.hpp"
#include "opt/sizing.hpp"
#include "opt/trajectory.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "sta/path_report.hpp"
#include "util/cache_gc.hpp"
#include "util/cancel.hpp"
#include "util/diagnostics.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace {

using namespace sva;

// Warm-start / snapshot the persistent context-library cache around a
// command.  A failed load degrades to a cold run inside try_load; a failed
// save must not fail the command (the analysis already succeeded), so it
// only warns.
void cache_warm_start(const ContextCache& cache, const EngineOptions& opts) {
  if (opts.cache_enabled()) cache.try_load(opts.cache_dir);
}

/// Flow configuration with the persistent-cache directory plumbed in, so
/// SvaFlow construction itself warm-starts (library OPC + pitch table
/// restored from the setup snapshot).
FlowConfig flow_config(const EngineOptions& opts) {
  FlowConfig cfg;
  if (opts.cache_enabled()) cfg.cache_dir = opts.cache_dir;
  cfg.fault_policy = opts.fault_policy();
  return cfg;
}

void cache_snapshot(const ContextCache& cache, const EngineOptions& opts) {
  if (!opts.cache_enabled()) return;
  try {
    cache.save(opts.cache_dir);
  } catch (const std::exception& e) {
    log_warn("context cache: snapshot failed (", e.what(), ")");
  }
}

/// The checkpoint file a cancelled run journals to: --checkpoint PATH, or
/// the command's documented default in the working directory.
std::string checkpoint_path(const EngineOptions& opts,
                            const char* command_default) {
  return opts.checkpoint_path.empty() ? command_default
                                      : opts.checkpoint_path;
}

/// Exit path of a run that wound down on a tripped token: report why and
/// where the journal went (empty `ckpt` => none was written).
int report_cancelled(const std::string& ckpt) {
  const CancelToken& token = global_cancel_token();
  std::printf("run cancelled (%s)%s\n",
              cancel_reason_name(token.reason()),
              token.reason() == CancelReason::Deadline ? ": deadline exceeded"
                                                       : "");
  if (!ckpt.empty())
    std::printf("checkpoint written to %s; continue with --resume %s\n",
                ckpt.c_str(), ckpt.c_str());
  return kExitCancelled;
}

int usage() {
  std::printf(
      "usage: sva-timing <command> [args] [--threads N] [--metrics]\n"
      "  analyze <bench...>     corner analysis (traditional vs SVA)\n"
      "  paths <bench> [-n K]   worst K paths under the SVA WC corner\n"
      "  optimize <bench> [--clock NS] [--max-moves K] [--corner sva|trad]\n"
      "           [--window PS] [--csv PATH]\n"
      "                         variation-aware ECO: size + respace until\n"
      "                         the clock is met (default clock: 97%% of\n"
      "                         the unoptimized corner delay)\n"
      "  pitch-curve [out.csv]  through-pitch printed-CD curve\n"
      "  export-lib <out.lib> [--expanded]\n"
      "  verilog <bench> <out.v>\n"
      "  bench <file.bench>     analyze an ISCAS .bench netlist\n"
      "  list                   built-in benchmark circuits\n"
      "  cache-gc               evict old/oversized cache entries, then exit\n"
      "global options:\n"
      "  --threads N            worker threads for analyze/paths/optimize\n"
      "                         (default: hardware concurrency)\n"
      "  --metrics              print engine counters/timers on exit\n"
      "  --cache-dir DIR        persistent context-library cache directory\n"
      "                         (default: $SVA_CACHE_DIR or .sva_cache)\n"
      "  --no-cache             run cold; neither load nor save the cache\n"
      "  --keep-going           degrade gracefully on recoverable faults\n"
      "                         (default; warnings via --diagnostics)\n"
      "  --strict               fail fast: any recoverable fault aborts\n"
      "                         the run with exit code 1\n"
      "  --diagnostics          print the structured diagnostics report\n"
      "                         (severity, component, error code) on exit\n"
      "  --deadline SEC         wall-clock time box: expiry winds the run\n"
      "                         down cooperatively (checkpointing where\n"
      "                         supported) and exits with code 4\n"
      "  --checkpoint PATH      where a cancelled analyze/optimize journals\n"
      "                         its state (default sva_<command>.ckpt)\n"
      "  --resume PATH          continue an interrupted analyze/optimize\n"
      "                         from its checkpoint; the final result is\n"
      "                         bit-identical to an uninterrupted run\n"
      "  --cache-gc             run cache eviction before the command\n"
      "                         (knobs: --cache-gc-max-mb N, default 512;\n"
      "                         --cache-gc-max-age-days D, default 30)\n"
      "fault injection:\n"
      "  SVA_FAILPOINTS=name=action,...   arm failpoints (actions: throw,\n"
      "                         prob(p), delay(ms), corrupt); see DESIGN.md\n"
      "exit codes:\n"
      "  0  success (degradations possible; inspect --diagnostics)\n"
      "  1  fatal error, or any fault under --strict\n"
      "  2  usage error\n"
      "  3  --keep-going run completed but one or more jobs failed\n"
      "  4  cancelled (SIGINT/SIGTERM or --deadline); analyze/optimize\n"
      "     write a checkpoint first -- continue with --resume\n"
      "  (optimize: 1 also means the clock was not met)\n");
  return kExitUsage;
}

int cmd_list() {
  Table table({"Benchmark", "PIs", "POs", "Gates"});
  for (const auto& spec : iscas85_specs())
    table.add_row({spec.name, std::to_string(spec.primary_inputs),
                   std::to_string(spec.primary_outputs),
                   std::to_string(spec.gate_count)});
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_analyze(const std::vector<std::string>& names,
                const EngineOptions& opts) {
  if (names.empty()) return usage();
  const SvaFlow flow{flow_config(opts)};
  cache_warm_start(flow.context_cache(), opts);
  ThreadPool pool(opts.threads);
  BatchOptions batch_opts;
  batch_opts.keep_going = !opts.strict;
  batch_opts.cancel = &global_cancel_token();
  std::vector<BatchJob> jobs;
  jobs.reserve(names.size());
  for (const std::string& name : names) jobs.push_back({name});
  // --resume: reload the interrupted run's journal (hash-verified against
  // this flow + job list) so final slots are copied, not recomputed.
  BatchResult prior;
  const bool resuming = !opts.resume_path.empty();
  if (resuming) prior = load_batch_checkpoint(opts.resume_path, flow, jobs);
  const BatchRunner runner(flow, pool, batch_opts);
  const BatchResult batch = runner.run(jobs, resuming ? &prior : nullptr);
  cache_snapshot(flow.context_cache(), opts);
  if (batch.cancelled_count() > 0) {
    // Journal the final slots and exit with the documented cancelled
    // code.  A failed journal write (disk full, injected fault) does not
    // mask the cancellation -- it only costs the resume file.
    std::string ckpt = checkpoint_path(opts, "sva_analyze.ckpt");
    try {
      save_batch_checkpoint(ckpt, flow, jobs, batch);
    } catch (const std::exception& e) {
      log_warn("checkpoint write failed (", e.what(), ")");
      ckpt.clear();
    }
    std::printf("%zu/%zu jobs complete\n",
                jobs.size() - batch.cancelled_count(), jobs.size());
    return report_cancelled(ckpt);
  }
  Table table({"Testcase", "#Gates", "Trad Nom", "Trad BC", "Trad WC",
               "New Nom", "New BC", "New WC", "Reduction"});
  for (std::size_t ji = 0; ji < batch.analyses.size(); ++ji) {
    const CircuitAnalysis& a = batch.analyses[ji];
    if (!batch.outcomes[ji].ok) {
      table.add_row({a.name, "FAILED", "-", "-", "-", "-", "-", "-", "-"});
      continue;
    }
    table.add_row({a.name, std::to_string(a.gate_count),
                   fmt(units::ps_to_ns(a.trad_nom_ps), 3),
                   fmt(units::ps_to_ns(a.trad_bc_ps), 3),
                   fmt(units::ps_to_ns(a.trad_wc_ps), 3),
                   fmt(units::ps_to_ns(a.sva_nom_ps), 3),
                   fmt(units::ps_to_ns(a.sva_bc_ps), 3),
                   fmt(units::ps_to_ns(a.sva_wc_ps), 3),
                   fmt_pct(a.uncertainty_reduction(), 1)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("(%zu circuits, %zu threads, %.2f s)\n", batch.analyses.size(),
              opts.threads, batch.wall_seconds);
  if (!batch.all_ok()) {
    std::printf("%zu job(s) failed; run with --diagnostics for details\n",
                batch.failed_count());
    return 3;
  }
  return 0;
}

int cmd_paths(const std::string& name, std::size_t k,
              const EngineOptions& opts) {
  const SvaFlow flow{flow_config(opts)};
  cache_warm_start(flow.context_cache(), opts);
  const Netlist netlist = flow.make_benchmark(name);
  const Placement placement = flow.make_placement(netlist);
  const Sta sta(netlist, flow.characterized(), flow.config().sta);
  const auto nps = extract_nps(placement);
  const auto versions = assign_versions(nps, flow.config().bins);
  const SvaCornerScale wc(netlist, flow.context_library(), versions,
                          flow.config().budget, Corner::Worst,
                          flow.config().arc_policy, &nps,
                          &flow.context_cache());
  ThreadPool pool(opts.threads);
  const StaResult result = sta.run_parallel(wc, pool, &global_cancel_token());
  cache_snapshot(flow.context_cache(), opts);
  const auto paths = worst_paths(netlist, sta, wc, k);
  std::printf("%s: SVA worst-case design delay %.3f ns\n\n", name.c_str(),
              units::ps_to_ns(result.critical_delay_ps));
  std::printf("%s", render_paths(netlist, paths, result).c_str());
  return 0;
}

int cmd_optimize(const std::vector<std::string>& args,
                 const EngineOptions& opts) {
  if (args.empty()) return usage();
  const std::string name = args[0];
  EcoConfig eco;
  std::string csv_path = "eco_trajectory.csv";
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string flag = args[i];
    if (flag == "--clock") {
      eco.clock_period_ps =
          parse_double_flag(flag, flag_value(args, i)) * 1000.0;
    } else if (flag == "--max-moves") {
      eco.max_moves = parse_size_flag(flag, flag_value(args, i));
    } else if (flag == "--window") {
      eco.near_critical_window_ps =
          parse_double_flag(flag, flag_value(args, i));
    } else if (flag == "--corner") {
      const std::string& mode = flag_value(args, i);
      if (mode == "sva") {
        eco.mode = EcoCornerMode::SvaWorst;
      } else if (mode == "trad") {
        eco.mode = EcoCornerMode::TraditionalWorst;
      } else {
        throw std::runtime_error("--corner expects 'sva' or 'trad', got '" +
                                 mode + "'");
      }
    } else if (flag == "--csv") {
      csv_path = flag_value(args, i);
    } else {
      throw std::runtime_error("unknown optimize flag '" + flag + "'");
    }
  }

  const SvaFlow flow{flow_config(opts)};
  eco.budget = flow.config().budget;
  eco.arc_policy = flow.config().arc_policy;
  eco.sta = flow.config().sta;
  const SizedLibrary sized(flow.library(), flow.config().electrical,
                           flow.library_opc_results(), flow.boundary_model(),
                           flow.config().bins);
  // The sized library's expanded context cache hashes differently from the
  // base flow's, so both snapshots coexist in the same cache directory.
  cache_warm_start(sized.context_cache(), opts);
  Netlist netlist = generate_iscas85_like(name, sized.library());
  EcoOptimizer optimizer(sized, std::move(netlist),
                         flow.config().placement, eco);
  // --resume: replay the interrupted run's journal (hash-verified, each
  // move witness-checked bit-for-bit) before continuing the loop.
  if (!opts.resume_path.empty()) optimizer.restore(opts.resume_path);
  ThreadPool pool(opts.threads);
  const EcoResult result = optimizer.run(&pool, &global_cancel_token());
  cache_snapshot(sized.context_cache(), opts);
  if (result.cancelled) {
    std::string ckpt = checkpoint_path(opts, "sva_optimize.ckpt");
    try {
      optimizer.checkpoint(ckpt);
    } catch (const std::exception& e) {
      log_warn("checkpoint write failed (", e.what(), ")");
      ckpt.clear();
    }
    std::printf("%zu move(s) committed before cancellation\n",
                result.moves_committed());
    return report_cancelled(ckpt);
  }
  std::printf("%s", trajectory_table(result).c_str());
  if (!csv_path.empty()) {
    write_text_file(csv_path, trajectory_csv(result));
    std::printf("wrote %s\n", csv_path.c_str());
  }
  return result.met_timing ? 0 : 1;
}

int cmd_pitch_curve(const std::string& out_path) {
  const OpticsConfig optics;
  const LithoProcess process(optics, 90.0, 240.0);
  const auto curve =
      through_pitch_curve(process, 90.0, pitch_sweep(240.0, 1000.0, 30));
  Series series{"printed CD", {}, {}};
  for (const auto& p : curve) {
    series.x.push_back(p.pitch);
    series.y.push_back(p.cd);
    std::printf("%8.1f  %8.3f\n", p.pitch, p.cd);
  }
  if (!out_path.empty()) {
    write_text_file(out_path, series_to_csv({series}));
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

int cmd_export_lib(const std::string& path, bool expanded,
                   const EngineOptions& opts) {
  const SvaFlow flow{flow_config(opts)};
  const std::string lib =
      expanded ? to_liberty_expanded(flow.characterized(),
                                     flow.context_library(), "sva90_context")
               : to_liberty(flow.characterized(), "sva90");
  write_text_file(path, lib);
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), lib.size());
  return 0;
}

int cmd_verilog(const std::string& name, const std::string& out,
                const EngineOptions& opts) {
  const SvaFlow flow{flow_config(opts)};
  const Netlist netlist = flow.make_benchmark(name);
  write_verilog_file(out, netlist);
  std::printf("wrote %s (%zu gates)\n", out.c_str(),
              netlist.gates().size());
  return 0;
}

/// One eviction pass over the cache directory (also runs pre-dispatch when
/// --cache-gc accompanies another command).
int cmd_cache_gc(const EngineOptions& opts) {
  CacheGcConfig cfg;
  cfg.max_total_bytes = opts.cache_gc_max_mb * std::size_t{1024} * 1024;
  cfg.max_age_days = opts.cache_gc_max_age_days;
  const CacheGcStats stats = run_cache_gc(opts.cache_dir, cfg);
  std::printf("%s (%s)\n", stats.summary().c_str(), opts.cache_dir.c_str());
  return kExitOk;
}

int cmd_bench_file(const std::string& path, const EngineOptions& opts) {
  const SvaFlow flow{flow_config(opts)};
  cache_warm_start(flow.context_cache(), opts);
  const Netlist netlist =
      load_bench_file(path, flow.library(), "bench_design");
  const Placement placement = flow.make_placement(netlist);
  const CircuitAnalysis a = flow.analyze(netlist, placement);
  cache_snapshot(flow.context_cache(), opts);
  std::printf("%s: %zu gates\n", path.c_str(), a.gate_count);
  std::printf("  traditional: %.3f / %.3f / %.3f ns\n",
              units::ps_to_ns(a.trad_nom_ps), units::ps_to_ns(a.trad_bc_ps),
              units::ps_to_ns(a.trad_wc_ps));
  std::printf("  SVA-aware:   %.3f / %.3f / %.3f ns  (reduction %s)\n",
              units::ps_to_ns(a.sva_nom_ps), units::ps_to_ns(a.sva_bc_ps),
              units::ps_to_ns(a.sva_wc_ps),
              fmt_pct(a.uncertainty_reduction(), 1).c_str());
  return 0;
}

}  // namespace

int dispatch(const std::string& command, std::vector<std::string>& args,
             const EngineOptions& opts) {
  if (command == "list") return cmd_list();
  if (command == "analyze") return cmd_analyze(args, opts);
  if (command == "paths") {
    if (args.empty()) return usage();
    std::size_t k = 3;
    for (std::size_t i = 1; i < args.size(); ++i)
      if (args[i] == "-n") k = parse_size_flag("-n", flag_value(args, i));
    return cmd_paths(args[0], k, opts);
  }
  if (command == "optimize") return cmd_optimize(args, opts);
  if (command == "pitch-curve")
    return cmd_pitch_curve(args.empty() ? "" : args[0]);
  if (command == "export-lib") {
    if (args.empty()) return usage();
    const bool expanded =
        args.size() > 1 && (args[1] == "--expanded" || args[1] == "-x");
    return cmd_export_lib(args[0], expanded, opts);
  }
  if (command == "verilog") {
    if (args.size() < 2) return usage();
    return cmd_verilog(args[0], args[1], opts);
  }
  if (command == "bench") {
    if (args.empty()) return usage();
    return cmd_bench_file(args[0], opts);
  }
  if (command == "cache-gc") return cmd_cache_gc(opts);
  return usage();
}

int main(int argc, char** argv) {
  EngineOptions opts;
  int rc = 0;
  try {
    if (argc < 2) return usage();
    const std::string command = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    opts = extract_engine_options(args);
    // Fault injection is armed once, up front, from $SVA_FAILPOINTS; a
    // malformed spec is a usage-level error before any work starts.
    FailPoints::configure_from_env();
    // Interruptibility: SIGINT/SIGTERM trip the global token (the handler
    // only sets lock-free flags); --deadline arms a monotonic expiry on
    // the same token.  Commands poll it at work-unit granularity.
    install_cancel_signal_handlers();
    if (opts.deadline_seconds > 0.0)
      global_cancel_token().set_deadline(
          Deadline::after_seconds(opts.deadline_seconds));
    if (opts.cache_gc && command != "cache-gc") cmd_cache_gc(opts);

    rc = dispatch(command, args, opts);
  } catch (const CancelledError&) {
    // A trip that surfaced as an exception past any checkpointing command
    // logic (e.g. during paths/bench).  Same documented exit code; there
    // is simply no journal to resume from.
    rc = report_cancelled("");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }
  // Reports print even after a strict-mode abort: the diagnostics trail
  // is most valuable exactly when the run did not finish.
  if (opts.metrics) {
    const std::string metrics = MetricsRegistry::global().render();
    std::printf("\nengine metrics:\n%s",
                metrics.empty() ? "  (none)\n" : metrics.c_str());
  }
  if (opts.diagnostics) {
    const std::string report = Diagnostics::global().render();
    std::printf("\ndiagnostics:\n%s",
                report.empty() ? "  (none)\n" : report.c_str());
  }
  return rc;
}
