// sva-timing: command-line driver for the systematic-variation aware
// timing flow.  The subcommands live in the dispatch table of
// cli/commands.cpp; this file is only the process shell -- global option
// extraction, fault-injection arming, signal handlers, and the exit-time
// metrics/diagnostics reports.

#include <cstdio>
#include <string>
#include <vector>

#include "cli/commands.hpp"
#include "engine/options.hpp"
#include "report/csv.hpp"
#include "util/cancel.hpp"
#include "util/diagnostics.hpp"
#include "util/failpoint.hpp"
#include "util/metrics.hpp"

int main(int argc, char** argv) {
  using namespace sva;
  EngineOptions opts;
  int rc = 0;
  try {
    if (argc < 2) return usage();
    const std::string command = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    opts = extract_engine_options(args);
    // Fault injection is armed once, up front, from $SVA_FAILPOINTS; a
    // malformed spec is a usage-level error before any work starts.
    FailPoints::configure_from_env();
    // Interruptibility: SIGINT/SIGTERM trip the global token (the handler
    // only sets lock-free flags); --deadline arms a monotonic expiry on
    // the same token.  Commands poll it at work-unit granularity.
    install_cancel_signal_handlers();
    if (opts.deadline_seconds > 0.0)
      global_cancel_token().set_deadline(
          Deadline::after_seconds(opts.deadline_seconds));
    if (opts.cache_gc && command != "cache-gc") {
      std::vector<std::string> no_args;
      dispatch_command("cache-gc", no_args, opts);
    }

    rc = dispatch_command(command, args, opts);
  } catch (const CancelledError&) {
    // A trip that surfaced as an exception past any checkpointing command
    // logic (e.g. during paths/bench).  Same documented exit code; there
    // is simply no journal to resume from.
    const CancelToken& token = global_cancel_token();
    std::printf("run cancelled (%s)%s\n",
                cancel_reason_name(token.reason()),
                token.reason() == CancelReason::Deadline
                    ? ": deadline exceeded"
                    : "");
    rc = kExitCancelled;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }
  // Reports print even after a strict-mode abort: the diagnostics trail
  // is most valuable exactly when the run did not finish.
  if (opts.metrics) {
    const std::string metrics = MetricsRegistry::global().render();
    std::printf("\nengine metrics:\n%s",
                metrics.empty() ? "  (none)\n" : metrics.c_str());
  }
  if (!opts.metrics_json_path.empty()) {
    const std::string json = MetricsRegistry::global().render_json() + "\n";
    if (opts.metrics_json_path == "-") {
      std::printf("%s", json.c_str());
    } else {
      try {
        write_text_file(opts.metrics_json_path, json);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "warning: --metrics-json write failed: %s\n",
                     e.what());
      }
    }
  }
  if (opts.diagnostics) {
    const std::string report = Diagnostics::global().render();
    std::printf("\ndiagnostics:\n%s",
                report.empty() ? "  (none)\n" : report.c_str());
  }
  return rc;
}
