#pragma once
// Timing-path reporting: the worst path through each primary output,
// ranked -- the report a sign-off engineer reads after an STA run.

#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sta/sta.hpp"

namespace sva {

/// One reported path: endpoint, arrival, and the gate chain driving it.
struct TimingPath {
  std::size_t endpoint_net = 0;
  double arrival_ps = 0.0;
  std::vector<std::size_t> gates;  ///< from inputs to the endpoint driver
};

/// Worst path per primary output, ranked by arrival (worst first), at most
/// `max_paths` entries.  Paths are re-derived from the result's arrival
/// times; `netlist` and `scale` must be the ones the result was computed
/// with.
std::vector<TimingPath> worst_paths(const Netlist& netlist, const Sta& sta,
                                    const ArcScaleProvider& scale,
                                    std::size_t max_paths);

/// Render paths in a report_timing-like text format.
std::string render_paths(const Netlist& netlist,
                         const std::vector<TimingPath>& paths,
                         const StaResult& result);

}  // namespace sva
