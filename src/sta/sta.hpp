#pragma once
// Static timing analysis over a mapped combinational netlist.
//
// Standard late-mode block-based STA: arrival times and slews propagate in
// topological order through NLDM lookups; the design delay is the worst
// arrival over primary outputs.  Corners are realized by running the same
// propagation with different ArcScaleProviders (traditional uniform
// corners, or the paper's context/classification-aware corners).
//
// Two interchangeable engines produce bit-identical results:
//
//   * run()/run_parallel() execute the compiled flat kernel (see
//     sta/compiled.hpp): the levelized graph flattened once into
//     structure-of-arrays arc records over a deduplicated NLDM table
//     arena, evaluated as a tight branch-free loop.
//   * run_scalar() interprets the netlist directly; it is the readable
//     reference implementation and the oracle the kernel is differentially
//     fuzzed against (tests/sta_test.cpp).
//
// Incremental re-analysis (run_incremental / run_what_if) propagates
// dirty gates through a level-ordered priority queue, touching O(cone)
// gates instead of scanning the full topological order per edit.

#include <memory>
#include <vector>

#include "cell/characterize.hpp"
#include "engine/thread_pool.hpp"
#include "netlist/netlist.hpp"
#include "sta/scale.hpp"

namespace sva {

class CompiledTiming;

struct StaConfig {
  double input_slew_ps = 20.0;      ///< slew at primary inputs
  double po_load_ff = 4.0;          ///< load on primary outputs
  double wire_cap_per_sink_ff = 0.4;  ///< lumped net wire cap per sink
  /// Interconnect delay added per net, per sink (ps).  Wire delay does not
  /// depend on poly CD, so it is *not* scaled by any corner -- exactly why
  /// the CD-corner spread is a fraction of total path delay in real
  /// designs (the paper's corner libraries likewise vary only the process
  /// parameters, holding everything else fixed).
  double wire_delay_per_sink_ps = 6.0;
};

struct StaResult {
  std::vector<double> arrival_ps;  ///< per net
  std::vector<double> slew_ps;     ///< per net
  double critical_delay_ps = 0.0;  ///< worst arrival over POs
  std::size_t critical_po_net = 0;
  /// Critical path as gate indices from inputs to the critical PO.
  std::vector<std::size_t> critical_path;
  /// Arrival-setting fanin net per net (kNoDriver for PIs); the
  /// backtracking state run_incremental() needs to stay exact.
  std::vector<std::size_t> from_net;
};

/// Arrival + required-time + slack view of one analysis.
struct SlackResult {
  StaResult timing;
  std::vector<double> required_ps;  ///< per net (clock at POs)
  std::vector<double> slack_ps;     ///< required - arrival, per net
  double worst_slack_ps = 0.0;
  std::size_t worst_slack_net = 0;

  bool meets_timing() const { return worst_slack_ps >= 0.0; }
};

class Sta {
 public:
  /// The netlist and characterized library must outlive the Sta object;
  /// the characterized library must be index-aligned with the netlist's
  /// cell library.  Construction compiles the flat timing program
  /// (sta.kernel.* metrics record compile time and arena stats).
  Sta(const Netlist& netlist, const CharacterizedLibrary& library,
      const StaConfig& config = {});
  ~Sta();
  Sta(Sta&&) noexcept;
  Sta& operator=(Sta&&) noexcept;

  /// Late-mode analysis with the given per-arc delay scaling, executed on
  /// the compiled flat kernel.  Bit-identical to run_scalar(scale).
  StaResult run(const ArcScaleProvider& scale) const;

  /// Reference scalar interpreter: walks the netlist gate by gate through
  /// the characterized-cell tables.  Same results as run() bit for bit;
  /// kept as the readable specification and differential-test oracle.
  StaResult run_scalar(const ArcScaleProvider& scale) const;

  /// Levelized parallel analysis on the compiled kernel: every topological
  /// level is partitioned across the pool with parallel_for.  A gate's
  /// fanins all live at strictly lower levels and each gate writes only
  /// its own output net, so the result is bit-identical to run(scale) at
  /// any thread count and under any task schedule.  Small levels run
  /// inline (task overhead would dominate).  A non-null `cancel` is
  /// polled once per level (throwing CancelledError); the per-gate inner
  /// loop stays unchecked.
  StaResult run_parallel(const ArcScaleProvider& scale, ThreadPool& pool,
                         const CancelToken* cancel = nullptr) const;

  /// Late-mode analysis plus required times and slacks against a clock
  /// period (backward min-propagation of required times through the same
  /// arc delays the forward pass used).
  SlackResult run_with_slack(const ArcScaleProvider& scale,
                             double clock_period_ps) const;

  /// Incremental re-analysis: starting from `previous` (computed with a
  /// scale that differed only at `changed_gates`), re-propagate arrivals
  /// and slews from the changed gates forward through a level-ordered
  /// priority queue, pruning fan-out cones as soon as a gate's outputs
  /// stop changing.  Exact: the result equals run(scale).  Worst case
  /// degenerates to a full pass; typical what-if edits touch a small
  /// cone, and only that cone is visited.
  StaResult run_incremental(const ArcScaleProvider& scale,
                            const StaResult& previous,
                            const std::vector<std::size_t>& changed_gates)
      const;

  /// A hypothetical master swap for candidate evaluation: analyze as if
  /// `gate` were an instance of `cell_index` (a pin-compatible
  /// drive-strength variant) without mutating the netlist.
  struct GateCellOverride {
    std::size_t gate = 0;
    std::size_t cell_index = 0;
  };

  /// Candidate-scoped what-if analysis: incremental re-propagation from
  /// `previous` as if the overridden gates had swapped masters (their own
  /// arcs change AND the pin caps they present to their fanin nets change,
  /// so the fanin drivers are re-evaluated too) and as if `scale` had
  /// additionally changed at `scale_changed_gates`.  Exact: equals a full
  /// run() on a mutated netlist.  Const and allocation-local, so any
  /// number of candidates can be evaluated concurrently against one Sta.
  StaResult run_what_if(const ArcScaleProvider& scale,
                        const StaResult& previous,
                        const std::vector<GateCellOverride>& cell_overrides,
                        const std::vector<std::size_t>& scale_changed_gates)
      const;

  /// Required times + slacks for an already-computed forward result (the
  /// backward min-propagation of run_with_slack without re-running the
  /// forward pass).  `timing` must come from this Sta with this `scale`.
  SlackResult slack_from(const ArcScaleProvider& scale, StaResult timing,
                         double clock_period_ps) const;

  /// Re-sync the cached net loads and the compiled arc records after the
  /// netlist swapped `gate`'s master in place (Netlist::set_gate_cell):
  /// the gate's fanin nets see different pin caps and the gate evaluates
  /// through different tables.  Call after every committed sizing move.
  void update_gate_master(std::size_t gate);

  /// Capacitive load seen by a net's driver (fF).
  double net_load_ff(std::size_t net) const;

  const StaConfig& config() const { return config_; }

  /// The compiled flat program (compile stats for benches/reports).
  const CompiledTiming& compiled() const { return *compiled_; }

 private:
  /// Per-candidate state of run_what_if: hypothetical cell swaps plus the
  /// net-load deltas they induce.  Indexed once at construction (sorted
  /// by gate / by net) so per-gate lookups binary-search instead of
  /// scanning every override on every evaluation.
  struct WhatIfOverlay {
    std::vector<GateCellOverride> cells;               ///< sorted by gate
    /// (net, absolute load fF): the affected fanin nets' loads recomputed
    /// from scratch with the hypothetical masters' pin caps, in the exact
    /// summation order compute_net_load uses -- so a what-if result is
    /// bit-identical to a fresh analysis of a really-mutated netlist.
    std::vector<std::pair<std::size_t, double>> load;

    /// Sort the override list by gate.  Must be called before any
    /// cell_of lookup (run_what_if recomputes loads through cell_of).
    void build_index();

    std::size_t cell_of(std::size_t gate, std::size_t base) const;
    /// The net's load under this overlay (`fallback` when unaffected).
    double net_load(std::size_t net, double fallback) const;
  };

  /// Recompute one gate's output arrival/slew/from in `result`.  The
  /// overlay, when present, substitutes hypothetical masters and loads.
  void evaluate_gate(const ArcScaleProvider& scale, std::size_t gate,
                     StaResult& result,
                     const WhatIfOverlay* overlay = nullptr) const;
  /// compute_net_load with the overlay's hypothetical masters swapped in
  /// (identical FP summation order, so hypothetical == committed bitwise).
  double compute_net_load_overlay(std::size_t net,
                                  const WhatIfOverlay& overlay) const;
  /// Shared dirty-cone propagation of run_incremental / run_what_if:
  /// level-ordered priority-queue pop/evaluate/push, O(cone) gates.
  StaResult propagate_incremental(const ArcScaleProvider& scale,
                                  const StaResult& previous,
                                  const std::vector<std::size_t>& seed_gates,
                                  const WhatIfOverlay* overlay) const;
  /// Fill critical delay / PO / path from arrivals and from_net.
  void finalize_result(StaResult& result) const;
  StaResult make_result() const;
  double compute_net_load(std::size_t net) const;

  const Netlist* netlist_;
  const CharacterizedLibrary* library_;
  StaConfig config_;
  std::vector<double> load_cache_;  ///< per net, precomputed
  /// Per net: wire_delay_per_sink_ps * sink count, precomputed with the
  /// same FP product the scalar path used to re-derive per evaluation.
  std::vector<double> wire_delay_cache_;
  /// Per library cell, its characterized arcs in input-pin order.  Kills
  /// the per-evaluation input_pins_of() string-vector allocation and the
  /// string-compare arc_for() resolution on every lookup path.
  std::vector<std::vector<const CharacterizedArc*>> cell_arcs_;
  /// Per library cell, its input-pin caps in pin order (fF).
  std::vector<std::vector<double>> cell_pin_caps_;
  /// Gates bucketed by logic level, each bucket in topological-order
  /// sequence.  Built eagerly in the constructor (which also warms the
  /// netlist's lazy topological-order cache, making concurrent const use
  /// of the netlist race-free).
  std::vector<std::vector<std::size_t>> levels_;
  std::vector<std::size_t> gate_level_;  ///< per gate, for the dirty queue
  std::vector<std::size_t> po_nets_;     ///< ascending, for finalize
  std::unique_ptr<CompiledTiming> compiled_;
  /// Cached metric handles (creation locks the registry; the what-if path
  /// is too hot to take that lock per candidate).
  class Counter* incr_touched_ = nullptr;
  class Counter* incr_total_ = nullptr;
};

}  // namespace sva
