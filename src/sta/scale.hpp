#pragma once
// Per-arc delay scaling interface.
//
// The paper's entire methodology reduces, at the timing level, to scaling
// each arc's characterized delay by L_eff / L_drawn, where L_eff depends
// on (a) the corner being analyzed and (b) the instance's placement
// context version.  The STA engine is agnostic: it consults an
// ArcScaleProvider for a multiplicative factor per (gate instance, arc).

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace sva {

class ArcScaleProvider {
 public:
  virtual ~ArcScaleProvider() = default;

  /// Multiplicative delay/slew factor for `gate`'s timing arc with index
  /// `arc_index` (index into the master's arcs()).
  virtual double scale(std::size_t gate, std::size_t arc_index) const = 0;
};

/// No scaling: the traditional nominal library (drawn gate length).
class UnitScale final : public ArcScaleProvider {
 public:
  double scale(std::size_t, std::size_t) const override { return 1.0; }
};

/// One global factor for every arc: the traditional corner libraries
/// (every device worst-cased to L_nom +- total CD variation).
class UniformScale final : public ArcScaleProvider {
 public:
  explicit UniformScale(double factor) : factor_(factor) {}
  double scale(std::size_t, std::size_t) const override { return factor_; }

 private:
  double factor_;
};

/// Explicit per-(gate, arc) factors.  Used by Monte-Carlo samples and by
/// analyses that compute factor matrices themselves.  Stored CSR-style
/// (one flat array plus per-gate offsets): scale() is on the hot path of
/// every analysis -- the kernel's gather_factors calls it once per arc --
/// and a flat lookup stays cache-resident where a vector-of-vectors
/// chases a pointer per gate.
class MatrixScale final : public ArcScaleProvider {
 public:
  explicit MatrixScale(const std::vector<std::vector<double>>& factors) {
    offsets_.reserve(factors.size() + 1);
    offsets_.push_back(0);
    for (const std::vector<double>& row : factors) {
      flat_.insert(flat_.end(), row.begin(), row.end());
      offsets_.push_back(flat_.size());
    }
  }

  double scale(std::size_t gate, std::size_t arc_index) const override {
    if (gate + 1 >= offsets_.size() ||
        arc_index >= offsets_[gate + 1] - offsets_[gate])
      throw std::out_of_range("MatrixScale: (gate, arc) out of range");
    return flat_[offsets_[gate] + arc_index];
  }

 private:
  std::vector<double> flat_;
  std::vector<std::size_t> offsets_;
};

}  // namespace sva
