#pragma once
// Per-arc delay scaling interface.
//
// The paper's entire methodology reduces, at the timing level, to scaling
// each arc's characterized delay by L_eff / L_drawn, where L_eff depends
// on (a) the corner being analyzed and (b) the instance's placement
// context version.  The STA engine is agnostic: it consults an
// ArcScaleProvider for a multiplicative factor per (gate instance, arc).

#include <cstddef>
#include <vector>

namespace sva {

class ArcScaleProvider {
 public:
  virtual ~ArcScaleProvider() = default;

  /// Multiplicative delay/slew factor for `gate`'s timing arc with index
  /// `arc_index` (index into the master's arcs()).
  virtual double scale(std::size_t gate, std::size_t arc_index) const = 0;
};

/// No scaling: the traditional nominal library (drawn gate length).
class UnitScale final : public ArcScaleProvider {
 public:
  double scale(std::size_t, std::size_t) const override { return 1.0; }
};

/// One global factor for every arc: the traditional corner libraries
/// (every device worst-cased to L_nom +- total CD variation).
class UniformScale final : public ArcScaleProvider {
 public:
  explicit UniformScale(double factor) : factor_(factor) {}
  double scale(std::size_t, std::size_t) const override { return factor_; }

 private:
  double factor_;
};

/// Explicit per-(gate, arc) factors.  Used by Monte-Carlo samples and by
/// analyses that compute factor matrices themselves.
class MatrixScale final : public ArcScaleProvider {
 public:
  explicit MatrixScale(std::vector<std::vector<double>> factors)
      : factors_(std::move(factors)) {}

  double scale(std::size_t gate, std::size_t arc_index) const override {
    return factors_.at(gate).at(arc_index);
  }

 private:
  std::vector<std::vector<double>> factors_;
};

}  // namespace sva
