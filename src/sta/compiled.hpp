#pragma once
// Data-oriented flat STA kernel: the levelized timing graph compiled once
// into structure-of-arrays arc records plus a packed, deduplicated NLDM
// table arena ("timing bytecode").
//
// The scalar path (Sta::run_scalar) interprets the netlist on every pass:
// it chases GateInst -> CharacterizedCell -> NldmTable -> LookupTable2D
// pointers and calls through four non-inlined interpolation helpers per
// table lookup.  CompiledTiming flattens everything those lookups need --
// fanin net, precomputed wire delay, arena offsets of the (shared-axis)
// delay/slew tables -- into one contiguous ArcRec per (gate, fanin pin),
// grouped per gate and per topological level.  A full-graph pass is then
// a single tight loop over flat arrays with a branch-free segment search
// and inlined bilinear interpolation.
//
// Bit-identity by construction: every delay/slew value is computed with
// exactly the FP operation sequence of LookupTable2D::at (segment index =
// upper_bound semantics; lerp over the load axis at both slew-axis grid
// lines, then lerp over the slew axis; each lerp is y0 + ((x-x0)/(x1-x0))
// * (y1-y0)), and the per-gate worst-arrival reduction visits arcs in the
// same fanin order.  tests/sta_test.cpp asserts the equivalence bitwise
// against the scalar oracle across circuits, scales, and thread counts.
//
// The arena deduplicates tables by FNV-1a content hash (equal axes and
// values verified bytewise on hash hit): symmetric arcs of one master and
// width-scaled drive variants share table content, so the arena stays a
// fraction of the naive per-arc copy.  Compile stats are published as
// sta.kernel.* metrics.

#include <cstdint>
#include <tuple>
#include <vector>

#include "sta/sta.hpp"

namespace sva {

class CompiledTiming {
 public:
  /// Packed reference to one deduplicated NLDM table pair in the arena.
  /// x is the input-slew axis, y the load axis; delay and slew values are
  /// row-major (ix * ny + iy) exactly like LookupTable2D.
  struct TableRef {
    std::uint32_t x_off = 0, y_off = 0;  ///< axis offsets into the arena
    std::uint32_t d_off = 0, s_off = 0;  ///< delay/slew value offsets
    std::uint32_t nx = 0, ny = 0;
    std::uint32_t arc_index = 0;  ///< index into the master's arcs()
  };

  /// One flat timing-arc record: everything the inner loop needs, plus
  /// the (gate, arc_index) pair the per-run factor gather feeds to the
  /// ArcScaleProvider.
  struct ArcRec {
    std::uint32_t in_net = 0;
    std::uint32_t gate = 0;       ///< netlist gate index (factor gather)
    std::uint32_t arc_index = 0;  ///< master arc index (factor gather)
    std::uint32_t x_off = 0, y_off = 0, d_off = 0, s_off = 0;
    std::uint32_t nx = 0, ny = 0;
    double wire_delay = 0.0;  ///< precomputed per-sink wire delay (ps)
  };

  /// One gate: a contiguous arc span plus the output net it writes.
  struct GateRec {
    std::uint32_t first_arc = 0;
    std::uint32_t arc_count = 0;
    std::uint32_t out_net = 0;
  };

  /// Contiguous [begin, end) gate-record range of one topological level.
  struct LevelSpan {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
  };

  /// Compile the program.  `levels` is the level-bucketed topological
  /// order the Sta constructor builds; gate records are laid out in that
  /// order so a level is always a contiguous span.
  CompiledTiming(const Netlist& netlist, const CharacterizedLibrary& library,
                 const StaConfig& config,
                 const std::vector<std::vector<std::size_t>>& levels);

  /// Bind the per-net loads the kernel will evaluate against: for each
  /// net, the load-axis segment and interpolation parameter are resolved
  /// once here instead of once per arc per run (loads only change on
  /// committed master swaps).  Must be called before evaluate_span and
  /// re-called (or update_net_load'ed) whenever a bound load changes.
  void bind_loads(const double* loads, std::size_t count);
  void update_net_load(std::size_t net, double load);

  /// Resolve the per-arc scale factors for one run (one virtual call per
  /// arc, the same count the scalar path pays).  Throws InvariantError on
  /// a non-positive factor, like the scalar path.
  void gather_factors(const ArcScaleProvider& scale,
                      std::vector<double>& out) const;

  /// Evaluate gate records [first, last): for each gate, the worst
  /// arrival/slew/fanin over its arcs, written to result's arrays.  All
  /// fanins of a gate live at strictly lower levels and each gate writes
  /// only its own output net, so disjoint ranges of one level may be
  /// evaluated concurrently.
  void evaluate_span(std::size_t first, std::size_t last,
                     const double* factors, const double* loads,
                     StaResult& result) const;

  /// Re-point one gate's arc records at another master's tables after an
  /// in-place pin-compatible swap (Netlist::set_gate_cell).
  void refresh_gate(std::size_t gate, std::size_t cell_index);

  const std::vector<LevelSpan>& level_spans() const { return level_spans_; }
  std::size_t gate_count() const { return gates_.size(); }
  std::size_t arc_count() const { return arcs_.size(); }

  /// Compile stats (also published as sta.kernel.* metrics).
  std::size_t tables_total() const { return tables_total_; }
  std::size_t tables_unique() const { return tables_unique_; }
  std::size_t arena_bytes() const { return arena_.size() * sizeof(double); }

 private:
  TableRef intern_table(const NldmTable& nldm, std::uint32_t arc_index);
  std::uint32_t intern_axis(const std::vector<double>& axis);
  void evaluate_span_generic(std::size_t first, std::size_t last,
                             const double* factors, const double* loads,
                             StaResult& result) const;

  std::vector<double> arena_;    ///< packed axes + values, deduplicated
  std::vector<ArcRec> arcs_;     ///< grouped per gate, gates level-major
  std::vector<GateRec> gates_;   ///< level-major topological order
  std::vector<LevelSpan> level_spans_;
  std::vector<std::uint32_t> gate_rec_of_;  ///< netlist gate -> GateRec
  /// Per library cell, the interned tables of its arcs in input-pin
  /// order; refresh_gate copies from here on master swaps.
  std::vector<std::vector<TableRef>> cell_tables_;
  /// content hash -> indices into unique_tables_ (collision chain).
  std::vector<std::pair<std::uint64_t, TableRef>> unique_tables_;
  /// (content hash, arena offset, length) of each interned axis.  Axes
  /// are deduplicated independently of values: every characterized table
  /// uses the same slew/load axes, so after interning the whole library
  /// shares ONE x-axis and ONE y-axis copy -- which is what lets the
  /// kernel hoist the load-axis segment search out of the arc loop.
  std::vector<std::tuple<std::uint64_t, std::uint32_t, std::uint32_t>>
      unique_axes_;
  std::size_t tables_total_ = 0;
  std::size_t tables_unique_ = 0;
  /// True when every arc shares one (x_off, y_off, nx, ny): the fast
  /// evaluate_span path then uses the bound per-net load interpolants.
  bool uniform_axes_ = false;
  std::uint32_t x_off_ = 0, y_off_ = 0, nx_ = 0, ny_ = 0;
  /// Per net: load-axis segment index and interpolation parameter
  /// (load - y0) / (y1 - y0), resolved by bind_loads.  The parameter is
  /// the exact double interp::lerp would derive, so reusing it across
  /// every arc of the run preserves bit-identity.
  std::vector<std::uint32_t> load_seg_;
  std::vector<double> load_t_;
};

}  // namespace sva
