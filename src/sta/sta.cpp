#include "sta/sta.hpp"

#include <algorithm>

#include "engine/metrics.hpp"
#include "util/error.hpp"

namespace sva {

Sta::Sta(const Netlist& netlist, const CharacterizedLibrary& library,
         const StaConfig& config)
    : netlist_(&netlist), library_(&library), config_(config) {
  SVA_REQUIRE(library.cells.size() == netlist.library().size());
  SVA_REQUIRE(config.input_slew_ps > 0.0);
  SVA_REQUIRE(config.po_load_ff >= 0.0);
  SVA_REQUIRE(config.wire_cap_per_sink_ff >= 0.0);

  // Precompute net loads: sink pin caps + wire + PO load.
  load_cache_.assign(netlist.nets().size(), 0.0);
  for (std::size_t ni = 0; ni < netlist.nets().size(); ++ni)
    load_cache_[ni] = compute_net_load(ni);

  // Bucket gates by logic level for the parallel path.  Also freezes the
  // netlist's topological-order cache up front.
  const std::vector<std::size_t> level = netlist.gate_levels();
  std::size_t max_level = 0;
  for (std::size_t gi : netlist.topological_order())
    max_level = std::max(max_level, level[gi]);
  levels_.resize(netlist.gates().empty() ? 0 : max_level + 1);
  for (std::size_t gi : netlist.topological_order())
    levels_[level[gi]].push_back(gi);
}

double Sta::compute_net_load(std::size_t net_index) const {
  const Netlist& nl = *netlist_;
  const Net& net = nl.nets()[net_index];
  double load =
      config_.wire_cap_per_sink_ff * static_cast<double>(net.sinks.size());
  for (const NetSink& sink : net.sinks) {
    const GateInst& g = nl.gates()[sink.gate];
    const CharacterizedCell& cell = library_->cells[g.cell_index];
    const auto pins = nl.input_pins_of(g.cell_index);
    SVA_ASSERT(sink.pin_index < pins.size());
    load += cell.master.pin(pins[sink.pin_index]).input_cap_ff;
  }
  if (net.is_primary_output) load += config_.po_load_ff;
  return load;
}

double Sta::net_load_ff(std::size_t net) const {
  SVA_REQUIRE(net < load_cache_.size());
  return load_cache_[net];
}

void Sta::update_gate_master(std::size_t gate) {
  SVA_REQUIRE(gate < netlist_->gates().size());
  for (std::size_t net : netlist_->gates()[gate].fanin_nets)
    load_cache_[net] = compute_net_load(net);
}

std::size_t Sta::WhatIfOverlay::cell_of(std::size_t gate,
                                        std::size_t base) const {
  for (const GateCellOverride& o : cells)
    if (o.gate == gate) return o.cell_index;
  return base;
}

double Sta::WhatIfOverlay::load_delta(std::size_t net) const {
  double delta = 0.0;
  for (const auto& [n, d] : load)
    if (n == net) delta += d;
  return delta;
}

void Sta::evaluate_gate(const ArcScaleProvider& scale, std::size_t gi,
                        StaResult& result,
                        const WhatIfOverlay* overlay) const {
  const Netlist& nl = *netlist_;
  const GateInst& gate = nl.gates()[gi];
  const std::size_t cell_index =
      overlay != nullptr ? overlay->cell_of(gi, gate.cell_index)
                         : gate.cell_index;
  const CharacterizedCell& cell = library_->cells[cell_index];
  double load = load_cache_[gate.output_net];
  if (overlay != nullptr) load += overlay->load_delta(gate.output_net);
  const auto pins = nl.input_pins_of(cell_index);

  double worst_arrival = -1.0;
  double worst_slew = 0.0;
  std::size_t worst_from = kNoDriver;
  for (std::size_t pi = 0; pi < gate.fanin_nets.size(); ++pi) {
    const std::size_t in_net = gate.fanin_nets[pi];
    const CharacterizedArc& arc = cell.arc_for(pins[pi]);
    const double factor = scale.scale(gi, arc.arc_index);
    SVA_ASSERT_MSG(factor > 0.0, "arc scale must be positive");
    const double in_slew = result.slew_ps[in_net];
    const double wire_delay =
        config_.wire_delay_per_sink_ps *
        static_cast<double>(nl.nets()[in_net].sinks.size());
    const double arrival = result.arrival_ps[in_net] + wire_delay +
                           factor * arc.nldm.delay_ps(in_slew, load);
    if (arrival > worst_arrival) {
      worst_arrival = arrival;
      worst_slew = factor * arc.nldm.output_slew_ps(in_slew, load);
      worst_from = in_net;
    }
  }
  result.arrival_ps[gate.output_net] = worst_arrival;
  result.slew_ps[gate.output_net] = worst_slew;
  result.from_net[gate.output_net] = worst_from;
}

void Sta::finalize_result(StaResult& result) const {
  const Netlist& nl = *netlist_;
  result.critical_delay_ps = 0.0;
  result.critical_path.clear();
  bool found_po = false;
  for (std::size_t ni = 0; ni < nl.nets().size(); ++ni) {
    if (!nl.nets()[ni].is_primary_output) continue;
    found_po = true;
    if (result.arrival_ps[ni] >= result.critical_delay_ps) {
      result.critical_delay_ps = result.arrival_ps[ni];
      result.critical_po_net = ni;
    }
  }
  SVA_REQUIRE_MSG(found_po, "netlist has no primary outputs");

  std::size_t net = result.critical_po_net;
  while (net != kNoDriver && !nl.nets()[net].is_primary_input()) {
    const std::size_t gi = nl.nets()[net].driver_gate;
    result.critical_path.push_back(gi);
    net = result.from_net[net];
  }
  std::reverse(result.critical_path.begin(), result.critical_path.end());
}

StaResult Sta::run(const ArcScaleProvider& scale) const {
  const Netlist& nl = *netlist_;
  StaResult result;
  result.arrival_ps.assign(nl.nets().size(), 0.0);
  result.slew_ps.assign(nl.nets().size(), config_.input_slew_ps);
  result.from_net.assign(nl.nets().size(), kNoDriver);

  for (std::size_t gi : nl.topological_order())
    evaluate_gate(scale, gi, result);
  finalize_result(result);
  return result;
}

StaResult Sta::run_parallel(const ArcScaleProvider& scale, ThreadPool& pool,
                            const CancelToken* cancel) const {
  ScopedTimer timer(MetricsRegistry::global().timer("sta.parallel_run"));
  const Netlist& nl = *netlist_;
  StaResult result;
  result.arrival_ps.assign(nl.nets().size(), 0.0);
  result.slew_ps.assign(nl.nets().size(), config_.input_slew_ps);
  result.from_net.assign(nl.nets().size(), kNoDriver);

  // A gate evaluation is a handful of NLDM lookups (~1 us); chunks well
  // below kGrain gates are pure fork/join overhead, so narrow levels run
  // inline and wide ones split into kGrain-gate tasks.
  constexpr std::size_t kGrain = 64;
  for (const std::vector<std::size_t>& level : levels_) {
    if (cancel) cancel->check();  // level granularity: ~100s of gates
    if (pool.thread_count() == 0 || level.size() < 2 * kGrain) {
      for (std::size_t gi : level) evaluate_gate(scale, gi, result);
      continue;
    }
    pool.parallel_for(
        0, level.size(),
        [&](std::size_t i) { evaluate_gate(scale, level[i], result); },
        kGrain);
  }
  finalize_result(result);
  return result;
}

StaResult Sta::propagate_incremental(
    const ArcScaleProvider& scale, const StaResult& previous,
    const std::vector<std::size_t>& seed_gates,
    const WhatIfOverlay* overlay) const {
  const Netlist& nl = *netlist_;
  SVA_REQUIRE(previous.arrival_ps.size() == nl.nets().size());
  SVA_REQUIRE(previous.from_net.size() == nl.nets().size());

  StaResult result = previous;
  std::vector<char> dirty(nl.gates().size(), 0);
  for (std::size_t gi : seed_gates) {
    SVA_REQUIRE(gi < nl.gates().size());
    dirty[gi] = 1;
  }

  for (std::size_t gi : nl.topological_order()) {
    if (!dirty[gi]) continue;
    const std::size_t out = nl.gates()[gi].output_net;
    const double old_arrival = result.arrival_ps[out];
    const double old_slew = result.slew_ps[out];
    evaluate_gate(scale, gi, result, overlay);
    if (result.arrival_ps[out] == old_arrival &&
        result.slew_ps[out] == old_slew)
      continue;  // cone converged: fanout unaffected
    for (const NetSink& sink : nl.nets()[out].sinks) dirty[sink.gate] = 1;
  }
  finalize_result(result);
  return result;
}

StaResult Sta::run_incremental(
    const ArcScaleProvider& scale, const StaResult& previous,
    const std::vector<std::size_t>& changed_gates) const {
  return propagate_incremental(scale, previous, changed_gates, nullptr);
}

StaResult Sta::run_what_if(
    const ArcScaleProvider& scale, const StaResult& previous,
    const std::vector<GateCellOverride>& cell_overrides,
    const std::vector<std::size_t>& scale_changed_gates) const {
  const Netlist& nl = *netlist_;

  WhatIfOverlay overlay;
  overlay.cells = cell_overrides;
  std::vector<std::size_t> seeds = scale_changed_gates;
  for (const GateCellOverride& o : cell_overrides) {
    SVA_REQUIRE(o.gate < nl.gates().size());
    SVA_REQUIRE(o.cell_index < library_->cells.size());
    const GateInst& gate = nl.gates()[o.gate];
    const CellMaster& old_master = library_->cells[gate.cell_index].master;
    const CellMaster& new_master = library_->cells[o.cell_index].master;
    seeds.push_back(o.gate);
    // The swap changes the pin caps this gate presents to its fanin nets:
    // those nets' drivers see a different load, so they re-evaluate too.
    const auto pins = nl.input_pins_of(gate.cell_index);
    for (std::size_t pi = 0; pi < gate.fanin_nets.size(); ++pi) {
      const std::size_t net = gate.fanin_nets[pi];
      const double delta = new_master.pin(pins[pi]).input_cap_ff -
                           old_master.pin(pins[pi]).input_cap_ff;
      if (delta == 0.0) continue;
      overlay.load.emplace_back(net, delta);
      if (!nl.nets()[net].is_primary_input())
        seeds.push_back(nl.nets()[net].driver_gate);
    }
  }
  return propagate_incremental(scale, previous, seeds, &overlay);
}

SlackResult Sta::run_with_slack(const ArcScaleProvider& scale,
                                double clock_period_ps) const {
  return slack_from(scale, run(scale), clock_period_ps);
}

SlackResult Sta::slack_from(const ArcScaleProvider& scale, StaResult timing,
                            double clock_period_ps) const {
  SVA_REQUIRE(clock_period_ps > 0.0);
  const Netlist& nl = *netlist_;
  SVA_REQUIRE(timing.arrival_ps.size() == nl.nets().size());
  SlackResult out;
  out.timing = std::move(timing);

  constexpr double kInf = 1e18;
  out.required_ps.assign(nl.nets().size(), kInf);
  for (std::size_t ni = 0; ni < nl.nets().size(); ++ni)
    if (nl.nets()[ni].is_primary_output)
      out.required_ps[ni] = clock_period_ps;

  // Backward pass in reverse topological order, re-deriving each arc's
  // delay from the forward pass's slews.
  const auto& topo = nl.topological_order();
  for (std::size_t idx = topo.size(); idx-- > 0;) {
    const std::size_t gi = topo[idx];
    const GateInst& gate = nl.gates()[gi];
    const double out_required = out.required_ps[gate.output_net];
    if (out_required >= kInf) continue;  // drives nothing timed
    const CharacterizedCell& cell = library_->cells[gate.cell_index];
    const double load = load_cache_[gate.output_net];
    const auto pins = nl.input_pins_of(gate.cell_index);
    for (std::size_t pi = 0; pi < gate.fanin_nets.size(); ++pi) {
      const std::size_t in_net = gate.fanin_nets[pi];
      const CharacterizedArc& arc = cell.arc_for(pins[pi]);
      const double factor = scale.scale(gi, arc.arc_index);
      const double wire_delay =
          config_.wire_delay_per_sink_ps *
          static_cast<double>(nl.nets()[in_net].sinks.size());
      const double delay =
          wire_delay +
          factor * arc.nldm.delay_ps(out.timing.slew_ps[in_net], load);
      out.required_ps[in_net] =
          std::min(out.required_ps[in_net], out_required - delay);
    }
  }

  out.slack_ps.assign(nl.nets().size(), kInf);
  out.worst_slack_ps = kInf;
  for (std::size_t ni = 0; ni < nl.nets().size(); ++ni) {
    if (out.required_ps[ni] >= kInf) continue;  // untimed net
    out.slack_ps[ni] = out.required_ps[ni] - out.timing.arrival_ps[ni];
    if (out.slack_ps[ni] < out.worst_slack_ps) {
      out.worst_slack_ps = out.slack_ps[ni];
      out.worst_slack_net = ni;
    }
  }
  SVA_ASSERT_MSG(out.worst_slack_ps < kInf, "no timed nets found");
  return out;
}

}  // namespace sva
