#include "sta/sta.hpp"

#include <algorithm>
#include <queue>
#include <utility>

#include "engine/metrics.hpp"
#include "sta/compiled.hpp"
#include "util/error.hpp"

namespace sva {

Sta::Sta(const Netlist& netlist, const CharacterizedLibrary& library,
         const StaConfig& config)
    : netlist_(&netlist), library_(&library), config_(config) {
  SVA_REQUIRE(library.cells.size() == netlist.library().size());
  SVA_REQUIRE(config.input_slew_ps > 0.0);
  SVA_REQUIRE(config.po_load_ff >= 0.0);
  SVA_REQUIRE(config.wire_cap_per_sink_ff >= 0.0);

  // Resolve every library cell's arcs and pin caps by input-pin position
  // once, so no evaluation path ever allocates pin-name vectors or
  // resolves arcs by string compare again.
  cell_arcs_.resize(library.cells.size());
  cell_pin_caps_.resize(library.cells.size());
  for (std::size_t ci = 0; ci < library.cells.size(); ++ci) {
    const CharacterizedCell& cell = library.cells[ci];
    for (const Pin& pin : cell.master.pins()) {
      if (pin.is_output) continue;
      cell_arcs_[ci].push_back(&cell.arc_for(pin.name));
      cell_pin_caps_[ci].push_back(pin.input_cap_ff);
    }
  }

  // Precompute net loads (sink pin caps + wire + PO load) and per-net
  // wire delays.
  load_cache_.assign(netlist.nets().size(), 0.0);
  wire_delay_cache_.assign(netlist.nets().size(), 0.0);
  for (std::size_t ni = 0; ni < netlist.nets().size(); ++ni) {
    load_cache_[ni] = compute_net_load(ni);
    wire_delay_cache_[ni] =
        config_.wire_delay_per_sink_ps *
        static_cast<double>(netlist.nets()[ni].sinks.size());
    if (netlist.nets()[ni].is_primary_output) po_nets_.push_back(ni);
  }

  // Bucket gates by logic level for the levelized kernel and the dirty
  // queue.  Also freezes the netlist's topological-order cache up front.
  gate_level_ = netlist.gate_levels();
  std::size_t max_level = 0;
  for (std::size_t gi : netlist.topological_order())
    max_level = std::max(max_level, gate_level_[gi]);
  levels_.resize(netlist.gates().empty() ? 0 : max_level + 1);
  for (std::size_t gi : netlist.topological_order())
    levels_[gate_level_[gi]].push_back(gi);

  compiled_ =
      std::make_unique<CompiledTiming>(netlist, library, config_, levels_);
  compiled_->bind_loads(load_cache_.data(), load_cache_.size());

  MetricsRegistry& metrics = MetricsRegistry::global();
  incr_touched_ = &metrics.counter("sta.kernel.incremental_gates_touched");
  incr_total_ = &metrics.counter("sta.kernel.incremental_gates_total");
}

Sta::~Sta() = default;
Sta::Sta(Sta&&) noexcept = default;
Sta& Sta::operator=(Sta&&) noexcept = default;

double Sta::compute_net_load(std::size_t net_index) const {
  const Netlist& nl = *netlist_;
  const Net& net = nl.nets()[net_index];
  double load =
      config_.wire_cap_per_sink_ff * static_cast<double>(net.sinks.size());
  for (const NetSink& sink : net.sinks) {
    const GateInst& g = nl.gates()[sink.gate];
    const std::vector<double>& caps = cell_pin_caps_[g.cell_index];
    SVA_ASSERT(sink.pin_index < caps.size());
    load += caps[sink.pin_index];
  }
  if (net.is_primary_output) load += config_.po_load_ff;
  return load;
}

double Sta::net_load_ff(std::size_t net) const {
  SVA_REQUIRE(net < load_cache_.size());
  return load_cache_[net];
}

void Sta::update_gate_master(std::size_t gate) {
  SVA_REQUIRE(gate < netlist_->gates().size());
  for (std::size_t net : netlist_->gates()[gate].fanin_nets) {
    load_cache_[net] = compute_net_load(net);
    compiled_->update_net_load(net, load_cache_[net]);
  }
  compiled_->refresh_gate(gate, netlist_->gates()[gate].cell_index);
}

void Sta::WhatIfOverlay::build_index() {
  // stable_sort keeps insertion order among equal keys, so cell_of
  // returns the first-inserted override for a gate.
  std::stable_sort(cells.begin(), cells.end(),
                   [](const GateCellOverride& a, const GateCellOverride& b) {
                     return a.gate < b.gate;
                   });
}

std::size_t Sta::WhatIfOverlay::cell_of(std::size_t gate,
                                        std::size_t base) const {
  const auto it = std::lower_bound(
      cells.begin(), cells.end(), gate,
      [](const GateCellOverride& o, std::size_t g) { return o.gate < g; });
  if (it != cells.end() && it->gate == gate) return it->cell_index;
  return base;
}

double Sta::WhatIfOverlay::net_load(std::size_t net, double fallback) const {
  const auto it = std::lower_bound(
      load.begin(), load.end(), net,
      [](const std::pair<std::size_t, double>& e, std::size_t n) {
        return e.first < n;
      });
  if (it != load.end() && it->first == net) return it->second;
  return fallback;
}

double Sta::compute_net_load_overlay(std::size_t net_index,
                                     const WhatIfOverlay& overlay) const {
  const Netlist& nl = *netlist_;
  const Net& net = nl.nets()[net_index];
  double load =
      config_.wire_cap_per_sink_ff * static_cast<double>(net.sinks.size());
  for (const NetSink& sink : net.sinks) {
    const std::size_t cell_index =
        overlay.cell_of(sink.gate, nl.gates()[sink.gate].cell_index);
    load += cell_pin_caps_[cell_index][sink.pin_index];
  }
  if (net.is_primary_output) load += config_.po_load_ff;
  return load;
}

void Sta::evaluate_gate(const ArcScaleProvider& scale, std::size_t gi,
                        StaResult& result,
                        const WhatIfOverlay* overlay) const {
  const Netlist& nl = *netlist_;
  const GateInst& gate = nl.gates()[gi];
  const std::size_t cell_index =
      overlay != nullptr ? overlay->cell_of(gi, gate.cell_index)
                         : gate.cell_index;
  const std::vector<const CharacterizedArc*>& arcs = cell_arcs_[cell_index];
  double load = load_cache_[gate.output_net];
  if (overlay != nullptr)
    load = overlay->net_load(gate.output_net, load);

  double worst_arrival = -1.0;
  double worst_slew = 0.0;
  std::size_t worst_from = kNoDriver;
  for (std::size_t pi = 0; pi < gate.fanin_nets.size(); ++pi) {
    const std::size_t in_net = gate.fanin_nets[pi];
    const CharacterizedArc& arc = *arcs[pi];
    const double factor = scale.scale(gi, arc.arc_index);
    SVA_ASSERT_MSG(factor > 0.0, "arc scale must be positive");
    const double in_slew = result.slew_ps[in_net];
    const double wire_delay = wire_delay_cache_[in_net];
    const double arrival = result.arrival_ps[in_net] + wire_delay +
                           factor * arc.nldm.delay_ps(in_slew, load);
    if (arrival > worst_arrival) {
      worst_arrival = arrival;
      worst_slew = factor * arc.nldm.output_slew_ps(in_slew, load);
      worst_from = in_net;
    }
  }
  result.arrival_ps[gate.output_net] = worst_arrival;
  result.slew_ps[gate.output_net] = worst_slew;
  result.from_net[gate.output_net] = worst_from;
}

void Sta::finalize_result(StaResult& result) const {
  const Netlist& nl = *netlist_;
  result.critical_delay_ps = 0.0;
  result.critical_path.clear();
  SVA_REQUIRE_MSG(!po_nets_.empty(), "netlist has no primary outputs");
  for (std::size_t ni : po_nets_) {
    if (result.arrival_ps[ni] >= result.critical_delay_ps) {
      result.critical_delay_ps = result.arrival_ps[ni];
      result.critical_po_net = ni;
    }
  }

  std::size_t net = result.critical_po_net;
  while (net != kNoDriver && !nl.nets()[net].is_primary_input()) {
    const std::size_t gi = nl.nets()[net].driver_gate;
    result.critical_path.push_back(gi);
    net = result.from_net[net];
  }
  std::reverse(result.critical_path.begin(), result.critical_path.end());
}

StaResult Sta::make_result() const {
  const Netlist& nl = *netlist_;
  StaResult result;
  result.arrival_ps.assign(nl.nets().size(), 0.0);
  result.slew_ps.assign(nl.nets().size(), config_.input_slew_ps);
  result.from_net.assign(nl.nets().size(), kNoDriver);
  return result;
}

StaResult Sta::run(const ArcScaleProvider& scale) const {
  StaResult result = make_result();
  std::vector<double> factors;
  compiled_->gather_factors(scale, factors);
  // Serial full pass: levels are laid out back to back, so the whole
  // graph is one contiguous gate-record span.
  compiled_->evaluate_span(0, compiled_->gate_count(), factors.data(),
                           load_cache_.data(), result);
  finalize_result(result);
  return result;
}

StaResult Sta::run_scalar(const ArcScaleProvider& scale) const {
  const Netlist& nl = *netlist_;
  StaResult result = make_result();
  for (std::size_t gi : nl.topological_order())
    evaluate_gate(scale, gi, result);
  finalize_result(result);
  return result;
}

StaResult Sta::run_parallel(const ArcScaleProvider& scale, ThreadPool& pool,
                            const CancelToken* cancel) const {
  ScopedTimer timer(MetricsRegistry::global().timer("sta.parallel_run"));
  StaResult result = make_result();
  std::vector<double> factors;
  compiled_->gather_factors(scale, factors);

  // A gate evaluation is a handful of NLDM lookups; chunks well below
  // kGrain gates are pure fork/join overhead, so narrow levels run
  // inline and wide ones split into kGrain-gate tasks.
  constexpr std::size_t kGrain = 64;
  for (const CompiledTiming::LevelSpan& span : compiled_->level_spans()) {
    if (cancel) cancel->check();  // level granularity: ~100s of gates
    const std::size_t width = span.end - span.begin;
    if (pool.thread_count() == 0 || width < 2 * kGrain) {
      compiled_->evaluate_span(span.begin, span.end, factors.data(),
                               load_cache_.data(), result);
      continue;
    }
    pool.parallel_for(
        span.begin, span.end,
        [&](std::size_t g) {
          compiled_->evaluate_span(g, g + 1, factors.data(),
                                   load_cache_.data(), result);
        },
        kGrain);
  }
  finalize_result(result);
  return result;
}

StaResult Sta::propagate_incremental(
    const ArcScaleProvider& scale, const StaResult& previous,
    const std::vector<std::size_t>& seed_gates,
    const WhatIfOverlay* overlay) const {
  const Netlist& nl = *netlist_;
  SVA_REQUIRE(previous.arrival_ps.size() == nl.nets().size());
  SVA_REQUIRE(previous.from_net.size() == nl.nets().size());

  StaResult result = previous;
  std::vector<char> dirty(nl.gates().size(), 0);

  // Level-ordered dirty queue: pop the lowest-level dirty gate, re-
  // evaluate, push changed fanout.  Every push targets a strictly higher
  // level than the gate that caused it (a sink of its output net), so by
  // the time a gate pops, all dirty gates that could affect its fanins
  // have been processed -- the same dataflow order as a full topological
  // scan, without visiting the O(V) clean gates.
  using Item = std::pair<std::uint32_t, std::uint32_t>;  // (level, gate)
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> queue;
  const auto mark = [&](std::size_t gi) {
    if (dirty[gi]) return;
    dirty[gi] = 1;
    queue.emplace(static_cast<std::uint32_t>(gate_level_[gi]),
                  static_cast<std::uint32_t>(gi));
  };
  for (std::size_t gi : seed_gates) {
    SVA_REQUIRE(gi < nl.gates().size());
    mark(gi);
  }

  std::size_t touched = 0;
  while (!queue.empty()) {
    const std::size_t gi = queue.top().second;
    queue.pop();
    ++touched;
    const std::size_t out = nl.gates()[gi].output_net;
    const double old_arrival = result.arrival_ps[out];
    const double old_slew = result.slew_ps[out];
    evaluate_gate(scale, gi, result, overlay);
    if (result.arrival_ps[out] == old_arrival &&
        result.slew_ps[out] == old_slew)
      continue;  // cone converged: fanout unaffected
    for (const NetSink& sink : nl.nets()[out].sinks) mark(sink.gate);
  }
  incr_touched_->add(touched);
  incr_total_->add(nl.gates().size());
  finalize_result(result);
  return result;
}

StaResult Sta::run_incremental(
    const ArcScaleProvider& scale, const StaResult& previous,
    const std::vector<std::size_t>& changed_gates) const {
  return propagate_incremental(scale, previous, changed_gates, nullptr);
}

StaResult Sta::run_what_if(
    const ArcScaleProvider& scale, const StaResult& previous,
    const std::vector<GateCellOverride>& cell_overrides,
    const std::vector<std::size_t>& scale_changed_gates) const {
  const Netlist& nl = *netlist_;

  WhatIfOverlay overlay;
  overlay.cells = cell_overrides;
  overlay.build_index();

  std::vector<std::size_t> seeds = scale_changed_gates;
  std::vector<std::size_t> affected_nets;
  for (const GateCellOverride& o : cell_overrides) {
    SVA_REQUIRE(o.gate < nl.gates().size());
    SVA_REQUIRE(o.cell_index < library_->cells.size());
    const GateInst& gate = nl.gates()[o.gate];
    SVA_REQUIRE_MSG(cell_pin_caps_[o.cell_index].size() ==
                        cell_pin_caps_[gate.cell_index].size(),
                    "override master must be pin-compatible");
    seeds.push_back(o.gate);
    // The swap changes the pin caps this gate presents to its fanin
    // nets: those nets' drivers see a different load.
    affected_nets.insert(affected_nets.end(), gate.fanin_nets.begin(),
                         gate.fanin_nets.end());
  }
  std::sort(affected_nets.begin(), affected_nets.end());
  affected_nets.erase(
      std::unique(affected_nets.begin(), affected_nets.end()),
      affected_nets.end());
  for (std::size_t net : affected_nets) {
    // Recompute the load from scratch under the overlay rather than
    // patching the cache with a delta: the fresh summation is the exact
    // double a committed set_gate_cell would produce.
    const double load = compute_net_load_overlay(net, overlay);
    if (load == load_cache_[net]) continue;  // e.g. same-cap variant
    overlay.load.emplace_back(net, load);
    if (!nl.nets()[net].is_primary_input())
      seeds.push_back(nl.nets()[net].driver_gate);
  }
  return propagate_incremental(scale, previous, seeds, &overlay);
}

SlackResult Sta::run_with_slack(const ArcScaleProvider& scale,
                                double clock_period_ps) const {
  return slack_from(scale, run(scale), clock_period_ps);
}

SlackResult Sta::slack_from(const ArcScaleProvider& scale, StaResult timing,
                            double clock_period_ps) const {
  SVA_REQUIRE(clock_period_ps > 0.0);
  const Netlist& nl = *netlist_;
  SVA_REQUIRE(timing.arrival_ps.size() == nl.nets().size());
  SlackResult out;
  out.timing = std::move(timing);

  constexpr double kInf = 1e18;
  out.required_ps.assign(nl.nets().size(), kInf);
  for (std::size_t ni = 0; ni < nl.nets().size(); ++ni)
    if (nl.nets()[ni].is_primary_output)
      out.required_ps[ni] = clock_period_ps;

  // Backward pass in reverse topological order, re-deriving each arc's
  // delay from the forward pass's slews.
  const auto& topo = nl.topological_order();
  for (std::size_t idx = topo.size(); idx-- > 0;) {
    const std::size_t gi = topo[idx];
    const GateInst& gate = nl.gates()[gi];
    const double out_required = out.required_ps[gate.output_net];
    if (out_required >= kInf) continue;  // drives nothing timed
    const std::vector<const CharacterizedArc*>& arcs =
        cell_arcs_[gate.cell_index];
    const double load = load_cache_[gate.output_net];
    for (std::size_t pi = 0; pi < gate.fanin_nets.size(); ++pi) {
      const std::size_t in_net = gate.fanin_nets[pi];
      const CharacterizedArc& arc = *arcs[pi];
      const double factor = scale.scale(gi, arc.arc_index);
      const double wire_delay = wire_delay_cache_[in_net];
      const double delay =
          wire_delay +
          factor * arc.nldm.delay_ps(out.timing.slew_ps[in_net], load);
      out.required_ps[in_net] =
          std::min(out.required_ps[in_net], out_required - delay);
    }
  }

  out.slack_ps.assign(nl.nets().size(), kInf);
  out.worst_slack_ps = kInf;
  for (std::size_t ni = 0; ni < nl.nets().size(); ++ni) {
    if (out.required_ps[ni] >= kInf) continue;  // untimed net
    out.slack_ps[ni] = out.required_ps[ni] - out.timing.arrival_ps[ni];
    if (out.slack_ps[ni] < out.worst_slack_ps) {
      out.worst_slack_ps = out.slack_ps[ni];
      out.worst_slack_net = ni;
    }
  }
  SVA_ASSERT_MSG(out.worst_slack_ps < kInf, "no timed nets found");
  return out;
}

}  // namespace sva
