#include "sta/path_report.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace sva {
namespace {

/// Backtrack the worst chain into `endpoint` using arrival times: at each
/// gate pick the fanin whose arrival is largest (the arrival-setting input
/// under the max operator, up to slew-induced ties which we break by
/// arrival).
std::vector<std::size_t> backtrack(const Netlist& netlist,
                                   const StaResult& result,
                                   std::size_t endpoint_net) {
  std::vector<std::size_t> gates;
  std::size_t net = endpoint_net;
  while (!netlist.nets()[net].is_primary_input()) {
    const std::size_t gi = netlist.nets()[net].driver_gate;
    gates.push_back(gi);
    const GateInst& gate = netlist.gates()[gi];
    std::size_t best = gate.fanin_nets[0];
    for (std::size_t fanin : gate.fanin_nets)
      if (result.arrival_ps[fanin] > result.arrival_ps[best]) best = fanin;
    net = best;
  }
  std::reverse(gates.begin(), gates.end());
  return gates;
}

}  // namespace

std::vector<TimingPath> worst_paths(const Netlist& netlist, const Sta& sta,
                                    const ArcScaleProvider& scale,
                                    std::size_t max_paths) {
  SVA_REQUIRE(max_paths > 0);
  const StaResult result = sta.run(scale);

  std::vector<TimingPath> paths;
  for (std::size_t ni = 0; ni < netlist.nets().size(); ++ni) {
    if (!netlist.nets()[ni].is_primary_output) continue;
    TimingPath path;
    path.endpoint_net = ni;
    path.arrival_ps = result.arrival_ps[ni];
    path.gates = backtrack(netlist, result, ni);
    paths.push_back(std::move(path));
  }
  std::sort(paths.begin(), paths.end(),
            [](const TimingPath& a, const TimingPath& b) {
              return a.arrival_ps > b.arrival_ps;
            });
  if (paths.size() > max_paths) paths.resize(max_paths);
  return paths;
}

std::string render_paths(const Netlist& netlist,
                         const std::vector<TimingPath>& paths,
                         const StaResult& result) {
  std::string out;
  const CellLibrary& lib = netlist.library();
  for (std::size_t pi = 0; pi < paths.size(); ++pi) {
    const TimingPath& path = paths[pi];
    out += "Path " + std::to_string(pi + 1) + ": endpoint " +
           netlist.nets()[path.endpoint_net].name + "  arrival " +
           fmt(path.arrival_ps, 1) + " ps\n";
    for (std::size_t gi : path.gates) {
      const GateInst& gate = netlist.gates()[gi];
      out += "  " + pad_right(gate.name, 12) +
             pad_right(lib.master(gate.cell_index).name(), 10) +
             " arrival " +
             pad_left(fmt(result.arrival_ps[gate.output_net], 1), 9) +
             " ps  slew " +
             pad_left(fmt(result.slew_ps[gate.output_net], 1), 7) +
             " ps\n";
    }
  }
  return out;
}

}  // namespace sva
