#include "sta/compiled.hpp"

#include <cstring>

#include "engine/metrics.hpp"
#include "util/error.hpp"
#include "util/serialize.hpp"

namespace sva {

namespace {

/// Branch-free segment search with upper_bound semantics: the number of
/// axis entries <= x is exactly upper_bound(axis, x) - begin, so clamping
/// (count - 1) into [0, n-2] reproduces interp::segment_index bit for bit
/// on the strictly increasing axes NldmTable guarantees.
inline std::size_t seg_lookup(const double* axis, std::size_t n, double x) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) count += axis[i] <= x ? 1u : 0u;
  const std::size_t raw = count == 0 ? 0 : count - 1;
  const std::size_t hi = n - 2;
  return raw > hi ? hi : raw;
}

/// seg_lookup with a compile-time axis length: the comparison loop
/// unrolls to straight-line branch-free code.
template <std::size_t N>
inline std::size_t seg_lookup_fixed(const double* axis, double x) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < N; ++i) count += axis[i] <= x ? 1u : 0u;
  const std::size_t raw = count == 0 ? 0 : count - 1;
  const std::size_t hi = N - 2;
  return raw > hi ? hi : raw;
}

/// Identical FP sequence to interp::lerp.
inline double lerp(double x0, double y0, double x1, double y1, double x) {
  const double t = (x - x0) / (x1 - x0);
  return y0 + t * (y1 - y0);
}

std::uint64_t hash_doubles(const std::vector<double>& v, std::uint64_t seed) {
  return fnv1a64(v.data(), v.size() * sizeof(double), seed);
}

bool doubles_equal(const double* a, const std::vector<double>& b) {
  return std::memcmp(a, b.data(), b.size() * sizeof(double)) == 0;
}

}  // namespace

std::uint32_t CompiledTiming::intern_axis(const std::vector<double>& axis) {
  const std::uint64_t h = hash_doubles(axis, 0xcbf29ce484222325ull);
  for (const auto& [hash, off, len] : unique_axes_) {
    if (hash != h || len != axis.size()) continue;
    if (doubles_equal(&arena_[off], axis)) return off;
  }
  const auto off = static_cast<std::uint32_t>(arena_.size());
  arena_.insert(arena_.end(), axis.begin(), axis.end());
  unique_axes_.emplace_back(h, off, static_cast<std::uint32_t>(axis.size()));
  return off;
}

CompiledTiming::TableRef CompiledTiming::intern_table(
    const NldmTable& nldm, std::uint32_t arc_index) {
  const LookupTable2D& delay = nldm.delay_table();
  const LookupTable2D& slew = nldm.slew_table();
  // NldmTable guarantees shared axes and a >= 2x2 grid, which is exactly
  // what the branch-free kernel assumes.
  SVA_ASSERT(delay.nx() >= 2 && delay.ny() >= 2);
  ++tables_total_;

  std::uint64_t h = hash_doubles(delay.x_axis(), 0xcbf29ce484222325ull);
  h = hash_doubles(delay.y_axis(), h);
  h = hash_doubles(delay.values(), h);
  h = hash_doubles(slew.values(), h);

  for (const auto& [hash, ref] : unique_tables_) {
    if (hash != h) continue;
    // Verify bytewise on hash hit so a collision can never alias two
    // different tables.
    if (ref.nx != delay.nx() || ref.ny != delay.ny()) continue;
    if (!doubles_equal(&arena_[ref.x_off], delay.x_axis()) ||
        !doubles_equal(&arena_[ref.y_off], delay.y_axis()) ||
        !doubles_equal(&arena_[ref.d_off], delay.values()) ||
        !doubles_equal(&arena_[ref.s_off], slew.values()))
      continue;
    TableRef hit = ref;
    hit.arc_index = arc_index;
    return hit;
  }

  const auto append = [this](const std::vector<double>& v) {
    const auto off = static_cast<std::uint32_t>(arena_.size());
    arena_.insert(arena_.end(), v.begin(), v.end());
    return off;
  };
  TableRef ref;
  // Axes intern separately from values: characterization uses one shared
  // slew/load grid, so distinct tables still converge on one axis copy.
  ref.x_off = intern_axis(delay.x_axis());
  ref.y_off = intern_axis(delay.y_axis());
  ref.d_off = append(delay.values());
  ref.s_off = append(slew.values());
  ref.nx = static_cast<std::uint32_t>(delay.nx());
  ref.ny = static_cast<std::uint32_t>(delay.ny());
  ref.arc_index = arc_index;
  unique_tables_.emplace_back(h, ref);
  ++tables_unique_;
  return ref;
}

CompiledTiming::CompiledTiming(
    const Netlist& netlist, const CharacterizedLibrary& library,
    const StaConfig& config,
    const std::vector<std::vector<std::size_t>>& levels) {
  MetricsRegistry& metrics = MetricsRegistry::global();
  const ScopedTimer timer(metrics.timer("sta.kernel.compile"));

  // Intern every library cell's arc tables (not just the masters in use):
  // ECO sizing swaps gates to drive-strength variants in place, and
  // refresh_gate must find the variant's tables already in the arena.
  cell_tables_.resize(library.cells.size());
  for (std::size_t ci = 0; ci < library.cells.size(); ++ci) {
    const CharacterizedCell& cell = library.cells[ci];
    for (const Pin& pin : cell.master.pins()) {
      if (pin.is_output) continue;
      const CharacterizedArc& arc = cell.arc_for(pin.name);
      cell_tables_[ci].push_back(
          intern_table(arc.nldm, static_cast<std::uint32_t>(arc.arc_index)));
    }
  }

  // Flatten gates level-major so each level is a contiguous span.
  gate_rec_of_.assign(netlist.gates().size(), 0);
  gates_.reserve(netlist.gates().size());
  for (const std::vector<std::size_t>& level : levels) {
    LevelSpan span;
    span.begin = static_cast<std::uint32_t>(gates_.size());
    for (std::size_t gi : level) {
      const GateInst& gate = netlist.gates()[gi];
      const std::vector<TableRef>& tables = cell_tables_[gate.cell_index];
      SVA_ASSERT(tables.size() == gate.fanin_nets.size());
      GateRec rec;
      rec.first_arc = static_cast<std::uint32_t>(arcs_.size());
      rec.arc_count = static_cast<std::uint32_t>(gate.fanin_nets.size());
      rec.out_net = static_cast<std::uint32_t>(gate.output_net);
      gate_rec_of_[gi] = static_cast<std::uint32_t>(gates_.size());
      gates_.push_back(rec);
      for (std::size_t pi = 0; pi < gate.fanin_nets.size(); ++pi) {
        const std::size_t in_net = gate.fanin_nets[pi];
        const TableRef& t = tables[pi];
        ArcRec arc;
        arc.in_net = static_cast<std::uint32_t>(in_net);
        arc.gate = static_cast<std::uint32_t>(gi);
        arc.arc_index = t.arc_index;
        arc.x_off = t.x_off;
        arc.y_off = t.y_off;
        arc.d_off = t.d_off;
        arc.s_off = t.s_off;
        arc.nx = t.nx;
        arc.ny = t.ny;
        // Same two operands the scalar path multiplies per evaluation,
        // so the precomputed product is the identical double.
        arc.wire_delay =
            config.wire_delay_per_sink_ps *
            static_cast<double>(netlist.nets()[in_net].sinks.size());
        arcs_.push_back(arc);
      }
    }
    span.end = static_cast<std::uint32_t>(gates_.size());
    level_spans_.push_back(span);
  }

  // One shared (x_off, y_off, nx, ny) across every arc enables the fast
  // evaluate path: the load-axis search hoists to bind_loads and one
  // slew-axis interpolation parameter serves both the delay and slew
  // tables.  True whenever characterization used one grid (always, for
  // this library); the generic per-arc path remains as fallback.
  uniform_axes_ = !arcs_.empty();
  if (uniform_axes_) {
    x_off_ = arcs_[0].x_off;
    y_off_ = arcs_[0].y_off;
    nx_ = arcs_[0].nx;
    ny_ = arcs_[0].ny;
    for (const std::vector<TableRef>& tables : cell_tables_)
      for (const TableRef& t : tables)
        uniform_axes_ = uniform_axes_ && t.x_off == x_off_ &&
                        t.y_off == y_off_ && t.nx == nx_ && t.ny == ny_;
  }
  load_seg_.assign(netlist.nets().size(), 0);
  load_t_.assign(netlist.nets().size(), 0.0);

  metrics.counter("sta.kernel.compiles").add();
  metrics.counter("sta.kernel.tables_total").add(tables_total_);
  metrics.counter("sta.kernel.tables_deduped")
      .add(tables_total_ - tables_unique_);
  metrics.counter("sta.kernel.arena_bytes").add(arena_bytes());
}

void CompiledTiming::update_net_load(std::size_t net, double load) {
  if (!uniform_axes_) return;
  SVA_REQUIRE(net < load_seg_.size());
  const double* ys = arena_.data() + y_off_;
  const std::size_t j = seg_lookup(ys, ny_, load);
  load_seg_[net] = static_cast<std::uint32_t>(j);
  // The exact quotient interp::lerp computes for this axis segment.
  load_t_[net] = (load - ys[j]) / (ys[j + 1] - ys[j]);
}

void CompiledTiming::bind_loads(const double* loads, std::size_t count) {
  SVA_REQUIRE(count == load_seg_.size());
  for (std::size_t ni = 0; ni < count; ++ni)
    update_net_load(ni, loads[ni]);
}

void CompiledTiming::gather_factors(const ArcScaleProvider& scale,
                                    std::vector<double>& out) const {
  out.resize(arcs_.size());
  for (std::size_t a = 0; a < arcs_.size(); ++a) {
    const double factor = scale.scale(arcs_[a].gate, arcs_[a].arc_index);
    SVA_ASSERT_MSG(factor > 0.0, "arc scale must be positive");
    out[a] = factor;
  }
}

namespace {

/// The uniform-axes inner loop with a compile-time slew-axis length, so
/// the per-arc segment search unrolls to branch-free straight-line code.
/// Bilinear interpolation follows LookupTable2D::at's exact FP order,
/// with the load-axis lerps expanded around the pre-resolved per-net
/// parameter ty and the slew-axis quotient tx computed once and reused
/// by the slew lookup (at() recomputes the identical doubles).
template <std::size_t NX>
void eval_uniform(const CompiledTiming::GateRec* gates, std::size_t first,
                  std::size_t last, const CompiledTiming::ArcRec* arcs,
                  const double* arena, const double* xs, std::size_t ny,
                  const std::uint32_t* load_seg, const double* load_t,
                  const double* factors, StaResult& result) {
  double* arrival = result.arrival_ps.data();
  double* slew = result.slew_ps.data();
  std::size_t* from = result.from_net.data();

  for (std::size_t g = first; g < last; ++g) {
    const CompiledTiming::GateRec& gate = gates[g];
    const std::size_t j = load_seg[gate.out_net];
    const double ty = load_t[gate.out_net];
    double worst_arrival = -1.0;
    double worst_slew = 0.0;
    std::size_t worst_from = kNoDriver;
    const std::size_t end = gate.first_arc + gate.arc_count;
    for (std::size_t a = gate.first_arc; a < end; ++a) {
      const CompiledTiming::ArcRec& arc = arcs[a];
      const double in_slew = slew[arc.in_net];
      const std::size_t i = seg_lookup_fixed<NX>(xs, in_slew);
      const double x0 = xs[i];
      const double tx = (in_slew - x0) / (xs[i + 1] - x0);
      const double* d = arena + arc.d_off + i * ny + j;
      const double d_lo = d[0] + ty * (d[1] - d[0]);
      const double d_hi = d[ny] + ty * (d[ny + 1] - d[ny]);
      const double delay = d_lo + tx * (d_hi - d_lo);
      const double arr =
          arrival[arc.in_net] + arc.wire_delay + factors[a] * delay;
      if (arr > worst_arrival) {
        worst_arrival = arr;
        const double* s = arena + arc.s_off + i * ny + j;
        const double s_lo = s[0] + ty * (s[1] - s[0]);
        const double s_hi = s[ny] + ty * (s[ny + 1] - s[ny]);
        worst_slew = factors[a] * (s_lo + tx * (s_hi - s_lo));
        worst_from = arc.in_net;
      }
    }
    arrival[gate.out_net] = worst_arrival;
    slew[gate.out_net] = worst_slew;
    from[gate.out_net] = worst_from;
  }
}

}  // namespace

void CompiledTiming::evaluate_span(std::size_t first, std::size_t last,
                                   const double* factors, const double* loads,
                                   StaResult& result) const {
  const double* arena = arena_.data();
  const double* xs = arena + x_off_;
  switch (uniform_axes_ ? nx_ : 0u) {
    // The instantiated lengths cover the characterization grids in use;
    // anything else falls back to the generic per-arc path (identical
    // results, un-hoisted searches).
    case 5:
      eval_uniform<5>(gates_.data(), first, last, arcs_.data(), arena, xs,
                      ny_, load_seg_.data(), load_t_.data(), factors,
                      result);
      return;
    case 7:
      eval_uniform<7>(gates_.data(), first, last, arcs_.data(), arena, xs,
                      ny_, load_seg_.data(), load_t_.data(), factors,
                      result);
      return;
    case 8:
      eval_uniform<8>(gates_.data(), first, last, arcs_.data(), arena, xs,
                      ny_, load_seg_.data(), load_t_.data(), factors,
                      result);
      return;
    default:
      evaluate_span_generic(first, last, factors, loads, result);
  }
}

void CompiledTiming::evaluate_span_generic(std::size_t first,
                                           std::size_t last,
                                           const double* factors,
                                           const double* loads,
                                           StaResult& result) const {
  const double* arena = arena_.data();
  const ArcRec* arcs = arcs_.data();
  double* arrival = result.arrival_ps.data();
  double* slew = result.slew_ps.data();
  std::size_t* from = result.from_net.data();

  for (std::size_t g = first; g < last; ++g) {
    const GateRec& gate = gates_[g];
    const double load = loads[gate.out_net];
    double worst_arrival = -1.0;
    double worst_slew = 0.0;
    std::size_t worst_from = kNoDriver;
    const std::size_t end = gate.first_arc + gate.arc_count;
    for (std::size_t a = gate.first_arc; a < end; ++a) {
      const ArcRec& arc = arcs[a];
      const double* xs = arena + arc.x_off;
      const double* ys = arena + arc.y_off;
      const double in_slew = slew[arc.in_net];
      const std::size_t i = seg_lookup(xs, arc.nx, in_slew);
      const std::size_t j = seg_lookup(ys, arc.ny, load);
      const double x0 = xs[i], x1 = xs[i + 1];
      const double y0 = ys[j], y1 = ys[j + 1];
      // Bilinear interpolation in LookupTable2D::at's exact order: lerp
      // along the load axis at slew grid lines i and i+1, then along the
      // slew axis.  The delay and slew tables share axes (NldmTable
      // invariant), so one segment search serves both lookups -- the
      // scalar path redoes it four times per arc.
      const double* d = arena + arc.d_off + i * arc.ny + j;
      const double d_lo = lerp(y0, d[0], y1, d[1], load);
      const double d_hi = lerp(y0, d[arc.ny], y1, d[arc.ny + 1], load);
      const double delay = lerp(x0, d_lo, x1, d_hi, in_slew);
      const double arr =
          arrival[arc.in_net] + arc.wire_delay + factors[a] * delay;
      if (arr > worst_arrival) {
        worst_arrival = arr;
        const double* s = arena + arc.s_off + i * arc.ny + j;
        const double s_lo = lerp(y0, s[0], y1, s[1], load);
        const double s_hi = lerp(y0, s[arc.ny], y1, s[arc.ny + 1], load);
        worst_slew = factors[a] * lerp(x0, s_lo, x1, s_hi, in_slew);
        worst_from = arc.in_net;
      }
    }
    arrival[gate.out_net] = worst_arrival;
    slew[gate.out_net] = worst_slew;
    from[gate.out_net] = worst_from;
  }
}

void CompiledTiming::refresh_gate(std::size_t gate, std::size_t cell_index) {
  SVA_REQUIRE(gate < gate_rec_of_.size());
  SVA_REQUIRE(cell_index < cell_tables_.size());
  const GateRec& rec = gates_[gate_rec_of_[gate]];
  const std::vector<TableRef>& tables = cell_tables_[cell_index];
  SVA_REQUIRE_MSG(tables.size() == rec.arc_count,
                  "replacement master must be pin-compatible");
  for (std::size_t pi = 0; pi < tables.size(); ++pi) {
    ArcRec& arc = arcs_[rec.first_arc + pi];
    const TableRef& t = tables[pi];
    arc.arc_index = t.arc_index;
    arc.x_off = t.x_off;
    arc.y_off = t.y_off;
    arc.d_off = t.d_off;
    arc.s_off = t.s_off;
    arc.nx = t.nx;
    arc.ny = t.ny;
  }
}

}  // namespace sva
