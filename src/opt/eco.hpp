#pragma once
// Variation-aware ECO timing optimizer.
//
// A greedy slack-driven loop over the moves of opt/moves.hpp:
//
//   1. analyze worst slack under the configured sign-off corner (the SVA
//      worst case by default, or the traditional uniform corner for the
//      paper-style comparison);
//   2. enumerate candidate moves on the critical / near-critical cone:
//      upsizing near-critical gates, downsizing off-critical sinks that
//      load near-critical nets, and re-spacing near-critical gates inside
//      their row whitespace (SVA mode only -- a context-blind corner
//      prices every position identically, so re-spacing can never gain);
//   3. price every candidate exactly and concurrently with
//      Sta::run_what_if (const, allocation-local; results land in
//      pre-sized slots, so the outcome is schedule-independent);
//   4. commit the single best move (gain, then smallest area, then lowest
//      gate index -- a deterministic total order) and fold its what-if
//      timing in as the new committed state;
//
// until the clock is met, the gain stalls below min_gain_ps, or max_moves
// is hit.  The headline experiment: driving this loop with the SVA corner
// meets timing with fewer/smaller upsizes than driving it with the
// traditional corner, because (a) the SVA corner is less pessimistic and
// (b) only it can monetize zero-area re-spacing moves.

#include <cstdint>
#include <string>
#include <vector>

#include "core/budget.hpp"
#include "core/classify.hpp"
#include "netlist/netlist.hpp"
#include "opt/moves.hpp"
#include "opt/sizing.hpp"
#include "place/context.hpp"
#include "place/placement.hpp"
#include "sta/sta.hpp"
#include "util/cancel.hpp"

namespace sva {

/// Which sign-off corner drives candidate pricing and the stop criterion.
enum class EcoCornerMode { SvaWorst, TraditionalWorst };

const char* eco_corner_mode_name(EcoCornerMode mode);

struct EcoConfig {
  /// Target clock period.  <= 0 means auto: auto_clock_fraction times the
  /// initial delay under the configured corner (a clock the unoptimized
  /// design misses by construction -- the standard ECO demo setup).
  double clock_period_ps = 0.0;
  double auto_clock_fraction = 0.97;
  EcoCornerMode mode = EcoCornerMode::SvaWorst;
  std::size_t max_moves = 64;
  /// Gates whose slack is within this window of the worst slack are the
  /// candidate cone.
  double near_critical_window_ps = 25.0;
  /// Stall threshold: stop when the best candidate gains less than this.
  double min_gain_ps = 0.01;
  /// Respace candidates per direction (shifts of 1..k placement sites,
  /// clipped to the instance's legal range).
  std::size_t respace_sites_each_way = 2;

  CdBudget budget;
  ArcLabelPolicy arc_policy = ArcLabelPolicy::Majority;
  StaConfig sta;
};

/// One committed move, as recorded in the trajectory.
struct EcoMoveRecord {
  std::size_t index = 0;  ///< 1-based commit order
  MoveKind kind = MoveKind::Upsize;
  std::size_t gate = 0;
  std::string gate_name;
  std::string detail;  ///< "NAND2_X1 -> NAND2_X1_W145" or "dx +340 nm"
  double gain_ps = 0.0;
  double worst_slack_ps = 0.0;  ///< after the move
  double area_delta = 0.0;      ///< width-multiplier delta (0 for respace)
};

struct EcoResult {
  std::string benchmark;
  EcoCornerMode mode = EcoCornerMode::SvaWorst;
  double clock_period_ps = 0.0;
  double initial_worst_slack_ps = 0.0;
  double final_worst_slack_ps = 0.0;
  bool met_timing = false;
  std::size_t upsizes = 0;
  std::size_t downsizes = 0;
  std::size_t respaces = 0;
  /// Total width-multiplier added by upsizes (the "how much bigger did
  /// the gates get" cost of closure; respace moves are free).
  double upsize_area_delta = 0.0;
  /// Net width-multiplier delta over all sizing moves.
  double total_area_delta = 0.0;
  std::size_t candidates_evaluated = 0;
  std::vector<EcoMoveRecord> trajectory;
  /// True when run() stopped because its CancelToken tripped (the
  /// committed state is a clean prefix -- checkpoint it and resume).
  bool cancelled = false;

  std::size_t moves_committed() const { return trajectory.size(); }
  double slack_recovered_ps() const {
    return final_worst_slack_ps - initial_worst_slack_ps;
  }
};

class EcoOptimizer {
 public:
  /// Takes ownership of `netlist` (it is mutated by committed sizing
  /// moves) and places it internally.  The netlist must be mapped onto
  /// `sized.library()`; `sized` must outlive the optimizer.
  EcoOptimizer(const SizedLibrary& sized, Netlist netlist,
               const PlacementConfig& placement, EcoConfig config);

  EcoOptimizer(const EcoOptimizer&) = delete;
  EcoOptimizer& operator=(const EcoOptimizer&) = delete;

  /// Run the loop to completion.  With a pool, candidate pricing fans out
  /// across it; the result is bit-identical at any thread count (slots +
  /// serial deterministic selection).  Repeated calls continue from the
  /// committed state (the first call does the work; a second is a no-op
  /// unless the config was loosened).
  ///
  /// A non-null `cancel` is polled at commit granularity (the top of each
  /// iteration and per pricing chunk).  On a trip the loop stops between
  /// commits -- never mid-commit -- and returns with result.cancelled set;
  /// the trajectory so far is exactly the prefix an uninterrupted run
  /// would have committed (checkpoint() it, then restore() + run() in a
  /// later process continues to a bit-identical final result).
  EcoResult run(ThreadPool* pool = nullptr,
                const CancelToken* cancel = nullptr);

  /// Identity of this optimization for checkpoint validation: context
  /// library content hash + benchmark + every config field that shapes
  /// the trajectory.  Restoring a journal whose hash differs is refused.
  std::uint64_t state_hash() const;

  /// Journal the committed state (the accepted-move sequence plus the
  /// counters the summary prints) to `path` as an "eco"-kind checkpoint
  /// envelope.  Valid at any point between run() calls.
  void checkpoint(const std::string& path) const;

  /// Reload `path` (written by checkpoint() for identical inputs -- the
  /// state hash is verified) and replay the journaled moves through the
  /// exact evaluate+commit pipeline.  What-if pricing is exact and
  /// deterministic, so the replayed state is bit-identical to the state
  /// that was checkpointed; each replayed move's worst slack is verified
  /// against the journal bit-for-bit as proof.  Must be called before the
  /// first run() (i.e. with no moves committed yet); a following run()
  /// continues the trajectory exactly where the interrupted run stopped.
  void restore(const std::string& path);

  const Netlist& netlist() const { return netlist_; }
  const Placement& placement() const { return placement_; }
  const EcoConfig& config() const { return config_; }

  /// Worst slack of the committed state under the configured corner.
  double worst_slack_ps() const;

 private:
  struct Evaluation {
    Move move;
    double gain_ps = 0.0;
    double area_delta = 0.0;
    StaResult timing;
    /// Respace commit data: re-measured spacings and the matching
    /// hypothetical factor rows of the affected gates.
    std::vector<NpsUpdate> nps_updates;
    std::vector<OverlayScale::Row> factor_rows;
  };

  std::vector<double> committed_row(std::size_t gate) const;
  std::vector<Move> enumerate_candidates(
      const std::vector<double>& net_slack_ps, double threshold_ps) const;
  void evaluate(const Move& move, Evaluation& out) const;
  /// Deterministic total order: larger gain, then smaller area, then
  /// lower gate, then kind, then target cell, then smaller |dx|.
  static bool better(const Evaluation& a, const Evaluation& b);
  void commit(Evaluation&& best);
  /// Commit `chosen` and append its trajectory record / counters to
  /// result_.  The single bookkeeping path shared by run() and restore()
  /// -- which is what makes a replayed trajectory byte-identical.
  void apply_move(Evaluation&& chosen);

  const SizedLibrary* sized_;
  EcoConfig config_;
  Netlist netlist_;
  Placement placement_;
  Sta sta_;
  std::vector<InstanceNps> nps_;
  std::vector<VersionKey> versions_;
  std::vector<std::vector<double>> factors_;  // committed, [gate][arc]
  StaResult current_;                         // committed forward timing
  /// Committed-state accumulator: trajectory, counters, and the header
  /// fields the summary prints.  Lives on the optimizer (not run()'s
  /// stack) so checkpoint/restore and repeated run() calls all see one
  /// continuous history.
  EcoResult result_;
  /// The raw committed moves, in order -- the replay journal.  The
  /// trajectory records lack the target cell / dx needed to re-execute.
  std::vector<Move> committed_moves_;
};

}  // namespace sva
