#include "opt/moves.hpp"

#include "util/error.hpp"

namespace sva {

const char* move_kind_name(MoveKind kind) {
  switch (kind) {
    case MoveKind::Upsize: return "upsize";
    case MoveKind::Downsize: return "downsize";
    case MoveKind::Respace: return "respace";
  }
  return "?";
}

OverlayScale::OverlayScale(const std::vector<std::vector<double>>& base,
                           const std::vector<Row>& rows)
    : base_(&base), rows_(&rows) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    SVA_REQUIRE(rows[i].first < base.size());
    SVA_REQUIRE_MSG(i == 0 || rows[i - 1].first < rows[i].first,
                    "overlay rows must be sorted by gate");
  }
}

double OverlayScale::scale(std::size_t gate, std::size_t arc_index) const {
  // A candidate touches at most three gates: a linear scan beats a map.
  for (const Row& row : *rows_)
    if (row.first == gate) return row.second[arc_index];
  return (*base_)[gate][arc_index];
}

}  // namespace sva
