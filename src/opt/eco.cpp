#include "opt/eco.hpp"

#include <bit>
#include <cmath>
#include <utility>

#include "core/scales.hpp"
#include "engine/metrics.hpp"
#include "util/checkpoint.hpp"
#include "util/error.hpp"
#include "util/serialize.hpp"
#include "util/strings.hpp"

namespace sva {

const char* eco_corner_mode_name(EcoCornerMode mode) {
  switch (mode) {
    case EcoCornerMode::SvaWorst: return "sva";
    case EcoCornerMode::TraditionalWorst: return "trad";
  }
  return "?";
}

EcoOptimizer::EcoOptimizer(const SizedLibrary& sized, Netlist netlist,
                           const PlacementConfig& placement, EcoConfig config)
    : sized_(&sized),
      config_(std::move(config)),
      netlist_(std::move(netlist)),
      placement_(netlist_, placement),
      sta_(netlist_, sized.characterized(), config_.sta) {
  SVA_REQUIRE_MSG(&netlist_.library() == &sized.library(),
                  "netlist must be mapped onto the sized library");
  nps_ = extract_nps(placement_);
  versions_ = assign_versions(nps_, sized_->context_library().bins());
  factors_.resize(netlist_.gates().size());
  for (std::size_t g = 0; g < netlist_.gates().size(); ++g)
    factors_[g] = committed_row(g);
  current_ = sta_.run(FactorsScale(factors_));
  if (config_.clock_period_ps <= 0.0) {
    SVA_REQUIRE_MSG(
        config_.auto_clock_fraction > 0.0 && config_.auto_clock_fraction < 1.0,
        "auto clock fraction must lie in (0, 1)");
    config_.clock_period_ps =
        config_.auto_clock_fraction * current_.critical_delay_ps;
  }
  // The committed-state accumulator's header fields are fixed from here
  // on; run() and restore() only ever append to it.
  result_.benchmark = netlist_.name();
  result_.mode = config_.mode;
  result_.clock_period_ps = config_.clock_period_ps;
  result_.initial_worst_slack_ps = worst_slack_ps();
}

double EcoOptimizer::worst_slack_ps() const {
  return config_.clock_period_ps - current_.critical_delay_ps;
}

std::vector<double> EcoOptimizer::committed_row(std::size_t gate) const {
  const std::size_t cell = netlist_.gates()[gate].cell_index;
  const CellMaster& master = netlist_.library().master(cell);
  if (config_.mode == EcoCornerMode::TraditionalWorst) {
    // Context-blind uniform corner: every arc of every gate at the full
    // CD budget, regardless of placement.
    const TraditionalCornerScale trad(master.tech().gate_length,
                                      config_.budget, Corner::Worst);
    return std::vector<double>(master.arcs().size(), trad.factor());
  }
  const auto annotations = annotate_gate_arcs(
      netlist_, gate, sized_->context_library(), versions_[gate],
      config_.budget, config_.arc_policy, 0.0, &nps_[gate],
      &sized_->context_cache());
  return gate_corner_factors(netlist_, gate, annotations, config_.budget,
                             Corner::Worst);
}

std::vector<Move> EcoOptimizer::enumerate_candidates(
    const std::vector<double>& net_slack_ps, double threshold_ps) const {
  std::vector<Move> out;
  const auto& gates = netlist_.gates();
  const Nm site = netlist_.library().master(0).tech().site_width;
  std::vector<char> downsize_seen(gates.size(), 0);

  for (std::size_t g = 0; g < gates.size(); ++g) {
    if (net_slack_ps[gates[g].output_net] > threshold_ps) continue;

    if (sized_->can_upsize(gates[g].cell_index))
      out.push_back({MoveKind::Upsize, g,
                     sized_->upsized(gates[g].cell_index), 0.0});

    // Re-spacing is only enumerated under the SVA corner: a uniform
    // traditional corner assigns the same factor at every position, so
    // every respace candidate would price at exactly zero gain.
    if (config_.mode == EcoCornerMode::SvaWorst) {
      const auto [lo, hi] = placement_.shift_range(g);
      for (std::size_t k = 1; k <= config_.respace_sites_each_way; ++k) {
        const Nm dx = static_cast<double>(k) * site;
        if (dx <= hi) out.push_back({MoveKind::Respace, g, 0, dx});
        if (-dx >= lo) out.push_back({MoveKind::Respace, g, 0, -dx});
      }
    }

    // Off-cone sinks loading this near-critical net: shrinking them cuts
    // the load the critical driver sees at zero speed cost of their own
    // (the exact what-if pricing rejects the move if their path would
    // become the new wall).
    for (const NetSink& sink : netlist_.nets()[gates[g].output_net].sinks) {
      const std::size_t sg = sink.gate;
      if (downsize_seen[sg]) continue;
      if (net_slack_ps[gates[sg].output_net] <= threshold_ps) continue;
      if (!sized_->can_downsize(gates[sg].cell_index)) continue;
      downsize_seen[sg] = 1;
      out.push_back({MoveKind::Downsize, sg,
                     sized_->downsized(gates[sg].cell_index), 0.0});
    }
  }
  return out;
}

void EcoOptimizer::evaluate(const Move& move, Evaluation& out) const {
  out.move = move;
  switch (move.kind) {
    case MoveKind::Upsize:
    case MoveKind::Downsize: {
      // Sizing is printing-context-neutral (see opt/sizing.hpp): the
      // committed corner factors apply unchanged; only the master (and
      // the pin caps it presents upstream) is hypothetically swapped.
      const std::vector<Sta::GateCellOverride> swap{
          {move.gate, move.to_cell}};
      const FactorsScale scale(factors_);
      out.timing = sta_.run_what_if(scale, current_, swap, {});
      out.area_delta =
          sized_->multiplier_of(move.to_cell) -
          sized_->multiplier_of(netlist_.gates()[move.gate].cell_index);
      break;
    }
    case MoveKind::Respace: {
      out.nps_updates = nps_after_shift(placement_, move.gate, move.dx);
      const ContextBins& bins = sized_->context_library().bins();
      std::vector<std::size_t> changed;
      out.factor_rows.reserve(out.nps_updates.size());
      for (const NpsUpdate& u : out.nps_updates) {
        const VersionKey version = nps_to_version(u.nps, bins);
        const auto annotations = annotate_gate_arcs(
            netlist_, u.gate, sized_->context_library(), version,
            config_.budget, config_.arc_policy, 0.0, &u.nps,
            &sized_->context_cache());
        auto row = gate_corner_factors(netlist_, u.gate, annotations,
                                       config_.budget, Corner::Worst);
        if (row != factors_[u.gate]) changed.push_back(u.gate);
        out.factor_rows.emplace_back(u.gate, std::move(row));
      }
      const OverlayScale scale(factors_, out.factor_rows);
      out.timing = sta_.run_what_if(scale, current_, {}, changed);
      break;
    }
  }
  out.gain_ps = current_.critical_delay_ps - out.timing.critical_delay_ps;
}

bool EcoOptimizer::better(const Evaluation& a, const Evaluation& b) {
  if (a.gain_ps != b.gain_ps) return a.gain_ps > b.gain_ps;
  if (a.area_delta != b.area_delta) return a.area_delta < b.area_delta;
  if (a.move.gate != b.move.gate) return a.move.gate < b.move.gate;
  if (a.move.kind != b.move.kind)
    return static_cast<int>(a.move.kind) < static_cast<int>(b.move.kind);
  if (a.move.to_cell != b.move.to_cell) return a.move.to_cell < b.move.to_cell;
  if (std::abs(a.move.dx) != std::abs(b.move.dx))
    return std::abs(a.move.dx) < std::abs(b.move.dx);
  return a.move.dx > b.move.dx;
}

void EcoOptimizer::commit(Evaluation&& best) {
  switch (best.move.kind) {
    case MoveKind::Upsize:
    case MoveKind::Downsize:
      netlist_.set_gate_cell(best.move.gate, best.move.to_cell);
      sta_.update_gate_master(best.move.gate);
      break;
    case MoveKind::Respace: {
      placement_.shift_instance(best.move.gate, best.move.dx);
      const ContextBins& bins = sized_->context_library().bins();
      for (const NpsUpdate& u : best.nps_updates) {
        nps_[u.gate] = u.nps;
        versions_[u.gate] = nps_to_version(u.nps, bins);
      }
      for (OverlayScale::Row& row : best.factor_rows)
        factors_[row.first] = std::move(row.second);
      break;
    }
  }
  // The what-if result is exact, so it becomes the committed timing.
  current_ = std::move(best.timing);
}

void EcoOptimizer::apply_move(Evaluation&& chosen) {
  EcoMoveRecord record;
  record.index = result_.trajectory.size() + 1;
  record.kind = chosen.move.kind;
  record.gate = chosen.move.gate;
  record.gate_name = netlist_.gates()[chosen.move.gate].name;
  record.gain_ps = chosen.gain_ps;
  record.area_delta = chosen.area_delta;
  const CellLibrary& lib = netlist_.library();
  switch (chosen.move.kind) {
    case MoveKind::Upsize:
      ++result_.upsizes;
      result_.upsize_area_delta += chosen.area_delta;
      result_.total_area_delta += chosen.area_delta;
      record.detail =
          lib.master(netlist_.gates()[chosen.move.gate].cell_index).name() +
          " -> " + lib.master(chosen.move.to_cell).name();
      break;
    case MoveKind::Downsize:
      ++result_.downsizes;
      result_.total_area_delta += chosen.area_delta;
      record.detail =
          lib.master(netlist_.gates()[chosen.move.gate].cell_index).name() +
          " -> " + lib.master(chosen.move.to_cell).name();
      break;
    case MoveKind::Respace:
      ++result_.respaces;
      record.detail = "dx " + std::string(chosen.move.dx >= 0 ? "+" : "") +
                      fmt(chosen.move.dx, 0) + " nm";
      break;
  }
  committed_moves_.push_back(chosen.move);
  commit(std::move(chosen));
  MetricsRegistry::global().counter("eco.moves_committed").add();
  record.worst_slack_ps = worst_slack_ps();
  result_.trajectory.push_back(std::move(record));
}

EcoResult EcoOptimizer::run(ThreadPool* pool, const CancelToken* cancel) {
  MetricsRegistry& metrics = MetricsRegistry::global();
  Counter& evaluated = metrics.counter("eco.candidates_evaluated");
  TimerStat& eval_timer = metrics.timer("eco.candidate_eval");
  result_.cancelled = false;

  while (result_.trajectory.size() < config_.max_moves &&
         worst_slack_ps() < 0.0) {
    // Commit-granularity poll: a trip lands between iterations, so the
    // committed state (and thus any checkpoint) is a clean prefix.
    if (cancel != nullptr && cancel->poll()) {
      result_.cancelled = true;
      break;
    }
    const FactorsScale scale(factors_);
    const SlackResult slack =
        sta_.slack_from(scale, current_, config_.clock_period_ps);
    const double threshold =
        slack.worst_slack_ps + config_.near_critical_window_ps;
    const std::vector<Move> candidates =
        enumerate_candidates(slack.slack_ps, threshold);
    if (candidates.empty()) break;

    // Price every candidate into its own slot; with a pool the pricing
    // fans out, and the serial argmax below keeps selection (and thus
    // the whole trajectory) schedule-independent.
    std::vector<Evaluation> evals(candidates.size());
    try {
      const ScopedTimer timer(eval_timer);
      const auto price = [&](std::size_t i) {
        evaluate(candidates[i], evals[i]);
      };
      if (pool != nullptr) {
        pool->parallel_for(0, candidates.size(), price, 0, cancel);
      } else {
        for (std::size_t i = 0; i < candidates.size(); ++i) {
          if (cancel != nullptr) cancel->check();
          price(i);
        }
      }
    } catch (const CancelledError&) {
      // Mid-pricing trip: the partial evals are discarded, nothing was
      // committed this iteration.
      result_.cancelled = true;
      break;
    }
    evaluated.add(candidates.size());
    result_.candidates_evaluated += candidates.size();

    std::size_t best = 0;
    for (std::size_t i = 1; i < evals.size(); ++i)
      if (better(evals[i], evals[best])) best = i;
    if (evals[best].gain_ps < config_.min_gain_ps) break;  // stalled

    apply_move(std::move(evals[best]));
  }

  result_.final_worst_slack_ps = worst_slack_ps();
  result_.met_timing =
      !result_.cancelled && result_.final_worst_slack_ps >= 0.0;
  return result_;
}

namespace {

constexpr char kEcoCheckpointKind[] = "eco";

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

}  // namespace

std::uint64_t EcoOptimizer::state_hash() const {
  Fnv1aHasher h;
  h.u64(sized_->context_library().content_hash());
  h.str(netlist_.name());
  h.u64(netlist_.gates().size());
  h.u64(static_cast<std::uint64_t>(config_.mode));
  h.f64(config_.clock_period_ps);  // resolved, so auto-clock is covered
  // max_moves is deliberately NOT part of the identity: it only caps
  // where the loop stops, never which move a given prefix commits next,
  // so a journal is valid under any cap >= its own length (restore()
  // still checks that bound explicitly).
  h.f64(config_.near_critical_window_ps);
  h.f64(config_.min_gain_ps);
  h.u64(config_.respace_sites_each_way);
  h.f64(config_.budget.total_fraction);
  h.f64(config_.budget.pitch_share);
  h.f64(config_.budget.focus_share);
  h.f64(config_.budget.other_process_fraction);
  h.u64(static_cast<std::uint64_t>(config_.arc_policy));
  h.f64(config_.sta.input_slew_ps);
  h.f64(config_.sta.po_load_ff);
  h.f64(config_.sta.wire_cap_per_sink_ff);
  h.f64(config_.sta.wire_delay_per_sink_ps);
  return h.digest();
}

void EcoOptimizer::checkpoint(const std::string& path) const {
  ByteWriter w;
  w.str(result_.benchmark);
  w.u8(static_cast<std::uint8_t>(config_.mode));
  w.f64(config_.clock_period_ps);
  w.f64(result_.initial_worst_slack_ps);
  w.u64(result_.candidates_evaluated);
  w.u64(committed_moves_.size());
  SVA_ASSERT(committed_moves_.size() == result_.trajectory.size());
  for (std::size_t i = 0; i < committed_moves_.size(); ++i) {
    const Move& m = committed_moves_[i];
    w.u8(static_cast<std::uint8_t>(m.kind));
    w.u64(m.gate);
    w.u64(m.to_cell);
    w.f64(m.dx);
    // Witness values: replay re-derives both and verifies bit equality,
    // turning "resume is exact" from a hope into a checked invariant.
    w.f64(result_.trajectory[i].gain_ps);
    w.f64(result_.trajectory[i].worst_slack_ps);
  }
  write_checkpoint(path, kEcoCheckpointKind, state_hash(), w.bytes());
}

void EcoOptimizer::restore(const std::string& path) {
  SVA_REQUIRE_MSG(committed_moves_.empty(),
                  "restore() must run before any move is committed");
  const std::string payload =
      read_checkpoint(path, kEcoCheckpointKind, state_hash());
  ByteReader r(payload);
  if (r.str() != result_.benchmark)
    throw SerializeError("eco checkpoint benchmark mismatch");
  if (r.u8() != static_cast<std::uint8_t>(config_.mode))
    throw SerializeError("eco checkpoint corner-mode mismatch");
  if (!same_bits(r.f64(), config_.clock_period_ps))
    throw SerializeError("eco checkpoint clock-period mismatch");
  if (!same_bits(r.f64(), result_.initial_worst_slack_ps))
    throw SerializeError("eco checkpoint initial-slack mismatch");
  const std::uint64_t candidates_evaluated = r.u64();
  const std::uint64_t nmoves = r.u64();
  if (nmoves > config_.max_moves)
    throw SerializeError("eco checkpoint has more moves than max_moves");

  for (std::uint64_t i = 0; i < nmoves; ++i) {
    Move m;
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(MoveKind::Respace))
      throw SerializeError("eco checkpoint: invalid move kind");
    m.kind = static_cast<MoveKind>(kind);
    m.gate = static_cast<std::size_t>(r.u64());
    m.to_cell = static_cast<std::size_t>(r.u64());
    m.dx = r.f64();
    const double want_gain = r.f64();
    const double want_slack = r.f64();
    if (m.gate >= netlist_.gates().size())
      throw SerializeError("eco checkpoint: gate index out of range");
    // Replay through the live evaluate+commit pipeline: what-if pricing
    // is exact, so the re-derived gain must match the journaled one
    // bit-for-bit -- any drift means the inputs are not the ones the
    // checkpoint was written for (or the journal is corrupt).
    Evaluation eval;
    evaluate(m, eval);
    if (!same_bits(eval.gain_ps, want_gain))
      throw SerializeError("eco checkpoint replay diverged at move " +
                           std::to_string(i + 1) + " (gain mismatch)");
    apply_move(std::move(eval));
    if (!same_bits(result_.trajectory.back().worst_slack_ps, want_slack))
      throw SerializeError("eco checkpoint replay diverged at move " +
                           std::to_string(i + 1) + " (slack mismatch)");
  }
  r.expect_end();
  // The summary also prints the pricing work done before the interrupt;
  // restoring the counter keeps a resumed run's report byte-identical.
  result_.candidates_evaluated =
      static_cast<std::size_t>(candidates_evaluated);
  MetricsRegistry::global().counter("eco.moves_restored").add(nmoves);
}

}  // namespace sva
