#include "opt/eco.hpp"

#include <cmath>
#include <utility>

#include "core/scales.hpp"
#include "engine/metrics.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace sva {

const char* eco_corner_mode_name(EcoCornerMode mode) {
  switch (mode) {
    case EcoCornerMode::SvaWorst: return "sva";
    case EcoCornerMode::TraditionalWorst: return "trad";
  }
  return "?";
}

EcoOptimizer::EcoOptimizer(const SizedLibrary& sized, Netlist netlist,
                           const PlacementConfig& placement, EcoConfig config)
    : sized_(&sized),
      config_(std::move(config)),
      netlist_(std::move(netlist)),
      placement_(netlist_, placement),
      sta_(netlist_, sized.characterized(), config_.sta) {
  SVA_REQUIRE_MSG(&netlist_.library() == &sized.library(),
                  "netlist must be mapped onto the sized library");
  nps_ = extract_nps(placement_);
  versions_ = assign_versions(nps_, sized_->context_library().bins());
  factors_.resize(netlist_.gates().size());
  for (std::size_t g = 0; g < netlist_.gates().size(); ++g)
    factors_[g] = committed_row(g);
  current_ = sta_.run(FactorsScale(factors_));
  if (config_.clock_period_ps <= 0.0) {
    SVA_REQUIRE_MSG(
        config_.auto_clock_fraction > 0.0 && config_.auto_clock_fraction < 1.0,
        "auto clock fraction must lie in (0, 1)");
    config_.clock_period_ps =
        config_.auto_clock_fraction * current_.critical_delay_ps;
  }
}

double EcoOptimizer::worst_slack_ps() const {
  return config_.clock_period_ps - current_.critical_delay_ps;
}

std::vector<double> EcoOptimizer::committed_row(std::size_t gate) const {
  const std::size_t cell = netlist_.gates()[gate].cell_index;
  const CellMaster& master = netlist_.library().master(cell);
  if (config_.mode == EcoCornerMode::TraditionalWorst) {
    // Context-blind uniform corner: every arc of every gate at the full
    // CD budget, regardless of placement.
    const TraditionalCornerScale trad(master.tech().gate_length,
                                      config_.budget, Corner::Worst);
    return std::vector<double>(master.arcs().size(), trad.factor());
  }
  const auto annotations = annotate_gate_arcs(
      netlist_, gate, sized_->context_library(), versions_[gate],
      config_.budget, config_.arc_policy, 0.0, &nps_[gate],
      &sized_->context_cache());
  return gate_corner_factors(netlist_, gate, annotations, config_.budget,
                             Corner::Worst);
}

std::vector<Move> EcoOptimizer::enumerate_candidates(
    const std::vector<double>& net_slack_ps, double threshold_ps) const {
  std::vector<Move> out;
  const auto& gates = netlist_.gates();
  const Nm site = netlist_.library().master(0).tech().site_width;
  std::vector<char> downsize_seen(gates.size(), 0);

  for (std::size_t g = 0; g < gates.size(); ++g) {
    if (net_slack_ps[gates[g].output_net] > threshold_ps) continue;

    if (sized_->can_upsize(gates[g].cell_index))
      out.push_back({MoveKind::Upsize, g,
                     sized_->upsized(gates[g].cell_index), 0.0});

    // Re-spacing is only enumerated under the SVA corner: a uniform
    // traditional corner assigns the same factor at every position, so
    // every respace candidate would price at exactly zero gain.
    if (config_.mode == EcoCornerMode::SvaWorst) {
      const auto [lo, hi] = placement_.shift_range(g);
      for (std::size_t k = 1; k <= config_.respace_sites_each_way; ++k) {
        const Nm dx = static_cast<double>(k) * site;
        if (dx <= hi) out.push_back({MoveKind::Respace, g, 0, dx});
        if (-dx >= lo) out.push_back({MoveKind::Respace, g, 0, -dx});
      }
    }

    // Off-cone sinks loading this near-critical net: shrinking them cuts
    // the load the critical driver sees at zero speed cost of their own
    // (the exact what-if pricing rejects the move if their path would
    // become the new wall).
    for (const NetSink& sink : netlist_.nets()[gates[g].output_net].sinks) {
      const std::size_t sg = sink.gate;
      if (downsize_seen[sg]) continue;
      if (net_slack_ps[gates[sg].output_net] <= threshold_ps) continue;
      if (!sized_->can_downsize(gates[sg].cell_index)) continue;
      downsize_seen[sg] = 1;
      out.push_back({MoveKind::Downsize, sg,
                     sized_->downsized(gates[sg].cell_index), 0.0});
    }
  }
  return out;
}

void EcoOptimizer::evaluate(const Move& move, Evaluation& out) const {
  out.move = move;
  switch (move.kind) {
    case MoveKind::Upsize:
    case MoveKind::Downsize: {
      // Sizing is printing-context-neutral (see opt/sizing.hpp): the
      // committed corner factors apply unchanged; only the master (and
      // the pin caps it presents upstream) is hypothetically swapped.
      const std::vector<Sta::GateCellOverride> swap{
          {move.gate, move.to_cell}};
      const FactorsScale scale(factors_);
      out.timing = sta_.run_what_if(scale, current_, swap, {});
      out.area_delta =
          sized_->multiplier_of(move.to_cell) -
          sized_->multiplier_of(netlist_.gates()[move.gate].cell_index);
      break;
    }
    case MoveKind::Respace: {
      out.nps_updates = nps_after_shift(placement_, move.gate, move.dx);
      const ContextBins& bins = sized_->context_library().bins();
      std::vector<std::size_t> changed;
      out.factor_rows.reserve(out.nps_updates.size());
      for (const NpsUpdate& u : out.nps_updates) {
        const VersionKey version = nps_to_version(u.nps, bins);
        const auto annotations = annotate_gate_arcs(
            netlist_, u.gate, sized_->context_library(), version,
            config_.budget, config_.arc_policy, 0.0, &u.nps,
            &sized_->context_cache());
        auto row = gate_corner_factors(netlist_, u.gate, annotations,
                                       config_.budget, Corner::Worst);
        if (row != factors_[u.gate]) changed.push_back(u.gate);
        out.factor_rows.emplace_back(u.gate, std::move(row));
      }
      const OverlayScale scale(factors_, out.factor_rows);
      out.timing = sta_.run_what_if(scale, current_, {}, changed);
      break;
    }
  }
  out.gain_ps = current_.critical_delay_ps - out.timing.critical_delay_ps;
}

bool EcoOptimizer::better(const Evaluation& a, const Evaluation& b) {
  if (a.gain_ps != b.gain_ps) return a.gain_ps > b.gain_ps;
  if (a.area_delta != b.area_delta) return a.area_delta < b.area_delta;
  if (a.move.gate != b.move.gate) return a.move.gate < b.move.gate;
  if (a.move.kind != b.move.kind)
    return static_cast<int>(a.move.kind) < static_cast<int>(b.move.kind);
  if (a.move.to_cell != b.move.to_cell) return a.move.to_cell < b.move.to_cell;
  if (std::abs(a.move.dx) != std::abs(b.move.dx))
    return std::abs(a.move.dx) < std::abs(b.move.dx);
  return a.move.dx > b.move.dx;
}

void EcoOptimizer::commit(Evaluation&& best) {
  switch (best.move.kind) {
    case MoveKind::Upsize:
    case MoveKind::Downsize:
      netlist_.set_gate_cell(best.move.gate, best.move.to_cell);
      sta_.update_gate_master(best.move.gate);
      break;
    case MoveKind::Respace: {
      placement_.shift_instance(best.move.gate, best.move.dx);
      const ContextBins& bins = sized_->context_library().bins();
      for (const NpsUpdate& u : best.nps_updates) {
        nps_[u.gate] = u.nps;
        versions_[u.gate] = nps_to_version(u.nps, bins);
      }
      for (OverlayScale::Row& row : best.factor_rows)
        factors_[row.first] = std::move(row.second);
      break;
    }
  }
  // The what-if result is exact, so it becomes the committed timing.
  current_ = std::move(best.timing);
}

EcoResult EcoOptimizer::run(ThreadPool* pool) {
  EcoResult result;
  result.benchmark = netlist_.name();
  result.mode = config_.mode;
  result.clock_period_ps = config_.clock_period_ps;
  result.initial_worst_slack_ps = worst_slack_ps();

  MetricsRegistry& metrics = MetricsRegistry::global();
  Counter& evaluated = metrics.counter("eco.candidates_evaluated");
  Counter& committed = metrics.counter("eco.moves_committed");
  TimerStat& eval_timer = metrics.timer("eco.candidate_eval");

  while (result.trajectory.size() < config_.max_moves &&
         worst_slack_ps() < 0.0) {
    const FactorsScale scale(factors_);
    const SlackResult slack =
        sta_.slack_from(scale, current_, config_.clock_period_ps);
    const double threshold =
        slack.worst_slack_ps + config_.near_critical_window_ps;
    const std::vector<Move> candidates =
        enumerate_candidates(slack.slack_ps, threshold);
    if (candidates.empty()) break;

    // Price every candidate into its own slot; with a pool the pricing
    // fans out, and the serial argmax below keeps selection (and thus
    // the whole trajectory) schedule-independent.
    std::vector<Evaluation> evals(candidates.size());
    {
      const ScopedTimer timer(eval_timer);
      const auto price = [&](std::size_t i) {
        evaluate(candidates[i], evals[i]);
      };
      if (pool != nullptr) {
        pool->parallel_for(0, candidates.size(), price);
      } else {
        for (std::size_t i = 0; i < candidates.size(); ++i) price(i);
      }
    }
    evaluated.add(candidates.size());
    result.candidates_evaluated += candidates.size();

    std::size_t best = 0;
    for (std::size_t i = 1; i < evals.size(); ++i)
      if (better(evals[i], evals[best])) best = i;
    if (evals[best].gain_ps < config_.min_gain_ps) break;  // stalled

    Evaluation chosen = std::move(evals[best]);
    EcoMoveRecord record;
    record.index = result.trajectory.size() + 1;
    record.kind = chosen.move.kind;
    record.gate = chosen.move.gate;
    record.gate_name = netlist_.gates()[chosen.move.gate].name;
    record.gain_ps = chosen.gain_ps;
    record.area_delta = chosen.area_delta;
    const CellLibrary& lib = netlist_.library();
    switch (chosen.move.kind) {
      case MoveKind::Upsize:
        ++result.upsizes;
        result.upsize_area_delta += chosen.area_delta;
        result.total_area_delta += chosen.area_delta;
        record.detail =
            lib.master(netlist_.gates()[chosen.move.gate].cell_index).name() +
            " -> " + lib.master(chosen.move.to_cell).name();
        break;
      case MoveKind::Downsize:
        ++result.downsizes;
        result.total_area_delta += chosen.area_delta;
        record.detail =
            lib.master(netlist_.gates()[chosen.move.gate].cell_index).name() +
            " -> " + lib.master(chosen.move.to_cell).name();
        break;
      case MoveKind::Respace:
        ++result.respaces;
        record.detail = "dx " + std::string(chosen.move.dx >= 0 ? "+" : "") +
                        fmt(chosen.move.dx, 0) + " nm";
        break;
    }
    commit(std::move(chosen));
    committed.add(1);
    record.worst_slack_ps = worst_slack_ps();
    result.trajectory.push_back(std::move(record));
  }

  result.final_worst_slack_ps = worst_slack_ps();
  result.met_timing = result.final_worst_slack_ps >= 0.0;
  return result;
}

}  // namespace sva
