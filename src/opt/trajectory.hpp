#pragma once
// Rendering of ECO optimization trajectories: the per-move convergence
// table for the CLI and a CSV artifact (eco_trajectory.csv) for external
// plotting.

#include <string>

#include "opt/eco.hpp"

namespace sva {

/// Aligned text table: one row per committed move plus a summary line.
std::string trajectory_table(const EcoResult& result);

/// CSV with one row per committed move (header: move, kind, gate, detail,
/// gain_ps, worst_slack_ps, area_delta).
std::string trajectory_csv(const EcoResult& result);

/// One-paragraph summary of a finished run (met/missed, move counts,
/// area cost) for CLI and bench output.
std::string trajectory_summary(const EcoResult& result);

}  // namespace sva
