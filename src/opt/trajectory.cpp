#include "opt/trajectory.hpp"

#include "report/csv.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

namespace sva {

namespace {

std::vector<std::vector<std::string>> trajectory_rows(
    const EcoResult& result) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(result.trajectory.size());
  for (const EcoMoveRecord& m : result.trajectory)
    rows.push_back({std::to_string(m.index), move_kind_name(m.kind),
                    m.gate_name, m.detail, fmt(m.gain_ps, 2),
                    fmt(m.worst_slack_ps, 2), fmt(m.area_delta, 2)});
  return rows;
}

}  // namespace

std::string trajectory_table(const EcoResult& result) {
  Table table({"#", "Move", "Gate", "Detail", "Gain ps", "WS ps", "dArea"});
  for (auto& row : trajectory_rows(result)) table.add_row(std::move(row));
  return table.render() + trajectory_summary(result);
}

std::string trajectory_csv(const EcoResult& result) {
  return rows_to_csv({"move", "kind", "gate", "detail", "gain_ps",
                      "worst_slack_ps", "area_delta"},
                     trajectory_rows(result));
}

std::string trajectory_summary(const EcoResult& result) {
  std::string out = result.benchmark + " (" +
                    eco_corner_mode_name(result.mode) + " corner, clock " +
                    fmt(result.clock_period_ps, 1) + " ps): ";
  out += result.met_timing ? "met timing" : "MISSED timing";
  out += ", worst slack " + fmt(result.initial_worst_slack_ps, 2) + " -> " +
         fmt(result.final_worst_slack_ps, 2) + " ps\n";
  out += "  " + std::to_string(result.moves_committed()) + " moves (" +
         std::to_string(result.upsizes) + " upsize, " +
         std::to_string(result.downsizes) + " downsize, " +
         std::to_string(result.respaces) + " respace), upsize area +" +
         fmt(result.upsize_area_delta, 2) + "x, net area " +
         std::string(result.total_area_delta >= 0 ? "+" : "") +
         fmt(result.total_area_delta, 2) + "x, " +
         std::to_string(result.candidates_evaluated) +
         " candidates evaluated\n";
  return out;
}

}  // namespace sva
