#pragma once
// Drive-strength ladder for ECO gate sizing.
//
// The base library's masters are expanded with width-scaled variants
// (cell/characterize.hpp: identical footprint and poly geometry, device
// widths multiplied by a ladder of factors).  Because printing depends
// only on poly geometry, every variant shares its base cell's library-OPC
// printed CDs, boundary-device behaviour, and context classification --
// swapping a placed gate between rungs of the ladder never perturbs the
// placement, any neighbour's nps, or any arc's corner factors.  Only the
// electrical characterization changes: a wider rung drives harder
// (R ~ 1/multiplier) but presents proportionally larger pin caps to its
// fanin nets.  That trade -- speed here, load upstream -- is exactly what
// the ECO loop's exact what-if evaluation arbitrates.
//
// Layout invariant: the base masters keep their indices [0, base_count),
// so netlists generated against the expanded library are structurally
// identical to ones generated against the base library (the ISCAS85
// generator draws cells from the fixed 10-entry mix at indices 0..9).
// Variants are appended after the base block.

#include <memory>
#include <vector>

#include "cell/characterize.hpp"
#include "cell/context_library.hpp"
#include "cell/library.hpp"
#include "cell/library_opc.hpp"
#include "engine/context_cache.hpp"
#include "litho/cd_model.hpp"

namespace sva {

class SizedLibrary {
 public:
  /// The default ladder: a sub-unit rung for downsizing plus three
  /// upsizing rungs with ~1.45x steps.  Must contain 1.0 (the base cell
  /// itself is a rung) and be strictly increasing.
  static std::vector<double> default_multipliers();

  /// Expand `base` with width variants and re-derive the timing views the
  /// ECO loop needs.  `base_opc` is index-aligned with `base` (each
  /// variant reuses its base cell's entry -- the poly geometry it was
  /// measured on is unchanged).  `boundary_model` must outlive this
  /// object; everything else is copied or owned.
  SizedLibrary(const CellLibrary& base, const ElectricalTech& electrical,
               const std::vector<LibraryOpcCellResult>& base_opc,
               const CdModel& boundary_model, const ContextBins& bins,
               std::vector<double> multipliers = default_multipliers());

  // Non-copyable: internal components hold cross-references.
  SizedLibrary(const SizedLibrary&) = delete;
  SizedLibrary& operator=(const SizedLibrary&) = delete;

  /// The expanded library (base masters first, variants appended).
  const CellLibrary& library() const { return *library_; }
  const CharacterizedLibrary& characterized() const { return characterized_; }
  const ContextLibrary& context_library() const { return *context_; }
  const ContextCache& context_cache() const { return *cache_; }

  std::size_t base_count() const { return base_count_; }
  const std::vector<double>& multipliers() const { return multipliers_; }

  /// Ladder navigation.  `cell` is any expanded-library index.
  std::size_t base_of(std::size_t cell) const;
  std::size_t rung_of(std::size_t cell) const;  ///< index into multipliers()
  std::size_t at_rung(std::size_t base, std::size_t rung) const;
  bool can_upsize(std::size_t cell) const;
  bool can_downsize(std::size_t cell) const;
  std::size_t upsized(std::size_t cell) const;    ///< one rung up
  std::size_t downsized(std::size_t cell) const;  ///< one rung down

  /// Device-width multiplier of a cell relative to its base master (the
  /// ECO loop's area proxy: footprints are identical, so active area
  /// scales with total device width).
  double multiplier_of(std::size_t cell) const;

 private:
  std::vector<double> multipliers_;
  std::size_t base_count_ = 0;
  std::size_t unit_rung_ = 0;  ///< index of multiplier 1.0
  std::unique_ptr<CellLibrary> library_;
  CharacterizedLibrary characterized_;
  std::unique_ptr<ContextLibrary> context_;
  std::unique_ptr<ContextCache> cache_;
  std::vector<std::size_t> base_of_;               // per expanded cell
  std::vector<std::size_t> rung_of_;               // per expanded cell
  std::vector<std::vector<std::size_t>> ladder_;   // [base][rung] -> cell
};

}  // namespace sva
