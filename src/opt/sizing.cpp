#include "opt/sizing.hpp"

#include <cmath>
#include <string>

#include "util/error.hpp"

namespace sva {

namespace {

std::string variant_name(const CellMaster& base, double multiplier) {
  const int pct = static_cast<int>(std::lround(multiplier * 100.0));
  return base.name() + "_W" + std::to_string(pct);
}

}  // namespace

std::vector<double> SizedLibrary::default_multipliers() {
  return {0.65, 1.0, 1.45, 2.1, 3.0};
}

SizedLibrary::SizedLibrary(const CellLibrary& base,
                           const ElectricalTech& electrical,
                           const std::vector<LibraryOpcCellResult>& base_opc,
                           const CdModel& boundary_model,
                           const ContextBins& bins,
                           std::vector<double> multipliers)
    : multipliers_(std::move(multipliers)), base_count_(base.size()) {
  SVA_REQUIRE(base_opc.size() == base.size());
  SVA_REQUIRE_MSG(!multipliers_.empty(), "empty sizing ladder");
  unit_rung_ = multipliers_.size();
  for (std::size_t r = 0; r < multipliers_.size(); ++r) {
    SVA_REQUIRE_MSG(multipliers_[r] > 0.0, "multipliers must be positive");
    SVA_REQUIRE_MSG(r == 0 || multipliers_[r] > multipliers_[r - 1],
                    "multipliers must be strictly increasing");
    if (std::abs(multipliers_[r] - 1.0) < 1e-12) unit_rung_ = r;
  }
  SVA_REQUIRE_MSG(unit_rung_ < multipliers_.size(),
                  "the ladder must contain 1.0 (the base cell is a rung)");

  // Base masters keep their indices; variants are appended base-major.
  CellLibrary::Masters masters(base.masters());
  ladder_.assign(base_count_, std::vector<std::size_t>(multipliers_.size()));
  base_of_.resize(base_count_);
  rung_of_.resize(base_count_);
  std::vector<LibraryOpcCellResult> opc(base_opc);
  for (std::size_t b = 0; b < base_count_; ++b) {
    base_of_[b] = b;
    rung_of_[b] = unit_rung_;
    ladder_[b][unit_rung_] = b;
    for (std::size_t r = 0; r < multipliers_.size(); ++r) {
      if (r == unit_rung_) continue;
      ladder_[b][r] = masters.size();
      base_of_.push_back(b);
      rung_of_.push_back(r);
      masters.push_back(scale_device_widths(
          base.master(b), multipliers_[r],
          variant_name(base.master(b), multipliers_[r])));
      opc.push_back(base_opc[b]);
    }
  }

  library_ = std::make_unique<CellLibrary>(std::move(masters));
  characterized_ = characterize_library(*library_, electrical);
  context_ = std::make_unique<ContextLibrary>(characterized_, std::move(opc),
                                              boundary_model, bins);
  cache_ = std::make_unique<ContextCache>(*context_);
}

std::size_t SizedLibrary::base_of(std::size_t cell) const {
  SVA_REQUIRE(cell < base_of_.size());
  return base_of_[cell];
}

std::size_t SizedLibrary::rung_of(std::size_t cell) const {
  SVA_REQUIRE(cell < rung_of_.size());
  return rung_of_[cell];
}

std::size_t SizedLibrary::at_rung(std::size_t base, std::size_t rung) const {
  SVA_REQUIRE(base < base_count_);
  SVA_REQUIRE(rung < multipliers_.size());
  return ladder_[base][rung];
}

bool SizedLibrary::can_upsize(std::size_t cell) const {
  return rung_of(cell) + 1 < multipliers_.size();
}

bool SizedLibrary::can_downsize(std::size_t cell) const {
  return rung_of(cell) > 0;
}

std::size_t SizedLibrary::upsized(std::size_t cell) const {
  SVA_REQUIRE(can_upsize(cell));
  return ladder_[base_of(cell)][rung_of(cell) + 1];
}

std::size_t SizedLibrary::downsized(std::size_t cell) const {
  SVA_REQUIRE(can_downsize(cell));
  return ladder_[base_of(cell)][rung_of(cell) - 1];
}

double SizedLibrary::multiplier_of(std::size_t cell) const {
  return multipliers_[rung_of(cell)];
}

}  // namespace sva
