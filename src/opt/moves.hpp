#pragma once
// ECO move vocabulary and the ArcScaleProviders that price candidates.
//
// Two move families (Sec. 6 of the paper motivates both knobs):
//
//   * sizing (Upsize / Downsize): swap a gate to an adjacent rung of its
//     drive-strength ladder (opt/sizing.hpp).  Printing-context-neutral,
//     so the committed corner factors are reused unchanged; the candidate
//     is priced with Sta::run_what_if's hypothetical master swap.
//
//   * context re-spacing (Respace): shift a gate inside its row
//     whitespace.  The poly spacings of the gate and its abutting
//     neighbours change, re-binning boundary devices and re-labelling
//     arcs -- a move with zero area cost that only a context-aware corner
//     model can see (under a traditional uniform corner every position
//     prices identically, which is the mechanism behind the headline
//     SVA-vs-traditional ECO comparison).
//
// FactorsScale serves the committed per-(gate, arc) corner factors;
// OverlayScale overrides a handful of gate rows for one respace candidate
// without touching shared state, so any number of candidates can be
// priced concurrently.

#include <cstddef>
#include <utility>
#include <vector>

#include "sta/scale.hpp"
#include "util/units.hpp"

namespace sva {

enum class MoveKind { Upsize = 0, Downsize = 1, Respace = 2 };

const char* move_kind_name(MoveKind kind);

/// One candidate ECO move.
struct Move {
  MoveKind kind = MoveKind::Upsize;
  std::size_t gate = 0;
  std::size_t to_cell = 0;  ///< target master (sizing moves)
  Nm dx = 0.0;              ///< row shift (respace moves)
};

/// ArcScaleProvider view of an externally owned factors matrix (the ECO
/// loop's committed state).  The matrix must outlive the provider and
/// must not be resized while a provider reads it.
class FactorsScale final : public ArcScaleProvider {
 public:
  explicit FactorsScale(const std::vector<std::vector<double>>& factors)
      : factors_(&factors) {}

  double scale(std::size_t gate, std::size_t arc_index) const override {
    return (*factors_)[gate][arc_index];
  }

 private:
  const std::vector<std::vector<double>>* factors_;
};

/// A factors matrix with a few replaced gate rows: the hypothetical
/// post-move factors of one respace candidate.  Rows are sorted by gate;
/// lookups off the overlay fall through to the base matrix.
class OverlayScale final : public ArcScaleProvider {
 public:
  using Row = std::pair<std::size_t, std::vector<double>>;

  /// `rows` must be sorted by gate index (ascending, unique).
  OverlayScale(const std::vector<std::vector<double>>& base,
               const std::vector<Row>& rows);

  double scale(std::size_t gate, std::size_t arc_index) const override;

 private:
  const std::vector<std::vector<double>>* base_;
  const std::vector<Row>* rows_;
};

}  // namespace sva
