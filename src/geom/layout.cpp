#include "geom/layout.hpp"

#include "util/error.hpp"

namespace sva {

std::string layer_name(Layer layer) {
  switch (layer) {
    case Layer::Poly: return "POLY";
    case Layer::Diffusion: return "DIFF";
    case Layer::DummyPoly: return "DUMMY";
  }
  return "?";
}

void Layout::merge_translated(const Layout& other, Nm dx, Nm dy) {
  shapes_.reserve(shapes_.size() + other.shapes_.size());
  for (const Shape& s : other.shapes_)
    shapes_.push_back({s.layer, s.rect.translated(dx, dy)});
}

std::vector<Rect> Layout::on_layer(Layer layer) const {
  std::vector<Rect> out;
  for (const Shape& s : shapes_)
    if (s.layer == layer) out.push_back(s.rect);
  return out;
}

std::vector<Rect> Layout::printable_poly() const {
  std::vector<Rect> out;
  for (const Shape& s : shapes_)
    if (s.layer == Layer::Poly || s.layer == Layer::DummyPoly)
      out.push_back(s.rect);
  return out;
}

Rect Layout::bounding_box() const {
  SVA_REQUIRE_MSG(!shapes_.empty(), "bounding_box of empty layout");
  Rect bb = shapes_.front().rect;
  for (const Shape& s : shapes_) bb = bb.united(s.rect);
  return bb;
}

}  // namespace sva
