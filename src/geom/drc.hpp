#pragma once
// Minimal design-rule checking for the poly layer.
//
// The methodology's layouts (cell masters, dummy environments, placed
// rows) must satisfy the printing-related rules the OPC and CD models
// assume: minimum poly width, minimum same-layer spacing for features
// that overlap vertically, and a boundary half-space so abutted cells
// never bring poly closer than the minimum spacing.  The checker is used
// by tests to validate the shipped library and placements, and exposed so
// users adding cells can validate theirs.

#include <string>
#include <vector>

#include "geom/layout.hpp"

namespace sva {

struct DrcRules {
  Nm min_poly_width = 60.0;
  Nm min_poly_space = 140.0;  ///< for vertically overlapping features
};

enum class DrcViolationKind { Width, Spacing };

struct DrcViolation {
  DrcViolationKind kind = DrcViolationKind::Width;
  Rect a;              ///< offending shape
  Rect b;              ///< second shape (Spacing only)
  Nm measured = 0.0;
  Nm required = 0.0;

  std::string describe() const;
};

/// Check all printable poly (POLY + DUMMY) of a layout.
std::vector<DrcViolation> check_poly(const Layout& layout,
                                     const DrcRules& rules = {});

/// Boundary rule for a cell-sized layout of the given width: every poly
/// feature keeps `half_space` clearance from x = 0 and x = width, so any
/// abutment yields at least 2 * half_space of poly spacing.
std::vector<DrcViolation> check_boundary(const Layout& layout, Nm cell_width,
                                         Nm half_space = 70.0);

}  // namespace sva
