#pragma once
// Poly-spacing queries.
//
// The systematic through-pitch CD model needs, for every gate, the distance
// from its left/right edge to the nearest neighbouring poly feature that
// overlaps it vertically (within the stepper's radius of influence).
// SpacingIndex answers those queries over a flat set of poly rectangles.
//
// Gates are vertical poly stripes; only horizontal (x) spacing matters --
// the paper explicitly ignores vertical neighbours ("negligible impact on
// gate CD", footnote 2).

#include <optional>
#include <vector>

#include "geom/rect.hpp"

namespace sva {

/// A neighbouring poly feature found by a spacing query.
struct Neighbor {
  Nm spacing = 0.0;   ///< edge-to-edge clear distance (>= 0)
  Nm width = 0.0;     ///< width of the neighbouring feature
  Rect rect;          ///< the feature itself
};

/// Immutable index over a set of (printable) poly rectangles.
class SpacingIndex {
 public:
  explicit SpacingIndex(std::vector<Rect> poly_rects);

  /// Nearest feature strictly to the left of `gate` (its right edge at or
  /// left of gate.x_lo) that overlaps `gate` in y.  Empty if none exists
  /// within `max_distance`.
  std::optional<Neighbor> nearest_left(const Rect& gate,
                                       Nm max_distance) const;

  /// Mirror image of nearest_left.
  std::optional<Neighbor> nearest_right(const Rect& gate,
                                        Nm max_distance) const;

  /// All features overlapping `gate` in y whose clear distance from the
  /// gate is at most `max_distance`, on either side, nearest first.
  /// Used to build the local 1-D mask pattern for aerial-image simulation.
  std::vector<Neighbor> neighbors_left(const Rect& gate,
                                       Nm max_distance) const;
  std::vector<Neighbor> neighbors_right(const Rect& gate,
                                        Nm max_distance) const;

  std::size_t size() const { return rects_.size(); }

 private:
  // Rects sorted by x_lo; by_x_hi_ holds indices sorted by x_hi for
  // left-neighbour scans.
  std::vector<Rect> rects_;
  std::vector<std::size_t> by_x_hi_;

  std::vector<Neighbor> collect_side(const Rect& gate, Nm max_distance,
                                     bool left) const;
};

}  // namespace sva
