#pragma once
// Layout database: a flat collection of rectangles on named layers.
//
// The cell layouts in this system use three layers: POLY (gate material,
// the layer whose printed linewidth the paper's methodology models),
// DIFFUSION (active area; a poly rect crossing diffusion forms a device),
// and DUMMY_POLY (non-functional shapes inserted by the library-OPC
// environment emulation, Fig. 3 of the paper).

#include <string>
#include <vector>

#include "geom/rect.hpp"

namespace sva {

enum class Layer { Poly, Diffusion, DummyPoly };

/// Printable layer name ("POLY", "DIFF", "DUMMY").
std::string layer_name(Layer layer);

struct Shape {
  Layer layer = Layer::Poly;
  Rect rect;

  friend bool operator==(const Shape&, const Shape&) = default;
};

/// A flat (already instantiated) piece of layout.
class Layout {
 public:
  Layout() = default;

  void add(Layer layer, const Rect& rect) { shapes_.push_back({layer, rect}); }
  void add(const Shape& shape) { shapes_.push_back(shape); }

  /// Append every shape of `other`, shifted by (dx, dy).  This is how cell
  /// masters are instantiated into a placed design or into a dummy
  /// environment.
  void merge_translated(const Layout& other, Nm dx, Nm dy);

  const std::vector<Shape>& shapes() const { return shapes_; }
  std::size_t size() const { return shapes_.size(); }
  bool empty() const { return shapes_.empty(); }

  /// All rectangles on one layer.
  std::vector<Rect> on_layer(Layer layer) const;

  /// All rectangles that behave as printed poly for lithography purposes:
  /// functional poly plus dummy poly.
  std::vector<Rect> printable_poly() const;

  /// Bounding box of all shapes; requires a non-empty layout.
  Rect bounding_box() const;

  void clear() { shapes_.clear(); }

 private:
  std::vector<Shape> shapes_;
};

}  // namespace sva
