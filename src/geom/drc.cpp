#include "geom/drc.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace sva {

std::string DrcViolation::describe() const {
  switch (kind) {
    case DrcViolationKind::Width:
      return "poly width " + fmt(measured, 1) + " < " + fmt(required, 1) +
             " at x [" + fmt(a.x_lo, 1) + ", " + fmt(a.x_hi, 1) + "]";
    case DrcViolationKind::Spacing:
      return "poly space " + fmt(measured, 1) + " < " + fmt(required, 1) +
             " between x " + fmt(a.x_hi, 1) + " and x " + fmt(b.x_lo, 1);
  }
  return "?";
}

std::vector<DrcViolation> check_poly(const Layout& layout,
                                     const DrcRules& rules) {
  SVA_REQUIRE(rules.min_poly_width > 0.0);
  SVA_REQUIRE(rules.min_poly_space >= 0.0);

  std::vector<Rect> poly = layout.printable_poly();
  std::sort(poly.begin(), poly.end(),
            [](const Rect& a, const Rect& b) { return a.x_lo < b.x_lo; });

  std::vector<DrcViolation> violations;
  for (const Rect& r : poly) {
    if (r.width() < rules.min_poly_width - 1e-9) {
      DrcViolation v;
      v.kind = DrcViolationKind::Width;
      v.a = r;
      v.measured = r.width();
      v.required = rules.min_poly_width;
      violations.push_back(v);
    }
  }
  // Pairwise spacing for vertically overlapping features; the x-sorted
  // sweep bounds the scan window.
  for (std::size_t i = 0; i < poly.size(); ++i) {
    for (std::size_t j = i + 1; j < poly.size(); ++j) {
      const Nm dx = poly[j].x_lo - poly[i].x_hi;
      if (dx >= rules.min_poly_space) break;  // sorted: no closer pairs left
      if (!poly[i].y_overlaps(poly[j])) continue;
      if (poly[i].x_overlaps(poly[j])) continue;  // merged/abutting poly
      if (dx < rules.min_poly_space - 1e-9) {
        DrcViolation v;
        v.kind = DrcViolationKind::Spacing;
        v.a = poly[i];
        v.b = poly[j];
        v.measured = dx;
        v.required = rules.min_poly_space;
        violations.push_back(v);
      }
    }
  }
  return violations;
}

std::vector<DrcViolation> check_boundary(const Layout& layout, Nm cell_width,
                                         Nm half_space) {
  SVA_REQUIRE(cell_width > 0.0);
  SVA_REQUIRE(half_space >= 0.0);
  std::vector<DrcViolation> violations;
  for (const Rect& r : layout.printable_poly()) {
    const Nm left = r.x_lo;
    const Nm right = cell_width - r.x_hi;
    const Nm clearance = std::min(left, right);
    if (clearance < half_space - 1e-9) {
      DrcViolation v;
      v.kind = DrcViolationKind::Spacing;
      v.a = r;
      v.b = r;
      v.measured = clearance;
      v.required = half_space;
      violations.push_back(v);
    }
  }
  return violations;
}

}  // namespace sva
