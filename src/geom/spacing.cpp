#include "geom/spacing.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace sva {
namespace {

// Tolerance when deciding whether a rect is the gate itself or lies on the
// queried side; layout coordinates are integers-in-double so 1e-6 nm is
// far below any real spacing.
constexpr Nm kEps = 1e-6;

}  // namespace

SpacingIndex::SpacingIndex(std::vector<Rect> poly_rects)
    : rects_(std::move(poly_rects)) {
  std::sort(rects_.begin(), rects_.end(),
            [](const Rect& a, const Rect& b) { return a.x_lo < b.x_lo; });
  by_x_hi_.resize(rects_.size());
  for (std::size_t i = 0; i < rects_.size(); ++i) by_x_hi_[i] = i;
  std::sort(by_x_hi_.begin(), by_x_hi_.end(), [this](auto a, auto b) {
    return rects_[a].x_hi < rects_[b].x_hi;
  });
}

std::vector<Neighbor> SpacingIndex::collect_side(const Rect& gate,
                                                 Nm max_distance,
                                                 bool left) const {
  SVA_REQUIRE(max_distance >= 0.0);
  std::vector<Neighbor> found;
  if (left) {
    // Candidates: rects with x_hi in [gate.x_lo - max_distance, gate.x_lo].
    const Nm lo = gate.x_lo - max_distance;
    // Binary search over by_x_hi_ for the first candidate.
    auto first = std::lower_bound(
        by_x_hi_.begin(), by_x_hi_.end(), lo,
        [this](std::size_t i, Nm v) { return rects_[i].x_hi < v; });
    for (auto it = first; it != by_x_hi_.end(); ++it) {
      const Rect& r = rects_[*it];
      if (r.x_hi > gate.x_lo + kEps) break;
      if (!r.y_overlaps(gate)) continue;
      if (r == gate) continue;  // skip the gate itself
      found.push_back({gate.x_lo - r.x_hi, r.width(), r});
    }
  } else {
    const Nm hi = gate.x_hi + max_distance;
    auto first = std::lower_bound(
        rects_.begin(), rects_.end(), gate.x_hi - kEps,
        [](const Rect& r, Nm v) { return r.x_lo < v; });
    for (auto it = first; it != rects_.end(); ++it) {
      if (it->x_lo > hi) break;
      if (!it->y_overlaps(gate)) continue;
      if (*it == gate) continue;
      found.push_back({it->x_lo - gate.x_hi, it->width(), *it});
    }
  }
  std::sort(found.begin(), found.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.spacing < b.spacing;
            });
  return found;
}

std::optional<Neighbor> SpacingIndex::nearest_left(const Rect& gate,
                                                   Nm max_distance) const {
  auto all = collect_side(gate, max_distance, /*left=*/true);
  if (all.empty()) return std::nullopt;
  return all.front();
}

std::optional<Neighbor> SpacingIndex::nearest_right(const Rect& gate,
                                                    Nm max_distance) const {
  auto all = collect_side(gate, max_distance, /*left=*/false);
  if (all.empty()) return std::nullopt;
  return all.front();
}

std::vector<Neighbor> SpacingIndex::neighbors_left(const Rect& gate,
                                                   Nm max_distance) const {
  return collect_side(gate, max_distance, /*left=*/true);
}

std::vector<Neighbor> SpacingIndex::neighbors_right(const Rect& gate,
                                                    Nm max_distance) const {
  return collect_side(gate, max_distance, /*left=*/false);
}

}  // namespace sva
