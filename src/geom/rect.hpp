#pragma once
// Axis-aligned rectangle in layout coordinates (nanometres).
//
// All layout geometry in this system is Manhattan, matching standard-cell
// poly/diffusion shapes.  A Rect is a plain value type (Core Guidelines
// C.1/C.2: struct with a weak invariant enforced by make()).

#include "util/error.hpp"
#include "util/units.hpp"

namespace sva {

struct Rect {
  Nm x_lo = 0.0;
  Nm y_lo = 0.0;
  Nm x_hi = 0.0;
  Nm y_hi = 0.0;

  /// Construct a validated rectangle (lo <= hi on both axes).
  static Rect make(Nm x_lo, Nm y_lo, Nm x_hi, Nm y_hi) {
    SVA_REQUIRE(x_lo <= x_hi && y_lo <= y_hi);
    return Rect{x_lo, y_lo, x_hi, y_hi};
  }

  Nm width() const { return x_hi - x_lo; }
  Nm height() const { return y_hi - y_lo; }
  Nm area() const { return width() * height(); }
  Nm x_center() const { return 0.5 * (x_lo + x_hi); }
  Nm y_center() const { return 0.5 * (y_lo + y_hi); }

  Rect translated(Nm dx, Nm dy) const {
    return Rect{x_lo + dx, y_lo + dy, x_hi + dx, y_hi + dy};
  }

  /// True if the two rectangles overlap in y (with positive overlap
  /// length), the criterion used when deciding whether a neighbouring poly
  /// shape influences a gate's printing.
  bool y_overlaps(const Rect& other) const {
    return y_lo < other.y_hi && other.y_lo < y_hi;
  }

  bool x_overlaps(const Rect& other) const {
    return x_lo < other.x_hi && other.x_lo < x_hi;
  }

  bool intersects(const Rect& other) const {
    return x_overlaps(other) && y_overlaps(other);
  }

  bool contains(Nm x, Nm y) const {
    return x >= x_lo && x <= x_hi && y >= y_lo && y <= y_hi;
  }

  /// Smallest rectangle covering both.
  Rect united(const Rect& other) const {
    return Rect{x_lo < other.x_lo ? x_lo : other.x_lo,
                y_lo < other.y_lo ? y_lo : other.y_lo,
                x_hi > other.x_hi ? x_hi : other.x_hi,
                y_hi > other.y_hi ? y_hi : other.y_hi};
  }

  friend bool operator==(const Rect&, const Rect&) = default;
};

}  // namespace sva
