#pragma once
// Deterministic multi-circuit batch runner over the SVA flow.
//
// A batch is a list of jobs (benchmark circuit names today; the struct
// leaves room for per-job knobs).  Jobs fan out across the pool; inside a
// job the six corner STA runs fan out again, and optionally each run
// levelizes across the pool too -- all three tiers compose because waiting
// threads execute queued work (see thread_pool.hpp).  Results land in a
// vector indexed by job, so the output ordering -- and, because every
// computation is bit-exact under reordering, the output values -- are
// independent of thread count and schedule.

#include <cstdint>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "engine/thread_pool.hpp"
#include "util/cancel.hpp"

namespace sva {

struct BatchJob {
  std::string circuit;  ///< built-in benchmark name (e.g. "C432")
};

struct BatchOptions {
  bool parallel_corners = true;  ///< fan the 6 corner runs out as tasks
  bool parallel_sta = true;      ///< levelized parallel_for inside each run
  /// Per-job fault isolation: a throwing job records a Failed outcome (and
  /// a "batch_job_failed" diagnostic) in its own slot, deterministically,
  /// and every other job still runs.  false => run() raises the first
  /// failure in job order after all jobs settle (the CLI's --strict).
  bool keep_going = true;
  /// Cooperative cancellation: polled at every job boundary and inside
  /// each job's corner fan-out / levelized STA.  A job in flight when the
  /// token trips finishes or unwinds cleanly; its slot and every not-yet-
  /// started slot are marked cancelled (run() itself still returns).
  const CancelToken* cancel = nullptr;
};

/// Terminal classification of one batch job.
struct BatchJobOutcome {
  bool ok = true;
  std::string error;  ///< empty when ok
  /// The job did not run to completion because the run was cancelled.  A
  /// cancelled slot is *incomplete*, not failed: it is excluded from
  /// failed_count() and is exactly the work a resumed run re-executes.
  bool cancelled = false;
};

struct BatchResult {
  /// One per job, in job order.  A failed job's slot carries the circuit
  /// name with zeroed results -- deterministic regardless of where in the
  /// job the fault hit.
  std::vector<CircuitAnalysis> analyses;
  std::vector<BatchJobOutcome> outcomes;  ///< index-aligned with analyses
  double wall_seconds = 0.0;

  std::size_t failed_count() const;     ///< failed, excluding cancelled
  std::size_t cancelled_count() const;  ///< incomplete due to cancellation
  bool all_ok() const { return failed_count() == 0 && cancelled_count() == 0; }
};

class BatchRunner {
 public:
  /// `flow` and `pool` must outlive the runner.
  BatchRunner(const SvaFlow& flow, ThreadPool& pool,
              BatchOptions options = {});

  /// Run every job.  With `resume_from`, slots whose prior outcome is
  /// final (completed or deterministically failed -- anything not marked
  /// cancelled) are copied over and skipped; only cancelled slots
  /// re-execute.  Because each job is a pure function of (flow, circuit),
  /// the merged result is bit-identical to an uninterrupted run.
  /// `resume_from` must have one outcome per job, in the same job order
  /// (load_batch_checkpoint verifies this via the content hash).
  BatchResult run(const std::vector<BatchJob>& jobs,
                  const BatchResult* resume_from = nullptr) const;
  BatchResult run_names(const std::vector<std::string>& names) const;

 private:
  const SvaFlow* flow_;
  ThreadPool* pool_;
  BatchOptions options_;
};

/// Identity of a batch run for checkpoint validation: the flow's setup
/// content hash (library + tech + optics + binning) combined with the job
/// list.  Any difference in either produces a different hash, so a
/// checkpoint can never be resumed against inputs it was not written for.
std::uint64_t batch_content_hash(const SvaFlow& flow,
                                 const std::vector<BatchJob>& jobs);

/// Journal the final (non-cancelled) slots of `partial` to `path` in a
/// "batch"-kind checkpoint envelope (util/checkpoint.hpp).  Throws
/// sva::Error on IO failure.
void save_batch_checkpoint(const std::string& path, const SvaFlow& flow,
                           const std::vector<BatchJob>& jobs,
                           const BatchResult& partial);

/// Reload a batch checkpoint for exactly these (flow, jobs).  Slots absent
/// from the journal come back marked cancelled (i.e. to-run).  Throws
/// FileMissingError / SerializeError on absence, corruption, or an
/// identity mismatch.
BatchResult load_batch_checkpoint(const std::string& path,
                                  const SvaFlow& flow,
                                  const std::vector<BatchJob>& jobs);

}  // namespace sva
