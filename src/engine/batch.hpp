#pragma once
// Deterministic multi-circuit batch runner over the SVA flow.
//
// A batch is a list of jobs (benchmark circuit names today; the struct
// leaves room for per-job knobs).  Jobs fan out across the pool; inside a
// job the six corner STA runs fan out again, and optionally each run
// levelizes across the pool too -- all three tiers compose because waiting
// threads execute queued work (see thread_pool.hpp).  Results land in a
// vector indexed by job, so the output ordering -- and, because every
// computation is bit-exact under reordering, the output values -- are
// independent of thread count and schedule.

#include <string>
#include <vector>

#include "core/flow.hpp"
#include "engine/thread_pool.hpp"

namespace sva {

struct BatchJob {
  std::string circuit;  ///< built-in benchmark name (e.g. "C432")
};

struct BatchOptions {
  bool parallel_corners = true;  ///< fan the 6 corner runs out as tasks
  bool parallel_sta = true;      ///< levelized parallel_for inside each run
};

struct BatchResult {
  std::vector<CircuitAnalysis> analyses;  ///< one per job, in job order
  double wall_seconds = 0.0;
};

class BatchRunner {
 public:
  /// `flow` and `pool` must outlive the runner.
  BatchRunner(const SvaFlow& flow, ThreadPool& pool,
              BatchOptions options = {});

  BatchResult run(const std::vector<BatchJob>& jobs) const;
  BatchResult run_names(const std::vector<std::string>& names) const;

 private:
  const SvaFlow* flow_;
  ThreadPool* pool_;
  BatchOptions options_;
};

}  // namespace sva
