#pragma once
// Deterministic multi-circuit batch runner over the SVA flow.
//
// A batch is a list of jobs (benchmark circuit names today; the struct
// leaves room for per-job knobs).  Jobs fan out across the pool; inside a
// job the six corner STA runs fan out again, and optionally each run
// levelizes across the pool too -- all three tiers compose because waiting
// threads execute queued work (see thread_pool.hpp).  Results land in a
// vector indexed by job, so the output ordering -- and, because every
// computation is bit-exact under reordering, the output values -- are
// independent of thread count and schedule.

#include <string>
#include <vector>

#include "core/flow.hpp"
#include "engine/thread_pool.hpp"

namespace sva {

struct BatchJob {
  std::string circuit;  ///< built-in benchmark name (e.g. "C432")
};

struct BatchOptions {
  bool parallel_corners = true;  ///< fan the 6 corner runs out as tasks
  bool parallel_sta = true;      ///< levelized parallel_for inside each run
  /// Per-job fault isolation: a throwing job records a Failed outcome (and
  /// a "batch_job_failed" diagnostic) in its own slot, deterministically,
  /// and every other job still runs.  false => run() raises the first
  /// failure in job order after all jobs settle (the CLI's --strict).
  bool keep_going = true;
};

/// Terminal classification of one batch job.
struct BatchJobOutcome {
  bool ok = true;
  std::string error;  ///< empty when ok
};

struct BatchResult {
  /// One per job, in job order.  A failed job's slot carries the circuit
  /// name with zeroed results -- deterministic regardless of where in the
  /// job the fault hit.
  std::vector<CircuitAnalysis> analyses;
  std::vector<BatchJobOutcome> outcomes;  ///< index-aligned with analyses
  double wall_seconds = 0.0;

  std::size_t failed_count() const;
  bool all_ok() const { return failed_count() == 0; }
};

class BatchRunner {
 public:
  /// `flow` and `pool` must outlive the runner.
  BatchRunner(const SvaFlow& flow, ThreadPool& pool,
              BatchOptions options = {});

  BatchResult run(const std::vector<BatchJob>& jobs) const;
  BatchResult run_names(const std::vector<std::string>& names) const;

 private:
  const SvaFlow* flow_;
  ThreadPool* pool_;
  BatchOptions options_;
};

}  // namespace sva
