#include "engine/thread_pool.hpp"

#include <algorithm>
#include <chrono>

#include "engine/metrics.hpp"
#include "util/failpoint.hpp"

namespace sva {

std::size_t ThreadPool::default_thread_count() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads) {
  queues_.resize(std::max<std::size_t>(threads, 1));
  for (auto& q : queues_) q = std::make_unique<WorkerQueue>();
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    threads_.emplace_back([this, i] { worker_main(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    stop_.store(true, std::memory_order_relaxed);
  }
  sleep_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  const std::size_t qi =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[qi]->mu);
    queues_[qi]->tasks.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  {
    // Pairing with the predicate check under sleep_mu_ closes the
    // missed-wakeup race between the count increment and the notify.
    std::lock_guard<std::mutex> lock(sleep_mu_);
  }
  sleep_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& task) {
  WorkerQueue& own = *queues_[self];
  {
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  for (std::size_t off = 1; off < queues_.size(); ++off) {
    WorkerQueue& victim = *queues_[(self + off) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (victim.tasks.empty()) continue;
    task = std::move(victim.tasks.front());
    victim.tasks.pop_front();
    queued_.fetch_sub(1, std::memory_order_relaxed);
    steals_.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::global().counter("engine.steals").add();
    return true;
  }
  return false;
}

void ThreadPool::execute(std::function<void()>& task) {
  task();
  executed_.fetch_add(1, std::memory_order_relaxed);
  MetricsRegistry::global().counter("engine.tasks").add();
}

void ThreadPool::worker_main(std::size_t id) {
  std::function<void()> task;
  for (;;) {
    if (try_pop(id, task)) {
      execute(task);
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mu_);
    sleep_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_relaxed) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_relaxed) &&
        queued_.load(std::memory_order_acquire) == 0)
      return;
  }
}

bool ThreadPool::try_run_one() {
  if (queued_.load(std::memory_order_acquire) == 0) return false;
  std::function<void()> task;
  // External helpers scan from queue 0; their takes are not steals.
  for (std::size_t qi = 0; qi < queues_.size(); ++qi) {
    WorkerQueue& q = *queues_[qi];
    std::lock_guard<std::mutex> lock(q.mu);
    if (q.tasks.empty()) continue;
    task = std::move(q.tasks.front());
    q.tasks.pop_front();
    queued_.fetch_sub(1, std::memory_order_relaxed);
    break;
  }
  if (!task) return false;
  execute(task);
  return true;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain,
                              const CancelToken* cancel) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  if (grain == 0) {
    // ~4 chunks per execution lane keeps the steal market liquid without
    // drowning small levels in task overhead.
    const std::size_t lanes = thread_count() + 1;
    grain = std::max<std::size_t>(1, n / (4 * lanes));
  }
  if (threads_.empty() || n <= grain) {
    for (std::size_t lo = begin; lo < end; lo += grain) {
      if (cancel) cancel->check();  // chunk-granularity, like the pool path
      const std::size_t hi = std::min(end, lo + grain);
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }
    return;
  }
  TaskGroup group(*this, cancel);
  for (std::size_t lo = begin; lo < end; lo += grain) {
    const std::size_t hi = std::min(end, lo + grain);
    group.run([&fn, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  group.wait();
}

ThreadPool::Stats ThreadPool::stats() const {
  return {executed_.load(std::memory_order_relaxed),
          steals_.load(std::memory_order_relaxed)};
}

TaskGroup::~TaskGroup() {
  // A group abandoned with work in flight must still join it; swallow the
  // rethrow here (wait() is where callers observe failures).
  try {
    wait();
  } catch (...) {
  }
}

void TaskGroup::run(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  pool_->submit([this, fn = std::move(fn)] {
    std::exception_ptr error;
    try {
      // Inside the capture, so an injected task fault surfaces exactly
      // like a real one: rethrown at the group's wait(), where the owning
      // job's isolation boundary classifies it.
      SVA_FAILPOINT("engine.task");
      // Cancellation check rides the same capture: a tripped token skips
      // the body and surfaces CancelledError at wait().
      if (cancel_) cancel_->check();
      fn();
    } catch (...) {
      error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (error && !error_) error_ = error;
    finish_one();
  });
}

void TaskGroup::finish_one() {
  // Caller holds mu_.
  if (--pending_ == 0) cv_.notify_all();
}

void TaskGroup::wait() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (pending_ == 0) break;
    }
    if (pool_->try_run_one()) continue;
    // Nothing to help with: the remaining tasks are running on workers.
    // Short timed waits sidestep lost-wakeup subtleties at negligible cost.
    std::unique_lock<std::mutex> lock(mu_);
    if (cv_.wait_for(lock, std::chrono::milliseconds(1),
                     [this] { return pending_ == 0; }))
      break;
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::swap(error, error_);
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace sva
