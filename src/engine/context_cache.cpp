#include "engine/context_cache.hpp"

#include "engine/metrics.hpp"
#include "util/error.hpp"

namespace sva {

ContextCache::ContextCache(const ContextLibrary& library)
    : library_(&library),
      versions_per_cell_(library.bins().version_count()) {
  const CharacterizedLibrary& chars = library.characterized();
  drawn_length_.reserve(chars.cells.size());
  slots_.reserve(chars.cells.size());
  for (const CharacterizedCell& cell : chars.cells) {
    drawn_length_.push_back(cell.master.tech().gate_length);
    slots_.push_back(std::make_unique<Slot[]>(versions_per_cell_));
  }
}

const std::vector<Nm>& ContextCache::version_lengths(
    std::size_t cell, const VersionKey& version) const {
  SVA_REQUIRE(cell < slots_.size());
  const std::size_t vi = version_index(version, library_->bins().count());
  Slot& slot = slots_[cell][vi];
  bool computed = false;
  std::call_once(slot.once, [&] {
    const CellMaster& master =
        library_->characterized().cells[cell].master;
    slot.lengths.reserve(master.arcs().size());
    for (std::size_t ai = 0; ai < master.arcs().size(); ++ai)
      slot.lengths.push_back(
          library_->arc_effective_length(cell, version, ai));
    computed = true;
  });
  if (computed) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    characterized_.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::global().counter("context_cache.misses").add();
  } else {
    hits_.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::global().counter("context_cache.hits").add();
  }
  return slot.lengths;
}

Nm ContextCache::arc_effective_length(std::size_t cell,
                                      const VersionKey& version,
                                      std::size_t arc) const {
  const std::vector<Nm>& lengths = version_lengths(cell, version);
  SVA_REQUIRE(arc < lengths.size());
  return lengths[arc];
}

double ContextCache::arc_delay_scale(std::size_t cell,
                                     const VersionKey& version,
                                     std::size_t arc) const {
  return arc_effective_length(cell, version, arc) / drawn_length_[cell];
}

ContextCache::Stats ContextCache::stats() const {
  return {hits_.load(std::memory_order_relaxed),
          misses_.load(std::memory_order_relaxed),
          characterized_.load(std::memory_order_relaxed),
          slots_.size() * versions_per_cell_};
}

}  // namespace sva
