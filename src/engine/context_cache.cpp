#include "engine/context_cache.hpp"

#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

#include "engine/metrics.hpp"
#include "util/diagnostics.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/filelock.hpp"
#include "util/logging.hpp"
#include "util/retry.hpp"
#include "util/serialize.hpp"

namespace sva {
namespace {

std::uint64_t ns_since(const std::chrono::steady_clock::time_point& t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

ContextCache::ContextCache(const ContextLibrary& library)
    : library_(&library),
      versions_per_cell_(library.bins().version_count()),
      metric_hits_(&MetricsRegistry::global().counter("context_cache.hits")),
      metric_misses_(
          &MetricsRegistry::global().counter("context_cache.misses")) {
  const CharacterizedLibrary& chars = library.characterized();
  drawn_length_.reserve(chars.cells.size());
  slots_.reserve(chars.cells.size());
  for (const CharacterizedCell& cell : chars.cells) {
    drawn_length_.push_back(cell.master.tech().gate_length);
    slots_.push_back(std::make_unique<Slot[]>(versions_per_cell_));
  }
}

ContextCache::Slot& ContextCache::slot_at(std::size_t cell,
                                          std::size_t version_idx) const {
  return slots_[cell][version_idx];
}

const std::vector<Nm>& ContextCache::version_lengths(
    std::size_t cell, const VersionKey& version) const {
  SVA_REQUIRE(cell < slots_.size());
  const std::size_t vi = version_index(version, library_->bins().count());
  Slot& slot = slots_[cell][vi];
  for (;;) {
    const std::uint8_t s = slot.state.load(std::memory_order_acquire);
    if (s == Slot::kFilled) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      metric_hits_->add();
      return slot.lengths;
    }
    std::uint8_t expected = Slot::kEmpty;
    if (s == Slot::kEmpty &&
        slot.state.compare_exchange_strong(expected, Slot::kBusy,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
      try {
        const CellMaster& master =
            library_->characterized().cells[cell].master;
        std::vector<Nm> lengths;
        lengths.reserve(master.arcs().size());
        for (std::size_t ai = 0; ai < master.arcs().size(); ++ai)
          lengths.push_back(
              library_->arc_effective_length(cell, version, ai));
        slot.lengths = std::move(lengths);
      } catch (...) {
        // Release the claim so another caller can retry.
        slot.state.store(Slot::kEmpty, std::memory_order_release);
        throw;
      }
      slot.state.store(Slot::kFilled, std::memory_order_release);
      misses_.fetch_add(1, std::memory_order_relaxed);
      characterized_.fetch_add(1, std::memory_order_relaxed);
      metric_misses_->add();
      return slot.lengths;
    }
    // Another thread holds the slot Busy; its characterization is short
    // (a few table lookups per arc), so yield rather than block.
    std::this_thread::yield();
  }
}

Nm ContextCache::arc_effective_length(std::size_t cell,
                                      const VersionKey& version,
                                      std::size_t arc) const {
  const std::vector<Nm>& lengths = version_lengths(cell, version);
  SVA_REQUIRE(arc < lengths.size());
  return lengths[arc];
}

double ContextCache::arc_delay_scale(std::size_t cell,
                                     const VersionKey& version,
                                     std::size_t arc) const {
  return arc_effective_length(cell, version, arc) / drawn_length_[cell];
}

void ContextCache::warm_all() const {
  const std::size_t bins = library_->bins().count();
  for (std::size_t ci = 0; ci < slots_.size(); ++ci)
    for (std::size_t vi = 0; vi < versions_per_cell_; ++vi)
      version_lengths(ci, version_key(vi, bins));
}

bool ContextCache::fill_slot(std::size_t cell, std::size_t version_idx,
                             std::vector<Nm>&& lengths) const {
  Slot& slot = slot_at(cell, version_idx);
  std::uint8_t expected = Slot::kEmpty;
  if (!slot.state.compare_exchange_strong(expected, Slot::kBusy,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire))
    // Already filled, or a concurrent characterization owns it -- which
    // will produce the same bit-identical values.
    return false;
  slot.lengths = std::move(lengths);
  slot.state.store(Slot::kFilled, std::memory_order_release);
  return true;
}

std::string ContextCache::cache_file_path(const std::string& dir) const {
  char name[64];
  std::snprintf(name, sizeof(name), "ctx_%016llx.svac",
                static_cast<unsigned long long>(library_->content_hash()));
  return dir + "/" + name;
}

std::size_t ContextCache::save(const std::string& dir) const {
  const auto t0 = std::chrono::steady_clock::now();
  SVA_FAILPOINT("context_cache.save");

  // Collect the filled slots first (the count precedes the records).  A
  // slot whose characterization is still in flight on another thread is
  // simply not snapshotted.
  ByteWriter records;
  std::size_t count = 0;
  for (std::size_t ci = 0; ci < slots_.size(); ++ci) {
    for (std::size_t vi = 0; vi < versions_per_cell_; ++vi) {
      const Slot& slot = slots_[ci][vi];
      if (slot.state.load(std::memory_order_acquire) != Slot::kFilled)
        continue;
      records.u64(ci);
      records.u64(vi);
      records.vec_f64(slot.lengths);
      ++count;
    }
  }

  ByteWriter file;
  file.u32(kMagic);
  file.u32(kFormatVersion);
  file.u64(library_->content_hash());
  file.u64(slots_.size());
  file.u64(versions_per_cell_);
  file.u64(count);
  // Checksum of the record block: any bit flipped in the payload -- even
  // inside a double, which no structural check can catch -- fails the
  // load instead of producing wrong numbers.
  file.u64(fnv1a64_words(records.bytes().data(), records.size()));
  // Single buffer: header followed by the record block, written under the
  // snapshot's advisory lock so concurrent processes sharing the cache dir
  // serialize their writes (see util/filelock.hpp).
  const FileLock lock = FileLock::acquire(cache_file_path(dir));
  atomic_write_file(cache_file_path(dir), file.bytes() + records.bytes());

  const std::uint64_t ns = ns_since(t0);
  save_ns_.fetch_add(ns, std::memory_order_relaxed);
  MetricsRegistry::global().counter("context_cache.save_ns").add(ns);
  log_debug("context cache: saved ", count, " slots to ",
            cache_file_path(dir));
  return count;
}

bool ContextCache::try_load(const std::string& dir) const {
  const auto t0 = std::chrono::steady_clock::now();
  const std::string path = cache_file_path(dir);

  const auto count_cold_start = [&] {
    disk_misses_.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::global().counter("context_cache.disk_misses").add();
    const std::uint64_t ns = ns_since(t0);
    load_ns_.fetch_add(ns, std::memory_order_relaxed);
    MetricsRegistry::global().counter("context_cache.load_ns").add(ns);
  };

  std::string bytes;
  try {
    // Transient read errors (including injected "serialize.read" faults)
    // retry with backoff; a retried-then-successful load is bit-identical
    // to an untroubled one.
    bytes = with_retry("context cache read", RetryPolicy{},
                       [&] { return read_file_bytes(path); });
  } catch (const FileMissingError&) {
    // No snapshot yet: the normal first run, not worth a warning.
    count_cold_start();
    log_debug("context cache: no snapshot at ", path);
    return false;
  } catch (const Error& e) {
    // Read failed even after retries.  The file content may still be fine
    // (the fault was in the transport), so do not quarantine.
    count_cold_start();
    diag_warn("context_cache", "cache_read_failed",
              std::string("cold start: ") + e.what());
    return false;
  }

  // Parse and validate the whole file before touching a single slot, so a
  // corrupt tail can never leave the cache partially poisoned.
  std::vector<std::pair<std::size_t, std::size_t>> keys;
  std::vector<std::vector<Nm>> lengths;
  try {
    SVA_FAILPOINT("context_cache.load");
    ByteReader r(bytes);
    if (r.u32() != kMagic) throw SerializeError("bad magic");
    if (r.u32() != kFormatVersion)
      throw SerializeError("unsupported format version");
    if (r.u64() != library_->content_hash())
      throw SerializeError("content hash mismatch (stale cache)");
    if (r.u64() != slots_.size() || r.u64() != versions_per_cell_)
      throw SerializeError("slot grid mismatch");
    const std::uint64_t count = r.u64();
    const std::uint64_t payload_hash = r.u64();
    if (fnv1a64_words(bytes.data() + (bytes.size() - r.remaining()),
                      r.remaining()) != payload_hash)
      throw SerializeError("payload checksum mismatch");
    // A record is at least cell + version + length count = 24 bytes, so a
    // corrupt count cannot force a huge reserve.
    if (count > r.remaining() / 24)
      throw SerializeError("corrupt slot count " + std::to_string(count));
    keys.reserve(static_cast<std::size_t>(count));
    lengths.reserve(static_cast<std::size_t>(count));
    const CharacterizedLibrary& chars = library_->characterized();
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t ci = r.u64();
      const std::uint64_t vi = r.u64();
      if (ci >= slots_.size() || vi >= versions_per_cell_)
        throw SerializeError("slot index out of range");
      std::vector<Nm> arc_lengths = r.vec_f64();
      if (arc_lengths.size() !=
          chars.cells[static_cast<std::size_t>(ci)].master.arcs().size())
        throw SerializeError("arc count mismatch");
      keys.emplace_back(static_cast<std::size_t>(ci),
                        static_cast<std::size_t>(vi));
      lengths.push_back(std::move(arc_lengths));
    }
    r.expect_end();
  } catch (const Error& e) {
    // Validation failed on bytes we did read: the snapshot itself is bad.
    // Quarantine it so no later run wastes time re-parsing a file known
    // corrupt; the next run cold-starts cleanly on FileMissingError.
    count_cold_start();
    quarantine_file(path);
    MetricsRegistry::global().counter("context_cache.quarantined").add();
    diag_warn("context_cache", "cache_quarantined",
              "snapshot " + path + " quarantined (" + e.what() +
                  "); cold start");
    return false;
  }

  std::uint64_t restored = 0;
  for (std::size_t i = 0; i < keys.size(); ++i)
    if (fill_slot(keys[i].first, keys[i].second, std::move(lengths[i])))
      ++restored;
  disk_hits_.fetch_add(restored, std::memory_order_relaxed);
  characterized_.fetch_add(static_cast<std::size_t>(restored),
                           std::memory_order_relaxed);
  MetricsRegistry::global().counter("context_cache.disk_hits").add(restored);
  const std::uint64_t ns = ns_since(t0);
  load_ns_.fetch_add(ns, std::memory_order_relaxed);
  MetricsRegistry::global().counter("context_cache.load_ns").add(ns);
  log_debug("context cache: restored ", restored, " of ", keys.size(),
            " slots from ", path);
  return true;
}

ContextCache::Stats ContextCache::read_stats_once() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_acquire);
  s.misses = misses_.load(std::memory_order_acquire);
  s.characterized = characterized_.load(std::memory_order_acquire);
  s.capacity = slots_.size() * versions_per_cell_;
  s.disk_hits = disk_hits_.load(std::memory_order_acquire);
  s.disk_misses = disk_misses_.load(std::memory_order_acquire);
  s.load_ns = load_ns_.load(std::memory_order_acquire);
  s.save_ns = save_ns_.load(std::memory_order_acquire);
  return s;
}

ContextCache::Stats ContextCache::stats() const {
  // Retry until two consecutive passes over every counter agree: the
  // returned snapshot is one consistent read, never a mix of pre- and
  // post-update values from a concurrent characterization.
  Stats prev = read_stats_once();
  for (;;) {
    const Stats next = read_stats_once();
    if (next == prev) return next;
    prev = next;
  }
}

}  // namespace sva
