#pragma once
// Memoized, thread-safe view of the context library's version expansion,
// with an optional persistent on-disk snapshot.
//
// The paper's 81 context versions per cell (Sec. 3.1.2) are pure functions
// of (cell, version key), yet the flow re-derives every arc's effective
// length for every instance of every analysis.  This cache characterizes a
// (cell, version) slot exactly once -- lazily, on first demand, behind a
// per-slot lock-free Empty -> Busy -> Filled state machine -- and shares
// the result across all concurrent analyses.  Values are bit-identical to
// calling ContextLibrary directly: the slot computation *is* that call,
// memoized.
//
// Persistence: save() snapshots the filled slots into a single binary file
// keyed by the library's content hash (util/serialize.hpp codec; atomic
// temp-file + rename write), and try_load() restores them so a later
// process starts warm.  A loaded slot is bit-identical to a characterized
// one -- the file stores the exact doubles -- so warm runs reproduce cold
// results exactly.  try_load() validates the magic, format version,
// content hash, payload checksum, and every slot record before touching
// the cache; any mismatch, truncation, or corruption degrades to a cold
// start (returns false, file ignored), never a crash or a wrong number.
//
// Hit/miss and disk counters feed the "context_cache.*" metrics.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cell/context_library.hpp"
#include "engine/metrics.hpp"

namespace sva {

class ContextCache {
 public:
  /// `library` must outlive the cache.
  explicit ContextCache(const ContextLibrary& library);

  const ContextLibrary& library() const { return *library_; }

  /// Per-arc effective gate lengths of one (cell, version), characterized
  /// on first use (arc order = master arc order).  Safe to call from any
  /// number of threads; exactly one of them performs the characterization.
  const std::vector<Nm>& version_lengths(std::size_t cell,
                                         const VersionKey& version) const;

  /// Memoized equivalents of the ContextLibrary queries.
  Nm arc_effective_length(std::size_t cell, const VersionKey& version,
                          std::size_t arc) const;
  double arc_delay_scale(std::size_t cell, const VersionKey& version,
                         std::size_t arc) const;

  /// Characterize every (cell, version) slot now.  Used by the cache
  /// bench to time the full characterization stage and by callers that
  /// want a complete snapshot to save.
  void warm_all() const;

  // ---- persistence -----------------------------------------------------

  /// Cache file this library maps to inside `dir` (the content hash is
  /// part of the name, so caches of different libraries coexist).
  std::string cache_file_path(const std::string& dir) const;

  /// Snapshot every currently filled slot to `dir` (created if missing)
  /// with an atomic write.  Returns the number of slots written.  Throws
  /// sva::Error on I/O failure.
  std::size_t save(const std::string& dir) const;

  /// Restore slots from a prior save() in `dir`.  Returns true and counts
  /// each restored slot as a disk hit on success; returns false -- after
  /// validating, without modifying any slot -- when the file is missing,
  /// truncated, corrupt, or keyed by a different content hash (reported
  /// via diagnostics, counted as a disk miss).  Transient read errors are
  /// retried with backoff before giving up; a file that fails validation
  /// is quarantined to `*.svac.corrupt` ("context_cache.quarantined"
  /// metric) so later runs cold-start cleanly instead of re-parsing it.
  /// Slots already filled in this process keep their computed values.
  bool try_load(const std::string& dir) const;

  struct Stats {
    std::uint64_t hits = 0;    ///< lookups served from a filled slot
    std::uint64_t misses = 0;  ///< lookups that performed characterization
    std::size_t characterized = 0;  ///< filled (cell, version) slots
    std::size_t capacity = 0;       ///< total slots = cells * versions
    std::uint64_t disk_hits = 0;    ///< slots restored from a cache file
    std::uint64_t disk_misses = 0;  ///< failed load attempts (cold starts)
    std::uint64_t load_ns = 0;      ///< wall time spent in try_load()
    std::uint64_t save_ns = 0;      ///< wall time spent in save()

    friend bool operator==(const Stats&, const Stats&) = default;
  };
  /// Consistent snapshot: the counters are re-read until two consecutive
  /// passes agree, so a mid-run caller never sees e.g. a miss counted but
  /// its characterization not yet reflected elsewhere.
  Stats stats() const;

  static constexpr std::uint32_t kMagic = 0x43415653;  ///< "SVAC" (LE)
  static constexpr std::uint32_t kFormatVersion = 1;

 private:
  // Per-slot state machine.  Empty -> Busy is claimed with one CAS; the
  // winner writes `lengths` and publishes with a release store of Filled,
  // so a reader that acquire-loads Filled sees the complete vector.  This
  // replaces std::call_once: the bulk-restore path in try_load() fills
  // hundreds of slots back to back, and call_once's execution path is an
  // order of magnitude slower than a CAS.
  struct Slot {
    static constexpr std::uint8_t kEmpty = 0;
    static constexpr std::uint8_t kBusy = 1;
    static constexpr std::uint8_t kFilled = 2;
    std::atomic<std::uint8_t> state{kEmpty};
    std::vector<Nm> lengths;  ///< valid once state is Filled
  };

  Slot& slot_at(std::size_t cell, std::size_t version_idx) const;
  /// Fill one slot with externally provided lengths (no-op if the slot is
  /// already filled); returns true if this call filled it.
  bool fill_slot(std::size_t cell, std::size_t version_idx,
                 std::vector<Nm>&& lengths) const;
  Stats read_stats_once() const;

  const ContextLibrary* library_;
  std::vector<Nm> drawn_length_;                 ///< per cell
  std::vector<std::unique_ptr<Slot[]>> slots_;   ///< [cell][version index]
  std::size_t versions_per_cell_ = 0;
  /// Global-registry counters resolved once at construction: the lookup
  /// takes the registry mutex, which the per-query hot path must not pay.
  Counter* metric_hits_;
  Counter* metric_misses_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::size_t> characterized_{0};
  mutable std::atomic<std::uint64_t> disk_hits_{0};
  mutable std::atomic<std::uint64_t> disk_misses_{0};
  mutable std::atomic<std::uint64_t> load_ns_{0};
  mutable std::atomic<std::uint64_t> save_ns_{0};
};

}  // namespace sva
