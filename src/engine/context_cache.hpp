#pragma once
// Memoized, thread-safe view of the context library's version expansion.
//
// The paper's 81 context versions per cell (Sec. 3.1.2) are pure functions
// of (cell, version key), yet the flow re-derives every arc's effective
// length for every instance of every analysis.  This cache characterizes a
// (cell, version) slot exactly once -- lazily, on first demand, via
// std::call_once -- and shares the result across all concurrent analyses.
// Values are bit-identical to calling ContextLibrary directly: the slot
// computation *is* that call, memoized.
//
// Hit/miss counts feed the "context_cache.*" metrics.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "cell/context_library.hpp"

namespace sva {

class ContextCache {
 public:
  /// `library` must outlive the cache.
  explicit ContextCache(const ContextLibrary& library);

  const ContextLibrary& library() const { return *library_; }

  /// Per-arc effective gate lengths of one (cell, version), characterized
  /// on first use (arc order = master arc order).  Safe to call from any
  /// number of threads; exactly one of them performs the characterization.
  const std::vector<Nm>& version_lengths(std::size_t cell,
                                         const VersionKey& version) const;

  /// Memoized equivalents of the ContextLibrary queries.
  Nm arc_effective_length(std::size_t cell, const VersionKey& version,
                          std::size_t arc) const;
  double arc_delay_scale(std::size_t cell, const VersionKey& version,
                         std::size_t arc) const;

  struct Stats {
    std::uint64_t hits = 0;    ///< lookups served from a filled slot
    std::uint64_t misses = 0;  ///< lookups that performed characterization
    std::size_t characterized = 0;  ///< filled (cell, version) slots
    std::size_t capacity = 0;       ///< total slots = cells * versions
  };
  Stats stats() const;

 private:
  struct Slot {
    std::once_flag once;
    std::vector<Nm> lengths;
  };

  const ContextLibrary* library_;
  std::vector<Nm> drawn_length_;                 ///< per cell
  std::vector<std::unique_ptr<Slot[]>> slots_;   ///< [cell][version index]
  std::size_t versions_per_cell_ = 0;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::size_t> characterized_{0};
};

}  // namespace sva
