#pragma once
// MetricsRegistry moved to util/metrics.hpp so the util layer (diagnostics,
// failpoints, retry) can feed counters without depending on the engine.
// This forwarder keeps the historical include path working.

#include "util/metrics.hpp"
