#pragma once
// Work-stealing thread pool and fork/join primitives.
//
// Each worker owns a deque: it pops its own work LIFO (cache locality) and
// steals FIFO from siblings when empty, so a burst of chunks submitted by
// one parallel_for spreads across the pool.  Waiting is cooperative --
// TaskGroup::wait() and parallel_for() execute queued tasks on the calling
// thread instead of blocking -- which makes nested parallelism (a batch job
// that itself runs a levelized parallel STA pass) deadlock-free: every
// waiter is also a worker.
//
// A pool with zero threads degrades to deferred inline execution: submit()
// queues, and the work runs on whichever thread waits.  parallel_for short-
// circuits to a plain loop in that case.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/cancel.hpp"

namespace sva {

class ThreadPool {
 public:
  /// Spawns `threads` workers.  0 => no worker threads; queued tasks run
  /// on threads that wait (TaskGroup::wait / parallel_for).
  explicit ThreadPool(std::size_t threads = default_thread_count());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// std::thread::hardware_concurrency, floored at 1.
  static std::size_t default_thread_count();

  std::size_t thread_count() const { return threads_.size(); }

  /// Enqueue one task.  Never runs inline; ordering between tasks is
  /// unspecified.  Tasks must not throw out -- wrap with TaskGroup (which
  /// captures and rethrows) for anything that can fail.
  void submit(std::function<void()> task);

  /// Execute one queued task on the calling thread, if any is available.
  /// This is how external threads help drain the pool.
  bool try_run_one();

  /// Parallel loop over [begin, end): fn(i) for every index, partitioned
  /// into chunks of ~`grain` indices (0 => automatic).  Blocks until every
  /// index ran; the calling thread participates.  Writes to distinct
  /// locations per index are race-free; no ordering between indices.
  ///
  /// A non-null `cancel` is polled once per chunk; once tripped, chunks
  /// not yet started are skipped and the loop exits by throwing
  /// CancelledError after all in-flight chunks drain.  Chunks that did run
  /// ran completely -- a caller observing CancelledError knows its state
  /// is a clean prefix, never a torn update.  Null `cancel` costs one
  /// untaken branch per chunk.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 0,
                    const CancelToken* cancel = nullptr);

  struct Stats {
    std::uint64_t executed = 0;  ///< tasks run to completion
    std::uint64_t steals = 0;    ///< tasks taken from another worker's deque
  };
  Stats stats() const;

 private:
  friend class TaskGroup;

  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void worker_main(std::size_t id);
  /// Pop own queue LIFO, else steal FIFO starting after `self`.
  bool try_pop(std::size_t self, std::function<void()>& task);
  void execute(std::function<void()>& task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> queued_{0};     ///< tasks sitting in deques
  std::atomic<std::size_t> next_queue_{0};  ///< round-robin submit cursor
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> steals_{0};
};

/// Fork/join scope over a pool: run() fires tasks, wait() helps execute
/// queued work until every task of this group finished, then rethrows the
/// first captured exception, if any.
class TaskGroup {
 public:
  /// A non-null `cancel` is polled before each task body: tripped =>
  /// the task throws CancelledError instead of running, and wait()
  /// rethrows the first captured exception as usual (so a real fault that
  /// landed before the cancellation still surfaces as itself).
  explicit TaskGroup(ThreadPool& pool, const CancelToken* cancel = nullptr)
      : pool_(&pool), cancel_(cancel) {}
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void run(std::function<void()> fn);
  void wait();

 private:
  void finish_one();

  ThreadPool* pool_;
  const CancelToken* cancel_ = nullptr;
  // All group state lives under mu_: the finishing task's last touch of
  // the group is its mu_ unlock, so once wait() observes pending_ == 0
  // under mu_ the group is safe to destroy (no decrement-then-lock
  // window for a waiter to race through).
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t pending_ = 0;
  std::exception_ptr error_;  ///< first failure
};

}  // namespace sva
