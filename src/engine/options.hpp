#pragma once
// Global CLI execution options and shared flag parsing.
//
// Every sva-timing subcommand accepts the same global flags (--threads N,
// --metrics, --cache-dir DIR, --no-cache) with identical validation and
// error messages; this header is the single implementation the dispatcher
// and all subcommands share.
// The value parsers are exposed so per-command flags (--clock, --max-moves,
// ...) report malformed values in the same uniform style.

#include <cstddef>
#include <string>
#include <vector>

#include "engine/thread_pool.hpp"
#include "util/diagnostics.hpp"

namespace sva {

/// CLI exit-code contract (README "Exit codes").  Stable: scripts and the
/// check.sh legs assert on these values.
inline constexpr int kExitOk = 0;         ///< success
inline constexpr int kExitFatal = 1;      ///< fatal error, or --strict fault
inline constexpr int kExitUsage = 2;      ///< bad command line
inline constexpr int kExitJobsFailed = 3; ///< keep-going run, >=1 job failed
/// Run cancelled (SIGINT/SIGTERM or --deadline) after winding down
/// cooperatively; commands with resumable state wrote a checkpoint first.
inline constexpr int kExitCancelled = 4;

/// Global execution options, stripped from the arg list before command
/// dispatch.
struct EngineOptions {
  std::size_t threads = ThreadPool::default_thread_count();
  bool metrics = false;
  /// Persistent context-library cache directory (--cache-dir).  Defaults
  /// to $SVA_CACHE_DIR when set, else ".sva_cache".
  std::string cache_dir = default_cache_dir();
  /// --no-cache: skip both the warm-start load and the exit save.
  bool no_cache = false;
  /// --strict: fail fast on recoverable faults (exit non-zero) instead of
  /// the default --keep-going graceful degradation.  The last of
  /// --strict / --keep-going on the command line wins.
  bool strict = false;
  /// --diagnostics: print the structured diagnostics report on exit.
  bool diagnostics = false;
  /// --deadline SEC: wall-clock time box.  On expiry the run winds down
  /// cooperatively (checkpointing where supported) and exits
  /// kExitCancelled.  0 disables.
  double deadline_seconds = 0.0;
  /// --resume PATH: continue an interrupted analyze/optimize run from the
  /// checkpoint it wrote.  Empty disables.
  std::string resume_path;
  /// --checkpoint PATH: where a cancelled run journals its state.
  /// Empty => the command's documented default name in the working
  /// directory (sva_<command>.ckpt).
  std::string checkpoint_path;
  /// --cache-gc: run a size/age eviction pass over cache_dir before the
  /// command (see util/cache_gc.hpp), tuned by the two knobs below.
  bool cache_gc = false;
  std::size_t cache_gc_max_mb = 512;
  double cache_gc_max_age_days = 30.0;
  /// --connect PATH: ship analyze/optimize jobs to the `sva serve`
  /// daemon at this Unix-domain socket instead of running them locally
  /// (also the target of the `metrics` and `shutdown` commands).  Empty
  /// disables.
  std::string connect_path;
  /// --metrics-json PATH: write the MetricsRegistry snapshot as JSON on
  /// exit ("-" = stdout).  Empty disables.
  std::string metrics_json_path;
  /// --retries N: with --connect, retry transient daemon failures (Busy,
  /// connect refused, connection dropped before any response byte) up to
  /// N times with exponential backoff + jitter.  0 fails immediately.
  std::size_t retries = 0;

  bool cache_enabled() const { return !no_cache && !cache_dir.empty(); }
  FaultPolicy fault_policy() const {
    return strict ? FaultPolicy::Strict : FaultPolicy::Degrade;
  }

  static std::string default_cache_dir();
};

/// Remove --threads N / --metrics / --cache-dir DIR / --no-cache /
/// --strict / --keep-going / --diagnostics / --deadline SEC /
/// --resume PATH / --checkpoint PATH / --cache-gc [+knobs] from `args`
/// (wherever they appear) and return the parsed options.  Throws
/// std::runtime_error with a uniform message on a missing or malformed
/// value.
EngineOptions extract_engine_options(std::vector<std::string>& args);

/// The value following flag `args[i]`; advances `i` past it.  Throws
/// "<flag> requires a value" when the list ends first.
const std::string& flag_value(const std::vector<std::string>& args,
                              std::size_t& i);

/// Parse a flag value as a non-negative integer / positive double; throws
/// "<flag> expects ..." on anything else (trailing junk included).
std::size_t parse_size_flag(const std::string& flag, const std::string& value);
double parse_double_flag(const std::string& flag, const std::string& value);

}  // namespace sva
