#pragma once
// Global CLI execution options and shared flag parsing.
//
// Every sva-timing subcommand accepts the same global flags (--threads N,
// --metrics, --cache-dir DIR, --no-cache) with identical validation and
// error messages; this header is the single implementation the dispatcher
// and all subcommands share.
// The value parsers are exposed so per-command flags (--clock, --max-moves,
// ...) report malformed values in the same uniform style.

#include <cstddef>
#include <string>
#include <vector>

#include "engine/thread_pool.hpp"
#include "util/diagnostics.hpp"

namespace sva {

/// Global execution options, stripped from the arg list before command
/// dispatch.
struct EngineOptions {
  std::size_t threads = ThreadPool::default_thread_count();
  bool metrics = false;
  /// Persistent context-library cache directory (--cache-dir).  Defaults
  /// to $SVA_CACHE_DIR when set, else ".sva_cache".
  std::string cache_dir = default_cache_dir();
  /// --no-cache: skip both the warm-start load and the exit save.
  bool no_cache = false;
  /// --strict: fail fast on recoverable faults (exit non-zero) instead of
  /// the default --keep-going graceful degradation.  The last of
  /// --strict / --keep-going on the command line wins.
  bool strict = false;
  /// --diagnostics: print the structured diagnostics report on exit.
  bool diagnostics = false;

  bool cache_enabled() const { return !no_cache && !cache_dir.empty(); }
  FaultPolicy fault_policy() const {
    return strict ? FaultPolicy::Strict : FaultPolicy::Degrade;
  }

  static std::string default_cache_dir();
};

/// Remove --threads N / --metrics / --cache-dir DIR / --no-cache /
/// --strict / --keep-going / --diagnostics from `args` (wherever they
/// appear) and return the parsed options.  Throws std::runtime_error with
/// a uniform message on a missing or malformed value.
EngineOptions extract_engine_options(std::vector<std::string>& args);

/// The value following flag `args[i]`; advances `i` past it.  Throws
/// "<flag> requires a value" when the list ends first.
const std::string& flag_value(const std::vector<std::string>& args,
                              std::size_t& i);

/// Parse a flag value as a non-negative integer / positive double; throws
/// "<flag> expects ..." on anything else (trailing junk included).
std::size_t parse_size_flag(const std::string& flag, const std::string& value);
double parse_double_flag(const std::string& flag, const std::string& value);

}  // namespace sva
