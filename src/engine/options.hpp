#pragma once
// Global CLI execution options and shared flag parsing.
//
// Every sva-timing subcommand accepts the same global flags (--threads N,
// --metrics) with identical validation and error messages; this header is
// the single implementation the dispatcher and all subcommands share.
// The value parsers are exposed so per-command flags (--clock, --max-moves,
// ...) report malformed values in the same uniform style.

#include <cstddef>
#include <string>
#include <vector>

#include "engine/thread_pool.hpp"

namespace sva {

/// Global execution options, stripped from the arg list before command
/// dispatch.
struct EngineOptions {
  std::size_t threads = ThreadPool::default_thread_count();
  bool metrics = false;
};

/// Remove --threads N / --metrics from `args` (wherever they appear) and
/// return the parsed options.  Throws std::runtime_error with a uniform
/// message on a missing or malformed value.
EngineOptions extract_engine_options(std::vector<std::string>& args);

/// The value following flag `args[i]`; advances `i` past it.  Throws
/// "<flag> requires a value" when the list ends first.
const std::string& flag_value(const std::vector<std::string>& args,
                              std::size_t& i);

/// Parse a flag value as a non-negative integer / positive double; throws
/// "<flag> expects ..." on anything else (trailing junk included).
std::size_t parse_size_flag(const std::string& flag, const std::string& value);
double parse_double_flag(const std::string& flag, const std::string& value);

}  // namespace sva
