#include "engine/batch.hpp"

#include <chrono>

#include "engine/metrics.hpp"

namespace sva {

BatchRunner::BatchRunner(const SvaFlow& flow, ThreadPool& pool,
                         BatchOptions options)
    : flow_(&flow), pool_(&pool), options_(options) {}

BatchResult BatchRunner::run(const std::vector<BatchJob>& jobs) const {
  const auto t0 = std::chrono::steady_clock::now();
  ScopedTimer timer(MetricsRegistry::global().timer("batch.run"));
  MetricsRegistry::global().counter("batch.jobs").add(jobs.size());

  BatchResult out;
  out.analyses.resize(jobs.size());
  TaskGroup group(*pool_);
  for (std::size_t ji = 0; ji < jobs.size(); ++ji) {
    group.run([this, &jobs, &out, ji] {
      const Netlist netlist = flow_->make_benchmark(jobs[ji].circuit);
      const Placement placement = flow_->make_placement(netlist);
      out.analyses[ji] =
          options_.parallel_corners
              ? flow_->analyze(netlist, placement, *pool_,
                               options_.parallel_sta)
              : flow_->analyze(netlist, placement);
    });
  }
  group.wait();
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

BatchResult BatchRunner::run_names(
    const std::vector<std::string>& names) const {
  std::vector<BatchJob> jobs;
  jobs.reserve(names.size());
  for (const std::string& name : names) jobs.push_back({name});
  return run(jobs);
}

}  // namespace sva
