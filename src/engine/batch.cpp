#include "engine/batch.hpp"

#include <chrono>

#include "engine/metrics.hpp"
#include "util/diagnostics.hpp"
#include "util/failpoint.hpp"
#include "util/serialize.hpp"

namespace sva {

std::size_t BatchResult::failed_count() const {
  std::size_t n = 0;
  for (const BatchJobOutcome& o : outcomes)
    if (!o.ok) ++n;
  return n;
}

BatchRunner::BatchRunner(const SvaFlow& flow, ThreadPool& pool,
                         BatchOptions options)
    : flow_(&flow), pool_(&pool), options_(options) {}

BatchResult BatchRunner::run(const std::vector<BatchJob>& jobs) const {
  const auto t0 = std::chrono::steady_clock::now();
  ScopedTimer timer(MetricsRegistry::global().timer("batch.run"));
  MetricsRegistry::global().counter("batch.jobs").add(jobs.size());

  BatchResult out;
  out.analyses.resize(jobs.size());
  out.outcomes.resize(jobs.size());
  TaskGroup group(*pool_);
  for (std::size_t ji = 0; ji < jobs.size(); ++ji) {
    group.run([this, &jobs, &out, ji] {
      const std::string& circuit = jobs[ji].circuit;
      try {
        // Keyed by circuit name: a prob() fault fails the same
        // deterministic subset of jobs in every run and schedule.
        SVA_FAILPOINT_KEYED("batch.job",
                            fnv1a64(circuit.data(), circuit.size()));
        const Netlist netlist = flow_->make_benchmark(circuit);
        const Placement placement = flow_->make_placement(netlist);
        out.analyses[ji] =
            options_.parallel_corners
                ? flow_->analyze(netlist, placement, *pool_,
                                 options_.parallel_sta)
                : flow_->analyze(netlist, placement);
      } catch (const std::exception& e) {
        // Isolate the fault to this job's slot: deterministic failed
        // result (name only, zeroed numbers), batch continues.
        out.analyses[ji] = CircuitAnalysis{};
        out.analyses[ji].name = circuit;
        out.outcomes[ji] = {false, e.what()};
        MetricsRegistry::global().counter("batch.jobs_failed").add();
        diag_warn("batch", "batch_job_failed",
                  "job " + std::to_string(ji) + " (" + circuit +
                      ") failed: " + e.what());
      }
    });
  }
  group.wait();
  if (!options_.keep_going) {
    for (std::size_t ji = 0; ji < jobs.size(); ++ji)
      if (!out.outcomes[ji].ok)
        throw Error("batch job " + std::to_string(ji) + " (" +
                    jobs[ji].circuit + ") failed: " + out.outcomes[ji].error);
  }
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

BatchResult BatchRunner::run_names(
    const std::vector<std::string>& names) const {
  std::vector<BatchJob> jobs;
  jobs.reserve(names.size());
  for (const std::string& name : names) jobs.push_back({name});
  return run(jobs);
}

}  // namespace sva
