#include "engine/batch.hpp"

#include <chrono>

#include "engine/metrics.hpp"
#include "util/checkpoint.hpp"
#include "util/diagnostics.hpp"
#include "util/failpoint.hpp"
#include "util/serialize.hpp"

namespace sva {

std::size_t BatchResult::failed_count() const {
  std::size_t n = 0;
  for (const BatchJobOutcome& o : outcomes)
    if (!o.ok && !o.cancelled) ++n;
  return n;
}

std::size_t BatchResult::cancelled_count() const {
  std::size_t n = 0;
  for (const BatchJobOutcome& o : outcomes)
    if (o.cancelled) ++n;
  return n;
}

BatchRunner::BatchRunner(const SvaFlow& flow, ThreadPool& pool,
                         BatchOptions options)
    : flow_(&flow), pool_(&pool), options_(options) {}

BatchResult BatchRunner::run(const std::vector<BatchJob>& jobs,
                             const BatchResult* resume_from) const {
  const auto t0 = std::chrono::steady_clock::now();
  ScopedTimer timer(MetricsRegistry::global().timer("batch.run"));
  MetricsRegistry::global().counter("batch.jobs").add(jobs.size());
  if (resume_from != nullptr) {
    SVA_REQUIRE_MSG(resume_from->outcomes.size() == jobs.size() &&
                        resume_from->analyses.size() == jobs.size(),
                    "resume state does not match the job list");
  }

  const CancelToken* cancel = options_.cancel;
  BatchResult out;
  out.analyses.resize(jobs.size());
  out.outcomes.resize(jobs.size());
  // The group is NOT given the token: cancellation must land in per-job
  // slots (so the checkpoint knows exactly which jobs are final), not
  // surface as an exception out of wait().
  TaskGroup group(*pool_);
  for (std::size_t ji = 0; ji < jobs.size(); ++ji) {
    if (resume_from != nullptr && !resume_from->outcomes[ji].cancelled) {
      // Final slot from the prior run (completed or deterministically
      // failed): copy, don't recompute.  Bit-identical by purity.
      out.analyses[ji] = resume_from->analyses[ji];
      out.outcomes[ji] = resume_from->outcomes[ji];
      MetricsRegistry::global().counter("batch.jobs_resumed").add();
      continue;
    }
    group.run([this, &jobs, &out, cancel, ji] {
      const std::string& circuit = jobs[ji].circuit;
      try {
        if (cancel != nullptr) cancel->check();
        // Keyed by circuit name: a prob() fault fails the same
        // deterministic subset of jobs in every run and schedule.
        SVA_FAILPOINT_KEYED("batch.job",
                            fnv1a64(circuit.data(), circuit.size()));
        const Netlist netlist = flow_->make_benchmark(circuit);
        const Placement placement = flow_->make_placement(netlist);
        out.analyses[ji] =
            options_.parallel_corners
                ? flow_->analyze(netlist, placement, *pool_,
                                 options_.parallel_sta, cancel)
                : flow_->analyze(netlist, placement);
      } catch (const CancelledError& e) {
        // Incomplete, not failed: the slot re-runs on resume.  No
        // diagnostic -- cancellation is a user action, not a degradation.
        out.analyses[ji] = CircuitAnalysis{};
        out.analyses[ji].name = circuit;
        out.outcomes[ji] = {false, e.what(), /*cancelled=*/true};
        MetricsRegistry::global().counter("batch.jobs_cancelled").add();
      } catch (const std::exception& e) {
        // Isolate the fault to this job's slot: deterministic failed
        // result (name only, zeroed numbers), batch continues.
        out.analyses[ji] = CircuitAnalysis{};
        out.analyses[ji].name = circuit;
        out.outcomes[ji] = {false, e.what()};
        MetricsRegistry::global().counter("batch.jobs_failed").add();
        diag_warn("batch", "batch_job_failed",
                  "job " + std::to_string(ji) + " (" + circuit +
                      ") failed: " + e.what());
      }
    });
  }
  group.wait();
  if (!options_.keep_going) {
    for (std::size_t ji = 0; ji < jobs.size(); ++ji)
      if (!out.outcomes[ji].ok && !out.outcomes[ji].cancelled)
        throw Error("batch job " + std::to_string(ji) + " (" +
                    jobs[ji].circuit + ") failed: " + out.outcomes[ji].error);
  }
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

BatchResult BatchRunner::run_names(
    const std::vector<std::string>& names) const {
  std::vector<BatchJob> jobs;
  jobs.reserve(names.size());
  for (const std::string& name : names) jobs.push_back({name});
  return run(jobs);
}

namespace {

constexpr char kBatchCheckpointKind[] = "batch";

void serialize_analysis(ByteWriter& w, const CircuitAnalysis& a) {
  w.str(a.name);
  w.u64(a.gate_count);
  w.f64(a.trad_nom_ps);
  w.f64(a.trad_bc_ps);
  w.f64(a.trad_wc_ps);
  w.f64(a.sva_nom_ps);
  w.f64(a.sva_bc_ps);
  w.f64(a.sva_wc_ps);
  w.u64(a.arc_class_counts.size());
  for (std::size_t c : a.arc_class_counts) w.u64(c);
}

CircuitAnalysis deserialize_analysis(ByteReader& r) {
  CircuitAnalysis a;
  a.name = r.str();
  a.gate_count = static_cast<std::size_t>(r.u64());
  a.trad_nom_ps = r.f64();
  a.trad_bc_ps = r.f64();
  a.trad_wc_ps = r.f64();
  a.sva_nom_ps = r.f64();
  a.sva_bc_ps = r.f64();
  a.sva_wc_ps = r.f64();
  const std::uint64_t n = r.u64();
  if (n > 1024) throw SerializeError("corrupt arc-class count");
  a.arc_class_counts.resize(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < a.arc_class_counts.size(); ++i)
    a.arc_class_counts[i] = static_cast<std::size_t>(r.u64());
  return a;
}

}  // namespace

std::uint64_t batch_content_hash(const SvaFlow& flow,
                                 const std::vector<BatchJob>& jobs) {
  Fnv1aHasher h;
  h.u64(flow.setup_content_hash());
  h.u64(jobs.size());
  for (const BatchJob& job : jobs) h.str(job.circuit);
  return h.digest();
}

void save_batch_checkpoint(const std::string& path, const SvaFlow& flow,
                           const std::vector<BatchJob>& jobs,
                           const BatchResult& partial) {
  SVA_REQUIRE(partial.outcomes.size() == jobs.size());
  SVA_REQUIRE(partial.analyses.size() == jobs.size());
  ByteWriter w;
  w.u64(jobs.size());
  for (std::size_t ji = 0; ji < jobs.size(); ++ji) {
    const BatchJobOutcome& o = partial.outcomes[ji];
    w.str(jobs[ji].circuit);
    const bool final_slot = !o.cancelled;
    w.u8(final_slot ? 1 : 0);
    if (!final_slot) continue;
    w.u8(o.ok ? 1 : 0);
    w.str(o.error);
    serialize_analysis(w, partial.analyses[ji]);
  }
  write_checkpoint(path, kBatchCheckpointKind, batch_content_hash(flow, jobs),
                   w.bytes());
}

BatchResult load_batch_checkpoint(const std::string& path,
                                  const SvaFlow& flow,
                                  const std::vector<BatchJob>& jobs) {
  const std::string payload = read_checkpoint(
      path, kBatchCheckpointKind, batch_content_hash(flow, jobs));
  ByteReader r(payload);
  if (r.u64() != jobs.size())
    throw SerializeError("batch checkpoint job count mismatch");
  BatchResult out;
  out.analyses.resize(jobs.size());
  out.outcomes.resize(jobs.size());
  for (std::size_t ji = 0; ji < jobs.size(); ++ji) {
    if (r.str() != jobs[ji].circuit)
      throw SerializeError("batch checkpoint job order mismatch");
    const bool final_slot = r.u8() != 0;
    if (!final_slot) {
      out.analyses[ji].name = jobs[ji].circuit;
      out.outcomes[ji] = {false, "cancelled", /*cancelled=*/true};
      continue;
    }
    const bool ok = r.u8() != 0;
    std::string error = r.str();
    out.analyses[ji] = deserialize_analysis(r);
    out.outcomes[ji] = {ok, std::move(error), /*cancelled=*/false};
  }
  r.expect_end();
  return out;
}

}  // namespace sva
