#include "engine/options.hpp"

#include <cstdlib>
#include <stdexcept>

namespace sva {

std::string EngineOptions::default_cache_dir() {
  const char* env = std::getenv("SVA_CACHE_DIR");
  return env != nullptr ? std::string(env) : std::string(".sva_cache");
}

const std::string& flag_value(const std::vector<std::string>& args,
                              std::size_t& i) {
  if (i + 1 >= args.size())
    throw std::runtime_error(args[i] + " requires a value");
  return args[++i];
}

std::size_t parse_size_flag(const std::string& flag,
                            const std::string& value) {
  std::size_t parsed = 0;
  unsigned long n = 0;
  try {
    n = std::stoul(value, &parsed);
  } catch (const std::exception&) {
    parsed = 0;
  }
  if (value.empty() || parsed != value.size() || value[0] == '-')
    throw std::runtime_error(flag + " expects a non-negative integer, got '" +
                             value + "'");
  return static_cast<std::size_t>(n);
}

double parse_double_flag(const std::string& flag, const std::string& value) {
  std::size_t parsed = 0;
  double v = 0.0;
  try {
    v = std::stod(value, &parsed);
  } catch (const std::exception&) {
    parsed = 0;
  }
  if (value.empty() || parsed != value.size() || !(v > 0.0))
    throw std::runtime_error(flag + " expects a positive number, got '" +
                             value + "'");
  return v;
}

EngineOptions extract_engine_options(std::vector<std::string>& args) {
  EngineOptions opts;
  std::vector<std::string> rest;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--metrics") {
      opts.metrics = true;
    } else if (args[i] == "--threads") {
      const std::string flag = args[i];
      opts.threads = parse_size_flag(flag, flag_value(args, i));
    } else if (args[i] == "--cache-dir") {
      opts.cache_dir = flag_value(args, i);
    } else if (args[i] == "--no-cache") {
      opts.no_cache = true;
    } else if (args[i] == "--strict") {
      opts.strict = true;
    } else if (args[i] == "--keep-going") {
      opts.strict = false;
    } else if (args[i] == "--diagnostics") {
      opts.diagnostics = true;
    } else if (args[i] == "--deadline") {
      const std::string flag = args[i];
      opts.deadline_seconds = parse_double_flag(flag, flag_value(args, i));
    } else if (args[i] == "--resume") {
      opts.resume_path = flag_value(args, i);
    } else if (args[i] == "--checkpoint") {
      opts.checkpoint_path = flag_value(args, i);
    } else if (args[i] == "--cache-gc") {
      opts.cache_gc = true;
    } else if (args[i] == "--cache-gc-max-mb") {
      const std::string flag = args[i];
      opts.cache_gc_max_mb = parse_size_flag(flag, flag_value(args, i));
    } else if (args[i] == "--cache-gc-max-age-days") {
      const std::string flag = args[i];
      opts.cache_gc_max_age_days =
          parse_double_flag(flag, flag_value(args, i));
    } else if (args[i] == "--connect") {
      opts.connect_path = flag_value(args, i);
    } else if (args[i] == "--metrics-json") {
      opts.metrics_json_path = flag_value(args, i);
    } else if (args[i] == "--retries") {
      const std::string flag = args[i];
      opts.retries = parse_size_flag(flag, flag_value(args, i));
    } else {
      rest.push_back(args[i]);
    }
  }
  args = std::move(rest);
  return opts;
}

}  // namespace sva
