#pragma once
// Bounded job queue with admission control for the timing daemon.
//
// Connection threads are producers; one executor lane is the consumer,
// so jobs admitted to a lane run in admission order -- combined with the
// engine's bit-exact parallelism this makes daemon results independent
// of client arrival interleaving.  Admission is non-blocking by design: a
// full queue rejects immediately (try_push == false) and the connection
// answers with a Busy response instead of stalling the client behind an
// unbounded backlog.  close() stops new admissions while pop() keeps
// draining what was already accepted -- the graceful-shutdown contract.
//
// Jobs are shared_ptr-held: the owning connection thread waits on the
// promise, the lane runs the work, and the watchdog inspects the
// heartbeat/delivery state of whatever is in flight -- three concurrent
// observers of one job.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>

#include "server/jobs.hpp"
#include "util/cancel.hpp"

namespace sva {

/// One admitted job: the bound work, its private cancel token, and the
/// promise the owning connection thread waits on.
struct ServerJob {
  std::uint64_t id = 0;
  std::function<JobResult()> work;
  std::shared_ptr<CancelToken> cancel;
  std::promise<JobResult> done;
  std::chrono::steady_clock::time_point enqueued_at{};
  /// FNV hash of the canonical job-spec bytes: binds the job to its lane
  /// and keys the result cache.
  std::uint64_t spec_hash = 0;
  /// Analyze/ssta jobs are pure functions of their spec and may be
  /// cached; optimize jobs mutate artifacts and never are.
  bool cacheable = false;
  /// Bumped by every CancelToken::poll() inside the work (the watchdog's
  /// liveness signal).
  std::atomic<std::uint64_t> heartbeat{0};
  /// Exactly-once delivery guard: whoever wins the CAS (the lane on a
  /// normal finish, the watchdog on a wedged lane) fulfils the promise;
  /// the loser discards its result.
  std::atomic<bool> delivered{false};

  /// Fulfil the promise exactly once.  Returns true when this caller won.
  bool deliver(JobResult result) {
    bool expected = false;
    if (!delivered.compare_exchange_strong(expected, true))
      return false;
    done.set_value(std::move(result));
    return true;
  }
};

class JobQueue {
 public:
  explicit JobQueue(std::size_t max_depth);

  /// Admit one job.  False when the queue is at max_depth or closed (the
  /// caller answers Busy); never blocks.
  bool try_push(std::shared_ptr<ServerJob> job);

  /// Take the oldest admitted job; blocks while the queue is open and
  /// empty.  nullptr once the queue is closed *and* drained.
  std::shared_ptr<ServerJob> pop();

  /// Refuse all future admissions; pop() continues until empty.
  void close();

  bool closed() const;
  std::size_t depth() const;
  std::size_t max_depth() const { return max_depth_; }
  /// High-water mark of depth() since construction.
  std::size_t peak_depth() const;

 private:
  const std::size_t max_depth_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<ServerJob>> jobs_;
  std::size_t peak_ = 0;
  bool closed_ = false;
};

}  // namespace sva
