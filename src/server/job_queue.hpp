#pragma once
// Bounded job queue with admission control for the timing daemon.
//
// Connection threads are producers; one executor thread is the consumer,
// so admitted jobs run in admission order -- combined with the engine's
// bit-exact parallelism this makes daemon results independent of client
// arrival interleaving.  Admission is non-blocking by design: a full
// queue rejects immediately (try_push == false) and the connection
// answers with a Busy response instead of stalling the client behind an
// unbounded backlog.  close() stops new admissions while pop() keeps
// draining what was already accepted -- the graceful-shutdown contract.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>

#include "server/jobs.hpp"
#include "util/cancel.hpp"

namespace sva {

/// One admitted job: the bound work, its private cancel token, and the
/// promise the owning connection thread waits on.
struct ServerJob {
  std::uint64_t id = 0;
  std::function<JobResult()> work;
  std::shared_ptr<CancelToken> cancel;
  std::promise<JobResult> done;
  std::chrono::steady_clock::time_point enqueued_at{};
};

class JobQueue {
 public:
  explicit JobQueue(std::size_t max_depth);

  /// Admit one job.  False when the queue is at max_depth or closed (the
  /// caller answers Busy); never blocks.
  bool try_push(ServerJob job);

  /// Take the oldest admitted job; blocks while the queue is open and
  /// empty.  nullopt once the queue is closed *and* drained.
  std::optional<ServerJob> pop();

  /// Refuse all future admissions; pop() continues until empty.
  void close();

  bool closed() const;
  std::size_t depth() const;
  std::size_t max_depth() const { return max_depth_; }
  /// High-water mark of depth() since construction.
  std::size_t peak_depth() const;

 private:
  const std::size_t max_depth_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<ServerJob> jobs_;
  std::size_t peak_ = 0;
  bool closed_ = false;
};

}  // namespace sva
