#include "server/socket.hpp"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/serialize.hpp"

namespace sva {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  const int saved = errno;
  throw SocketError(what + ": " + std::strerror(saved), saved);
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path))
    throw SocketError("socket path '" + path +
                      "' is empty or too long for sockaddr_un");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

Fd make_socket() {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  return Fd(fd);
}

}  // namespace

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    close_now();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Fd::close_now() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Fd unix_listen(const std::string& path, int backlog) {
  const sockaddr_un addr = make_addr(path);
  // Reclaim a stale socket file: a connect() that is refused proves no
  // daemon owns it.  A successful probe means the address is live.
  {
    Fd probe = make_socket();
    if (::connect(probe.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0)
      throw SocketError("socket '" + path +
                        "' is already served by a live daemon");
    if (errno == ECONNREFUSED) ::unlink(path.c_str());
  }
  Fd fd = make_socket();
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    throw_errno("bind('" + path + "')");
  if (::listen(fd.get(), backlog) != 0) throw_errno("listen('" + path + "')");
  return fd;
}

Fd unix_connect(const std::string& path) {
  const sockaddr_un addr = make_addr(path);
  Fd fd = make_socket();
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) throw_errno("connect('" + path + "')");
  return fd;
}

int poll_readable(int fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) throw_errno("poll");
  if (rc == 0) return 0;
  if (pfd.revents & (POLLERR | POLLNVAL)) return -1;
  // POLLHUP with pending bytes still reads; bare POLLHUP is a hangup.
  if ((pfd.revents & POLLHUP) && !(pfd.revents & POLLIN)) return -1;
  return 1;
}

bool peer_disconnected(int fd) {
  // Readable + zero-byte peek == orderly shutdown from the peer.  A
  // pending frame (readable, nonzero peek) is not a disconnect.
  if (poll_readable(fd, 0) == -1) return true;
  char byte;
  ssize_t n;
  do {
    n = ::recv(fd, &byte, 1, MSG_PEEK | MSG_DONTWAIT);
  } while (n < 0 && errno == EINTR);
  if (n == 0) return true;
  if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) return true;
  return false;
}

void write_all(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    // MSG_NOSIGNAL: a vanished peer surfaces as EPIPE, never SIGPIPE.
    const ssize_t written = ::send(fd, p, n, MSG_NOSIGNAL);
    if (written < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    p += written;
    n -= static_cast<std::size_t>(written);
  }
}

bool read_exact(int fd, void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, p + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (r == 0) {
      if (got == 0) return false;  // clean EOF at a boundary
      throw SocketError("peer closed the connection mid-read (" +
                        std::to_string(got) + "/" + std::to_string(n) +
                        " bytes)");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

void write_frame(int fd, const Frame& frame) {
  const std::string wire = encode_frame(frame);
  write_all(fd, wire.data(), wire.size());
}

std::optional<Frame> read_frame(int fd) {
  std::uint8_t header[8];
  if (!read_exact(fd, header, sizeof header)) return std::nullopt;
  ByteReader r(std::string_view(reinterpret_cast<const char*>(header),
                                sizeof header));
  const std::uint32_t magic = r.u32();
  const std::uint32_t len = r.u32();
  if (magic != kFrameMagic)
    throw ProtocolError(ProtoStatus::BadMagic,
                        "frame does not start with the SVAF magic");
  if (len > kMaxFramePayload)
    throw ProtocolError(ProtoStatus::Oversized,
                        "frame payload length " + std::to_string(len) +
                            " exceeds the protocol maximum");
  std::string payload(len, '\0');
  if (len > 0 && !read_exact(fd, payload.data(), payload.size()))
    throw ProtocolError(ProtoStatus::Truncated,
                        "peer closed the connection inside a frame");
  return decode_frame_payload(payload);
}

}  // namespace sva
