#include "server/socket.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/serialize.hpp"

namespace sva {

namespace {

// Budgeted waits poll in short slices so an expired deadline is noticed
// within one slice even when the descriptor never becomes ready.
constexpr int kIoPollSliceMs = 50;

[[noreturn]] void throw_errno(const std::string& what) {
  const int saved = errno;
  throw SocketError(what + ": " + std::strerror(saved), saved);
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path))
    throw SocketError("socket path '" + path +
                      "' is empty or too long for sockaddr_un");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD);
  if (flags < 0 || ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC) < 0)
    throw_errno("fcntl(FD_CLOEXEC)");
}

Fd make_socket(int family, bool tcp) {
  const int fd = ::socket(family, SOCK_STREAM, 0);
  if (fd < 0)
    throw_errno(family == AF_UNIX ? "socket(AF_UNIX)" : "socket(AF_INET)");
  Fd owned(fd);
  adopt_stream_socket(fd, tcp);
  return owned;
}

/// Shared tail of both listen paths: bind + listen with uniform errors.
/// The Unix path runs its stale-file reclaim before calling this; the
/// TCP path relies on SO_REUSEADDR instead (its "stale socket" is a
/// TIME_WAIT address, which the kernel reclaims for us).
Fd bind_and_listen(Fd fd, const sockaddr* addr, socklen_t addr_len,
                   const std::string& what, int backlog) {
  if (::bind(fd.get(), addr, addr_len) != 0)
    throw_errno("bind('" + what + "')");
  if (::listen(fd.get(), backlog) != 0) throw_errno("listen('" + what + "')");
  return fd;
}

int poll_events(int fd, short events, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = events;
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) throw_errno("poll");
  if (rc == 0) return 0;
  if (pfd.revents & (POLLERR | POLLNVAL)) return -1;
  // POLLHUP with pending bytes still reads; bare POLLHUP is a hangup.
  if ((pfd.revents & POLLHUP) && !(pfd.revents & events)) return -1;
  return 1;
}

[[noreturn]] void throw_slow(const char* op, std::size_t done,
                             std::size_t total) {
  throw SlowPeerError(std::string(op) + " deadline expired after " +
                      std::to_string(done) + "/" + std::to_string(total) +
                      " bytes");
}

}  // namespace

int IoDeadline::remaining_ms(int cap) const {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        at - std::chrono::steady_clock::now())
                        .count();
  if (left <= 0) return 0;
  return left < cap ? static_cast<int>(left) : cap;
}

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    close_now();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Fd::close_now() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::string Endpoint::describe() const {
  if (kind == Kind::Unix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Endpoint parse_endpoint(const std::string& uri) {
  Endpoint ep;
  if (uri.rfind("unix:", 0) == 0) {
    ep.kind = Endpoint::Kind::Unix;
    ep.path = uri.substr(5);
    if (ep.path.empty())
      throw SocketError("endpoint '" + uri + "' has an empty socket path");
    return ep;
  }
  if (uri.rfind("tcp:", 0) == 0) {
    const std::string rest = uri.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size())
      throw SocketError("endpoint '" + uri +
                        "' is not of the form tcp:HOST:PORT");
    ep.kind = Endpoint::Kind::Tcp;
    ep.host = rest.substr(0, colon);
    const std::string port_str = rest.substr(colon + 1);
    char* end = nullptr;
    const unsigned long port = std::strtoul(port_str.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || port > 65535)
      throw SocketError("endpoint '" + uri + "' has an invalid port '" +
                        port_str + "'");
    ep.port = static_cast<std::uint16_t>(port);
    return ep;
  }
  // Bare path: back-compat shorthand for unix:PATH.
  ep.kind = Endpoint::Kind::Unix;
  ep.path = uri;
  if (ep.path.empty()) throw SocketError("endpoint is empty");
  return ep;
}

void adopt_stream_socket(int fd, bool tcp) {
  set_cloexec(fd);
  if (tcp) {
    const int one = 1;
    // Frames go out as one buffer; Nagle would only delay the tail.
    if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one) != 0)
      throw_errno("setsockopt(TCP_NODELAY)");
  }
}

Fd unix_listen(const std::string& path, int backlog) {
  const sockaddr_un addr = make_addr(path);
  // Reclaim a stale socket file: a connect() that is refused proves no
  // daemon owns it.  A successful probe means the address is live.
  {
    Fd probe = make_socket(AF_UNIX, /*tcp=*/false);
    if (::connect(probe.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0)
      throw SocketError("socket '" + path +
                        "' is already served by a live daemon");
    if (errno == ECONNREFUSED) ::unlink(path.c_str());
  }
  Fd fd = make_socket(AF_UNIX, /*tcp=*/false);
  return bind_and_listen(std::move(fd),
                         reinterpret_cast<const sockaddr*>(&addr),
                         sizeof(addr), path, backlog);
}

Fd unix_connect(const std::string& path) {
  const sockaddr_un addr = make_addr(path);
  Fd fd = make_socket(AF_UNIX, /*tcp=*/false);
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) throw_errno("connect('" + path + "')");
  return fd;
}

namespace {

/// Resolve host:port to the first usable IPv4/IPv6 stream address.
struct ResolvedAddr {
  sockaddr_storage addr{};
  socklen_t len = 0;
  int family = AF_INET;
};

ResolvedAddr resolve_tcp(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* list = nullptr;
  const std::string port_str = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &list);
  if (rc != 0)
    throw SocketError("getaddrinfo('" + host + "'): " + ::gai_strerror(rc));
  ResolvedAddr out;
  out.family = list->ai_family;
  out.len = static_cast<socklen_t>(list->ai_addrlen);
  std::memcpy(&out.addr, list->ai_addr, list->ai_addrlen);
  ::freeaddrinfo(list);
  return out;
}

}  // namespace

Fd tcp_listen(const std::string& host, std::uint16_t port, int backlog,
              std::uint16_t* bound_port) {
  const ResolvedAddr resolved = resolve_tcp(host, port);
  Fd fd = make_socket(resolved.family, /*tcp=*/true);
  const int one = 1;
  // Restarting the daemon must not wait out TIME_WAIT on the old address.
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) != 0)
    throw_errno("setsockopt(SO_REUSEADDR)");
  const std::string what = host + ":" + std::to_string(port);
  fd = bind_and_listen(std::move(fd),
                       reinterpret_cast<const sockaddr*>(&resolved.addr),
                       resolved.len, what, backlog);
  if (bound_port != nullptr) {
    sockaddr_storage bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0)
      throw_errno("getsockname");
    if (bound.ss_family == AF_INET)
      *bound_port =
          ntohs(reinterpret_cast<const sockaddr_in*>(&bound)->sin_port);
    else
      *bound_port =
          ntohs(reinterpret_cast<const sockaddr_in6*>(&bound)->sin6_port);
  }
  return fd;
}

Fd tcp_connect(const std::string& host, std::uint16_t port) {
  const ResolvedAddr resolved = resolve_tcp(host, port);
  Fd fd = make_socket(resolved.family, /*tcp=*/true);
  int rc;
  do {
    rc = ::connect(fd.get(),
                   reinterpret_cast<const sockaddr*>(&resolved.addr),
                   resolved.len);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0)
    throw_errno("connect('tcp:" + host + ":" + std::to_string(port) + "')");
  return fd;
}

Fd endpoint_connect(const Endpoint& ep) {
  if (ep.kind == Endpoint::Kind::Unix) return unix_connect(ep.path);
  return tcp_connect(ep.host, ep.port);
}

int poll_readable(int fd, int timeout_ms) {
  return poll_events(fd, POLLIN, timeout_ms);
}

int poll_any_readable(const int* fds, std::size_t n, int timeout_ms) {
  pollfd pfds[8];
  if (n > sizeof pfds / sizeof pfds[0])
    throw SocketError("poll_any_readable supports at most 8 descriptors");
  for (std::size_t i = 0; i < n; ++i) {
    pfds[i] = pollfd{};
    pfds[i].fd = fds[i];
    pfds[i].events = POLLIN;
  }
  int rc;
  do {
    rc = ::poll(pfds, static_cast<nfds_t>(n), timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) throw_errno("poll");
  if (rc == 0) return -1;
  for (std::size_t i = 0; i < n; ++i)
    if (pfds[i].revents != 0) return static_cast<int>(i);
  return -1;
}

bool peer_disconnected(int fd) {
  // Readable + zero-byte peek == orderly shutdown from the peer.  A
  // pending frame (readable, nonzero peek) is not a disconnect.
  if (poll_readable(fd, 0) == -1) return true;
  char byte;
  ssize_t n;
  do {
    n = ::recv(fd, &byte, 1, MSG_PEEK | MSG_DONTWAIT);
  } while (n < 0 && errno == EINTR);
  if (n == 0) return true;
  if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) return true;
  return false;
}

void write_all(int fd, const void* data, std::size_t n,
               const IoDeadline* deadline) {
  const char* p = static_cast<const char*>(data);
  const std::size_t total = n;
  while (n > 0) {
    if (deadline != nullptr) {
      const int wait = deadline->remaining_ms(kIoPollSliceMs);
      if (wait == 0) throw_slow("write", total - n, total);
      // Bounded wait for buffer space; -1 (hangup) falls through to
      // send(), which surfaces the precise error.
      if (poll_events(fd, POLLOUT, wait) == 0) continue;
    }
    // MSG_NOSIGNAL: a vanished peer surfaces as EPIPE, never SIGPIPE.
    const int flags = MSG_NOSIGNAL | (deadline != nullptr ? MSG_DONTWAIT : 0);
    const ssize_t written = ::send(fd, p, n, flags);
    if (written < 0) {
      if (errno == EINTR) continue;
      if (deadline != nullptr && (errno == EAGAIN || errno == EWOULDBLOCK))
        continue;
      throw_errno("send");
    }
    p += written;
    n -= static_cast<std::size_t>(written);
  }
}

bool read_exact(int fd, void* data, std::size_t n,
                const IoDeadline* deadline) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < n) {
    if (deadline != nullptr) {
      const int wait = deadline->remaining_ms(kIoPollSliceMs);
      if (wait == 0) throw_slow("read", got, n);
      if (poll_readable(fd, wait) == 0) continue;
    }
    const int flags = deadline != nullptr ? MSG_DONTWAIT : 0;
    const ssize_t r = ::recv(fd, p + got, n - got, flags);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (deadline != nullptr && (errno == EAGAIN || errno == EWOULDBLOCK))
        continue;
      throw_errno("recv");
    }
    if (r == 0) {
      if (got == 0) return false;  // clean EOF at a boundary
      throw SocketError("peer closed the connection mid-read (" +
                        std::to_string(got) + "/" + std::to_string(n) +
                        " bytes)");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

void write_frame(int fd, const Frame& frame, const IoDeadline* deadline) {
  const std::string wire = encode_frame(frame);
  write_all(fd, wire.data(), wire.size(), deadline);
}

std::optional<Frame> read_frame(int fd, const IoDeadline* deadline,
                                std::size_t* wire_bytes) {
  std::uint8_t header[8];
  if (!read_exact(fd, header, sizeof header, deadline)) return std::nullopt;
  ByteReader r(std::string_view(reinterpret_cast<const char*>(header),
                                sizeof header));
  const std::uint32_t magic = r.u32();
  const std::uint32_t len = r.u32();
  if (magic != kFrameMagic)
    throw ProtocolError(ProtoStatus::BadMagic,
                        "frame does not start with the SVAF magic");
  if (len > kMaxFramePayload)
    throw ProtocolError(ProtoStatus::Oversized,
                        "frame payload length " + std::to_string(len) +
                            " exceeds the protocol maximum");
  std::string payload(len, '\0');
  if (len > 0 && !read_exact(fd, payload.data(), payload.size(), deadline))
    throw ProtocolError(ProtoStatus::Truncated,
                        "peer closed the connection inside a frame");
  if (wire_bytes != nullptr) *wire_bytes = sizeof header + payload.size();
  return decode_frame_payload(payload);
}

}  // namespace sva
