#include "server/job_queue.hpp"

namespace sva {

JobQueue::JobQueue(std::size_t max_depth)
    : max_depth_(max_depth == 0 ? 1 : max_depth) {}

bool JobQueue::try_push(std::shared_ptr<ServerJob> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || jobs_.size() >= max_depth_) return false;
    jobs_.push_back(std::move(job));
    if (jobs_.size() > peak_) peak_ = jobs_.size();
  }
  cv_.notify_one();
  return true;
}

std::shared_ptr<ServerJob> JobQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !jobs_.empty(); });
  if (jobs_.empty()) return nullptr;
  std::shared_ptr<ServerJob> job = std::move(jobs_.front());
  jobs_.pop_front();
  return job;
}

void JobQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t JobQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_.size();
}

std::size_t JobQueue::peak_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_;
}

}  // namespace sva
