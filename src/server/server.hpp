#pragma once
// The `sva serve` daemon: a long-lived timing server over a Unix-domain
// socket.
//
// Construction-time cost is paid once: the caller builds the SvaFlow
// (library OPC, pitch table, context cache -- warm-started from the
// persistent cache where available) and hands it in; the SizedLibrary
// the optimize path needs is built lazily on the first optimize request
// and then stays hot.  serve() then runs three kinds of thread:
//
//   accept loop     (caller's thread)  poll/accept, failpoint
//                   "server.accept", spawns one handler per connection;
//   handlers        read frames ("server.read" failpoint), answer
//                   metrics/ping/shutdown inline, submit analyze and
//                   optimize jobs to the bounded JobQueue -- a full
//                   queue answers Busy immediately (admission control)
//                   -- then wait on the job while watching the socket:
//                   a client disconnect cancels that client's job only;
//   executor        (one thread) pops admitted jobs in order and runs
//                   them on the shared ThreadPool, so results are
//                   independent of client arrival interleaving.
//
// Each job carries its own CancelToken; a per-request deadline_ms is
// armed at admission (queue wait counts).  Graceful shutdown -- SIGTERM/
// SIGINT via the `stop` token, or a client Shutdown request -- stops
// admissions, drains every admitted job to its waiting client, joins all
// threads, unlinks the socket file, and returns 0.  A malformed or
// faulted client frame drops that connection and nothing else: the
// daemon survives every client-side byte sequence.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/job_queue.hpp"
#include "server/protocol.hpp"
#include "server/socket.hpp"
#include "util/cancel.hpp"

namespace sva {

class SvaFlow;
class SizedLibrary;
class ThreadPool;

struct ServerConfig {
  std::string socket_path;
  /// Admission-control bound: jobs queued-or-running beyond this are
  /// rejected with a Busy response.
  std::size_t queue_depth = 8;
  /// Persistent cache directory for the lazily built SizedLibrary's
  /// context cache (empty disables; the flow's own cache is the
  /// caller's business).
  std::string cache_dir;
};

class TimingServer {
 public:
  /// `flow` must outlive the server and stay constructed for the whole
  /// serve() call; it is shared by every job.
  TimingServer(const SvaFlow& flow, ServerConfig config);
  ~TimingServer();

  TimingServer(const TimingServer&) = delete;
  TimingServer& operator=(const TimingServer&) = delete;

  /// Bind the socket and serve until shutdown.  Jobs execute on `pool`.
  /// A non-null `stop` token (the CLI passes the global signal token) is
  /// polled by the accept loop; tripping it begins the graceful drain.
  /// Returns the process exit code (0 on a clean drain).
  int serve(ThreadPool& pool, const CancelToken* stop = nullptr);

  /// Begin the graceful drain from another thread (tests; the shutdown
  /// request uses it internally).  Idempotent.
  void request_stop();

  const ServerConfig& config() const { return config_; }

 private:
  void executor_loop();
  void handle_connection(Fd fd);
  void handle_request(int fd, const Frame& request, bool& keep_open);
  void submit_and_wait(int fd, std::uint64_t deadline_ms,
                       std::function<JobResult(const CancelToken*)> work);
  /// The lazily built sized library (first optimize request pays for
  /// it); throws out of the executor on construction failure.
  const SizedLibrary& ensure_sized();

  const SvaFlow& flow_;
  ServerConfig config_;
  ThreadPool* pool_ = nullptr;
  JobQueue queue_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> next_job_id_{1};

  std::unique_ptr<SizedLibrary> sized_;
  std::once_flag sized_once_;

  std::mutex handlers_mu_;
  struct Handler {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> finished;
  };
  std::vector<Handler> handlers_;
  void reap_handlers(bool join_all);
};

}  // namespace sva
