#pragma once
// The `sva serve` daemon: a long-lived timing server over a Unix-domain
// socket and/or a TCP listener (both speak the same frame protocol).
//
// Construction-time cost is paid once: the caller builds the SvaFlow
// (library OPC, pitch table, context cache -- warm-started from the
// persistent cache where available) and hands it in; the SizedLibrary
// the optimize path needs is built lazily on the first optimize request
// and then stays hot.  serve() then runs four kinds of thread:
//
//   accept loop     (caller's thread)  poll/accept over both listeners,
//                   failpoints "server.accept" / "server.conn.accept",
//                   spawns one handler per connection; connections over
//                   the --max-conns cap are shed with a Busy response
//                   carrying the retry_after_ms hint instead of being
//                   queued (server.conn.shed_busy);
//   handlers        read frames ("server.read" failpoint) through the
//                   connection supervisor (server/conn.hpp): per-frame
//                   read/write budgets plus an idle budget evict
//                   slow-loris peers (server.conn.evicted_slow).  They
//                   answer metrics/ping/health/shutdown inline, submit
//                   analyze/optimize/ssta jobs to the LanePool -- a full
//                   backlog answers Busy immediately with a
//                   retry_after_ms hint (admission control) -- then wait
//                   on the job while watching the socket: a client
//                   disconnect cancels that client's job only.  A
//                   BatchRequest admits its N slots in submission order
//                   (distinct specs spread over the lanes concurrently)
//                   and answers one BatchResponse whose slots are
//                   byte-identical to N single-spec connections; a
//                   malformed or crashing slot poisons only itself;
//   lanes           N executor lanes (--lanes), each owning a queue and
//                   running its jobs on the shared ThreadPool.  A job is
//                   bound to lane (spec_hash % N) so identical specs
//                   serialize and results stay bit-identical to the
//                   single-executor daemon; a crashing or cancelled job
//                   poisons only its lane, which is recycled in place;
//   watchdog        (inside the LanePool) heartbeat scanner that cancels
//                   stuck jobs and replaces wedged lane threads.
//
// Each job carries its own CancelToken; a per-request deadline_ms is
// armed at admission (queue wait counts).  Clean analyze/ssta results
// are remembered in a bounded LRU ResultCache keyed by the job-spec
// content hash, which makes client retries idempotent: a replayed spec
// is answered with the exact bytes of the first run without
// re-execution.  Graceful shutdown -- SIGTERM/SIGINT via the `stop`
// token, or a client Shutdown request -- stops admissions, drains every
// admitted job to its waiting client, joins all threads, unlinks the
// socket file, and returns 0.  A malformed or faulted client frame drops
// that connection and nothing else: the daemon survives every
// client-side byte sequence.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "server/conn.hpp"
#include "server/job_queue.hpp"
#include "server/lane_pool.hpp"
#include "server/protocol.hpp"
#include "server/result_cache.hpp"
#include "server/socket.hpp"
#include "util/cancel.hpp"

namespace sva {

class SvaFlow;
class SizedLibrary;
class ThreadPool;

struct ServerConfig {
  /// Unix-domain socket path; empty disables that listener.
  std::string socket_path;
  /// TCP listen address as HOST:PORT (port 0 = kernel-assigned, see
  /// tcp_port()); empty disables the TCP listener.  At least one of
  /// socket_path / listen_address must be set.
  std::string listen_address;
  /// Admission-control bound: jobs queued beyond this are rejected with a
  /// Busy response.
  std::size_t queue_depth = 8;
  /// Hard cap on concurrently served connections; an accept beyond it is
  /// answered Busy (retry_after_ms hint) and closed immediately.
  std::size_t max_conns = 64;
  /// Per-connection IO budgets (slow-client defense); see ConnLimits.
  ConnLimits conn_limits;
  /// Persistent cache directory for the lazily built SizedLibrary's
  /// context cache (empty disables; the flow's own cache is the
  /// caller's business).
  std::string cache_dir;
  /// Executor lanes; 0 sizes from the hardware (capped, >= 1).
  std::size_t lanes = 0;
  /// Result-cache entries for clean analyze/ssta results; 0 disables
  /// (the `sva serve` CLI defaults this on).
  std::size_t result_cache_capacity = 0;
  /// Print each bound endpoint on stdout once listening ("sva serve:
  /// listening on tcp:HOST:PORT").  The CLI daemon turns this on so
  /// scripts can discover a kernel-assigned TCP port; in-process
  /// embedders (tests, benches) read tcp_port() instead.
  bool announce = false;
  /// Watchdog thresholds; see LanePool::Config.
  std::uint64_t watchdog_stall_ms = 10'000;
  std::uint64_t watchdog_grace_ms = 2'000;
};

/// Busy-response backoff hint: how long a rejected client should wait
/// before retrying, from the queued backlog and the recent mean job
/// time.  Monotone in queue_depth and clamped to a sane range.
std::uint64_t estimate_retry_after_ms(std::size_t queue_depth,
                                      double mean_job_ms);

class TimingServer {
 public:
  /// `flow` must outlive the server and stay constructed for the whole
  /// serve() call; it is shared by every job.
  TimingServer(const SvaFlow& flow, ServerConfig config);
  ~TimingServer();

  TimingServer(const TimingServer&) = delete;
  TimingServer& operator=(const TimingServer&) = delete;

  /// Bind the socket and serve until shutdown.  Jobs execute on `pool`.
  /// A non-null `stop` token (the CLI passes the global signal token) is
  /// polled by the accept loop; tripping it begins the graceful drain.
  /// Returns the process exit code (0 on a clean drain).
  int serve(ThreadPool& pool, const CancelToken* stop = nullptr);

  /// Begin the graceful drain from another thread (tests; the shutdown
  /// request uses it internally).  Idempotent.
  void request_stop();

  const ServerConfig& config() const { return config_; }
  std::size_t lane_count() const { return lanes_.lane_count(); }
  /// Port the TCP listener actually bound (0 until serve() binds it);
  /// meaningful when listen_address asked for port 0.
  std::uint16_t tcp_port() const { return tcp_port_.load(); }

 private:
  /// A job past admission: its handle plus the future the lane fulfils.
  struct PendingJob {
    std::shared_ptr<ServerJob> job;
    std::future<JobResult> done;
    std::shared_ptr<CancelToken> cancel;
  };

  void handle_connection(Conn conn);
  void handle_request(Conn& conn, const Frame& request, bool& keep_open);
  /// Result-cache lookup + admission control.  Either fills `immediate`
  /// (cached replay or Busy) or returns the pending job handle.
  std::optional<PendingJob> admit_job(
      std::uint64_t deadline_ms, std::uint64_t spec_hash, bool cacheable,
      std::function<JobResult(const CancelToken*)> work,
      std::optional<Frame>* immediate);
  /// Account a finished job and render its response frame (inserting a
  /// clean cacheable result into the result cache).
  Frame finish_result(const JobResult& result, std::uint64_t spec_hash,
                      bool cacheable);
  /// Admit one job (or answer Busy / the result cache) and stream the
  /// response.  `keep_open` is cleared on a lane crash, where the
  /// connection is dropped without a response so the client's
  /// transient-retry path takes over.
  void submit_and_wait(Conn& conn, std::uint64_t deadline_ms,
                       std::uint64_t spec_hash, bool cacheable,
                       std::function<JobResult(const CancelToken*)> work,
                       bool& keep_open);
  /// Serve a BatchRequest: admit every slot in submission order, await
  /// them in the same order, and answer one BatchResponse.  Per-slot
  /// isolation: a malformed spec, a Busy rejection, a job error, or a
  /// crashed lane resolves to that slot's response only.
  void handle_batch(Conn& conn, const BatchRequest& request);
  HealthResponse health_snapshot() const;
  /// The lazily built sized library (first optimize request pays for
  /// it); throws out of the executor on construction failure.
  const SizedLibrary& ensure_sized();

  const SvaFlow& flow_;
  ServerConfig config_;
  ThreadPool* pool_ = nullptr;
  LanePool lanes_;
  ResultCache result_cache_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> next_job_id_{1};
  std::atomic<std::uint64_t> jobs_served_{0};
  std::atomic<std::uint16_t> tcp_port_{0};
  std::atomic<std::size_t> active_conns_{0};
  std::chrono::steady_clock::time_point started_at_{};

  std::unique_ptr<SizedLibrary> sized_;
  std::once_flag sized_once_;

  std::mutex handlers_mu_;
  struct Handler {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> finished;
  };
  std::vector<Handler> handlers_;
  void reap_handlers(bool join_all);
};

}  // namespace sva
