#pragma once
// The analyze/optimize job bodies shared by the direct CLI path and the
// `sva serve` daemon.
//
// A job spec is everything that shapes the result; run_*_job executes it
// against a hot SvaFlow/SizedLibrary and returns the exact bytes a direct
// CLI run prints (output text + named artifacts) plus the exit code.
// Both the local commands and the daemon executor call the same two
// functions, so a result shipped over the socket is bit-identical to the
// local run by construction -- there is no second rendering path to
// drift.  (The one nondeterministic line, analyze's "(N circuits, T
// threads, X s)" wall-time trailer, is nondeterministic between *any*
// two runs; comparisons strip it exactly as scripts/check.sh always has.)
//
// Checkpoint/resume stays a local-only affair: the daemon never journals
// client runs (specs arrive with empty paths), while the local commands
// plumb --checkpoint/--resume through the same spec fields.

#include <cstdint>
#include <string>
#include <vector>

#include "opt/eco.hpp"
#include "util/cancel.hpp"

namespace sva {

class SvaFlow;
class SizedLibrary;
class ThreadPool;

/// One multi-circuit corner-analysis job (the `analyze` command).
struct AnalyzeJobSpec {
  std::vector<std::string> circuits;
  /// Fail fast on the first job fault instead of per-slot isolation.
  bool strict = false;
  /// Local-only: resume from / journal to these checkpoint paths.  Both
  /// empty for daemon jobs.
  std::string resume_path;
  std::string checkpoint_path;
};

/// One ECO optimization job (the `optimize` command).  Defaults mirror
/// EcoConfig so a spec built from bare CLI args behaves identically.
struct OptimizeJobSpec {
  std::string circuit;
  double clock_period_ps = 0.0;  ///< <= 0: EcoConfig's auto clock
  std::uint64_t max_moves = EcoConfig{}.max_moves;
  double window_ps = EcoConfig{}.near_critical_window_ps;
  std::uint8_t corner_mode = 0;  ///< 0 = SvaWorst, 1 = TraditionalWorst
  /// Where the caller wants the trajectory CSV; becomes an artifact name
  /// (the *caller* writes it -- the daemon never touches client paths).
  /// Empty: no CSV artifact.
  std::string csv_path = "eco_trajectory.csv";
  /// Local-only checkpoint plumbing; empty for daemon jobs.
  std::string resume_path;
  std::string checkpoint_path;

  EcoCornerMode mode() const {
    return corner_mode == 0 ? EcoCornerMode::SvaWorst
                            : EcoCornerMode::TraditionalWorst;
  }
};

/// One block-based SSTA job (the `ssta` command).
struct SstaJobSpec {
  std::string circuit;
  double clock_period_ps = 0.0;  ///< <= 0: no yield line
  double quantile = 0.999;       ///< reported upper quantile, in (0,1)
  /// Monte-Carlo cross-check sample count (0 = skip; deterministic seed,
  /// so the cross-check lines are byte-stable too).
  std::uint64_t mc_samples = 0;
  /// Chip-global share of the residual sigma, in [0,1].
  double global_share = 0.0;
  /// Criticality report CSV artifact name (caller writes it); empty: none.
  std::string csv_path = "ssta_criticality.csv";
};

/// A file the job produced, to be written by whichever process faces the
/// user (the local command or the remote client).
struct JobArtifact {
  std::string path;
  std::string bytes;
};

/// Terminal state of one job.  Exactly one of three shapes:
///   error non-empty         -> the job raised; output/artifacts empty
///   cancelled               -> wind-down text in output, exit code 4
///   otherwise               -> output + artifacts, exit code 0/1/3
struct JobResult {
  int exit_code = 0;
  std::string output;  ///< the direct run's stdout text (pre-artifact)
  std::vector<JobArtifact> artifacts;
  bool cancelled = false;
  std::uint8_t cancel_reason = 0;  ///< CancelReason as u8
  std::string error;               ///< non-empty => the job failed fatally
  /// Daemon-internal, never serialized: the executor lane crashed before
  /// the job ran (injected lane fault).  The server drops the connection
  /// without a response so the client's transient-retry path -- not its
  /// "server error" path -- handles it; nothing observable happened.
  bool lane_crashed = false;
};

/// Run a corner-analysis batch against a constructed flow.  Handles
/// resume, cancellation wind-down, and checkpoint journalling exactly as
/// the pre-daemon cmd_analyze did; a non-null `cancel` is polled at job
/// and STA-level granularity.
JobResult run_analyze_job(const SvaFlow& flow, ThreadPool& pool,
                          const AnalyzeJobSpec& spec,
                          const CancelToken* cancel);

/// Run an ECO optimization against a constructed flow + sized library.
JobResult run_optimize_job(const SvaFlow& flow, const SizedLibrary& sized,
                           ThreadPool& pool, const OptimizeJobSpec& spec,
                           const CancelToken* cancel);

/// Run a block-based SSTA analysis (canonical propagation + criticality,
/// optional Monte-Carlo cross-check) against a constructed flow.  A
/// non-fatal spec or circuit fault comes back as an error result with a
/// structured diagnostic rather than an exception, mirroring the batch
/// runner's per-job isolation.
JobResult run_ssta_job(const SvaFlow& flow, ThreadPool& pool,
                       const SstaJobSpec& spec, const CancelToken* cancel);

/// Deliver a finished job to the user: print the output text, write each
/// artifact (with the "wrote <path>" trailer the CLI always printed), or
/// report the error on stderr.  Returns the process exit code.  Shared
/// by the local commands and the remote client, so both faces of a job
/// are byte-identical.
int emit_job_result(const JobResult& result);

}  // namespace sva
