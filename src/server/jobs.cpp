#include "server/jobs.hpp"

#include <cstdarg>
#include <cstdio>
#include <utility>

#include "core/flow.hpp"
#include "core/statistical.hpp"
#include "engine/batch.hpp"
#include "engine/options.hpp"
#include "engine/thread_pool.hpp"
#include "opt/sizing.hpp"
#include "opt/trajectory.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "ssta/criticality.hpp"
#include "ssta/propagate.hpp"
#include "ssta/report.hpp"
#include "util/diagnostics.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace sva {

namespace {

void appendf(std::string& out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* format, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, format);
  std::vsnprintf(buf, sizeof buf, format, ap);
  va_end(ap);
  out += buf;
}

/// The wind-down trailer of a cancelled run: reason, and where the
/// journal went (empty `ckpt` => none was written).  Byte-for-byte the
/// text the pre-daemon CLI printed.
void append_cancel_report(std::string& out, const CancelToken& token,
                          const std::string& ckpt) {
  appendf(out, "run cancelled (%s)%s\n", cancel_reason_name(token.reason()),
          token.reason() == CancelReason::Deadline ? ": deadline exceeded"
                                                   : "");
  if (!ckpt.empty())
    appendf(out, "checkpoint written to %s; continue with --resume %s\n",
            ckpt.c_str(), ckpt.c_str());
}

JobResult cancelled_result(std::string output, const CancelToken& token) {
  JobResult result;
  result.exit_code = kExitCancelled;
  result.output = std::move(output);
  result.cancelled = true;
  result.cancel_reason = static_cast<std::uint8_t>(token.reason());
  return result;
}

}  // namespace

JobResult run_analyze_job(const SvaFlow& flow, ThreadPool& pool,
                          const AnalyzeJobSpec& spec,
                          const CancelToken* cancel) {
  BatchOptions batch_opts;
  batch_opts.keep_going = !spec.strict;
  batch_opts.cancel = cancel;
  std::vector<BatchJob> jobs;
  jobs.reserve(spec.circuits.size());
  for (const std::string& name : spec.circuits) jobs.push_back({name});
  // --resume: reload the interrupted run's journal (hash-verified against
  // this flow + job list) so final slots are copied, not recomputed.
  BatchResult prior;
  const bool resuming = !spec.resume_path.empty();
  if (resuming) prior = load_batch_checkpoint(spec.resume_path, flow, jobs);
  const BatchRunner runner(flow, pool, batch_opts);
  const BatchResult batch = runner.run(jobs, resuming ? &prior : nullptr);
  JobResult result;
  if (batch.cancelled_count() > 0) {
    // Journal the final slots and report the documented cancelled exit
    // code.  A failed journal write (disk full, injected fault) does not
    // mask the cancellation -- it only costs the resume file.  Daemon
    // jobs arrive with no checkpoint path and simply skip the journal.
    std::string ckpt = spec.checkpoint_path;
    if (!ckpt.empty()) {
      try {
        save_batch_checkpoint(ckpt, flow, jobs, batch);
      } catch (const std::exception& e) {
        log_warn("checkpoint write failed (", e.what(), ")");
        ckpt.clear();
      }
    }
    appendf(result.output, "%zu/%zu jobs complete\n",
            jobs.size() - batch.cancelled_count(), jobs.size());
    append_cancel_report(result.output, *cancel, ckpt);
    result.exit_code = kExitCancelled;
    result.cancelled = true;
    result.cancel_reason = static_cast<std::uint8_t>(cancel->reason());
    return result;
  }
  Table table({"Testcase", "#Gates", "Trad Nom", "Trad BC", "Trad WC",
               "New Nom", "New BC", "New WC", "Reduction"});
  for (std::size_t ji = 0; ji < batch.analyses.size(); ++ji) {
    const CircuitAnalysis& a = batch.analyses[ji];
    if (!batch.outcomes[ji].ok) {
      table.add_row({a.name, "FAILED", "-", "-", "-", "-", "-", "-", "-"});
      continue;
    }
    table.add_row({a.name, std::to_string(a.gate_count),
                   fmt(units::ps_to_ns(a.trad_nom_ps), 3),
                   fmt(units::ps_to_ns(a.trad_bc_ps), 3),
                   fmt(units::ps_to_ns(a.trad_wc_ps), 3),
                   fmt(units::ps_to_ns(a.sva_nom_ps), 3),
                   fmt(units::ps_to_ns(a.sva_bc_ps), 3),
                   fmt(units::ps_to_ns(a.sva_wc_ps), 3),
                   fmt_pct(a.uncertainty_reduction(), 1)});
  }
  result.output += table.render();
  appendf(result.output, "(%zu circuits, %zu threads, %.2f s)\n",
          batch.analyses.size(), pool.thread_count(), batch.wall_seconds);
  if (!batch.all_ok()) {
    appendf(result.output,
            "%zu job(s) failed; run with --diagnostics for details\n",
            batch.failed_count());
    result.exit_code = kExitJobsFailed;
  }
  return result;
}

JobResult run_optimize_job(const SvaFlow& flow, const SizedLibrary& sized,
                           ThreadPool& pool, const OptimizeJobSpec& spec,
                           const CancelToken* cancel) {
  EcoConfig eco;
  eco.clock_period_ps = spec.clock_period_ps;
  eco.max_moves = spec.max_moves;
  eco.near_critical_window_ps = spec.window_ps;
  eco.mode = spec.mode();
  eco.budget = flow.config().budget;
  eco.arc_policy = flow.config().arc_policy;
  eco.sta = flow.config().sta;
  Netlist netlist = generate_iscas85_like(spec.circuit, sized.library());
  EcoOptimizer optimizer(sized, std::move(netlist), flow.config().placement,
                         eco);
  // --resume: replay the interrupted run's journal (hash-verified, each
  // move witness-checked bit-for-bit) before continuing the loop.
  if (!spec.resume_path.empty()) optimizer.restore(spec.resume_path);
  const EcoResult eco_result = optimizer.run(&pool, cancel);
  if (eco_result.cancelled) {
    std::string ckpt = spec.checkpoint_path;
    if (!ckpt.empty()) {
      try {
        optimizer.checkpoint(ckpt);
      } catch (const std::exception& e) {
        log_warn("checkpoint write failed (", e.what(), ")");
        ckpt.clear();
      }
    }
    std::string output;
    appendf(output, "%zu move(s) committed before cancellation\n",
            eco_result.moves_committed());
    append_cancel_report(output, *cancel, ckpt);
    return cancelled_result(std::move(output), *cancel);
  }
  JobResult result;
  result.output = trajectory_table(eco_result);
  if (!spec.csv_path.empty())
    result.artifacts.push_back({spec.csv_path, trajectory_csv(eco_result)});
  result.exit_code = eco_result.met_timing ? kExitOk : kExitFatal;
  return result;
}

JobResult run_ssta_job(const SvaFlow& flow, ThreadPool& pool,
                       const SstaJobSpec& spec, const CancelToken* cancel) {
  JobResult result;
  try {
    if (!(spec.quantile > 0.0 && spec.quantile < 1.0))
      throw Error("ssta quantile must be in (0,1)");
    if (!(spec.global_share >= 0.0 && spec.global_share <= 1.0))
      throw Error("ssta global share must be in [0,1]");

    const Netlist netlist = flow.make_benchmark(spec.circuit);
    const Placement placement = flow.make_placement(netlist);
    const std::vector<VersionKey> versions = flow.bind_versions(placement);

    SstaVariationModel model;
    model.budget = flow.config().budget;
    model.policy = flow.config().arc_policy;
    model.global_share = spec.global_share;
    const SstaEngine engine(netlist, flow.characterized(),
                            flow.context_library(), versions, model,
                            flow.config().sta, &flow.context_cache());
    const SstaResult ssta = engine.run_parallel(pool, cancel);
    const CriticalityResult crit = compute_criticality(netlist, ssta);

    result.output = ssta_text_report(netlist, ssta, crit, spec.quantile,
                                     spec.clock_period_ps);
    if (spec.mc_samples > 0) {
      // Deterministic-seed Monte-Carlo cross-check against the same
      // variation model (the context-aware sampler is the oracle the
      // canonical engine approximates).
      const Sta sta(netlist, flow.characterized(), flow.config().sta);
      const ContextAwareSampler sampler(
          netlist, flow.context_library(), versions, flow.config().budget,
          flow.config().arc_policy, spec.global_share);
      MonteCarloConfig mc;
      mc.samples = spec.mc_samples;
      const DelayDistribution dist = run_monte_carlo(sta, sampler, mc, cancel);
      const Summary s = dist.summary();
      const CanonicalDelay& c = ssta.critical;
      appendf(result.output,
              "  Monte-Carlo cross-check (%zu samples): mean %s ns (%+.2f%%),"
              " sigma %s ps (%+.2f%%)\n",
              static_cast<std::size_t>(mc.samples),
              fmt(units::ps_to_ns(s.mean), 4).c_str(),
              100.0 * (c.mean_ps - s.mean) / s.mean,
              fmt(s.stddev, 2).c_str(),
              s.stddev > 0.0 ? 100.0 * (c.sigma_ps() - s.stddev) / s.stddev
                             : 0.0);
    }
    if (!spec.csv_path.empty())
      result.artifacts.push_back(
          {spec.csv_path, criticality_csv(netlist, ssta, crit)});
    result.exit_code = kExitOk;
  } catch (const CancelledError&) {
    std::string output;
    append_cancel_report(output, *cancel, std::string());
    return cancelled_result(std::move(output), *cancel);
  } catch (const std::exception& e) {
    // Per-job isolation, matching the batch runner: a bad circuit name or
    // injected fault costs this job only and leaves a structured trace.
    diag_error("ssta", "ssta_job_failed",
               spec.circuit + ": " + std::string(e.what()));
    result = JobResult{};
    result.exit_code = kExitFatal;
    result.error = e.what();
  }
  return result;
}

int emit_job_result(const JobResult& result) {
  if (!result.error.empty()) {
    std::fprintf(stderr, "error: %s\n", result.error.c_str());
    return result.exit_code != 0 ? result.exit_code : kExitFatal;
  }
  std::fwrite(result.output.data(), 1, result.output.size(), stdout);
  for (const JobArtifact& artifact : result.artifacts) {
    write_text_file(artifact.path, artifact.bytes);
    std::printf("wrote %s\n", artifact.path.c_str());
  }
  return result.exit_code;
}

}  // namespace sva
