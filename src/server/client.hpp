#pragma once
// Client side of the `sva serve` protocol.
//
// `sva analyze/optimize --connect URI` builds the same job spec the
// local command would execute, ships it to the daemon, and feeds the
// response back through the shared emit_job_result() path -- so the
// bytes the user sees (tables, CSV artifacts, exit codes, cancellation
// reports) are identical to a direct run, minus the process-start and
// flow-construction cost the daemon already paid.  The URI picks the
// transport: `unix:PATH` (or a bare path) for a local daemon,
// `tcp:HOST:PORT` for a remote one -- both speak the same frames and
// the same retry classification (a refused TCP connect is ECONNREFUSED
// exactly like a refused Unix connect).
//
// Failures are retried only when nothing observable can have happened:
//
//   transient (retried, --retries N)    Busy rejection (carrying the
//     server's retry_after_ms hint), connect refused (no daemon had the
//     socket yet / it was restarting), and a connection closed or reset
//     before the first response byte (the daemon dropped it deliberately
//     after a lane crash or connection fault -- nothing user-visible was
//     delivered).  Each retry resubmits the
//     identical spec, which the server deduplicates by content hash, so
//     retries are idempotent end to end.
//
//   permanent (never retried)    a response delivered even partially --
//     a truncated read mid-frame means bytes reached the user-visible
//     path and a blind re-run could double-deliver; and every job-level
//     Error/Cancelled response, which is a real answer, not a fault.

#include <chrono>
#include <cstdint>
#include <string>

#include "server/protocol.hpp"
#include "server/socket.hpp"
#include "util/retry.hpp"

namespace sva {

/// One connection to a serving daemon.
class ServerClient {
 public:
  /// Connects immediately; throws SocketError when no daemon listens at
  /// `endpoint` (`unix:PATH`, `tcp:HOST:PORT`, or a bare socket path).
  explicit ServerClient(const std::string& endpoint);

  /// Send one request frame and block for the response frame.  Throws
  /// SocketError / ProtocolError on transport or framing failures
  /// (including the daemon dropping the connection mid-job).
  Frame call(const Frame& request);

 private:
  Fd fd_;
};

/// Client-side retry knobs (--retries N).  `retries` is the number of
/// re-attempts after the first try; 0 preserves the classic
/// fail-immediately behaviour.
struct ClientRetryConfig {
  int retries = 0;
  std::chrono::milliseconds initial_backoff{50};
  /// Uniform random extra per retry so clients rejected together spread
  /// out instead of re-colliding.
  std::chrono::milliseconds max_jitter{25};
};

/// A Busy rejection travelling through the transient-retry machinery.
/// Carries the response frame so an exhausted retry budget can still
/// deliver the Busy to the user exactly as a retry-less call would, and
/// the server's retry_after_ms hint feeds the backoff.
class BusyRetryError : public TransientError {
 public:
  BusyRetryError(Frame frame, const BusyResponse& busy)
      : TransientError("server busy (queue " +
                           std::to_string(busy.queue_depth) + "/" +
                           std::to_string(busy.max_depth) + ")",
                       busy.retry_after_ms),
        frame_(std::move(frame)) {}
  const Frame& frame() const { return frame_; }

 private:
  Frame frame_;
};

/// One request/response exchange with bounded transient-only retry (see
/// the classification above).  A Busy response that survives the retry
/// budget is *returned*, not thrown, so callers handle it uniformly.
Frame call_server_with_retry(const std::string& endpoint,
                             const Frame& request,
                             const ClientRetryConfig& retry = {});

/// Ship an analyze/optimize job to the daemon at `endpoint` and
/// deliver the response exactly as the local command would (stdout
/// bytes, artifact files, cancellation report).  Returns the process
/// exit code; a Busy rejection that survives the retry budget reports on
/// stderr and exits with the fatal code.
int run_remote_analyze(const std::string& endpoint,
                       const AnalyzeRequest& request,
                       const ClientRetryConfig& retry = {});
int run_remote_optimize(const std::string& endpoint,
                        const OptimizeRequest& request,
                        const ClientRetryConfig& retry = {});
int run_remote_ssta(const std::string& endpoint,
                    const SstaRequest& request,
                    const ClientRetryConfig& retry = {});

/// Ship N job specs over one connection (`sva batch FILE`) and deliver
/// every slot in submission order through the same emit path.  Busy
/// slots are resubmitted as a sub-batch, sleeping max(server hint,
/// backoff) between rounds, under a bounded budget (retry.retries
/// rounds, capped total sleep); a logged give-up delivers the surviving
/// Busy slots as failures instead of stalling forever.  `labels` (when
/// sized like the items) captions each slot's output header.  Returns 0
/// when every slot exits 0, else kExitJobsFailed.
int run_remote_batch(const std::string& endpoint, const BatchRequest& request,
                     const std::vector<std::string>& labels = {},
                     const ClientRetryConfig& retry = {});

/// Fetch the daemon's server-wide MetricsRegistry snapshot.
MetricsResponse fetch_remote_metrics(const std::string& endpoint);

/// Fetch the daemon's liveness snapshot (`sva ping`).
HealthResponse fetch_remote_health(const std::string& endpoint);

/// Ask the daemon to drain and exit.  Returns once the ack arrives.
void request_remote_shutdown(const std::string& endpoint);

}  // namespace sva
