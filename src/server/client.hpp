#pragma once
// Client side of the `sva serve` protocol.
//
// `sva analyze/optimize --connect PATH` builds the same job spec the
// local command would execute, ships it to the daemon, and feeds the
// response back through the shared emit_job_result() path -- so the
// bytes the user sees (tables, CSV artifacts, exit codes, cancellation
// reports) are identical to a direct run, minus the process-start and
// flow-construction cost the daemon already paid.

#include <cstdint>
#include <string>

#include "server/protocol.hpp"
#include "server/socket.hpp"

namespace sva {

/// One connection to a serving daemon.
class ServerClient {
 public:
  /// Connects immediately; throws SocketError when no daemon listens at
  /// `socket_path`.
  explicit ServerClient(const std::string& socket_path);

  /// Send one request frame and block for the response frame.  Throws
  /// SocketError / ProtocolError on transport or framing failures
  /// (including the daemon dropping the connection mid-job).
  Frame call(const Frame& request);

 private:
  Fd fd_;
};

/// Ship an analyze/optimize job to the daemon at `socket_path` and
/// deliver the response exactly as the local command would (stdout
/// bytes, artifact files, cancellation report).  Returns the process
/// exit code; a Busy rejection reports on stderr and exits with the
/// fatal code.
int run_remote_analyze(const std::string& socket_path,
                       const AnalyzeRequest& request);
int run_remote_optimize(const std::string& socket_path,
                        const OptimizeRequest& request);
int run_remote_ssta(const std::string& socket_path,
                    const SstaRequest& request);

/// Fetch the daemon's server-wide MetricsRegistry snapshot.
MetricsResponse fetch_remote_metrics(const std::string& socket_path);

/// Ask the daemon to drain and exit.  Returns once the ack arrives.
void request_remote_shutdown(const std::string& socket_path);

}  // namespace sva
