#pragma once
// Client side of the `sva serve` protocol.
//
// `sva analyze/optimize --connect PATH` builds the same job spec the
// local command would execute, ships it to the daemon, and feeds the
// response back through the shared emit_job_result() path -- so the
// bytes the user sees (tables, CSV artifacts, exit codes, cancellation
// reports) are identical to a direct run, minus the process-start and
// flow-construction cost the daemon already paid.
//
// Failures are retried only when nothing observable can have happened:
//
//   transient (retried, --retries N)    Busy rejection (carrying the
//     server's retry_after_ms hint), connect refused (no daemon had the
//     socket yet / it was restarting), and a connection closed before
//     the first response byte (the daemon dropped it deliberately after
//     a lane crash -- the job never ran).  Each retry resubmits the
//     identical spec, which the server deduplicates by content hash, so
//     retries are idempotent end to end.
//
//   permanent (never retried)    a response delivered even partially --
//     a truncated read mid-frame means bytes reached the user-visible
//     path and a blind re-run could double-deliver; and every job-level
//     Error/Cancelled response, which is a real answer, not a fault.

#include <chrono>
#include <cstdint>
#include <string>

#include "server/protocol.hpp"
#include "server/socket.hpp"
#include "util/retry.hpp"

namespace sva {

/// One connection to a serving daemon.
class ServerClient {
 public:
  /// Connects immediately; throws SocketError when no daemon listens at
  /// `socket_path`.
  explicit ServerClient(const std::string& socket_path);

  /// Send one request frame and block for the response frame.  Throws
  /// SocketError / ProtocolError on transport or framing failures
  /// (including the daemon dropping the connection mid-job).
  Frame call(const Frame& request);

 private:
  Fd fd_;
};

/// Client-side retry knobs (--retries N).  `retries` is the number of
/// re-attempts after the first try; 0 preserves the classic
/// fail-immediately behaviour.
struct ClientRetryConfig {
  int retries = 0;
  std::chrono::milliseconds initial_backoff{50};
  /// Uniform random extra per retry so clients rejected together spread
  /// out instead of re-colliding.
  std::chrono::milliseconds max_jitter{25};
};

/// A Busy rejection travelling through the transient-retry machinery.
/// Carries the response frame so an exhausted retry budget can still
/// deliver the Busy to the user exactly as a retry-less call would, and
/// the server's retry_after_ms hint feeds the backoff.
class BusyRetryError : public TransientError {
 public:
  BusyRetryError(Frame frame, const BusyResponse& busy)
      : TransientError("server busy (queue " +
                           std::to_string(busy.queue_depth) + "/" +
                           std::to_string(busy.max_depth) + ")",
                       busy.retry_after_ms),
        frame_(std::move(frame)) {}
  const Frame& frame() const { return frame_; }

 private:
  Frame frame_;
};

/// One request/response exchange with bounded transient-only retry (see
/// the classification above).  A Busy response that survives the retry
/// budget is *returned*, not thrown, so callers handle it uniformly.
Frame call_server_with_retry(const std::string& socket_path,
                             const Frame& request,
                             const ClientRetryConfig& retry = {});

/// Ship an analyze/optimize job to the daemon at `socket_path` and
/// deliver the response exactly as the local command would (stdout
/// bytes, artifact files, cancellation report).  Returns the process
/// exit code; a Busy rejection that survives the retry budget reports on
/// stderr and exits with the fatal code.
int run_remote_analyze(const std::string& socket_path,
                       const AnalyzeRequest& request,
                       const ClientRetryConfig& retry = {});
int run_remote_optimize(const std::string& socket_path,
                        const OptimizeRequest& request,
                        const ClientRetryConfig& retry = {});
int run_remote_ssta(const std::string& socket_path,
                    const SstaRequest& request,
                    const ClientRetryConfig& retry = {});

/// Fetch the daemon's server-wide MetricsRegistry snapshot.
MetricsResponse fetch_remote_metrics(const std::string& socket_path);

/// Fetch the daemon's liveness snapshot (`sva ping`).
HealthResponse fetch_remote_health(const std::string& socket_path);

/// Ask the daemon to drain and exit.  Returns once the ack arrives.
void request_remote_shutdown(const std::string& socket_path);

}  // namespace sva
