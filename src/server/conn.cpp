#include "server/conn.hpp"

#include <utility>

#include "util/failpoint.hpp"
#include "util/metrics.hpp"

namespace sva {

namespace {

Counter& counter(const char* name) {
  return MetricsRegistry::global().counter(name);
}

}  // namespace

Conn::Conn(Fd fd, ConnLimits limits)
    : fd_(std::move(fd)), limits_(limits), counted_(true) {
  counter("server.conn.accepted").add();
  counter("server.conn.active").add();
}

Conn::Conn(Conn&& other) noexcept
    : fd_(std::move(other.fd_)),
      limits_(other.limits_),
      counted_(other.counted_) {
  other.counted_ = false;
}

Conn::~Conn() {
  if (counted_) counter("server.conn.active").sub();
}

std::optional<Frame> Conn::read_frame() {
  // The failpoint fires before any byte is consumed, so an injected
  // fault is a clean pre-frame drop the client retries safely.
  SVA_FAILPOINT("server.conn.read");
  std::optional<IoDeadline> deadline;
  if (limits_.read_timeout_ms > 0)
    deadline = IoDeadline::after_ms(limits_.read_timeout_ms);
  std::size_t wire_bytes = 0;
  std::optional<Frame> frame = sva::read_frame(
      fd_.get(), deadline ? &*deadline : nullptr, &wire_bytes);
  counter("server.conn.bytes_in").add(wire_bytes);
  return frame;
}

void Conn::write_frame(const Frame& frame) {
  // Before the first byte for the same reason as the read-side site: a
  // fault drops the whole response, never a torn frame.
  SVA_FAILPOINT("server.conn.write");
  const std::string wire = encode_frame(frame);
  std::optional<IoDeadline> deadline;
  if (limits_.write_timeout_ms > 0)
    deadline = IoDeadline::after_ms(limits_.write_timeout_ms);
  write_all(fd_.get(), wire.data(), wire.size(),
            deadline ? &*deadline : nullptr);
  counter("server.conn.bytes_out").add(wire.size());
}

}  // namespace sva
