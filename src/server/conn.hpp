#pragma once
// Connection supervisor: one supervised client connection of the daemon.
//
// Conn wraps an accepted descriptor (either transport) with the
// defenses the bare socket layer does not provide:
//
//   - per-operation read/write deadlines, absolute per frame, so a
//     slow-loris peer dripping bytes cannot hold a handler thread --
//     an expired budget throws SlowPeerError and the server evicts the
//     connection (counted in server.conn.evicted_slow);
//   - an idle budget the handler loop checks between frames, so parked
//     connections are reclaimed too;
//   - byte accounting (server.conn.bytes_{in,out}) and the
//     server.conn.{read,write} failpoints, which fire before any byte
//     moves so an injected fault is always a clean connection drop the
//     client's transient-retry path can absorb;
//   - the accepted/active connection gauges (server.conn.accepted,
//     server.conn.active -- the latter decremented on close).
//
// The shed path (--max-conns exceeded) never constructs a Conn: the
// server answers Busy on the raw descriptor under a small write budget
// and closes it, counted in server.conn.shed_busy.

#include <cstdint>
#include <optional>

#include "server/socket.hpp"

namespace sva {

/// Per-connection IO budgets, all in milliseconds.  A read/write budget
/// covers one whole frame; the idle budget covers the gap between
/// frames.  0 disables that budget (tests; never the CLI defaults).
struct ConnLimits {
  std::uint64_t read_timeout_ms = 10'000;
  std::uint64_t write_timeout_ms = 10'000;
  std::uint64_t idle_timeout_ms = 300'000;
};

class Conn {
 public:
  Conn(Fd fd, ConnLimits limits);
  ~Conn();
  Conn(Conn&& other) noexcept;
  Conn& operator=(Conn&&) = delete;
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  int fd() const { return fd_.get(); }
  const ConnLimits& limits() const { return limits_; }

  /// Receive one frame under the read budget.  The caller has already
  /// seen the descriptor readable, so the budget clock starts with data
  /// pending.  Returns nullopt on clean EOF at a frame boundary; throws
  /// SlowPeerError on budget expiry, ProtocolError / SocketError as the
  /// socket layer does.
  std::optional<Frame> read_frame();

  /// Send one frame under the write budget.  Throws SlowPeerError when
  /// the peer will not drain its socket in time.
  void write_frame(const Frame& frame);

 private:
  Fd fd_;
  ConnLimits limits_;
  bool counted_ = false;  ///< owns one unit of server.conn.active
};

}  // namespace sva
