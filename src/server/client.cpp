#include "server/client.hpp"

#include <cstdio>

#include "engine/options.hpp"

namespace sva {

namespace {

/// Map a response frame onto the shared JobResult emit path.  Exit-code
/// semantics mirror a direct run: results carry their own code,
/// cancellations exit kExitCancelled, server-side errors and Busy
/// rejections exit kExitFatal with a stderr report.
int deliver_response(const Frame& response) {
  switch (response.type) {
    case MsgType::ResultResponse:
      return emit_job_result(decode_result_response(response.body));
    case MsgType::CancelledResponse: {
      const CancelledResponse c = decode_cancelled_response(response.body);
      JobResult result;
      result.exit_code = kExitCancelled;
      result.output = c.output;
      result.cancelled = true;
      result.cancel_reason = c.reason;
      return emit_job_result(result);
    }
    case MsgType::BusyResponse: {
      const BusyResponse busy = decode_busy_response(response.body);
      std::fprintf(stderr,
                   "error: server busy (queue %llu/%llu); retry later\n",
                   static_cast<unsigned long long>(busy.queue_depth),
                   static_cast<unsigned long long>(busy.max_depth));
      return kExitFatal;
    }
    case MsgType::ErrorResponse: {
      const ErrorResponse err = decode_error_response(response.body);
      std::fprintf(stderr, "error: server (%s): %s\n",
                   proto_status_name(err.code), err.message.c_str());
      return kExitFatal;
    }
    default:
      std::fprintf(stderr, "error: unexpected server response '%s'\n",
                   msg_type_name(response.type));
      return kExitFatal;
  }
}

}  // namespace

ServerClient::ServerClient(const std::string& socket_path)
    : fd_(unix_connect(socket_path)) {}

Frame ServerClient::call(const Frame& request) {
  write_frame(fd_.get(), request);
  std::optional<Frame> response = read_frame(fd_.get());
  if (!response)
    throw SocketError("server closed the connection without a response");
  return *response;
}

int run_remote_analyze(const std::string& socket_path,
                       const AnalyzeRequest& request) {
  ServerClient client(socket_path);
  return deliver_response(client.call(
      {MsgType::AnalyzeRequest, encode_analyze_request(request)}));
}

int run_remote_optimize(const std::string& socket_path,
                        const OptimizeRequest& request) {
  ServerClient client(socket_path);
  return deliver_response(client.call(
      {MsgType::OptimizeRequest, encode_optimize_request(request)}));
}

int run_remote_ssta(const std::string& socket_path,
                    const SstaRequest& request) {
  ServerClient client(socket_path);
  return deliver_response(
      client.call({MsgType::SstaRequest, encode_ssta_request(request)}));
}

MetricsResponse fetch_remote_metrics(const std::string& socket_path) {
  ServerClient client(socket_path);
  const Frame response = client.call({MsgType::MetricsRequest, ""});
  if (response.type != MsgType::MetricsResponse)
    throw ProtocolError(ProtoStatus::BadType,
                        std::string("expected metrics_response, got ") +
                            msg_type_name(response.type));
  return decode_metrics_response(response.body);
}

void request_remote_shutdown(const std::string& socket_path) {
  ServerClient client(socket_path);
  const Frame response = client.call({MsgType::ShutdownRequest, ""});
  if (response.type != MsgType::ShutdownAck)
    throw ProtocolError(ProtoStatus::BadType,
                        std::string("expected shutdown_ack, got ") +
                            msg_type_name(response.type));
}

}  // namespace sva
