#include "server/client.hpp"

#include <cerrno>
#include <cstdio>

#include "engine/options.hpp"

namespace sva {

namespace {

/// Map a response frame onto the shared JobResult emit path.  Exit-code
/// semantics mirror a direct run: results carry their own code,
/// cancellations exit kExitCancelled, server-side errors and Busy
/// rejections exit kExitFatal with a stderr report.
int deliver_response(const Frame& response) {
  switch (response.type) {
    case MsgType::ResultResponse:
      return emit_job_result(decode_result_response(response.body));
    case MsgType::CancelledResponse: {
      const CancelledResponse c = decode_cancelled_response(response.body);
      JobResult result;
      result.exit_code = kExitCancelled;
      result.output = c.output;
      result.cancelled = true;
      result.cancel_reason = c.reason;
      return emit_job_result(result);
    }
    case MsgType::BusyResponse: {
      const BusyResponse busy = decode_busy_response(response.body);
      if (busy.retry_after_ms > 0)
        std::fprintf(
            stderr,
            "error: server busy (queue %llu/%llu); retry in ~%llu ms\n",
            static_cast<unsigned long long>(busy.queue_depth),
            static_cast<unsigned long long>(busy.max_depth),
            static_cast<unsigned long long>(busy.retry_after_ms));
      else
        std::fprintf(stderr,
                     "error: server busy (queue %llu/%llu); retry later\n",
                     static_cast<unsigned long long>(busy.queue_depth),
                     static_cast<unsigned long long>(busy.max_depth));
      return kExitFatal;
    }
    case MsgType::ErrorResponse: {
      const ErrorResponse err = decode_error_response(response.body);
      std::fprintf(stderr, "error: server (%s): %s\n",
                   proto_status_name(err.code), err.message.c_str());
      return kExitFatal;
    }
    default:
      std::fprintf(stderr, "error: unexpected server response '%s'\n",
                   msg_type_name(response.type));
      return kExitFatal;
  }
}

/// One attempt: connect, send, read one response.  Failures where the
/// job cannot have produced anything observable are rethrown as
/// TransientError for the retry loop; everything else propagates as-is.
/// The refused-connect classification is transport-agnostic: a TCP
/// daemon that is down or restarting surfaces the same ECONNREFUSED a
/// Unix one does.
Frame attempt_call(const std::string& endpoint, const Frame& request) {
  Fd fd;
  try {
    fd = endpoint_connect(parse_endpoint(endpoint));
  } catch (const SocketError& e) {
    if (e.errno_value() == ECONNREFUSED)
      throw TransientError(e.what());  // daemon restarting / not up yet
    throw;
  }
  write_frame(fd.get(), request);
  std::optional<Frame> response;
  try {
    response = read_frame(fd.get());
  } catch (const SocketError& e) {
    // A reset while waiting for the response: the daemon dropped the
    // connection with our request bytes still unread (an injected
    // connection fault, an eviction) -- nothing was delivered, and
    // delivery only ever happens after a whole decoded frame, so a
    // resubmit is as safe as the EOF case below.
    if (e.errno_value() == ECONNRESET)
      throw TransientError(
          std::string("connection reset before a response arrived: ") +
          e.what());
    throw;
  }
  if (!response)
    // EOF before any response byte: the daemon dropped the connection
    // deliberately (crashed lane) or died whole.  The job never
    // delivered anything, so a resubmit is safe.
    throw TransientError("server closed the connection without a response");
  if (response->type == MsgType::BusyResponse) {
    const BusyResponse busy = decode_busy_response(response->body);
    throw BusyRetryError(std::move(*response), busy);
  }
  return *response;
}

}  // namespace

ServerClient::ServerClient(const std::string& endpoint)
    : fd_(endpoint_connect(parse_endpoint(endpoint))) {}

Frame ServerClient::call(const Frame& request) {
  write_frame(fd_.get(), request);
  std::optional<Frame> response = read_frame(fd_.get());
  if (!response)
    throw SocketError("server closed the connection without a response");
  return *response;
}

Frame call_server_with_retry(const std::string& endpoint,
                             const Frame& request,
                             const ClientRetryConfig& retry) {
  RetryPolicy policy;
  policy.max_attempts = retry.retries + 1;
  policy.initial_backoff = retry.initial_backoff;
  policy.max_jitter = retry.max_jitter;
  policy.transient_only = true;
  try {
    return with_retry("server call", policy,
                      [&] { return attempt_call(endpoint, request); });
  } catch (const BusyRetryError& e) {
    // Retry budget exhausted on Busy: hand the rejection to the caller
    // as the response it is.
    return e.frame();
  }
}

int run_remote_analyze(const std::string& endpoint,
                       const AnalyzeRequest& request,
                       const ClientRetryConfig& retry) {
  return deliver_response(call_server_with_retry(
      endpoint, {MsgType::AnalyzeRequest, encode_analyze_request(request)},
      retry));
}

int run_remote_optimize(const std::string& endpoint,
                        const OptimizeRequest& request,
                        const ClientRetryConfig& retry) {
  return deliver_response(call_server_with_retry(
      endpoint, {MsgType::OptimizeRequest, encode_optimize_request(request)},
      retry));
}

int run_remote_ssta(const std::string& endpoint, const SstaRequest& request,
                    const ClientRetryConfig& retry) {
  return deliver_response(call_server_with_retry(
      endpoint, {MsgType::SstaRequest, encode_ssta_request(request)},
      retry));
}

namespace {

/// Cap on the summed busy-slot retry sleeps of one batch: a server that
/// sheds every round cannot stall the client past this, whatever hints
/// it sends.
constexpr std::uint64_t kBatchRetrySleepCapMs = 60'000;

/// Submit `sub` and return its decoded slots.  A connection-level Busy
/// that survived call_server_with_retry's own budget comes back as a
/// one-slot-per-item all-Busy round so the caller's slot loop handles
/// both shedding modes uniformly.
std::vector<BatchSlot> call_batch_round(const std::string& endpoint,
                                        const BatchRequest& sub,
                                        const ClientRetryConfig& retry) {
  const Frame response = call_server_with_retry(
      endpoint, {MsgType::BatchRequest, encode_batch_request(sub)}, retry);
  if (response.type == MsgType::BusyResponse)
    return std::vector<BatchSlot>(sub.items.size(),
                                  {MsgType::BusyResponse, response.body});
  if (response.type != MsgType::BatchResponse)
    throw ProtocolError(ProtoStatus::BadType,
                        std::string("expected batch_response, got ") +
                            msg_type_name(response.type));
  BatchResponse decoded = decode_batch_response(response.body);
  if (decoded.slots.size() != sub.items.size())
    throw ProtocolError(ProtoStatus::BadBody,
                        "batch response carries " +
                            std::to_string(decoded.slots.size()) +
                            " slots for " + std::to_string(sub.items.size()) +
                            " submitted specs");
  return std::move(decoded.slots);
}

}  // namespace

int run_remote_batch(const std::string& endpoint, const BatchRequest& request,
                     const std::vector<std::string>& labels,
                     const ClientRetryConfig& retry) {
  const std::size_t n = request.items.size();
  std::vector<BatchSlot> slots(n);
  std::vector<std::size_t> pending(n);
  for (std::size_t i = 0; i < n; ++i) pending[i] = i;

  // First round ships the whole batch; later rounds resubmit only the
  // Busy slots, honouring the server's retry_after_ms hint exactly like
  // the single-spec retry loop (sleep = max(hint, backoff) + jitter),
  // under a bounded budget so a shedding server cannot stall us forever.
  auto backoff = retry.initial_backoff;
  std::uint64_t slept_ms = 0;
  int rounds_left = retry.retries;
  while (true) {
    BatchRequest sub;
    sub.items.reserve(pending.size());
    for (const std::size_t i : pending) sub.items.push_back(request.items[i]);
    const std::vector<BatchSlot> round =
        call_batch_round(endpoint, sub, retry);
    std::vector<std::size_t> still_busy;
    for (std::size_t k = 0; k < round.size(); ++k) {
      slots[pending[k]] = round[k];
      if (round[k].type == MsgType::BusyResponse)
        still_busy.push_back(pending[k]);
    }
    pending = std::move(still_busy);
    if (pending.empty()) break;
    if (rounds_left <= 0 || slept_ms >= kBatchRetrySleepCapMs) {
      std::fprintf(stderr,
                   "batch: giving up on %zu busy slot(s) after %d %s\n",
                   pending.size(), retry.retries,
                   retry.retries == 1 ? "retry" : "retries");
      break;
    }
    --rounds_left;
    std::uint64_t hint_ms = 0;
    for (const std::size_t i : pending) {
      const BusyResponse busy = decode_busy_response(slots[i].body);
      hint_ms = std::max(hint_ms, busy.retry_after_ms);
    }
    auto sleep_for = std::max(
        backoff, std::chrono::milliseconds(static_cast<std::int64_t>(
                     std::min(hint_ms, kBatchRetrySleepCapMs - slept_ms))));
    sleep_for += retry_detail::jitter(retry.max_jitter);
    MetricsRegistry::global().counter("io.retries").add();
    std::this_thread::sleep_for(sleep_for);
    slept_ms += static_cast<std::uint64_t>(sleep_for.count());
    backoff *= 2;
  }

  // Deliver every slot in submission order through the same emit path a
  // single-spec connection uses; the worst slot code picks the overall
  // exit (any failure => kExitJobsFailed, mirroring --keep-going).
  bool any_failed = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (labels.size() == n)
      std::printf("== batch job %zu/%zu: %s ==\n", i + 1, n,
                  labels[i].c_str());
    else
      std::printf("== batch job %zu/%zu ==\n", i + 1, n);
    std::fflush(stdout);
    const int code = deliver_response({slots[i].type, slots[i].body});
    if (code != 0) any_failed = true;
  }
  return any_failed ? kExitJobsFailed : kExitOk;
}

MetricsResponse fetch_remote_metrics(const std::string& endpoint) {
  ServerClient client(endpoint);
  const Frame response = client.call({MsgType::MetricsRequest, ""});
  if (response.type != MsgType::MetricsResponse)
    throw ProtocolError(ProtoStatus::BadType,
                        std::string("expected metrics_response, got ") +
                            msg_type_name(response.type));
  return decode_metrics_response(response.body);
}

HealthResponse fetch_remote_health(const std::string& endpoint) {
  ServerClient client(endpoint);
  const Frame response = client.call({MsgType::HealthRequest, ""});
  if (response.type != MsgType::HealthResponse)
    throw ProtocolError(ProtoStatus::BadType,
                        std::string("expected health_response, got ") +
                            msg_type_name(response.type));
  return decode_health_response(response.body);
}

void request_remote_shutdown(const std::string& endpoint) {
  ServerClient client(endpoint);
  const Frame response = client.call({MsgType::ShutdownRequest, ""});
  if (response.type != MsgType::ShutdownAck)
    throw ProtocolError(ProtoStatus::BadType,
                        std::string("expected shutdown_ack, got ") +
                            msg_type_name(response.type));
}

}  // namespace sva
