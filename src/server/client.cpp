#include "server/client.hpp"

#include <cerrno>
#include <cstdio>

#include "engine/options.hpp"

namespace sva {

namespace {

/// Map a response frame onto the shared JobResult emit path.  Exit-code
/// semantics mirror a direct run: results carry their own code,
/// cancellations exit kExitCancelled, server-side errors and Busy
/// rejections exit kExitFatal with a stderr report.
int deliver_response(const Frame& response) {
  switch (response.type) {
    case MsgType::ResultResponse:
      return emit_job_result(decode_result_response(response.body));
    case MsgType::CancelledResponse: {
      const CancelledResponse c = decode_cancelled_response(response.body);
      JobResult result;
      result.exit_code = kExitCancelled;
      result.output = c.output;
      result.cancelled = true;
      result.cancel_reason = c.reason;
      return emit_job_result(result);
    }
    case MsgType::BusyResponse: {
      const BusyResponse busy = decode_busy_response(response.body);
      if (busy.retry_after_ms > 0)
        std::fprintf(
            stderr,
            "error: server busy (queue %llu/%llu); retry in ~%llu ms\n",
            static_cast<unsigned long long>(busy.queue_depth),
            static_cast<unsigned long long>(busy.max_depth),
            static_cast<unsigned long long>(busy.retry_after_ms));
      else
        std::fprintf(stderr,
                     "error: server busy (queue %llu/%llu); retry later\n",
                     static_cast<unsigned long long>(busy.queue_depth),
                     static_cast<unsigned long long>(busy.max_depth));
      return kExitFatal;
    }
    case MsgType::ErrorResponse: {
      const ErrorResponse err = decode_error_response(response.body);
      std::fprintf(stderr, "error: server (%s): %s\n",
                   proto_status_name(err.code), err.message.c_str());
      return kExitFatal;
    }
    default:
      std::fprintf(stderr, "error: unexpected server response '%s'\n",
                   msg_type_name(response.type));
      return kExitFatal;
  }
}

/// One attempt: connect, send, read one response.  Failures where the
/// job cannot have produced anything observable are rethrown as
/// TransientError for the retry loop; everything else propagates as-is.
Frame attempt_call(const std::string& socket_path, const Frame& request) {
  Fd fd;
  try {
    fd = unix_connect(socket_path);
  } catch (const SocketError& e) {
    if (e.errno_value() == ECONNREFUSED)
      throw TransientError(e.what());  // daemon restarting / not up yet
    throw;
  }
  write_frame(fd.get(), request);
  std::optional<Frame> response = read_frame(fd.get());
  if (!response)
    // EOF before any response byte: the daemon dropped the connection
    // deliberately (crashed lane) or died whole.  The job never
    // delivered anything, so a resubmit is safe.
    throw TransientError("server closed the connection without a response");
  if (response->type == MsgType::BusyResponse) {
    const BusyResponse busy = decode_busy_response(response->body);
    throw BusyRetryError(std::move(*response), busy);
  }
  return *response;
}

}  // namespace

ServerClient::ServerClient(const std::string& socket_path)
    : fd_(unix_connect(socket_path)) {}

Frame ServerClient::call(const Frame& request) {
  write_frame(fd_.get(), request);
  std::optional<Frame> response = read_frame(fd_.get());
  if (!response)
    throw SocketError("server closed the connection without a response");
  return *response;
}

Frame call_server_with_retry(const std::string& socket_path,
                             const Frame& request,
                             const ClientRetryConfig& retry) {
  RetryPolicy policy;
  policy.max_attempts = retry.retries + 1;
  policy.initial_backoff = retry.initial_backoff;
  policy.max_jitter = retry.max_jitter;
  policy.transient_only = true;
  try {
    return with_retry("server call", policy,
                      [&] { return attempt_call(socket_path, request); });
  } catch (const BusyRetryError& e) {
    // Retry budget exhausted on Busy: hand the rejection to the caller
    // as the response it is.
    return e.frame();
  }
}

int run_remote_analyze(const std::string& socket_path,
                       const AnalyzeRequest& request,
                       const ClientRetryConfig& retry) {
  return deliver_response(call_server_with_retry(
      socket_path, {MsgType::AnalyzeRequest, encode_analyze_request(request)},
      retry));
}

int run_remote_optimize(const std::string& socket_path,
                        const OptimizeRequest& request,
                        const ClientRetryConfig& retry) {
  return deliver_response(call_server_with_retry(
      socket_path, {MsgType::OptimizeRequest, encode_optimize_request(request)},
      retry));
}

int run_remote_ssta(const std::string& socket_path, const SstaRequest& request,
                    const ClientRetryConfig& retry) {
  return deliver_response(call_server_with_retry(
      socket_path, {MsgType::SstaRequest, encode_ssta_request(request)},
      retry));
}

MetricsResponse fetch_remote_metrics(const std::string& socket_path) {
  ServerClient client(socket_path);
  const Frame response = client.call({MsgType::MetricsRequest, ""});
  if (response.type != MsgType::MetricsResponse)
    throw ProtocolError(ProtoStatus::BadType,
                        std::string("expected metrics_response, got ") +
                            msg_type_name(response.type));
  return decode_metrics_response(response.body);
}

HealthResponse fetch_remote_health(const std::string& socket_path) {
  ServerClient client(socket_path);
  const Frame response = client.call({MsgType::HealthRequest, ""});
  if (response.type != MsgType::HealthResponse)
    throw ProtocolError(ProtoStatus::BadType,
                        std::string("expected health_response, got ") +
                            msg_type_name(response.type));
  return decode_health_response(response.body);
}

void request_remote_shutdown(const std::string& socket_path) {
  ServerClient client(socket_path);
  const Frame response = client.call({MsgType::ShutdownRequest, ""});
  if (response.type != MsgType::ShutdownAck)
    throw ProtocolError(ProtoStatus::BadType,
                        std::string("expected shutdown_ack, got ") +
                            msg_type_name(response.type));
}

}  // namespace sva
