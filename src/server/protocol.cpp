#include "server/protocol.hpp"

namespace sva {

namespace {

/// Re-map low-level codec failures (truncation, overlong counts) to the
/// protocol-level Truncated status so every malformed frame surfaces as
/// one error type with a stable code.
template <typename Fn>
auto map_codec_errors(ProtoStatus status, Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const ProtocolError&) {
    throw;
  } catch (const SerializeError& e) {
    throw ProtocolError(status, e.what());
  }
}

bool known_type(std::uint8_t t) {
  switch (static_cast<MsgType>(t)) {
    case MsgType::AnalyzeRequest:
    case MsgType::OptimizeRequest:
    case MsgType::MetricsRequest:
    case MsgType::ShutdownRequest:
    case MsgType::PingRequest:
    case MsgType::SstaRequest:
    case MsgType::HealthRequest:
    case MsgType::BatchRequest:
    case MsgType::ResultResponse:
    case MsgType::BusyResponse:
    case MsgType::ErrorResponse:
    case MsgType::CancelledResponse:
    case MsgType::MetricsResponse:
    case MsgType::ShutdownAck:
    case MsgType::PongResponse:
    case MsgType::HealthResponse:
    case MsgType::BatchResponse:
      return true;
  }
  return false;
}

// The request codecs and the canonical spec identity share these writers,
// so the hash that binds a job to a lane (and keys the result cache) can
// never drift from the wire encoding: a request body is exactly
// [spec fields][deadline_ms], and the canonical bytes are
// [type tag][spec fields].
void write_analyze_spec(ByteWriter& w, const AnalyzeJobSpec& spec) {
  w.u64(spec.circuits.size());
  for (const std::string& name : spec.circuits) w.str(name);
  w.u8(spec.strict ? 1 : 0);
}

void write_optimize_spec(ByteWriter& w, const OptimizeJobSpec& spec) {
  w.str(spec.circuit);
  w.f64(spec.clock_period_ps);
  w.u64(spec.max_moves);
  w.f64(spec.window_ps);
  w.u8(spec.corner_mode);
  w.str(spec.csv_path);
}

void write_ssta_spec(ByteWriter& w, const SstaJobSpec& spec) {
  w.str(spec.circuit);
  w.f64(spec.clock_period_ps);
  w.f64(spec.quantile);
  w.u64(spec.mc_samples);
  w.f64(spec.global_share);
  w.str(spec.csv_path);
}

template <typename Spec>
std::string canonical_bytes(MsgType tag, const Spec& spec,
                            void (*write_spec)(ByteWriter&, const Spec&)) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(tag));
  write_spec(w, spec);
  return w.bytes();
}

}  // namespace

const char* proto_status_name(ProtoStatus status) {
  switch (status) {
    case ProtoStatus::Ok: return "ok";
    case ProtoStatus::BadMagic: return "bad_magic";
    case ProtoStatus::Oversized: return "oversized";
    case ProtoStatus::Truncated: return "truncated";
    case ProtoStatus::VersionMismatch: return "version_mismatch";
    case ProtoStatus::BadChecksum: return "bad_checksum";
    case ProtoStatus::BadType: return "bad_type";
    case ProtoStatus::BadBody: return "bad_body";
    case ProtoStatus::ServerError: return "server_error";
    case ProtoStatus::Busy: return "busy";
  }
  return "unknown";
}

const char* msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::AnalyzeRequest: return "analyze_request";
    case MsgType::OptimizeRequest: return "optimize_request";
    case MsgType::MetricsRequest: return "metrics_request";
    case MsgType::ShutdownRequest: return "shutdown_request";
    case MsgType::PingRequest: return "ping_request";
    case MsgType::SstaRequest: return "ssta_request";
    case MsgType::HealthRequest: return "health_request";
    case MsgType::BatchRequest: return "batch_request";
    case MsgType::ResultResponse: return "result_response";
    case MsgType::BusyResponse: return "busy_response";
    case MsgType::ErrorResponse: return "error_response";
    case MsgType::CancelledResponse: return "cancelled_response";
    case MsgType::MetricsResponse: return "metrics_response";
    case MsgType::ShutdownAck: return "shutdown_ack";
    case MsgType::PongResponse: return "pong_response";
    case MsgType::HealthResponse: return "health_response";
    case MsgType::BatchResponse: return "batch_response";
  }
  return "unknown";
}

std::string encode_frame(const Frame& frame) {
  ByteWriter payload;
  payload.u32(kProtocolVersion);
  payload.u8(static_cast<std::uint8_t>(frame.type));
  payload.u64(fnv1a64_words(frame.body.data(), frame.body.size()));
  payload.str(frame.body);
  if (payload.size() > kMaxFramePayload)
    throw ProtocolError(ProtoStatus::Oversized,
                        "frame payload exceeds the protocol maximum");
  ByteWriter wire;
  wire.u32(kFrameMagic);
  wire.u32(static_cast<std::uint32_t>(payload.size()));
  return wire.bytes() + payload.bytes();
}

Frame decode_frame_payload(std::string_view payload) {
  return map_codec_errors(ProtoStatus::Truncated, [&] {
    ByteReader r(payload);
    const std::uint32_t version = r.u32();
    if (version != kProtocolVersion)
      throw ProtocolError(ProtoStatus::VersionMismatch,
                          "protocol version " + std::to_string(version) +
                              " (this server speaks " +
                              std::to_string(kProtocolVersion) + ")");
    Frame frame;
    const std::uint8_t type = r.u8();
    const std::uint64_t checksum = r.u64();
    frame.body = r.str();
    r.expect_end();
    if (!known_type(type))
      throw ProtocolError(ProtoStatus::BadType,
                          "unknown message type " + std::to_string(type));
    frame.type = static_cast<MsgType>(type);
    if (fnv1a64_words(frame.body.data(), frame.body.size()) != checksum)
      throw ProtocolError(ProtoStatus::BadChecksum,
                          "frame body checksum mismatch");
    return frame;
  });
}

// --- request bodies ---------------------------------------------------

std::string encode_analyze_request(const AnalyzeRequest& req) {
  ByteWriter w;
  write_analyze_spec(w, req.spec);
  w.u64(req.deadline_ms);
  return w.bytes();
}

AnalyzeRequest decode_analyze_request(std::string_view body) {
  return map_codec_errors(ProtoStatus::BadBody, [&] {
    ByteReader r(body);
    AnalyzeRequest req;
    const std::uint64_t count = r.u64();
    if (count > body.size())  // each name costs >= 1 length byte
      throw ProtocolError(ProtoStatus::BadBody,
                          "analyze request circuit count is implausible");
    req.spec.circuits.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i)
      req.spec.circuits.push_back(r.str());
    req.spec.strict = r.u8() != 0;
    req.deadline_ms = r.u64();
    r.expect_end();
    return req;
  });
}

std::string encode_optimize_request(const OptimizeRequest& req) {
  ByteWriter w;
  write_optimize_spec(w, req.spec);
  w.u64(req.deadline_ms);
  return w.bytes();
}

OptimizeRequest decode_optimize_request(std::string_view body) {
  return map_codec_errors(ProtoStatus::BadBody, [&] {
    ByteReader r(body);
    OptimizeRequest req;
    req.spec.circuit = r.str();
    req.spec.clock_period_ps = r.f64();
    req.spec.max_moves = r.u64();
    req.spec.window_ps = r.f64();
    req.spec.corner_mode = r.u8();
    req.spec.csv_path = r.str();
    req.deadline_ms = r.u64();
    r.expect_end();
    if (req.spec.corner_mode > 1)
      throw ProtocolError(ProtoStatus::BadBody,
                          "optimize request corner mode out of range");
    return req;
  });
}

std::string encode_ssta_request(const SstaRequest& req) {
  ByteWriter w;
  write_ssta_spec(w, req.spec);
  w.u64(req.deadline_ms);
  return w.bytes();
}

// --- batch frames ------------------------------------------------------

std::string encode_batch_request(const BatchRequest& req) {
  ByteWriter w;
  w.u64(req.items.size());
  for (const BatchItem& item : req.items) {
    w.u8(item.kind);
    w.str(item.body);
  }
  return w.bytes();
}

BatchRequest decode_batch_request(std::string_view body) {
  return map_codec_errors(ProtoStatus::BadBody, [&] {
    ByteReader r(body);
    BatchRequest req;
    const std::uint64_t count = r.u64();
    if (count == 0)
      throw ProtocolError(ProtoStatus::BadBody, "batch request is empty");
    if (count > kMaxBatchItems)
      throw ProtocolError(ProtoStatus::BadBody,
                          "batch request carries " + std::to_string(count) +
                              " items (limit " +
                              std::to_string(kMaxBatchItems) + ")");
    if (count > body.size())  // each item costs >= 1 kind byte
      throw ProtocolError(ProtoStatus::BadBody,
                          "batch request item count is implausible");
    req.items.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      BatchItem item;
      item.kind = r.u8();
      item.body = r.str();
      req.items.push_back(std::move(item));
    }
    r.expect_end();
    return req;
  });
}

std::string encode_batch_response(const BatchResponse& resp) {
  ByteWriter w;
  w.u64(resp.slots.size());
  for (const BatchSlot& slot : resp.slots) {
    w.u8(static_cast<std::uint8_t>(slot.type));
    w.str(slot.body);
  }
  return w.bytes();
}

BatchResponse decode_batch_response(std::string_view body) {
  return map_codec_errors(ProtoStatus::BadBody, [&] {
    ByteReader r(body);
    BatchResponse resp;
    const std::uint64_t count = r.u64();
    if (count > kMaxBatchItems)
      throw ProtocolError(ProtoStatus::BadBody,
                          "batch response carries " + std::to_string(count) +
                              " slots (limit " +
                              std::to_string(kMaxBatchItems) + ")");
    if (count > body.size())
      throw ProtocolError(ProtoStatus::BadBody,
                          "batch response slot count is implausible");
    resp.slots.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      BatchSlot slot;
      const std::uint8_t type = r.u8();
      switch (static_cast<MsgType>(type)) {
        case MsgType::ResultResponse:
        case MsgType::BusyResponse:
        case MsgType::ErrorResponse:
        case MsgType::CancelledResponse:
          break;
        default:
          throw ProtocolError(ProtoStatus::BadBody,
                              "batch response slot " + std::to_string(i) +
                                  " has non-response type " +
                                  std::to_string(type));
      }
      slot.type = static_cast<MsgType>(type);
      slot.body = r.str();
      resp.slots.push_back(std::move(slot));
    }
    r.expect_end();
    return resp;
  });
}

// --- canonical spec identity ------------------------------------------

std::string canonical_spec_bytes(const AnalyzeJobSpec& spec) {
  return canonical_bytes(MsgType::AnalyzeRequest, spec, write_analyze_spec);
}
std::string canonical_spec_bytes(const OptimizeJobSpec& spec) {
  return canonical_bytes(MsgType::OptimizeRequest, spec, write_optimize_spec);
}
std::string canonical_spec_bytes(const SstaJobSpec& spec) {
  return canonical_bytes(MsgType::SstaRequest, spec, write_ssta_spec);
}

std::uint64_t job_spec_hash(const AnalyzeJobSpec& spec) {
  const std::string bytes = canonical_spec_bytes(spec);
  return fnv1a64_words(bytes.data(), bytes.size());
}
std::uint64_t job_spec_hash(const OptimizeJobSpec& spec) {
  const std::string bytes = canonical_spec_bytes(spec);
  return fnv1a64_words(bytes.data(), bytes.size());
}
std::uint64_t job_spec_hash(const SstaJobSpec& spec) {
  const std::string bytes = canonical_spec_bytes(spec);
  return fnv1a64_words(bytes.data(), bytes.size());
}

SstaRequest decode_ssta_request(std::string_view body) {
  return map_codec_errors(ProtoStatus::BadBody, [&] {
    ByteReader r(body);
    SstaRequest req;
    req.spec.circuit = r.str();
    req.spec.clock_period_ps = r.f64();
    req.spec.quantile = r.f64();
    req.spec.mc_samples = r.u64();
    req.spec.global_share = r.f64();
    req.spec.csv_path = r.str();
    req.deadline_ms = r.u64();
    r.expect_end();
    if (!(req.spec.quantile > 0.0 && req.spec.quantile < 1.0))
      throw ProtocolError(ProtoStatus::BadBody,
                          "ssta request quantile must be in (0,1)");
    if (!(req.spec.global_share >= 0.0 && req.spec.global_share <= 1.0))
      throw ProtocolError(ProtoStatus::BadBody,
                          "ssta request global share must be in [0,1]");
    return req;
  });
}

// --- response bodies --------------------------------------------------

std::string encode_result_response(const JobResult& result) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(result.exit_code));
  w.str(result.output);
  w.u64(result.artifacts.size());
  for (const JobArtifact& a : result.artifacts) {
    w.str(a.path);
    w.str(a.bytes);
  }
  return w.bytes();
}

JobResult decode_result_response(std::string_view body) {
  return map_codec_errors(ProtoStatus::BadBody, [&] {
    ByteReader r(body);
    JobResult result;
    result.exit_code = static_cast<int>(r.u32());
    result.output = r.str();
    const std::uint64_t count = r.u64();
    if (count > body.size())
      throw ProtocolError(ProtoStatus::BadBody,
                          "result artifact count is implausible");
    result.artifacts.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      JobArtifact a;
      a.path = r.str();
      a.bytes = r.str();
      result.artifacts.push_back(std::move(a));
    }
    r.expect_end();
    return result;
  });
}

std::string encode_busy_response(const BusyResponse& busy) {
  ByteWriter w;
  w.u64(busy.queue_depth);
  w.u64(busy.max_depth);
  w.u64(busy.retry_after_ms);
  return w.bytes();
}

BusyResponse decode_busy_response(std::string_view body) {
  return map_codec_errors(ProtoStatus::BadBody, [&] {
    ByteReader r(body);
    BusyResponse busy;
    busy.queue_depth = r.u64();
    busy.max_depth = r.u64();
    busy.retry_after_ms = r.u64();
    r.expect_end();
    return busy;
  });
}

std::string encode_error_response(const ErrorResponse& err) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(err.code));
  w.str(err.message);
  return w.bytes();
}

ErrorResponse decode_error_response(std::string_view body) {
  return map_codec_errors(ProtoStatus::BadBody, [&] {
    ByteReader r(body);
    ErrorResponse err;
    err.code = static_cast<ProtoStatus>(r.u32());
    err.message = r.str();
    r.expect_end();
    return err;
  });
}

std::string encode_cancelled_response(const CancelledResponse& c) {
  ByteWriter w;
  w.u8(c.reason);
  w.str(c.output);
  return w.bytes();
}

CancelledResponse decode_cancelled_response(std::string_view body) {
  return map_codec_errors(ProtoStatus::BadBody, [&] {
    ByteReader r(body);
    CancelledResponse c;
    c.reason = r.u8();
    c.output = r.str();
    r.expect_end();
    return c;
  });
}

std::string encode_metrics_response(const MetricsResponse& m) {
  ByteWriter w;
  w.str(m.rendered);
  w.str(m.json);
  return w.bytes();
}

MetricsResponse decode_metrics_response(std::string_view body) {
  return map_codec_errors(ProtoStatus::BadBody, [&] {
    ByteReader r(body);
    MetricsResponse m;
    m.rendered = r.str();
    m.json = r.str();
    r.expect_end();
    return m;
  });
}

std::string encode_health_response(const HealthResponse& h) {
  ByteWriter w;
  w.u64(h.uptime_ms);
  w.u64(h.queue_depth);
  w.u64(h.queue_capacity);
  w.u64(h.jobs_served);
  w.u64(h.lanes_poisoned);
  w.str(h.lane_states);
  return w.bytes();
}

HealthResponse decode_health_response(std::string_view body) {
  return map_codec_errors(ProtoStatus::BadBody, [&] {
    ByteReader r(body);
    HealthResponse h;
    h.uptime_ms = r.u64();
    h.queue_depth = r.u64();
    h.queue_capacity = r.u64();
    h.jobs_served = r.u64();
    h.lanes_poisoned = r.u64();
    h.lane_states = r.str();
    r.expect_end();
    return h;
  });
}

}  // namespace sva
