#pragma once
// Minimal Unix-domain socket layer under the frame protocol.
//
// Everything here is a thin, EINTR-safe wrapper over POSIX sockets with
// the repo's error discipline: failures throw SocketError (an sva::Error,
// so the daemon's per-connection isolation handles them like any other
// recoverable fault), clean EOF is a value, not an exception, and all
// blocking waits are poll()-based with bounded timeouts so the accept
// and connection loops can poll CancelTokens at a fixed cadence.
//
// Stale socket files (a previous daemon that died without unlinking) are
// reclaimed at bind time by probing with connect(): refused means dead
// owner, so the path is unlinked and rebound; accepted means a live
// daemon already serves it and bind fails loudly.

#include <cstdint>
#include <optional>
#include <string>

#include "server/protocol.hpp"
#include "util/error.hpp"

namespace sva {

/// Socket-level I/O failure (connect refused, mid-frame disconnect, ...).
/// Carries the errno of the failing syscall (0 when none applies) so the
/// client retry layer can classify connect-refused as transient without
/// parsing message text.
class SocketError : public Error {
 public:
  explicit SocketError(const std::string& what, int errno_value = 0)
      : Error(what), errno_value_(errno_value) {}
  int errno_value() const { return errno_value_; }

 private:
  int errno_value_ = 0;
};

/// Move-only owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { close_now(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Close eagerly (idempotent).  The destructor calls this.
  void close_now() noexcept;

 private:
  int fd_ = -1;
};

/// Bind + listen on a Unix-domain socket at `path` (see the stale-file
/// policy above).  Throws SocketError when the path is too long for
/// sockaddr_un, already live, or any syscall fails.
Fd unix_listen(const std::string& path, int backlog = 16);

/// Connect to the daemon at `path`.  Throws SocketError on failure.
Fd unix_connect(const std::string& path);

/// Wait up to `timeout_ms` for `fd` to become readable.
/// Returns: 1 readable, 0 timeout, -1 hangup/error on the descriptor.
int poll_readable(int fd, int timeout_ms);

/// True once the peer has closed its end (recv MSG_PEEK sees EOF).  Used
/// by the server to notice a client abandoning an in-flight job.
bool peer_disconnected(int fd);

/// Write all `n` bytes (EINTR/short-write safe, SIGPIPE suppressed).
/// Throws SocketError on failure.
void write_all(int fd, const void* data, std::size_t n);

/// Read exactly `n` bytes.  Returns false on clean EOF before the first
/// byte; throws SocketError on EOF mid-read or any error.
bool read_exact(int fd, void* data, std::size_t n);

/// Send one protocol frame.
void write_frame(int fd, const Frame& frame);

/// Receive one protocol frame.  Returns nullopt on clean EOF at a frame
/// boundary (the peer hung up).  Throws ProtocolError on bad magic /
/// oversized / malformed payloads and SocketError on transport failure.
std::optional<Frame> read_frame(int fd);

}  // namespace sva
