#pragma once
// Minimal stream-socket layer under the frame protocol (Unix-domain + TCP).
//
// Everything here is a thin, EINTR-safe wrapper over POSIX sockets with
// the repo's error discipline: failures throw SocketError (an sva::Error,
// so the daemon's per-connection isolation handles them like any other
// recoverable fault), clean EOF is a value, not an exception, and all
// blocking waits are poll()-based with bounded timeouts so the accept
// and connection loops can poll CancelTokens at a fixed cadence.
//
// Both transports share one bind/listen scaffold; the Unix path adds a
// stale-file reclaim step in front of it.  Stale socket files (a previous
// daemon that died without unlinking) are reclaimed at bind time by
// probing with connect(): refused means dead owner, so the path is
// unlinked and rebound; accepted means a live daemon already serves it
// and bind fails loudly.
//
// Every descriptor this layer creates or accepts gets FD_CLOEXEC;
// listeners get SO_REUSEADDR and TCP sockets get TCP_NODELAY (frames are
// written as one contiguous buffer, so Nagle only adds latency).
//
// IO can run under an IoDeadline budget: the deadline is absolute, so a
// peer dripping one byte per poll interval cannot reset it — when the
// budget expires mid-read or mid-write the call throws SlowPeerError and
// the server evicts the connection.

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "server/protocol.hpp"
#include "util/error.hpp"

namespace sva {

/// Socket-level I/O failure (connect refused, mid-frame disconnect, ...).
/// Carries the errno of the failing syscall (0 when none applies) so the
/// client retry layer can classify connect-refused as transient without
/// parsing message text.  The classification is transport-agnostic: a
/// TCP connect() refusal surfaces the same ECONNREFUSED as a Unix one.
class SocketError : public Error {
 public:
  explicit SocketError(const std::string& what, int errno_value = 0)
      : Error(what), errno_value_(errno_value) {}
  int errno_value() const { return errno_value_; }

 private:
  int errno_value_ = 0;
};

/// A read or write missed its IoDeadline: the peer is too slow (or
/// stalled mid-frame).  Distinct from SocketError so the server can
/// count evictions separately from transport faults.
class SlowPeerError : public SocketError {
 public:
  explicit SlowPeerError(const std::string& what) : SocketError(what) {}
};

/// Absolute deadline for one IO operation (a whole frame, not one
/// syscall).  Absolute so partial progress never extends it.
struct IoDeadline {
  std::chrono::steady_clock::time_point at;

  static IoDeadline after_ms(std::uint64_t ms) {
    return IoDeadline{std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(ms)};
  }
  /// Milliseconds left, clamped to [0, cap].
  int remaining_ms(int cap) const;
  bool expired() const { return remaining_ms(1) == 0; }
};

/// Move-only owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { close_now(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Close eagerly (idempotent).  The destructor calls this.
  void close_now() noexcept;

 private:
  int fd_ = -1;
};

/// Where a daemon lives: `unix:PATH`, `tcp:HOST:PORT`, or a bare path
/// (back-compat shorthand for `unix:PATH`).
struct Endpoint {
  enum class Kind { Unix, Tcp };
  Kind kind = Kind::Unix;
  std::string path;         // Unix socket path
  std::string host;         // TCP host (name or numeric)
  std::uint16_t port = 0;   // TCP port

  /// Round-trippable display form ("unix:/run/sva.sock", "tcp:host:80").
  std::string describe() const;
};

/// Parse a connect/listen URI.  Throws SocketError on a malformed
/// `tcp:` form (missing or non-numeric port, empty host).
Endpoint parse_endpoint(const std::string& uri);

/// Bind + listen on a Unix-domain socket at `path` (see the stale-file
/// policy above).  Throws SocketError when the path is too long for
/// sockaddr_un, already live, or any syscall fails.
Fd unix_listen(const std::string& path, int backlog = 16);

/// Connect to the daemon at `path`.  Throws SocketError on failure.
Fd unix_connect(const std::string& path);

/// Bind + listen on TCP host:port.  Port 0 asks the kernel for an
/// ephemeral port; the port actually bound is stored in *bound_port
/// (when non-null) so callers can advertise it.
Fd tcp_listen(const std::string& host, std::uint16_t port, int backlog = 16,
              std::uint16_t* bound_port = nullptr);

/// Connect to a TCP daemon.  Throws SocketError (errno preserved, so
/// ECONNREFUSED classifies as transient exactly like the Unix path).
Fd tcp_connect(const std::string& host, std::uint16_t port);

/// Connect to either transport.
Fd endpoint_connect(const Endpoint& ep);

/// Mark an accepted/inherited descriptor with the socket options this
/// layer guarantees (FD_CLOEXEC always; TCP_NODELAY when `tcp`).
void adopt_stream_socket(int fd, bool tcp);

/// Wait up to `timeout_ms` for `fd` to become readable.
/// Returns: 1 readable, 0 timeout, -1 hangup/error on the descriptor.
int poll_readable(int fd, int timeout_ms);

/// Wait up to `timeout_ms` for any of `fds[0..n)` to become readable.
/// Returns the index of a ready descriptor (hangup/error counts as
/// ready so the caller's accept/read surfaces the failure), or -1 on
/// timeout.
int poll_any_readable(const int* fds, std::size_t n, int timeout_ms);

/// True once the peer has closed its end (recv MSG_PEEK sees EOF).  Used
/// by the server to notice a client abandoning an in-flight job.
bool peer_disconnected(int fd);

/// Write all `n` bytes (EINTR/short-write safe, SIGPIPE suppressed).
/// Throws SocketError on failure; with a deadline, throws SlowPeerError
/// once the budget expires before the final byte is accepted.
void write_all(int fd, const void* data, std::size_t n,
               const IoDeadline* deadline = nullptr);

/// Read exactly `n` bytes.  Returns false on clean EOF before the first
/// byte; throws SocketError on EOF mid-read or any error.  With a
/// deadline, throws SlowPeerError once the budget expires — partial
/// progress does not extend it.
bool read_exact(int fd, void* data, std::size_t n,
                const IoDeadline* deadline = nullptr);

/// Send one protocol frame (encoded into one contiguous buffer, so the
/// peer never observes a torn header/payload boundary).
void write_frame(int fd, const Frame& frame,
                 const IoDeadline* deadline = nullptr);

/// Receive one protocol frame.  Returns nullopt on clean EOF at a frame
/// boundary (the peer hung up).  Throws ProtocolError on bad magic /
/// oversized / malformed payloads and SocketError on transport failure.
/// `wire_bytes` (when non-null) receives the on-wire size of the frame
/// (header + payload) for byte accounting.
std::optional<Frame> read_frame(int fd, const IoDeadline* deadline = nullptr,
                                std::size_t* wire_bytes = nullptr);

}  // namespace sva
