#include "server/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <future>

#include "core/flow.hpp"
#include "engine/options.hpp"
#include "engine/thread_pool.hpp"
#include "opt/sizing.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"

namespace sva {

namespace {

/// Cadence of every bounded wait in the daemon: accept polls, idle
/// connection reads, and in-flight job watches.  Short enough that stop
/// requests and client disconnects are noticed promptly.
constexpr int kPollMs = 50;

Counter& counter(const char* name) {
  return MetricsRegistry::global().counter(name);
}

Frame result_frame(const JobResult& result) {
  if (!result.error.empty())
    return {MsgType::ErrorResponse,
            encode_error_response({ProtoStatus::ServerError, result.error})};
  if (result.cancelled)
    return {MsgType::CancelledResponse,
            encode_cancelled_response({result.cancel_reason, result.output})};
  return {MsgType::ResultResponse, encode_result_response(result)};
}

}  // namespace

TimingServer::TimingServer(const SvaFlow& flow, ServerConfig config)
    : flow_(flow), config_(std::move(config)), queue_(config_.queue_depth) {}

TimingServer::~TimingServer() { reap_handlers(true); }

void TimingServer::request_stop() { stop_.store(true); }

const SizedLibrary& TimingServer::ensure_sized() {
  std::call_once(sized_once_, [&] {
    sized_ = std::make_unique<SizedLibrary>(
        flow_.library(), flow_.config().electrical, flow_.library_opc_results(),
        flow_.boundary_model(), flow_.config().bins);
    if (!config_.cache_dir.empty())
      sized_->context_cache().try_load(config_.cache_dir);
  });
  return *sized_;
}

void TimingServer::reap_handlers(bool join_all) {
  std::vector<std::thread> joinable;
  {
    std::lock_guard<std::mutex> lock(handlers_mu_);
    for (auto it = handlers_.begin(); it != handlers_.end();) {
      if (join_all || it->finished->load()) {
        joinable.push_back(std::move(it->thread));
        it = handlers_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (std::thread& t : joinable)
    if (t.joinable()) t.join();
}

int TimingServer::serve(ThreadPool& pool, const CancelToken* stop) {
  pool_ = &pool;
  Fd listener = unix_listen(config_.socket_path);
  log_info("sva serve: listening on ", config_.socket_path, " (queue depth ",
           config_.queue_depth, ")");
  std::thread executor([this] { executor_loop(); });

  while (!stop_.load()) {
    if (stop != nullptr && stop->poll()) break;
    int ready = 0;
    try {
      ready = poll_readable(listener.get(), kPollMs);
    } catch (const std::exception& e) {
      log_warn("server: listener poll failed (", e.what(), ")");
      break;
    }
    reap_handlers(false);
    if (ready <= 0) continue;
    try {
      // Injected accept faults must cost at most the one connection that
      // hit them; the loop keeps serving.
      SVA_FAILPOINT("server.accept");
      const int conn = ::accept(listener.get(), nullptr, nullptr);
      if (conn < 0) continue;
      counter("server.connections").add();
      Fd conn_fd(conn);
      auto finished = std::make_shared<std::atomic<bool>>(false);
      std::thread t([this, fd = std::move(conn_fd), finished]() mutable {
        handle_connection(std::move(fd));
        finished->store(true);
      });
      std::lock_guard<std::mutex> lock(handlers_mu_);
      handlers_.push_back({std::move(t), std::move(finished)});
    } catch (const std::exception& e) {
      counter("server.accept_faults").add();
      log_warn("server: accept failed (", e.what(), "); connection dropped");
    }
  }

  // Graceful drain: no new admissions, every admitted job still reaches
  // its client, then the socket file disappears.
  stop_.store(true);
  listener.close_now();
  queue_.close();
  executor.join();
  reap_handlers(true);
  ::unlink(config_.socket_path.c_str());
  // The lazily built sized library accumulated characterizations worth
  // persisting; a failed snapshot must not fail the drain.
  if (sized_ != nullptr && !config_.cache_dir.empty()) {
    try {
      sized_->context_cache().save(config_.cache_dir);
    } catch (const std::exception& e) {
      log_warn("server: sized-library cache snapshot failed (", e.what(), ")");
    }
  }
  log_info("sva serve: drained and stopped");
  return 0;
}

void TimingServer::executor_loop() {
  while (auto job = queue_.pop()) {
    MetricsRegistry::global().timer("server.queue_wait").add_seconds(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      job->enqueued_at)
            .count());
    JobResult result;
    {
      ScopedTimer timer(MetricsRegistry::global().timer("server.job_exec"));
      try {
        result = job->work();
      } catch (const CancelledError&) {
        result = JobResult{};
        result.exit_code = kExitCancelled;
        result.cancelled = true;
        result.cancel_reason =
            static_cast<std::uint8_t>(job->cancel->reason());
      } catch (const std::exception& e) {
        result = JobResult{};
        result.exit_code = kExitFatal;
        result.error = e.what();
      }
    }
    if (!result.error.empty())
      counter("server.jobs_failed").add();
    else if (result.cancelled)
      counter("server.jobs_cancelled").add();
    else
      counter("server.jobs_completed").add();
    job->done.set_value(std::move(result));
  }
}

void TimingServer::submit_and_wait(
    int fd, std::uint64_t deadline_ms,
    std::function<JobResult(const CancelToken*)> work) {
  ServerJob job;
  job.id = next_job_id_.fetch_add(1);
  job.cancel = std::make_shared<CancelToken>();
  if (deadline_ms > 0)
    job.cancel->set_deadline(
        Deadline::after_seconds(static_cast<double>(deadline_ms) / 1000.0));
  job.work = [w = std::move(work), token = job.cancel] {
    return w(token.get());
  };
  job.enqueued_at = std::chrono::steady_clock::now();
  std::future<JobResult> done = job.done.get_future();
  std::shared_ptr<CancelToken> cancel = job.cancel;

  if (!queue_.try_push(std::move(job))) {
    counter("server.jobs_rejected").add();
    write_frame(fd, {MsgType::BusyResponse,
                     encode_busy_response({queue_.depth(),
                                           queue_.max_depth()})});
    return;
  }
  counter("server.jobs_accepted").add();

  // Watch the client while its job is queued/running: an orderly
  // disconnect trips that job's token only -- every other in-flight job
  // is untouched.
  while (done.wait_for(std::chrono::milliseconds(kPollMs)) !=
         std::future_status::ready) {
    if (!cancel->cancelled() && peer_disconnected(fd)) {
      cancel->request_cancel(CancelReason::Api);
      counter("server.client_disconnects").add();
    }
  }
  const JobResult result = done.get();
  try {
    write_frame(fd, result_frame(result));
  } catch (const std::exception& e) {
    log_warn("server: response write failed (", e.what(), ")");
  }
}

void TimingServer::handle_request(int fd, const Frame& request,
                                  bool& keep_open) {
  switch (request.type) {
    case MsgType::PingRequest:
      write_frame(fd, {MsgType::PongResponse, ""});
      return;
    case MsgType::MetricsRequest: {
      MetricsResponse m;
      m.rendered = MetricsRegistry::global().render();
      m.json = MetricsRegistry::global().render_json();
      write_frame(fd, {MsgType::MetricsResponse, encode_metrics_response(m)});
      return;
    }
    case MsgType::ShutdownRequest:
      write_frame(fd, {MsgType::ShutdownAck, ""});
      request_stop();
      keep_open = false;
      return;
    case MsgType::AnalyzeRequest: {
      const AnalyzeRequest req = decode_analyze_request(request.body);
      submit_and_wait(fd, req.deadline_ms,
                      [this, spec = req.spec](const CancelToken* cancel) {
                        return run_analyze_job(flow_, *pool_, spec, cancel);
                      });
      return;
    }
    case MsgType::OptimizeRequest: {
      const OptimizeRequest req = decode_optimize_request(request.body);
      submit_and_wait(fd, req.deadline_ms,
                      [this, spec = req.spec](const CancelToken* cancel) {
                        return run_optimize_job(flow_, ensure_sized(), *pool_,
                                                spec, cancel);
                      });
      return;
    }
    case MsgType::SstaRequest: {
      const SstaRequest req = decode_ssta_request(request.body);
      submit_and_wait(fd, req.deadline_ms,
                      [this, spec = req.spec](const CancelToken* cancel) {
                        return run_ssta_job(flow_, *pool_, spec, cancel);
                      });
      return;
    }
    default:
      write_frame(fd, {MsgType::ErrorResponse,
                       encode_error_response(
                           {ProtoStatus::BadType,
                            std::string("unexpected message type ") +
                                msg_type_name(request.type)})});
      keep_open = false;
      return;
  }
}

void TimingServer::handle_connection(Fd fd) {
  bool keep_open = true;
  while (keep_open && !stop_.load()) {
    // Idle wait with a bounded poll so a draining server can close idle
    // connections instead of blocking in read() forever.
    int ready = 0;
    try {
      ready = poll_readable(fd.get(), kPollMs);
    } catch (const std::exception&) {
      break;
    }
    if (ready < 0) break;   // peer hung up while idle
    if (ready == 0) continue;
    try {
      // Injected read faults and malformed frames cost this connection,
      // never the daemon: structured error response where the stream
      // still has integrity, then drop.
      SVA_FAILPOINT("server.read");
      std::optional<Frame> frame = read_frame(fd.get());
      if (!frame) break;  // clean EOF
      handle_request(fd.get(), *frame, keep_open);
    } catch (const ProtocolError& e) {
      counter("server.bad_frames").add();
      try {
        write_frame(fd.get(),
                    {MsgType::ErrorResponse,
                     encode_error_response({e.status(), e.what()})});
      } catch (const std::exception&) {
      }
      break;
    } catch (const std::exception& e) {
      counter("server.connection_faults").add();
      log_warn("server: connection dropped (", e.what(), ")");
      break;
    }
  }
}

}  // namespace sva
