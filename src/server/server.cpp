#include "server/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <thread>

#include "core/flow.hpp"
#include "engine/options.hpp"
#include "engine/thread_pool.hpp"
#include "opt/sizing.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"

namespace sva {

namespace {

/// Cadence of every bounded wait in the daemon: accept polls, idle
/// connection reads, and in-flight job watches.  Short enough that stop
/// requests and client disconnects are noticed promptly.
constexpr int kPollMs = 50;

Counter& counter(const char* name) {
  return MetricsRegistry::global().counter(name);
}

Frame result_frame(const JobResult& result) {
  if (!result.error.empty())
    return {MsgType::ErrorResponse,
            encode_error_response({ProtoStatus::ServerError, result.error})};
  if (result.cancelled)
    return {MsgType::CancelledResponse,
            encode_cancelled_response({result.cancel_reason, result.output})};
  return {MsgType::ResultResponse, encode_result_response(result)};
}

std::size_t resolve_lanes(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  // Each lane runs its job on the shared ThreadPool, so lanes beyond a
  // handful only add queueing slots, not compute.
  return std::min<std::size_t>(hw == 0 ? 1 : hw, 8);
}

double mean_job_exec_ms() {
  const TimerStat& exec = MetricsRegistry::global().timer("server.job_exec");
  const std::uint64_t n = exec.count();
  return n == 0 ? 0.0 : exec.seconds() * 1e3 / static_cast<double>(n);
}

}  // namespace

std::uint64_t estimate_retry_after_ms(std::size_t queue_depth,
                                      double mean_job_ms) {
  // Even with no job history the hint suggests a real pause, and the cap
  // keeps a pathological mean from telling clients to sleep for minutes.
  constexpr double kFloorMs = 25.0;
  constexpr double kCapMs = 60'000.0;
  const double per_job = std::max(mean_job_ms, kFloorMs);
  const double estimate = static_cast<double>(queue_depth + 1) * per_job;
  return static_cast<std::uint64_t>(std::min(estimate, kCapMs));
}

TimingServer::TimingServer(const SvaFlow& flow, ServerConfig config)
    : flow_(flow),
      config_(std::move(config)),
      lanes_(LanePool::Config{resolve_lanes(config_.lanes),
                              config_.queue_depth, config_.watchdog_stall_ms,
                              config_.watchdog_grace_ms}),
      result_cache_(config_.result_cache_capacity) {}

TimingServer::~TimingServer() { reap_handlers(true); }

void TimingServer::request_stop() { stop_.store(true); }

const SizedLibrary& TimingServer::ensure_sized() {
  std::call_once(sized_once_, [&] {
    sized_ = std::make_unique<SizedLibrary>(
        flow_.library(), flow_.config().electrical, flow_.library_opc_results(),
        flow_.boundary_model(), flow_.config().bins);
    if (!config_.cache_dir.empty())
      sized_->context_cache().try_load(config_.cache_dir);
  });
  return *sized_;
}

void TimingServer::reap_handlers(bool join_all) {
  std::vector<std::thread> joinable;
  {
    std::lock_guard<std::mutex> lock(handlers_mu_);
    for (auto it = handlers_.begin(); it != handlers_.end();) {
      if (join_all || it->finished->load()) {
        joinable.push_back(std::move(it->thread));
        it = handlers_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (std::thread& t : joinable)
    if (t.joinable()) t.join();
}

int TimingServer::serve(ThreadPool& pool, const CancelToken* stop) {
  pool_ = &pool;
  started_at_ = std::chrono::steady_clock::now();
  Fd listener = unix_listen(config_.socket_path);
  log_info("sva serve: listening on ", config_.socket_path, " (queue depth ",
           config_.queue_depth, ", lanes ", lanes_.lane_count(),
           ", result cache ", result_cache_.capacity(), ")");
  lanes_.start();

  while (!stop_.load()) {
    if (stop != nullptr && stop->poll()) break;
    int ready = 0;
    try {
      ready = poll_readable(listener.get(), kPollMs);
    } catch (const std::exception& e) {
      log_warn("server: listener poll failed (", e.what(), ")");
      break;
    }
    reap_handlers(false);
    if (ready <= 0) continue;
    try {
      // Injected accept faults must cost at most the one connection that
      // hit them; the loop keeps serving.
      SVA_FAILPOINT("server.accept");
      const int conn = ::accept(listener.get(), nullptr, nullptr);
      if (conn < 0) continue;
      counter("server.connections").add();
      Fd conn_fd(conn);
      auto finished = std::make_shared<std::atomic<bool>>(false);
      std::thread t([this, fd = std::move(conn_fd), finished]() mutable {
        handle_connection(std::move(fd));
        finished->store(true);
      });
      std::lock_guard<std::mutex> lock(handlers_mu_);
      handlers_.push_back({std::move(t), std::move(finished)});
    } catch (const std::exception& e) {
      counter("server.accept_faults").add();
      log_warn("server: accept failed (", e.what(), "); connection dropped");
    }
  }

  // Graceful drain: no new admissions, every admitted job still reaches
  // its client, then the socket file disappears.
  stop_.store(true);
  listener.close_now();
  lanes_.close_and_drain();
  reap_handlers(true);
  ::unlink(config_.socket_path.c_str());
  // The lazily built sized library accumulated characterizations worth
  // persisting; a failed snapshot must not fail the drain.
  if (sized_ != nullptr && !config_.cache_dir.empty()) {
    try {
      sized_->context_cache().save(config_.cache_dir);
    } catch (const std::exception& e) {
      log_warn("server: sized-library cache snapshot failed (", e.what(), ")");
    }
  }
  log_info("sva serve: drained and stopped");
  return 0;
}

HealthResponse TimingServer::health_snapshot() const {
  HealthResponse h;
  h.uptime_ms = static_cast<std::uint64_t>(
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - started_at_)
          .count());
  h.queue_depth = lanes_.queued_depth();
  h.queue_capacity = lanes_.queue_capacity();
  h.jobs_served = jobs_served_.load();
  h.lanes_poisoned = counter("server.lane.poisoned").value();
  for (const LaneState state : lanes_.lane_states())
    h.lane_states.push_back(static_cast<char>(state));
  return h;
}

void TimingServer::submit_and_wait(
    int fd, std::uint64_t deadline_ms, std::uint64_t spec_hash, bool cacheable,
    std::function<JobResult(const CancelToken*)> work, bool& keep_open) {
  if (cacheable) {
    if (std::optional<JobResult> cached = result_cache_.lookup(spec_hash)) {
      // An idempotent replay: the exact bytes the first execution
      // produced, so a retried request cannot diverge from its original.
      jobs_served_.fetch_add(1);
      try {
        write_frame(fd, result_frame(*cached));
      } catch (const std::exception& e) {
        log_warn("server: response write failed (", e.what(), ")");
      }
      return;
    }
  }

  auto job = std::make_shared<ServerJob>();
  job->id = next_job_id_.fetch_add(1);
  job->spec_hash = spec_hash;
  job->cacheable = cacheable;
  job->cancel = std::make_shared<CancelToken>();
  if (deadline_ms > 0)
    job->cancel->set_deadline(
        Deadline::after_seconds(static_cast<double>(deadline_ms) / 1000.0));
  // Armed before the job is shared, like the deadline: every poll() inside
  // the work beats this counter for the watchdog.
  job->cancel->set_heartbeat(&job->heartbeat);
  job->work = [w = std::move(work), token = job->cancel] {
    return w(token.get());
  };
  job->enqueued_at = std::chrono::steady_clock::now();
  std::future<JobResult> done = job->done.get_future();
  std::shared_ptr<CancelToken> cancel = job->cancel;

  if (!lanes_.submit(job)) {
    counter("server.jobs_rejected").add();
    const std::size_t depth = lanes_.queued_depth();
    write_frame(fd,
                {MsgType::BusyResponse,
                 encode_busy_response(
                     {depth, lanes_.queue_capacity(),
                      estimate_retry_after_ms(depth, mean_job_exec_ms())})});
    return;
  }
  counter("server.jobs_accepted").add();

  // Watch the client while its job is queued/running: an orderly
  // disconnect trips that job's token only -- every other in-flight job
  // is untouched.
  while (done.wait_for(std::chrono::milliseconds(kPollMs)) !=
         std::future_status::ready) {
    if (!cancel->cancelled() && peer_disconnected(fd)) {
      cancel->request_cancel(CancelReason::Api);
      counter("server.client_disconnects").add();
    }
  }
  const JobResult result = done.get();
  if (result.lane_crashed) {
    // The executor lane died before the job ran.  Drop the connection
    // without a response: the client's transient-retry classification
    // (EOF before any response byte) resubmits the identical spec, which
    // lands on the recycled lane -- or, once completed, on the result
    // cache.
    counter("server.jobs_crashed").add();
    log_warn("server: lane crashed under job ", job->id,
             "; dropping connection for client retry (", result.error, ")");
    keep_open = false;
    return;
  }
  jobs_served_.fetch_add(1);
  if (cacheable && result.exit_code == 0 && result.error.empty() &&
      !result.cancelled)
    result_cache_.insert(spec_hash, result);
  try {
    write_frame(fd, result_frame(result));
  } catch (const std::exception& e) {
    log_warn("server: response write failed (", e.what(), ")");
  }
}

void TimingServer::handle_request(int fd, const Frame& request,
                                  bool& keep_open) {
  switch (request.type) {
    case MsgType::PingRequest:
      write_frame(fd, {MsgType::PongResponse, ""});
      return;
    case MsgType::HealthRequest:
      // Answered inline, never queued: a health probe must succeed even
      // while every lane is saturated.
      write_frame(fd, {MsgType::HealthResponse,
                       encode_health_response(health_snapshot())});
      return;
    case MsgType::MetricsRequest: {
      MetricsResponse m;
      m.rendered = MetricsRegistry::global().render();
      m.json = MetricsRegistry::global().render_json();
      write_frame(fd, {MsgType::MetricsResponse, encode_metrics_response(m)});
      return;
    }
    case MsgType::ShutdownRequest:
      write_frame(fd, {MsgType::ShutdownAck, ""});
      request_stop();
      keep_open = false;
      return;
    case MsgType::AnalyzeRequest: {
      const AnalyzeRequest req = decode_analyze_request(request.body);
      submit_and_wait(fd, req.deadline_ms, job_spec_hash(req.spec),
                      /*cacheable=*/true,
                      [this, spec = req.spec](const CancelToken* cancel) {
                        return run_analyze_job(flow_, *pool_, spec, cancel);
                      },
                      keep_open);
      return;
    }
    case MsgType::OptimizeRequest: {
      const OptimizeRequest req = decode_optimize_request(request.body);
      // Never cached: optimize mutates artifacts and its cost is the
      // product.
      submit_and_wait(fd, req.deadline_ms, job_spec_hash(req.spec),
                      /*cacheable=*/false,
                      [this, spec = req.spec](const CancelToken* cancel) {
                        return run_optimize_job(flow_, ensure_sized(), *pool_,
                                                spec, cancel);
                      },
                      keep_open);
      return;
    }
    case MsgType::SstaRequest: {
      const SstaRequest req = decode_ssta_request(request.body);
      submit_and_wait(fd, req.deadline_ms, job_spec_hash(req.spec),
                      /*cacheable=*/true,
                      [this, spec = req.spec](const CancelToken* cancel) {
                        return run_ssta_job(flow_, *pool_, spec, cancel);
                      },
                      keep_open);
      return;
    }
    default:
      write_frame(fd, {MsgType::ErrorResponse,
                       encode_error_response(
                           {ProtoStatus::BadType,
                            std::string("unexpected message type ") +
                                msg_type_name(request.type)})});
      keep_open = false;
      return;
  }
}

void TimingServer::handle_connection(Fd fd) {
  bool keep_open = true;
  while (keep_open && !stop_.load()) {
    // Idle wait with a bounded poll so a draining server can close idle
    // connections instead of blocking in read() forever.
    int ready = 0;
    try {
      ready = poll_readable(fd.get(), kPollMs);
    } catch (const std::exception&) {
      break;
    }
    if (ready < 0) break;   // peer hung up while idle
    if (ready == 0) continue;
    try {
      // Injected read faults and malformed frames cost this connection,
      // never the daemon: structured error response where the stream
      // still has integrity, then drop.
      SVA_FAILPOINT("server.read");
      std::optional<Frame> frame = read_frame(fd.get());
      if (!frame) break;  // clean EOF
      handle_request(fd.get(), *frame, keep_open);
    } catch (const ProtocolError& e) {
      counter("server.bad_frames").add();
      try {
        write_frame(fd.get(),
                    {MsgType::ErrorResponse,
                     encode_error_response({e.status(), e.what()})});
      } catch (const std::exception&) {
      }
      break;
    } catch (const std::exception& e) {
      counter("server.connection_faults").add();
      log_warn("server: connection dropped (", e.what(), ")");
      break;
    }
  }
}

}  // namespace sva
