#include "server/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <thread>

#include "core/flow.hpp"
#include "engine/options.hpp"
#include "engine/thread_pool.hpp"
#include "opt/sizing.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"

namespace sva {

namespace {

/// Cadence of every bounded wait in the daemon: accept polls, idle
/// connection reads, and in-flight job watches.  Short enough that stop
/// requests and client disconnects are noticed promptly.
constexpr int kPollMs = 50;

/// Budget for the best-effort Busy frame written to a shed connection:
/// a peer that will not even drain one small frame is not worth more.
constexpr std::uint64_t kShedWriteBudgetMs = 1'000;

Counter& counter(const char* name) {
  return MetricsRegistry::global().counter(name);
}

Frame result_frame(const JobResult& result) {
  if (!result.error.empty())
    return {MsgType::ErrorResponse,
            encode_error_response({ProtoStatus::ServerError, result.error})};
  if (result.cancelled)
    return {MsgType::CancelledResponse,
            encode_cancelled_response({result.cancel_reason, result.output})};
  return {MsgType::ResultResponse, encode_result_response(result)};
}

std::size_t resolve_lanes(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  // Each lane runs its job on the shared ThreadPool, so lanes beyond a
  // handful only add queueing slots, not compute.
  return std::min<std::size_t>(hw == 0 ? 1 : hw, 8);
}

double mean_job_exec_ms() {
  const TimerStat& exec = MetricsRegistry::global().timer("server.job_exec");
  const std::uint64_t n = exec.count();
  return n == 0 ? 0.0 : exec.seconds() * 1e3 / static_cast<double>(n);
}

}  // namespace

std::uint64_t estimate_retry_after_ms(std::size_t queue_depth,
                                      double mean_job_ms) {
  // Even with no job history the hint suggests a real pause, and the cap
  // keeps a pathological mean from telling clients to sleep for minutes.
  constexpr double kFloorMs = 25.0;
  constexpr double kCapMs = 60'000.0;
  const double per_job = std::max(mean_job_ms, kFloorMs);
  const double estimate = static_cast<double>(queue_depth + 1) * per_job;
  return static_cast<std::uint64_t>(std::min(estimate, kCapMs));
}

TimingServer::TimingServer(const SvaFlow& flow, ServerConfig config)
    : flow_(flow),
      config_(std::move(config)),
      lanes_(LanePool::Config{resolve_lanes(config_.lanes),
                              config_.queue_depth, config_.watchdog_stall_ms,
                              config_.watchdog_grace_ms}),
      result_cache_(config_.result_cache_capacity) {}

TimingServer::~TimingServer() { reap_handlers(true); }

void TimingServer::request_stop() { stop_.store(true); }

const SizedLibrary& TimingServer::ensure_sized() {
  std::call_once(sized_once_, [&] {
    sized_ = std::make_unique<SizedLibrary>(
        flow_.library(), flow_.config().electrical, flow_.library_opc_results(),
        flow_.boundary_model(), flow_.config().bins);
    if (!config_.cache_dir.empty())
      sized_->context_cache().try_load(config_.cache_dir);
  });
  return *sized_;
}

void TimingServer::reap_handlers(bool join_all) {
  std::vector<std::thread> joinable;
  {
    std::lock_guard<std::mutex> lock(handlers_mu_);
    for (auto it = handlers_.begin(); it != handlers_.end();) {
      if (join_all || it->finished->load()) {
        joinable.push_back(std::move(it->thread));
        it = handlers_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (std::thread& t : joinable)
    if (t.joinable()) t.join();
}

int TimingServer::serve(ThreadPool& pool, const CancelToken* stop) {
  pool_ = &pool;
  started_at_ = std::chrono::steady_clock::now();

  Fd unix_listener;
  Fd tcp_listener;
  if (!config_.socket_path.empty()) {
    unix_listener = unix_listen(config_.socket_path);
    log_info("sva serve: listening on unix:", config_.socket_path,
             " (queue depth ", config_.queue_depth, ", lanes ",
             lanes_.lane_count(), ", result cache ", result_cache_.capacity(),
             ", max conns ", config_.max_conns, ")");
    if (config_.announce) {
      std::printf("sva serve: listening on unix:%s\n",
                  config_.socket_path.c_str());
      std::fflush(stdout);
    }
  }
  if (!config_.listen_address.empty()) {
    const Endpoint ep = parse_endpoint("tcp:" + config_.listen_address);
    std::uint16_t bound = 0;
    tcp_listener = tcp_listen(ep.host, ep.port, /*backlog=*/16, &bound);
    tcp_port_.store(bound);
    log_info("sva serve: listening on tcp:", ep.host, ":", bound,
             " (queue depth ", config_.queue_depth, ", lanes ",
             lanes_.lane_count(), ", result cache ", result_cache_.capacity(),
             ", max conns ", config_.max_conns, ")");
    if (config_.announce) {
      std::printf("sva serve: listening on tcp:%s:%u\n", ep.host.c_str(),
                  static_cast<unsigned>(bound));
      std::fflush(stdout);
    }
  }
  if (!unix_listener.valid() && !tcp_listener.valid()) {
    log_error("sva serve: no listener configured (--socket and/or --listen)");
    return 1;
  }

  int listen_fds[2];
  bool listen_is_tcp[2];
  std::size_t n_listeners = 0;
  if (unix_listener.valid()) {
    listen_fds[n_listeners] = unix_listener.get();
    listen_is_tcp[n_listeners++] = false;
  }
  if (tcp_listener.valid()) {
    listen_fds[n_listeners] = tcp_listener.get();
    listen_is_tcp[n_listeners++] = true;
  }

  lanes_.start();

  while (!stop_.load()) {
    if (stop != nullptr && stop->poll()) break;
    int which = -1;
    try {
      which = poll_any_readable(listen_fds, n_listeners, kPollMs);
    } catch (const std::exception& e) {
      log_warn("server: listener poll failed (", e.what(), ")");
      break;
    }
    reap_handlers(false);
    if (which < 0) continue;
    const bool is_tcp = listen_is_tcp[which];
    try {
      // Injected accept faults must cost at most the one connection that
      // hit them; the loop keeps serving.
      SVA_FAILPOINT("server.accept");
      const int conn = ::accept(listen_fds[which], nullptr, nullptr);
      if (conn < 0) continue;
      counter("server.connections").add();
      Fd conn_fd(conn);
      // Accepted sockets inherit neither FD_CLOEXEC nor TCP_NODELAY.
      adopt_stream_socket(conn, is_tcp);
      SVA_FAILPOINT("server.conn.accept");
      if (active_conns_.load() >= config_.max_conns) {
        // Over the connection cap: shed with the same Busy + hint the
        // queue-depth admission path answers, so the client's existing
        // retry machinery handles both overload modes identically.
        counter("server.conn.shed_busy").add();
        const std::size_t depth = lanes_.queued_depth();
        const IoDeadline budget = IoDeadline::after_ms(kShedWriteBudgetMs);
        try {
          write_frame(
              conn_fd.get(),
              {MsgType::BusyResponse,
               encode_busy_response(
                   {depth, lanes_.queue_capacity(),
                    estimate_retry_after_ms(depth, mean_job_exec_ms())})},
              &budget);
        } catch (const std::exception&) {
        }
        continue;
      }
      Conn supervised(std::move(conn_fd), config_.conn_limits);
      active_conns_.fetch_add(1);
      auto finished = std::make_shared<std::atomic<bool>>(false);
      std::thread t(
          [this, c = std::move(supervised), finished]() mutable {
            handle_connection(std::move(c));
            active_conns_.fetch_sub(1);
            finished->store(true);
          });
      std::lock_guard<std::mutex> lock(handlers_mu_);
      handlers_.push_back({std::move(t), std::move(finished)});
    } catch (const std::exception& e) {
      counter("server.accept_faults").add();
      log_warn("server: accept failed (", e.what(), "); connection dropped");
    }
  }

  // Graceful drain: no new admissions, every admitted job still reaches
  // its client, then the socket file disappears.
  stop_.store(true);
  unix_listener.close_now();
  tcp_listener.close_now();
  lanes_.close_and_drain();
  reap_handlers(true);
  if (!config_.socket_path.empty()) ::unlink(config_.socket_path.c_str());
  // The lazily built sized library accumulated characterizations worth
  // persisting; a failed snapshot must not fail the drain.
  if (sized_ != nullptr && !config_.cache_dir.empty()) {
    try {
      sized_->context_cache().save(config_.cache_dir);
    } catch (const std::exception& e) {
      log_warn("server: sized-library cache snapshot failed (", e.what(), ")");
    }
  }
  log_info("sva serve: drained and stopped");
  return 0;
}

HealthResponse TimingServer::health_snapshot() const {
  HealthResponse h;
  h.uptime_ms = static_cast<std::uint64_t>(
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - started_at_)
          .count());
  h.queue_depth = lanes_.queued_depth();
  h.queue_capacity = lanes_.queue_capacity();
  h.jobs_served = jobs_served_.load();
  h.lanes_poisoned = counter("server.lane.poisoned").value();
  for (const LaneState state : lanes_.lane_states())
    h.lane_states.push_back(static_cast<char>(state));
  return h;
}

std::optional<TimingServer::PendingJob> TimingServer::admit_job(
    std::uint64_t deadline_ms, std::uint64_t spec_hash, bool cacheable,
    std::function<JobResult(const CancelToken*)> work,
    std::optional<Frame>* immediate) {
  if (cacheable) {
    if (std::optional<JobResult> cached = result_cache_.lookup(spec_hash)) {
      // An idempotent replay: the exact bytes the first execution
      // produced, so a retried request cannot diverge from its original.
      jobs_served_.fetch_add(1);
      *immediate = result_frame(*cached);
      return std::nullopt;
    }
  }

  auto job = std::make_shared<ServerJob>();
  job->id = next_job_id_.fetch_add(1);
  job->spec_hash = spec_hash;
  job->cacheable = cacheable;
  job->cancel = std::make_shared<CancelToken>();
  if (deadline_ms > 0)
    job->cancel->set_deadline(
        Deadline::after_seconds(static_cast<double>(deadline_ms) / 1000.0));
  // Armed before the job is shared, like the deadline: every poll() inside
  // the work beats this counter for the watchdog.
  job->cancel->set_heartbeat(&job->heartbeat);
  job->work = [w = std::move(work), token = job->cancel] {
    return w(token.get());
  };
  job->enqueued_at = std::chrono::steady_clock::now();
  PendingJob pending;
  pending.done = job->done.get_future();
  pending.cancel = job->cancel;
  pending.job = job;

  if (!lanes_.submit(job)) {
    counter("server.jobs_rejected").add();
    const std::size_t depth = lanes_.queued_depth();
    *immediate = Frame{
        MsgType::BusyResponse,
        encode_busy_response(
            {depth, lanes_.queue_capacity(),
             estimate_retry_after_ms(depth, mean_job_exec_ms())})};
    return std::nullopt;
  }
  counter("server.jobs_accepted").add();
  return pending;
}

Frame TimingServer::finish_result(const JobResult& result,
                                  std::uint64_t spec_hash, bool cacheable) {
  jobs_served_.fetch_add(1);
  if (cacheable && result.exit_code == 0 && result.error.empty() &&
      !result.cancelled)
    result_cache_.insert(spec_hash, result);
  return result_frame(result);
}

void TimingServer::submit_and_wait(
    Conn& conn, std::uint64_t deadline_ms, std::uint64_t spec_hash,
    bool cacheable, std::function<JobResult(const CancelToken*)> work,
    bool& keep_open) {
  std::optional<Frame> immediate;
  std::optional<PendingJob> pending =
      admit_job(deadline_ms, spec_hash, cacheable, std::move(work),
                &immediate);
  if (!pending) {
    conn.write_frame(*immediate);
    return;
  }

  // Watch the client while its job is queued/running: an orderly
  // disconnect trips that job's token only -- every other in-flight job
  // is untouched.
  while (pending->done.wait_for(std::chrono::milliseconds(kPollMs)) !=
         std::future_status::ready) {
    if (!pending->cancel->cancelled() && peer_disconnected(conn.fd())) {
      pending->cancel->request_cancel(CancelReason::Api);
      counter("server.client_disconnects").add();
    }
  }
  const JobResult result = pending->done.get();
  if (result.lane_crashed) {
    // The executor lane died before the job ran.  Drop the connection
    // without a response: the client's transient-retry classification
    // (EOF before any response byte) resubmits the identical spec, which
    // lands on the recycled lane -- or, once completed, on the result
    // cache.
    counter("server.jobs_crashed").add();
    log_warn("server: lane crashed under job ", pending->job->id,
             "; dropping connection for client retry (", result.error, ")");
    keep_open = false;
    return;
  }
  conn.write_frame(finish_result(result, spec_hash, cacheable));
}

namespace {

/// Decoded executable form of one batch slot.  `error` is set instead
/// when the slot's bytes are malformed -- the slot's response, never the
/// batch's.
struct BatchSlotPlan {
  std::uint64_t deadline_ms = 0;
  std::uint64_t spec_hash = 0;
  bool cacheable = false;
  bool ok = false;
  ErrorResponse error;
};

}  // namespace

void TimingServer::handle_batch(Conn& conn, const BatchRequest& request) {
  const std::size_t n = request.items.size();
  struct Slot {
    std::optional<Frame> response;
    std::optional<PendingJob> pending;
    std::uint64_t spec_hash = 0;
    bool cacheable = false;
  };
  std::vector<Slot> slots(n);

  // Admission pass, in submission order: the per-lane binding is the
  // normal spec_hash % lanes, so identical specs inside one batch
  // serialize on one lane (determinism) while distinct specs spread over
  // the lanes and run concurrently.
  for (std::size_t i = 0; i < n; ++i) {
    const BatchItem& item = request.items[i];
    std::function<JobResult(const CancelToken*)> work;
    BatchSlotPlan plan;
    try {
      switch (static_cast<MsgType>(item.kind)) {
        case MsgType::AnalyzeRequest: {
          const AnalyzeRequest req = decode_analyze_request(item.body);
          plan.deadline_ms = req.deadline_ms;
          plan.spec_hash = job_spec_hash(req.spec);
          plan.cacheable = true;
          work = [this, spec = req.spec](const CancelToken* cancel) {
            return run_analyze_job(flow_, *pool_, spec, cancel);
          };
          plan.ok = true;
          break;
        }
        case MsgType::OptimizeRequest: {
          const OptimizeRequest req = decode_optimize_request(item.body);
          plan.deadline_ms = req.deadline_ms;
          plan.spec_hash = job_spec_hash(req.spec);
          plan.cacheable = false;  // optimize is never cached
          work = [this, spec = req.spec](const CancelToken* cancel) {
            return run_optimize_job(flow_, ensure_sized(), *pool_, spec,
                                    cancel);
          };
          plan.ok = true;
          break;
        }
        case MsgType::SstaRequest: {
          const SstaRequest req = decode_ssta_request(item.body);
          plan.deadline_ms = req.deadline_ms;
          plan.spec_hash = job_spec_hash(req.spec);
          plan.cacheable = true;
          work = [this, spec = req.spec](const CancelToken* cancel) {
            return run_ssta_job(flow_, *pool_, spec, cancel);
          };
          plan.ok = true;
          break;
        }
        default:
          plan.error = {ProtoStatus::BadType,
                        "batch slot " + std::to_string(i) + " kind " +
                            std::to_string(item.kind) +
                            " is not a job request"};
          break;
      }
    } catch (const ProtocolError& e) {
      // The malformed slot answers for itself; the rest of the batch is
      // untouched.
      plan.ok = false;
      plan.error = {e.status(), e.what()};
    }
    if (!plan.ok) {
      counter("server.bad_frames").add();
      slots[i].response =
          Frame{MsgType::ErrorResponse, encode_error_response(plan.error)};
      continue;
    }
    slots[i].spec_hash = plan.spec_hash;
    slots[i].cacheable = plan.cacheable;
    std::optional<Frame> immediate;
    slots[i].pending = admit_job(plan.deadline_ms, plan.spec_hash,
                                 plan.cacheable, std::move(work), &immediate);
    if (!slots[i].pending) slots[i].response = std::move(*immediate);
  }

  // Wait pass, again in submission order (results must come back in the
  // order specs were submitted).  One disconnect cancels every still-
  // pending slot: nobody is waiting for the answers any more.
  bool disconnected = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (!slots[i].pending) continue;
    PendingJob& pending = *slots[i].pending;
    while (pending.done.wait_for(std::chrono::milliseconds(kPollMs)) !=
           std::future_status::ready) {
      if (!disconnected && peer_disconnected(conn.fd())) {
        disconnected = true;
        counter("server.client_disconnects").add();
        for (std::size_t j = i; j < n; ++j)
          if (slots[j].pending && !slots[j].pending->cancel->cancelled())
            slots[j].pending->cancel->request_cancel(CancelReason::Api);
      }
    }
    const JobResult result = pending.done.get();
    if (result.lane_crashed) {
      // Unlike the single-spec path (which drops the connection so the
      // retry layer resubmits), a batch already owes the client N slots;
      // the crash poisons only its own slot and says a resubmit is safe.
      counter("server.jobs_crashed").add();
      slots[i].response =
          Frame{MsgType::ErrorResponse,
                encode_error_response(
                    {ProtoStatus::ServerError,
                     "executor lane crashed before the job ran; "
                     "resubmitting this spec is safe (" +
                         result.error + ")"})};
      continue;
    }
    slots[i].response =
        finish_result(result, slots[i].spec_hash, slots[i].cacheable);
  }

  BatchResponse response;
  response.slots.reserve(n);
  for (Slot& slot : slots)
    response.slots.push_back({slot.response->type,
                              std::move(slot.response->body)});
  conn.write_frame(
      {MsgType::BatchResponse, encode_batch_response(response)});
}

void TimingServer::handle_request(Conn& conn, const Frame& request,
                                  bool& keep_open) {
  switch (request.type) {
    case MsgType::PingRequest:
      conn.write_frame({MsgType::PongResponse, ""});
      return;
    case MsgType::HealthRequest:
      // Answered inline, never queued: a health probe must succeed even
      // while every lane is saturated.
      conn.write_frame({MsgType::HealthResponse,
                        encode_health_response(health_snapshot())});
      return;
    case MsgType::MetricsRequest: {
      MetricsResponse m;
      m.rendered = MetricsRegistry::global().render();
      m.json = MetricsRegistry::global().render_json();
      conn.write_frame(
          {MsgType::MetricsResponse, encode_metrics_response(m)});
      return;
    }
    case MsgType::ShutdownRequest:
      conn.write_frame({MsgType::ShutdownAck, ""});
      request_stop();
      keep_open = false;
      return;
    case MsgType::AnalyzeRequest: {
      const AnalyzeRequest req = decode_analyze_request(request.body);
      submit_and_wait(conn, req.deadline_ms, job_spec_hash(req.spec),
                      /*cacheable=*/true,
                      [this, spec = req.spec](const CancelToken* cancel) {
                        return run_analyze_job(flow_, *pool_, spec, cancel);
                      },
                      keep_open);
      return;
    }
    case MsgType::OptimizeRequest: {
      const OptimizeRequest req = decode_optimize_request(request.body);
      // Never cached: optimize mutates artifacts and its cost is the
      // product.
      submit_and_wait(conn, req.deadline_ms, job_spec_hash(req.spec),
                      /*cacheable=*/false,
                      [this, spec = req.spec](const CancelToken* cancel) {
                        return run_optimize_job(flow_, ensure_sized(), *pool_,
                                                spec, cancel);
                      },
                      keep_open);
      return;
    }
    case MsgType::SstaRequest: {
      const SstaRequest req = decode_ssta_request(request.body);
      submit_and_wait(conn, req.deadline_ms, job_spec_hash(req.spec),
                      /*cacheable=*/true,
                      [this, spec = req.spec](const CancelToken* cancel) {
                        return run_ssta_job(flow_, *pool_, spec, cancel);
                      },
                      keep_open);
      return;
    }
    case MsgType::BatchRequest: {
      const BatchRequest req = decode_batch_request(request.body);
      handle_batch(conn, req);
      return;
    }
    default:
      conn.write_frame({MsgType::ErrorResponse,
                        encode_error_response(
                            {ProtoStatus::BadType,
                             std::string("unexpected message type ") +
                                 msg_type_name(request.type)})});
      keep_open = false;
      return;
  }
}

void TimingServer::handle_connection(Conn conn) {
  bool keep_open = true;
  auto last_activity = std::chrono::steady_clock::now();
  while (keep_open && !stop_.load()) {
    // Idle wait with a bounded poll so a draining server can close idle
    // connections instead of blocking in read() forever.
    int ready = 0;
    try {
      ready = poll_readable(conn.fd(), kPollMs);
    } catch (const std::exception&) {
      break;
    }
    if (ready < 0) break;   // peer hung up while idle
    if (ready == 0) {
      const std::uint64_t idle_budget = conn.limits().idle_timeout_ms;
      const auto idle_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - last_activity)
              .count();
      if (idle_budget > 0 &&
          static_cast<std::uint64_t>(idle_ms) > idle_budget) {
        // A parked connection holds a handler thread and a --max-conns
        // slot; reclaim it like any other slow peer.
        counter("server.conn.evicted_slow").add();
        log_warn("server: idle connection evicted after ", idle_ms, " ms");
        break;
      }
      continue;
    }
    try {
      // Injected read faults and malformed frames cost this connection,
      // never the daemon: structured error response where the stream
      // still has integrity, then drop.
      SVA_FAILPOINT("server.read");
      std::optional<Frame> frame = conn.read_frame();
      if (!frame) break;  // clean EOF
      handle_request(conn, *frame, keep_open);
      last_activity = std::chrono::steady_clock::now();
    } catch (const SlowPeerError& e) {
      // The peer started a frame (or stopped draining its responses) and
      // then stalled past its budget: evict so the handler thread and
      // connection slot return to the pool.
      counter("server.conn.evicted_slow").add();
      log_warn("server: slow peer evicted (", e.what(), ")");
      break;
    } catch (const ProtocolError& e) {
      counter("server.bad_frames").add();
      try {
        conn.write_frame({MsgType::ErrorResponse,
                          encode_error_response({e.status(), e.what()})});
      } catch (const std::exception&) {
      }
      break;
    } catch (const std::exception& e) {
      counter("server.connection_faults").add();
      log_warn("server: connection dropped (", e.what(), ")");
      break;
    }
  }
}

}  // namespace sva
