#pragma once
// Multi-lane executor pool with per-lane fault isolation for the timing
// daemon.
//
// N lanes each own a bounded JobQueue and one worker thread; a job is
// bound to lane (spec_hash % N), so any given canonical spec always runs
// on the same lane, in admission order.  That keeps daemon results
// bit-identical to the single-executor design: identical specs serialize
// on one lane (no result can depend on which of two racing copies won),
// and distinct specs are independent computations the engine already
// guarantees are schedule-invariant (bit-exact parallel STA, determinis-
// tic context-cache fills).  Concurrency across lanes is therefore free
// of result risk -- only throughput changes with --lanes.
//
// Fault isolation is per lane, three layers deep:
//
//   harness   every job runs under a crash harness: an armed
//             "server.lane.run" failpoint, an escaping exception, or a
//             CancelledError costs exactly that job, increments
//             server.lane.poisoned, and recycles the lane thread (a
//             fresh thread, same queue, next generation) -- the daemon
//             and every other lane keep serving;
//   watchdog  a scan thread watches per-job heartbeats (bumped by every
//             CancelToken::poll() inside the work).  A job with no beat
//             for watchdog_stall_ms gets its token fired; if it still
//             does not wind down within watchdog_grace_ms the lane is
//             declared wedged: the client is answered (cancelled), the
//             stuck thread is abandoned to finish into a discard (its
//             generation is stale), and a replacement thread takes over
//             the lane's queue;
//   delivery  a per-job CAS guard makes result delivery exactly-once,
//             whoever wins -- the lane on a normal finish, the watchdog
//             on a wedge -- so a late finisher can never double-fulfil
//             the promise.
//
// close_and_drain() stops admissions, drains every queue, and joins all
// threads (including retired generations), preserving the daemon's
// graceful-shutdown contract.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "server/job_queue.hpp"

namespace sva {

enum class LaneState : std::uint8_t { Idle = 0, Running = 1, Wedged = 2 };
const char* lane_state_name(LaneState state);

class LanePool {
 public:
  struct Config {
    std::size_t lanes = 1;
    /// Admission bound across all lanes (queued jobs; a running job has
    /// already left its queue, matching the single-executor semantics).
    std::size_t queue_depth = 8;
    /// No heartbeat for this long => fire the job's cancel token.
    std::uint64_t watchdog_stall_ms = 10'000;
    /// Token fired but still no beat for this long => wedge the lane.
    std::uint64_t watchdog_grace_ms = 2'000;
  };

  explicit LanePool(Config config);
  ~LanePool();

  LanePool(const LanePool&) = delete;
  LanePool& operator=(const LanePool&) = delete;

  /// Spawn the lane threads and the watchdog.
  void start();

  /// Admit `job` to its hash-bound lane.  False (the caller answers
  /// Busy) when the pool is draining or the queued backlog is at the
  /// admission bound.
  bool submit(std::shared_ptr<ServerJob> job);

  /// Stop admissions, drain every admitted job to its waiting client,
  /// and join all threads.  Idempotent.
  void close_and_drain();

  std::size_t lane_count() const { return lanes_.size(); }
  /// Jobs currently queued across all lanes.
  std::size_t queued_depth() const;
  std::size_t queue_capacity() const { return config_.queue_depth; }
  std::vector<LaneState> lane_states() const;

 private:
  struct Lane {
    std::size_t index = 0;
    std::unique_ptr<JobQueue> queue;
    std::atomic<std::uint8_t> state{0};
    // Everything below is guarded by LanePool::mu_.
    std::thread thread;
    /// Bumped on every recycle; a thread whose generation is stale owns
    /// nothing and exits without touching the lane.
    std::uint64_t generation = 0;
    std::shared_ptr<ServerJob> current;
    std::chrono::steady_clock::time_point run_started{};
    std::uint64_t seen_beat = 0;
    std::chrono::steady_clock::time_point beat_seen_at{};
    bool cancel_fired = false;
    std::chrono::steady_clock::time_point cancel_fired_at{};
  };

  void lane_loop(std::size_t index, std::uint64_t my_generation);
  /// Run one job under the crash harness.  Returns false when this
  /// thread must exit (stale generation or poisoned-and-recycled).
  bool run_one(Lane& lane, std::uint64_t my_generation,
               const std::shared_ptr<ServerJob>& job);
  void watchdog_loop();
  /// mu_ held: retire the lane's current thread handle and spawn the
  /// next generation on the same queue.
  void recycle_locked(Lane& lane);

  Config config_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  /// Thread handles of recycled generations; joined at drain (every
  /// retired thread finishes: injected delays are finite and stale
  /// threads exit at their next generation check).
  std::vector<std::thread> retired_;
  std::thread watchdog_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> watchdog_stop_{false};
  bool started_ = false;
  bool drained_ = false;
};

}  // namespace sva
