#include "server/lane_pool.hpp"

#include <string>
#include <utility>

#include "engine/options.hpp"
#include "util/failpoint.hpp"
#include "util/metrics.hpp"

namespace sva {

namespace {

Counter& counter(const char* name) {
  return MetricsRegistry::global().counter(name);
}

double ms_between(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Watchdog scan cadence; well under any sane stall threshold so detection
/// latency is dominated by the configured thresholds, not the tick.
constexpr std::chrono::milliseconds kWatchdogTick{20};

}  // namespace

const char* lane_state_name(LaneState state) {
  switch (state) {
    case LaneState::Idle: return "idle";
    case LaneState::Running: return "running";
    case LaneState::Wedged: return "wedged";
  }
  return "unknown";
}

LanePool::LanePool(Config config) : config_(config) {
  if (config_.lanes == 0) config_.lanes = 1;
  if (config_.queue_depth == 0) config_.queue_depth = 1;
  lanes_.reserve(config_.lanes);
  for (std::size_t i = 0; i < config_.lanes; ++i) {
    auto lane = std::make_unique<Lane>();
    lane->index = i;
    // Per-lane capacity is the full admission bound: the global bound in
    // submit() is what limits the backlog; the lane queue must never be
    // the tighter limit or hash skew would cause spurious Busy answers.
    lane->queue = std::make_unique<JobQueue>(config_.queue_depth);
    lanes_.push_back(std::move(lane));
  }
}

LanePool::~LanePool() { close_and_drain(); }

void LanePool::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  for (auto& lane : lanes_) {
    lane->thread = std::thread(
        [this, index = lane->index] { lane_loop(index, /*my_generation=*/0); });
  }
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

bool LanePool::submit(std::shared_ptr<ServerJob> job) {
  if (draining_.load(std::memory_order_acquire)) return false;
  // Global admission bound across lanes.  The check-then-push is not one
  // atomic step, so concurrent submitters can transiently overshoot by a
  // lane's worth -- admission control bounds the backlog, it is not an
  // exact semaphore.  With one lane (the single-executor configuration)
  // the per-lane queue cap makes the bound exact again.
  if (queued_depth() >= config_.queue_depth) return false;
  Lane& lane = *lanes_[job->spec_hash % lanes_.size()];
  return lane.queue->try_push(std::move(job));
}

std::size_t LanePool::queued_depth() const {
  std::size_t total = 0;
  for (const auto& lane : lanes_) total += lane->queue->depth();
  return total;
}

std::vector<LaneState> LanePool::lane_states() const {
  std::vector<LaneState> states;
  states.reserve(lanes_.size());
  for (const auto& lane : lanes_)
    states.push_back(
        static_cast<LaneState>(lane->state.load(std::memory_order_relaxed)));
  return states;
}

void LanePool::lane_loop(std::size_t index, std::uint64_t my_generation) {
  Lane& lane = *lanes_[index];
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (lane.generation != my_generation) return;  // recycled from under us
      if (lane.state.load(std::memory_order_relaxed) !=
          static_cast<std::uint8_t>(LaneState::Running))
        lane.state.store(static_cast<std::uint8_t>(LaneState::Idle),
                         std::memory_order_relaxed);
    }
    std::shared_ptr<ServerJob> job = lane.queue->pop();
    if (!job) return;  // closed and drained
    if (!run_one(lane, my_generation, job)) return;
  }
}

bool LanePool::run_one(Lane& lane, std::uint64_t my_generation,
                       const std::shared_ptr<ServerJob>& job) {
  auto& registry = MetricsRegistry::global();
  const auto started = std::chrono::steady_clock::now();
  const double wait_ms = ms_between(job->enqueued_at, started);
  registry.histogram("server.job.wait_ms")
      .add(static_cast<std::uint64_t>(wait_ms));
  registry.timer("server.queue_wait").add_seconds(wait_ms / 1e3);

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (lane.generation != my_generation) return false;
    lane.current = job;
    lane.run_started = started;
    lane.seen_beat = job->heartbeat.load(std::memory_order_relaxed);
    lane.beat_seen_at = started;
    lane.cancel_fired = false;
    lane.state.store(static_cast<std::uint8_t>(LaneState::Running),
                     std::memory_order_relaxed);
  }

  JobResult result;
  bool crashed = false;
  bool poisoned = false;
  try {
    // The lane-crash failpoint sits OUTSIDE the job try below: an armed
    // fault here simulates the executor itself dying before the job ran,
    // which must surface to the client as a dropped connection (transient,
    // retryable), never as a job-level ErrorResponse.  Unkeyed on purpose:
    // each retry of the same spec rolls a fresh prob() decision.
    SVA_FAILPOINT("server.lane.run");
  } catch (const std::exception& e) {
    crashed = true;
    poisoned = true;
    result.lane_crashed = true;
    result.exit_code = kExitFatal;
    result.error = e.what();
  }
  if (!crashed && !job->delivered.load(std::memory_order_acquire)) {
    ScopedTimer exec_timer(registry.timer("server.job_exec"));
    try {
      result = job->work();
    } catch (const CancelledError&) {
      // The job observed its tripped token (deadline, client disconnect,
      // or the watchdog) and wound down cooperatively.
      poisoned = true;
      result = JobResult{};
      result.exit_code = kExitCancelled;
      result.cancelled = true;
      result.cancel_reason = static_cast<std::uint8_t>(job->cancel->reason());
    } catch (const std::exception& e) {
      // Anything escaping the job harness poisons the lane: the job is
      // answered with an error and the lane thread is recycled so latent
      // state damage cannot leak into the next job.
      poisoned = true;
      result = JobResult{};
      result.exit_code = kExitFatal;
      result.error = e.what();
    }
  }
  registry.histogram("server.job.run_ms")
      .add(static_cast<std::uint64_t>(
          ms_between(started, std::chrono::steady_clock::now())));

  if (!crashed) {
    if (!result.error.empty())
      counter("server.jobs_failed").add();
    else if (result.cancelled)
      counter("server.jobs_cancelled").add();
    else
      counter("server.jobs_completed").add();
  }
  job->deliver(std::move(result));

  bool stale = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stale = lane.generation != my_generation;
    if (!stale && lane.current == job) {
      lane.current = nullptr;
      lane.state.store(static_cast<std::uint8_t>(LaneState::Idle),
                       std::memory_order_relaxed);
    }
    if (!stale && poisoned) {
      counter("server.lane.poisoned").add();
      recycle_locked(lane);
    }
  }
  return !stale && !poisoned;
}

void LanePool::recycle_locked(Lane& lane) {
  lane.generation += 1;
  const std::uint64_t next_generation = lane.generation;
  // Moving the handle is safe even when the retiring thread is the caller:
  // the handle is bookkeeping, not the execution.  Every retired thread
  // terminates -- injected delays are finite and a stale generation exits
  // at its next check -- so the drain-time join below cannot hang.
  if (lane.thread.joinable()) retired_.push_back(std::move(lane.thread));
  lane.thread = std::thread([this, index = lane.index, next_generation] {
    lane_loop(index, next_generation);
  });
  counter("server.lane.recycled").add();
}

void LanePool::watchdog_loop() {
  while (!watchdog_stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(kWatchdogTick);
    try {
      SVA_FAILPOINT("server.watchdog.tick");
    } catch (const std::exception&) {
      // An injected fault skips this scan; it must never kill the
      // watchdog itself (the prober must stay more reliable than the
      // probed).
      counter("server.watchdog.tick_faults").add();
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    std::vector<std::shared_ptr<ServerJob>> wedged;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& lane_ptr : lanes_) {
        Lane& lane = *lane_ptr;
        if (!lane.current) continue;
        const std::shared_ptr<ServerJob>& job = lane.current;
        const std::uint64_t beat =
            job->heartbeat.load(std::memory_order_relaxed);
        if (beat != lane.seen_beat) {
          lane.seen_beat = beat;
          lane.beat_seen_at = now;
          lane.cancel_fired = false;  // progress resets the escalation
          continue;
        }
        if (ms_between(lane.beat_seen_at, now) <
            static_cast<double>(config_.watchdog_stall_ms))
          continue;
        if (!lane.cancel_fired) {
          // First escalation: fire the token so a merely-slow job winds
          // down at its next poll site.  An expired per-job deadline
          // keeps its honest reason; a genuine stall is attributed to
          // the watchdog.
          job->cancel->request_cancel(job->cancel->deadline().expired()
                                          ? CancelReason::Deadline
                                          : CancelReason::Watchdog);
          lane.cancel_fired = true;
          lane.cancel_fired_at = now;
          counter("server.watchdog.cancels").add();
          continue;
        }
        if (ms_between(lane.cancel_fired_at, now) <
            static_cast<double>(config_.watchdog_grace_ms))
          continue;
        // Still no beat after the grace period: the thread is stuck
        // between poll sites.  Answer the client, abandon the thread to
        // finish into a stale generation, hand the queue to a fresh one.
        lane.state.store(static_cast<std::uint8_t>(LaneState::Wedged),
                         std::memory_order_relaxed);
        counter("server.lane.wedged").add();
        counter("server.lane.poisoned").add();
        wedged.push_back(lane.current);
        lane.current = nullptr;
        recycle_locked(lane);
      }
    }
    for (auto& job : wedged) {
      JobResult result;
      result.exit_code = kExitCancelled;
      result.cancelled = true;
      result.cancel_reason = static_cast<std::uint8_t>(job->cancel->reason());
      result.output = std::string("run cancelled (") +
                      cancel_reason_name(job->cancel->reason()) +
                      "): lane wedged, recycled\n";
      if (job->deliver(std::move(result)))
        counter("server.jobs_cancelled").add();
    }
  }
}

void LanePool::close_and_drain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || drained_) return;
    drained_ = true;
  }
  draining_.store(true, std::memory_order_release);
  for (auto& lane : lanes_) lane->queue->close();
  // Join every generation of every lane.  A lane can still recycle during
  // the drain (a poisoned or wedged lane respawns so its remaining queued
  // jobs reach their clients), so sweep until no joinable handle is left.
  while (true) {
    std::vector<std::thread> to_join;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& lane : lanes_)
        if (lane->thread.joinable()) to_join.push_back(std::move(lane->thread));
      for (auto& thread : retired_)
        if (thread.joinable()) to_join.push_back(std::move(thread));
      retired_.clear();
    }
    if (to_join.empty()) break;
    for (auto& thread : to_join) thread.join();
  }
  // The watchdog is stopped last so a lane wedged mid-drain still gets
  // its client answered and its queue handed to a replacement.
  watchdog_stop_.store(true, std::memory_order_release);
  if (watchdog_.joinable()) watchdog_.join();
  // A final sweep: the watchdog may have recycled between our last check
  // and its stop (the replacement exits immediately on the closed queue).
  while (true) {
    std::vector<std::thread> to_join;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& lane : lanes_)
        if (lane->thread.joinable()) to_join.push_back(std::move(lane->thread));
      for (auto& thread : retired_)
        if (thread.joinable()) to_join.push_back(std::move(thread));
      retired_.clear();
    }
    if (to_join.empty()) break;
    for (auto& thread : to_join) thread.join();
  }
}

}  // namespace sva
