#pragma once
// Server-side result cache keyed by job-spec content hash.
//
// A daemon client that retries an analyze/ssta request -- after a Busy
// rejection, a dropped connection, or a crashed lane -- resubmits the
// exact same canonical spec bytes, so the spec hash makes retries
// idempotent: a job that already completed successfully is answered from
// the cache without re-execution.  Entries are the full JobResult (the
// exact output text and artifact bytes the job produced), so a cache hit
// is bit-identical to a recompute by construction.
//
// Only clean results are stored (exit code 0, no error, not cancelled):
// failures and cancellations must re-execute, both because they are
// cheap and because their outcome can legitimately change.  Optimize
// jobs are never cached -- they mutate artifacts and their cost IS the
// product.  Bounded LRU; every probe counts server.result_cache.hits /
// .misses, every store counts .insertions and (on overflow) .evictions.

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "server/jobs.hpp"

namespace sva {

class ResultCache {
 public:
  /// capacity 0 disables the cache entirely (every probe is a miss and
  /// stores are dropped).
  explicit ResultCache(std::size_t capacity);

  /// Probe by spec hash; a hit refreshes recency and returns a copy.
  std::optional<JobResult> lookup(std::uint64_t spec_hash);

  /// Store a clean result (the caller filters); evicts the least
  /// recently used entry beyond capacity.  Overwrites an existing entry
  /// for the same hash (identical by construction, but refreshes it).
  void insert(std::uint64_t spec_hash, const JobResult& result);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  /// MRU-first recency list; the map points into it.
  std::list<std::pair<std::uint64_t, JobResult>> lru_;
  std::unordered_map<std::uint64_t, decltype(lru_)::iterator> by_hash_;
};

}  // namespace sva
