#pragma once
// Framed request/response protocol of the `sva serve` daemon.
//
// Every message on the Unix-domain socket is one frame:
//
//   [u32 magic "SVAF"][u32 payload_len][payload]
//
// where the payload is a ByteWriter envelope mirroring the checkpoint
// discipline (util/checkpoint.hpp): protocol version, message type, an
// fnv1a64_words checksum of the body, then the length-prefixed body
// bytes.  The byte order is the codec's fixed little-endian, so golden
// frame bytes in the tests are platform-stable.
//
// Malformed input is never undefined behaviour: a bad magic, an
// oversized length, a truncated payload, a checksum mismatch, or an
// unknown type decodes to a ProtocolError carrying a stable ProtoStatus
// code, and the server answers with a structured ErrorResponse (or drops
// the connection when the stream is unframeable) -- the daemon itself
// never dies on client bytes.  A version mismatch is refused explicitly
// (ProtoStatus::VersionMismatch) so old clients get a diagnosable answer
// instead of garbage.
//
// Body codecs for the individual message kinds live here too; the job
// specs they carry are the exact structs the local CLI path executes
// (server/jobs.hpp), which is what makes remote results bit-identical to
// direct runs by construction.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "server/jobs.hpp"
#include "util/error.hpp"
#include "util/serialize.hpp"

namespace sva {

/// Frame magic "SVAF" as a little-endian u32, and the protocol version a
/// server refuses to cross.
inline constexpr std::uint32_t kFrameMagic = 0x46415653u;  // "SVAF" (LE)
/// v1: analyze/optimize/metrics/shutdown/ping.  v2: adds SstaRequest.
/// v3: adds Health request/response and the Busy retry_after_ms hint.
/// v4: adds Batch request/response (N job specs over one connection);
/// the same frames also travel over the TCP transport.
inline constexpr std::uint32_t kProtocolVersion = 4;
/// Hard ceiling on one frame's payload: a corrupt length can neither
/// trigger a huge allocation nor stall the reader.
inline constexpr std::uint64_t kMaxFramePayload = 64ull << 20;  // 64 MiB

/// Stable machine-readable classification of a protocol failure; carried
/// in ErrorResponse.code so clients (and tests) can assert on the cause.
enum class ProtoStatus : std::uint32_t {
  Ok = 0,
  BadMagic = 1,         ///< first 4 bytes are not "SVAF"
  Oversized = 2,        ///< payload length exceeds kMaxFramePayload
  Truncated = 3,        ///< stream ended inside a frame
  VersionMismatch = 4,  ///< envelope version != kProtocolVersion
  BadChecksum = 5,      ///< body does not hash to the envelope checksum
  BadType = 6,          ///< unknown message type
  BadBody = 7,          ///< body failed to decode as its type's schema
  ServerError = 8,      ///< job raised an error server-side
  Busy = 9,             ///< admission control rejected the job
};

const char* proto_status_name(ProtoStatus status);

/// Malformed frame or envelope.  A SerializeError subclass so generic
/// codec handling (tests, retry classification) treats it uniformly,
/// with the ProtoStatus preserved for structured error responses.
class ProtocolError : public SerializeError {
 public:
  ProtocolError(ProtoStatus status, const std::string& what)
      : SerializeError(what), status_(status) {}
  ProtoStatus status() const { return status_; }

 private:
  ProtoStatus status_;
};

/// Message kinds.  Requests are < 64, responses >= 64; the gap leaves
/// room for either side to grow without renumbering.
enum class MsgType : std::uint8_t {
  AnalyzeRequest = 1,
  OptimizeRequest = 2,
  MetricsRequest = 3,
  ShutdownRequest = 4,
  PingRequest = 5,
  SstaRequest = 6,
  HealthRequest = 7,
  BatchRequest = 8,

  ResultResponse = 64,
  BusyResponse = 65,
  ErrorResponse = 66,
  CancelledResponse = 67,
  MetricsResponse = 68,
  ShutdownAck = 69,
  PongResponse = 70,
  HealthResponse = 71,
  BatchResponse = 72,
};

const char* msg_type_name(MsgType type);

/// One decoded frame: the type tag plus the raw body bytes (decoded
/// further by the per-type codecs below).
struct Frame {
  MsgType type = MsgType::PingRequest;
  std::string body;
};

/// Full wire bytes of a frame: magic + length + versioned envelope.
std::string encode_frame(const Frame& frame);

/// Decode the payload that followed a [magic][len] header (the socket
/// layer strips the header).  Throws ProtocolError on a malformed
/// envelope, a checksum mismatch, a version mismatch, or an unknown type.
Frame decode_frame_payload(std::string_view payload);

// --- request bodies ---------------------------------------------------

/// Analyze/optimize requests carry the job spec plus a per-job deadline
/// (0 = none).  The deadline is armed server-side at admission, so queue
/// wait counts against it.
struct AnalyzeRequest {
  AnalyzeJobSpec spec;
  std::uint64_t deadline_ms = 0;
};

struct OptimizeRequest {
  OptimizeJobSpec spec;
  std::uint64_t deadline_ms = 0;
};

struct SstaRequest {
  SstaJobSpec spec;
  std::uint64_t deadline_ms = 0;
};

std::string encode_analyze_request(const AnalyzeRequest& req);
AnalyzeRequest decode_analyze_request(std::string_view body);

std::string encode_optimize_request(const OptimizeRequest& req);
OptimizeRequest decode_optimize_request(std::string_view body);

std::string encode_ssta_request(const SstaRequest& req);
SstaRequest decode_ssta_request(std::string_view body);

// --- batch frames ------------------------------------------------------

/// Ceiling on specs per batch: bounds the admission loop and the
/// response buffer a single frame can demand.
inline constexpr std::uint64_t kMaxBatchItems = 1024;

/// One slot of a BatchRequest: a job-request kind (MsgType as u8) plus
/// that kind's encoded request body, carried opaquely.  The envelope
/// codec deliberately does NOT decode the inner body: the server decodes
/// each slot independently, so a malformed spec poisons only its own
/// slot instead of the whole batch.
struct BatchItem {
  std::uint8_t kind = 0;
  std::string body;
};

struct BatchRequest {
  std::vector<BatchItem> items;
};

std::string encode_batch_request(const BatchRequest& req);
/// Splits the envelope only (count, per-slot kind + raw bytes).  Throws
/// ProtocolError{BadBody} on an empty batch, an implausible or oversized
/// count, or truncated slot framing.
BatchRequest decode_batch_request(std::string_view body);

/// One slot of a BatchResponse: the exact {type, body} of the frame a
/// single-spec connection would have received for that slot's request --
/// this is what makes batch results byte-identical to N separate
/// connections by construction.
struct BatchSlot {
  MsgType type = MsgType::ErrorResponse;
  std::string body;
};

struct BatchResponse {
  std::vector<BatchSlot> slots;  ///< in submission order
};

std::string encode_batch_response(const BatchResponse& resp);
/// Throws ProtocolError{BadBody} when a slot's type is not a per-job
/// response kind (Result/Busy/Error/Cancelled) or the framing is short.
BatchResponse decode_batch_response(std::string_view body);

// --- canonical spec identity ------------------------------------------

/// Canonical content bytes of a job spec: a message-type tag followed by
/// exactly the fields that shape the result -- no deadline, no local-only
/// checkpoint paths.  Two requests with equal canonical bytes are the
/// same job, whatever their deadlines; the FNV hash over them drives
/// both the deterministic job->lane binding and the result-cache key.
std::string canonical_spec_bytes(const AnalyzeJobSpec& spec);
std::string canonical_spec_bytes(const OptimizeJobSpec& spec);
std::string canonical_spec_bytes(const SstaJobSpec& spec);

/// fnv1a64_words over canonical_spec_bytes(spec).
std::uint64_t job_spec_hash(const AnalyzeJobSpec& spec);
std::uint64_t job_spec_hash(const OptimizeJobSpec& spec);
std::uint64_t job_spec_hash(const SstaJobSpec& spec);

// --- response bodies --------------------------------------------------

/// A finished job: the exact stdout text and artifact bytes the direct
/// CLI run would have produced, plus its exit code.
std::string encode_result_response(const JobResult& result);
JobResult decode_result_response(std::string_view body);

/// Admission control rejection: the queue was full.  retry_after_ms is
/// the server's earliest-useful-retry estimate (queued backlog times the
/// recent mean job time; 0 = no estimate), monotone in queue depth.
struct BusyResponse {
  std::uint64_t queue_depth = 0;
  std::uint64_t max_depth = 0;
  std::uint64_t retry_after_ms = 0;
};
std::string encode_busy_response(const BusyResponse& busy);
BusyResponse decode_busy_response(std::string_view body);

/// Structured failure: a protocol fault or a server-side job error.
struct ErrorResponse {
  ProtoStatus code = ProtoStatus::ServerError;
  std::string message;
};
std::string encode_error_response(const ErrorResponse& err);
ErrorResponse decode_error_response(std::string_view body);

/// The job was cancelled (deadline, client disconnect, or server
/// shutdown); `output` is the same wind-down text a direct run prints.
struct CancelledResponse {
  std::uint8_t reason = 0;  ///< CancelReason as u8
  std::string output;
};
std::string encode_cancelled_response(const CancelledResponse& c);
CancelledResponse decode_cancelled_response(std::string_view body);

/// Server-wide metrics snapshot, both human-rendered and JSON.
struct MetricsResponse {
  std::string rendered;
  std::string json;
};
std::string encode_metrics_response(const MetricsResponse& m);
MetricsResponse decode_metrics_response(std::string_view body);

/// Liveness snapshot for `sva ping`: answered inline (never queued), so
/// a response proves the accept loop and the protocol path are healthy
/// even while every lane is busy.
struct HealthResponse {
  std::uint64_t uptime_ms = 0;
  std::uint64_t queue_depth = 0;     ///< jobs currently queued (all lanes)
  std::uint64_t queue_capacity = 0;  ///< admission bound
  std::uint64_t jobs_served = 0;     ///< results delivered since start
  std::uint64_t lanes_poisoned = 0;  ///< lane recycles since start
  /// One LaneState byte per lane (0 idle, 1 running, 2 wedged).
  std::string lane_states;
};
std::string encode_health_response(const HealthResponse& h);
HealthResponse decode_health_response(std::string_view body);

}  // namespace sva
