#include "server/result_cache.hpp"

#include "util/metrics.hpp"

namespace sva {

namespace {
Counter& counter(const char* name) {
  return MetricsRegistry::global().counter(name);
}
}  // namespace

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {}

std::optional<JobResult> ResultCache::lookup(std::uint64_t spec_hash) {
  if (capacity_ == 0) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_hash_.find(spec_hash);
  if (it == by_hash_.end()) {
    counter("server.result_cache.misses").add();
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  counter("server.result_cache.hits").add();
  return it->second->second;
}

void ResultCache::insert(std::uint64_t spec_hash, const JobResult& result) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_hash_.find(spec_hash);
  if (it != by_hash_.end()) {
    it->second->second = result;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(spec_hash, result);
  by_hash_[spec_hash] = lru_.begin();
  counter("server.result_cache.insertions").add();
  while (lru_.size() > capacity_) {
    by_hash_.erase(lru_.back().first);
    lru_.pop_back();
    counter("server.result_cache.evictions").add();
  }
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace sva
