#include "cell/characterize.hpp"

#include <set>

#include "util/error.hpp"

namespace sva {

const CharacterizedArc& CharacterizedCell::arc_for(
    const std::string& input_pin) const {
  for (const auto& ca : arcs)
    if (master.arcs()[ca.arc_index].input == input_pin) return ca;
  throw PreconditionError("cell " + master.name() + " has no arc from pin " +
                          input_pin);
}

const CharacterizedCell& CharacterizedLibrary::cell(std::size_t index) const {
  SVA_REQUIRE(index < cells.size());
  return cells[index];
}

std::vector<double> default_slew_axis() {
  return {5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0};
}

std::vector<double> default_load_axis() {
  return {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0};
}

double arc_drive_resistance(const CellMaster& master, const TimingArc& arc,
                            const ElectricalTech& et) {
  SVA_REQUIRE(!arc.device_indices.empty());
  double w_sum = 0.0;
  for (std::size_t di : arc.device_indices)
    w_sum += master.devices()[di].width;
  const double w_avg = w_sum / static_cast<double>(arc.device_indices.size());
  std::set<std::string> inputs;
  for (const Pin& p : master.pins())
    if (!p.is_output) inputs.insert(p.name);
  const double stack =
      1.0 + 0.35 * (static_cast<double>(inputs.size()) - 1.0);
  return et.r_unit_kohm * (et.w_unit / w_avg) * stack;
}

double cell_parasitic_cap(const CellMaster& master,
                          const ElectricalTech& et) {
  double w_total = 0.0;
  for (const Device& d : master.devices()) w_total += d.width;
  return et.c_parasitic_ff + et.c_par_per_um * w_total / 1000.0;
}

double pin_input_cap(const CellMaster& master, const std::string& pin,
                     const ElectricalTech& et) {
  double w = 0.0;
  for (const Device& d : master.devices())
    if (d.input_pin == pin) w += d.width;
  return et.c_gate_ff * w / et.w_unit;
}

CharacterizedCell characterize_cell(const CellMaster& master,
                                    const ElectricalTech& et) {
  CharacterizedCell out{master, {}};
  // Fill pin input caps.
  for (Pin& p : out.master.pins())
    if (!p.is_output) p.input_cap_ff = pin_input_cap(master, p.name, et);

  const auto slew_axis = default_slew_axis();
  const auto load_axis = default_load_axis();
  const double c_par = cell_parasitic_cap(master, et);

  for (std::size_t ai = 0; ai < master.arcs().size(); ++ai) {
    const TimingArc& arc = master.arcs()[ai];
    const double r = arc_drive_resistance(master, arc, et);
    out.master.arcs()[ai].drive_resistance_kohm = r;

    std::vector<double> delay_values;
    std::vector<double> slew_values;
    delay_values.reserve(slew_axis.size() * load_axis.size());
    slew_values.reserve(slew_axis.size() * load_axis.size());
    for (double s : slew_axis)
      for (double c : load_axis) {
        delay_values.push_back(et.t_intrinsic_ps +
                               0.69 * r * (c + c_par) +
                               et.slew_sensitivity * s);
        slew_values.push_back(et.slew_floor_ps +
                              et.slew_gain * r * (c + c_par) + 0.1 * s);
      }
    out.arcs.push_back(
        {ai, NldmTable(LookupTable2D(slew_axis, load_axis, delay_values),
                       LookupTable2D(slew_axis, load_axis,
                                     std::move(slew_values)))});
  }
  return out;
}

CellMaster scale_device_widths(const CellMaster& master, double width_factor,
                               const std::string& variant_name) {
  SVA_REQUIRE_MSG(width_factor > 0.0, "width factor must be positive");
  CellMaster out(variant_name, master.width(), master.tech());
  for (const Pin& p : master.pins()) out.add_pin(p.name, p.is_output);
  for (const PolyGate& g : master.gates()) out.add_gate(g.x_center, g.length);
  for (const Rect& s : master.poly_stubs()) out.add_poly_stub(s);
  for (const Device& d : master.devices())
    out.add_device(d.name, d.type, d.gate_index, d.width * width_factor,
                   d.input_pin);
  for (const TimingArc& a : master.arcs())
    out.add_arc(a.input, a.output, a.device_indices);
  out.validate();
  return out;
}

CharacterizedLibrary characterize_library(const CellLibrary& library,
                                          const ElectricalTech& et) {
  CharacterizedLibrary out;
  out.electrical = et;
  out.cells.reserve(library.size());
  for (const CellMaster& m : library.masters())
    out.cells.push_back(characterize_cell(m, et));
  return out;
}

}  // namespace sva
