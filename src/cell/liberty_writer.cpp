#include "cell/liberty_writer.hpp"

#include <functional>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace sva {
namespace {

std::string index_list(const std::vector<double>& axis) {
  std::vector<std::string> parts;
  parts.reserve(axis.size());
  for (double v : axis) parts.push_back(fmt(v, 3));
  return join(parts, ", ");
}

std::string table_values(const LookupTable2D& table) {
  // Liberty rows iterate variable_1 (input slew); columns variable_2
  // (load) -- matching our row-major (slew x load) storage.
  std::string out;
  for (std::size_t i = 0; i < table.nx(); ++i) {
    out += "        \"";
    for (std::size_t j = 0; j < table.ny(); ++j) {
      if (j) out += ", ";
      out += fmt(table.value_at(i, j), 4);
    }
    out += "\"";
    if (i + 1 < table.nx()) out += ", \\";
    out += "\n";
  }
  return out;
}

void emit_template(std::string& out, const NldmTable& sample) {
  out += "  lu_table_template (delay_template) {\n";
  out += "    variable_1 : input_net_transition;\n";
  out += "    variable_2 : total_output_net_capacitance;\n";
  out += "    index_1 (\"" + index_list(sample.delay_table().x_axis()) +
         "\");\n";
  out += "    index_2 (\"" + index_list(sample.delay_table().y_axis()) +
         "\");\n";
  out += "  }\n";
}

void emit_cell(std::string& out, const CharacterizedCell& cell,
               const std::string& cell_name,
               const std::function<double(std::size_t)>& arc_scale) {
  const CellMaster& master = cell.master;
  out += "  cell (" + cell_name + ") {\n";
  out += "    area : " +
         fmt(master.width() * master.tech().cell_height * 1e-6, 4) + ";\n";
  for (const Pin& pin : master.pins()) {
    if (pin.is_output) continue;
    out += "    pin (" + pin.name + ") {\n";
    out += "      direction : input;\n";
    out += "      capacitance : " + fmt(pin.input_cap_ff, 4) + ";\n";
    out += "    }\n";
  }
  out += "    pin (Y) {\n";
  out += "      direction : output;\n";
  for (const CharacterizedArc& arc : cell.arcs) {
    const TimingArc& master_arc = master.arcs()[arc.arc_index];
    const NldmTable scaled = arc.nldm.scaled(arc_scale(arc.arc_index));
    out += "      timing () {\n";
    out += "        related_pin : \"" + master_arc.input + "\";\n";
    out += "        timing_sense : negative_unate;\n";
    for (const char* kind : {"cell_rise", "cell_fall"}) {
      out += std::string("        ") + kind + " (delay_template) {\n";
      out += "          values ( \\\n" + table_values(scaled.delay_table());
      out += "          );\n        }\n";
    }
    for (const char* kind : {"rise_transition", "fall_transition"}) {
      out += std::string("        ") + kind + " (delay_template) {\n";
      out += "          values ( \\\n" + table_values(scaled.slew_table());
      out += "          );\n        }\n";
    }
    out += "      }\n";
  }
  out += "    }\n";
  out += "  }\n";
}

std::string header(const std::string& library_name,
                   const CharacterizedLibrary& library) {
  SVA_REQUIRE(!library.cells.empty());
  SVA_REQUIRE(!library.cells.front().arcs.empty());
  std::string out = "library (" + library_name + ") {\n";
  out += "  delay_model : table_lookup;\n";
  out += "  time_unit : \"1ps\";\n";
  out += "  capacitive_load_unit (1, ff);\n";
  out += "  voltage_unit : \"1V\";\n";
  out += "  current_unit : \"1mA\";\n";
  emit_template(out, library.cells.front().arcs.front().nldm);
  return out;
}

}  // namespace

std::string version_suffix(const VersionKey& key) {
  return "_v" + std::to_string(key.lt) + std::to_string(key.rt) +
         std::to_string(key.lb) + std::to_string(key.rb);
}

std::string to_liberty(const CharacterizedLibrary& library,
                       const std::string& library_name) {
  std::string out = header(library_name, library);
  for (const CharacterizedCell& cell : library.cells)
    emit_cell(out, cell, cell.master.name(),
              [](std::size_t) { return 1.0; });
  out += "}\n";
  return out;
}

std::string to_liberty_expanded(const CharacterizedLibrary& library,
                                const ContextLibrary& context,
                                const std::string& library_name) {
  std::string out = header(library_name, library);
  const std::size_t bins = context.bins().count();
  for (std::size_t ci = 0; ci < library.cells.size(); ++ci) {
    const CharacterizedCell& cell = library.cells[ci];
    for (std::size_t vi = 0; vi < context.bins().version_count(); ++vi) {
      const VersionKey key = version_key(vi, bins);
      emit_cell(out, cell, cell.master.name() + version_suffix(key),
                [&](std::size_t arc) {
                  return context.arc_delay_scale(ci, key, arc);
                });
    }
  }
  out += "}\n";
  return out;
}

}  // namespace sva
