#pragma once
// Standard-cell masters: layout geometry + devices + pins + timing arcs.
//
// A master owns a list of vertical poly gate stripes; a Device is the part
// of one stripe crossing the NMOS or PMOS diffusion.  Timing arcs connect
// an input pin to the output pin and name the devices involved in the
// worst-case transition -- the devices whose printed gate length scales the
// arc's delay in the paper's linear model (Sec. 3.1.2).

#include <string>
#include <vector>

#include "cell/tech.hpp"
#include "geom/layout.hpp"
#include "util/units.hpp"

namespace sva {

enum class DeviceType { Nmos, Pmos };

/// One transistor: the intersection of a poly gate stripe with a
/// diffusion strip.
struct Device {
  std::string name;            ///< e.g. "MP0", "MN1"
  DeviceType type = DeviceType::Nmos;
  std::size_t gate_index = 0;  ///< which poly stripe forms this gate
  Nm width = 0.0;              ///< device width (diffusion overlap, nm)
  std::string input_pin;       ///< pin driving this gate
};

/// A vertical poly stripe (the gate layer feature whose CD varies).
struct PolyGate {
  Nm x_center = 0.0;  ///< centre within the cell (cell origin at x = 0)
  Nm length = 0.0;    ///< drawn gate length (x extent)

  Nm x_lo() const { return x_center - length / 2.0; }
  Nm x_hi() const { return x_center + length / 2.0; }
};

struct Pin {
  std::string name;
  bool is_output = false;
  double input_cap_ff = 0.0;  ///< filled by the characterizer for inputs
};

/// Timing arc input -> output.  All library cells here are inverting
/// (negative-unate) static CMOS gates.
struct TimingArc {
  std::string input;
  std::string output;
  std::vector<std::size_t> device_indices;  ///< devices in the transition
  double drive_resistance_kohm = 0.0;  ///< filled by the characterizer
};

class CellMaster {
 public:
  CellMaster(std::string name, Nm width, CellTech tech);

  const std::string& name() const { return name_; }
  Nm width() const { return width_; }
  const CellTech& tech() const { return tech_; }

  /// Add a gate stripe; returns its index.
  std::size_t add_gate(Nm x_center, Nm length);

  /// Add non-gate poly (landing pads, routing stubs).  Stubs print like
  /// any poly feature and therefore participate in proximity: a stub near
  /// the cell boundary makes the top and bottom neighbour spacings of the
  /// adjacent cell differ, exactly the misalignment the paper's four
  /// separate nps_LT/RT/LB/RB parameters exist for.
  void add_poly_stub(const Rect& rect);
  /// Add a device on an existing gate; returns its index.
  std::size_t add_device(const std::string& name, DeviceType type,
                         std::size_t gate_index, Nm width,
                         const std::string& input_pin);
  void add_pin(const std::string& name, bool is_output);
  void add_arc(const std::string& input, const std::string& output,
               std::vector<std::size_t> device_indices);

  const std::vector<PolyGate>& gates() const { return gates_; }
  const std::vector<Rect>& poly_stubs() const { return stubs_; }
  const std::vector<Device>& devices() const { return devices_; }
  const std::vector<Pin>& pins() const { return pins_; }
  std::vector<Pin>& pins() { return pins_; }
  const std::vector<TimingArc>& arcs() const { return arcs_; }
  std::vector<TimingArc>& arcs() { return arcs_; }

  const Pin& pin(const std::string& name) const;
  Pin& pin(const std::string& name);

  /// Geometric gate rectangle of a device (gate stripe clipped to its
  /// diffusion strip).
  Rect device_gate_rect(std::size_t device_index) const;

  /// Full-height rectangle of a poly stripe.
  Rect gate_rect(std::size_t gate_index) const;

  /// Flat layout of the master (poly stripes + diffusion strips), origin
  /// at the cell's lower-left corner.
  Layout layout() const;

  /// Index of the left-most / right-most gate stripe.
  std::size_t leftmost_gate() const;
  std::size_t rightmost_gate() const;

  /// Distance from a device's gate edge to the cell outline on the given
  /// side (the paper's s_LT / s_LB / s_RT / s_RB, Sec. 3.1.3).
  Nm edge_clearance(std::size_t device_index, bool left_side) const;

  /// True if the device sits on the left-most or right-most gate stripe
  /// (a "boundary device" whose printing depends on the neighbour cell).
  bool is_boundary_device(std::size_t device_index) const;

  /// Validate invariants: gates inside the cell, ordered, non-overlapping;
  /// every device references a valid gate and pin; every arc references
  /// valid pins/devices.  Throws on violation.
  void validate() const;

 private:
  std::string name_;
  Nm width_;
  CellTech tech_;
  std::vector<PolyGate> gates_;
  std::vector<Rect> stubs_;
  std::vector<Device> devices_;
  std::vector<Pin> pins_;
  std::vector<TimingArc> arcs_;
};

}  // namespace sva
