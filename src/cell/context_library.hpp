#pragma once
// Context-expanded timing library: the paper's "81 versions of each cell".
//
// A placed cell's printing environment is summarized by four neighbour
// poly spacings -- nps_LT, nps_RT, nps_LB, nps_RB (Fig. 4) -- each binned
// into a small number of bins (3 by default, giving 3^4 = 81 versions).
// For every version:
//
//   * interior devices keep the printed CD measured by library-based OPC
//     in the dummy environment (placement-independent within the ROI);
//   * boundary devices (left-most / right-most gate stripe) get their CD
//     from the post-OPC pitch->CD lookup table, evaluated at the bin's
//     representative spacing on the outside and the geometric spacing on
//     the inside.
//
// The paper uses the *lower* bin extreme as the representative "to be
// pessimistic in our timing estimates" (dense prints larger -> slower).

#include <array>
#include <cstdint>
#include <mutex>
#include <vector>

#include "cell/characterize.hpp"
#include "cell/library.hpp"
#include "cell/library_opc.hpp"
#include "litho/cd_model.hpp"

namespace sva {

/// Binning scheme for neighbour poly spacings.
class ContextBins {
 public:
  /// Default: the paper's three bins with representatives at the lower
  /// extremes {300, 400, 600} nm and edges at 400/600 nm.
  ContextBins();

  /// Custom scheme: `upper_edges` are the exclusive upper bounds of all
  /// bins but the last (strictly increasing); `representatives` has one
  /// spacing per bin (= upper_edges.size() + 1 entries).
  ContextBins(std::vector<Nm> upper_edges, std::vector<Nm> representatives);

  std::size_t count() const { return representatives_.size(); }
  std::size_t bin_of(Nm spacing) const;
  Nm representative(std::size_t bin) const;

  const std::vector<Nm>& upper_edges() const { return upper_edges_; }
  const std::vector<Nm>& representatives() const { return representatives_; }

  /// Number of cell versions the scheme induces (count^4).
  std::size_t version_count() const;

 private:
  std::vector<Nm> upper_edges_;
  std::vector<Nm> representatives_;
};

/// One cell version: bin index per corner spacing.
struct VersionKey {
  std::uint8_t lt = 0;  ///< left-top (PMOS side) neighbour spacing bin
  std::uint8_t rt = 0;  ///< right-top
  std::uint8_t lb = 0;  ///< left-bottom (NMOS side)
  std::uint8_t rb = 0;  ///< right-bottom

  friend bool operator==(const VersionKey&, const VersionKey&) = default;
};

/// Flatten / unflatten version keys given a bin count.
std::size_t version_index(const VersionKey& key, std::size_t bins);
VersionKey version_key(std::size_t index, std::size_t bins);

/// Effective printing context of one device in one version: the clear
/// spacings to the nearest poly on each side (already resolved through
/// bins for boundary devices; geometric for interior ones).
struct DeviceContext {
  Nm s_left = 0.0;
  Nm s_right = 0.0;
};

class ContextLibrary {
 public:
  /// `characterized` and `boundary_model` must outlive the ContextLibrary.
  /// `library_opc_cds` is index-aligned with the characterized cells.
  ContextLibrary(const CharacterizedLibrary& characterized,
                 std::vector<LibraryOpcCellResult> library_opc_cds,
                 const CdModel& boundary_model, ContextBins bins);

  const ContextBins& bins() const { return bins_; }
  const CharacterizedLibrary& characterized() const { return *characterized_; }

  /// Spacings seen by a device in a given version (boundary sides resolved
  /// through the bin representatives).
  DeviceContext device_context(std::size_t cell, const VersionKey& version,
                               std::size_t device) const;

  /// Spacings seen by a device given *measured* outside spacings (the raw
  /// nps values before binning).  Used when labeling devices from the
  /// physical layout, as the paper does in Sec. 3.2, and by the
  /// exposure-dose analysis where small continuous spacing shifts matter.
  /// `outside_left`/`outside_right` are ignored for non-boundary sides.
  DeviceContext device_context_measured(std::size_t cell, std::size_t device,
                                        Nm outside_left,
                                        Nm outside_right) const;

  /// Printed gate length of a device in a given version (nm).
  Nm device_printed_cd(std::size_t cell, const VersionKey& version,
                       std::size_t device) const;

  /// Effective gate length of an arc = mean printed CD of its devices
  /// (paper: simple averaging; delay varies ~linearly with gate length).
  Nm arc_effective_length(std::size_t cell, const VersionKey& version,
                          std::size_t arc) const;

  /// Delay scale factor of an arc in a version: L_eff / L_drawn.
  double arc_delay_scale(std::size_t cell, const VersionKey& version,
                         std::size_t arc) const;

  /// Library-OPC printed CD of a device in the dummy environment (the
  /// version-independent part).
  Nm interior_cd(std::size_t cell, std::size_t device) const;

  /// FNV-1a digest of everything the per-(cell, version) characterization
  /// depends on: the binning config, every master's geometry and arc
  /// structure, the library-OPC printed CDs, and the boundary CD model
  /// (captured by sampling it over the spacing range of interest).  Two
  /// ContextLibrary instances with equal hashes produce bit-identical
  /// version expansions, so this is the invalidation key of the persistent
  /// on-disk context cache.  Computed once (the inputs are immutable) and
  /// memoized; safe to call concurrently.
  std::uint64_t content_hash() const;

 private:
  struct DeviceGeometry {
    bool boundary_left = false;
    bool boundary_right = false;
    Nm internal_left = 0.0;   ///< spacing to next gate inside the cell
    Nm internal_right = 0.0;  ///< (radius of influence if none)
  };

  std::uint64_t compute_content_hash() const;

  const CharacterizedLibrary* characterized_;
  mutable std::once_flag hash_once_;
  mutable std::uint64_t hash_value_ = 0;
  std::vector<LibraryOpcCellResult> library_opc_;
  const CdModel* boundary_model_;
  ContextBins bins_;
  std::vector<std::vector<DeviceGeometry>> geometry_;  // [cell][device]
};

}  // namespace sva
