#include "cell/nldm.hpp"

#include "util/error.hpp"

namespace sva {

NldmTable::NldmTable(LookupTable2D delay, LookupTable2D output_slew)
    : delay_(std::move(delay)), slew_(std::move(output_slew)) {
  SVA_REQUIRE(delay_.nx() == slew_.nx() && delay_.ny() == slew_.ny());
  SVA_REQUIRE(delay_.nx() >= 2 && delay_.ny() >= 2);
}

NldmTable NldmTable::scaled(double factor) const {
  SVA_REQUIRE(factor > 0.0);
  return NldmTable(delay_.transformed([factor](double v) { return v * factor; }),
                   slew_.transformed([factor](double v) { return v * factor; }));
}

}  // namespace sva
