#include "cell/nldm.hpp"

#include "util/error.hpp"

namespace sva {

NldmTable::NldmTable(LookupTable2D delay, LookupTable2D output_slew)
    : delay_(std::move(delay)), slew_(std::move(output_slew)) {
  SVA_REQUIRE(delay_.nx() == slew_.nx() && delay_.ny() == slew_.ny());
  SVA_REQUIRE(delay_.nx() >= 2 && delay_.ny() >= 2);
}

NldmTable NldmTable::scaled(double factor) const {
  SVA_REQUIRE(factor > 0.0);
  return NldmTable(delay_.transformed([factor](double v) { return v * factor; }),
                   slew_.transformed([factor](double v) { return v * factor; }));
}

void serialize(ByteWriter& w, const NldmTable& t) {
  serialize(w, t.delay_table());
  serialize(w, t.slew_table());
}

NldmTable deserialize_nldm(ByteReader& r) {
  LookupTable2D delay = deserialize_lut2d(r);
  LookupTable2D slew = deserialize_lut2d(r);
  if (delay.x_axis() != slew.x_axis() || delay.y_axis() != slew.y_axis())
    throw SerializeError("corrupt NLDM: delay/slew axes differ");
  if (delay.nx() < 2 || delay.ny() < 2)
    throw SerializeError("corrupt NLDM: grid smaller than 2x2");
  return NldmTable(std::move(delay), std::move(slew));
}

}  // namespace sva
