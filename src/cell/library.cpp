#include "cell/library.hpp"

#include "util/error.hpp"

namespace sva {
namespace {

/// Per-gate entry of a compact master spec.
struct GateSpec {
  Nm x_center;        ///< gate centre within the cell
  const char* pin;    ///< driving input pin
  Nm wp;              ///< PMOS width
  Nm wn;              ///< NMOS width
};

CellMaster make_cell(const char* name, int width_sites,
                     std::initializer_list<GateSpec> gates,
                     std::initializer_list<const char*> input_pins,
                     const CellTech& tech) {
  CellMaster cell(name, width_sites * tech.site_width, tech);
  for (const char* p : input_pins) cell.add_pin(p, /*is_output=*/false);
  cell.add_pin("Y", /*is_output=*/true);

  int index = 0;
  for (const GateSpec& g : gates) {
    const std::size_t gi = cell.add_gate(g.x_center, tech.gate_length);
    cell.add_device("MP" + std::to_string(index), DeviceType::Pmos, gi, g.wp,
                    g.pin);
    cell.add_device("MN" + std::to_string(index), DeviceType::Nmos, gi, g.wn,
                    g.pin);
    ++index;
  }
  // One arc per input pin; the devices in the worst-case transition are
  // the ones gated by that pin (paper Sec. 3.1.2: "devices are fixed for
  // the worst-case transition").
  for (const char* p : input_pins) {
    std::vector<std::size_t> involved;
    for (std::size_t d = 0; d < cell.devices().size(); ++d)
      if (cell.devices()[d].input_pin == p) involved.push_back(d);
    cell.add_arc(p, "Y", std::move(involved));
  }
  cell.validate();
  return cell;
}

}  // namespace

CellLibrary::CellLibrary(std::vector<CellMaster> masters)
    : masters_(std::move(masters)) {
  SVA_REQUIRE(!masters_.empty());
}

const CellMaster& CellLibrary::master(std::size_t index) const {
  SVA_REQUIRE(index < masters_.size());
  return masters_[index];
}

const CellMaster& CellLibrary::by_name(const std::string& name) const {
  return masters_[index_of(name)];
}

std::size_t CellLibrary::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < masters_.size(); ++i)
    if (masters_[i].name() == name) return i;
  throw PreconditionError("library has no cell named " + name);
}

namespace {

/// Boundary poly stubs (landing pads / routing poly) added to some
/// masters.  They de-align the top and bottom neighbour spacings seen by
/// the adjacent cell, populating all four nps_* dimensions in placements.
void add_boundary_stubs(CellLibrary::Masters& masters, const CellTech& tech) {
  // Boundary design rules observed here: every poly feature keeps >= 70 nm
  // clearance from the cell outline (so abutted neighbours are >= 140 nm
  // apart, the minimum spacing that prints without bridging) and stubs
  // keep >= 140 nm to their nearest gate.
  // NOR2: top-left landing pad.
  masters[5].add_poly_stub(
      Rect::make(70.0, tech.pmos_y_lo + 300.0, 160.0, tech.poly_y_hi));
  // NAND3: bottom-left routing stub.
  masters[4].add_poly_stub(Rect::make(
      70.0, tech.poly_y_lo, 160.0, tech.nmos_y_hi - 200.0));
  // OAI21: top-right landing pad.
  masters[8].add_poly_stub(Rect::make(
      masters[8].width() - 160.0, tech.pmos_y_lo + 200.0,
      masters[8].width() - 70.0, tech.poly_y_hi));
}

}  // namespace

CellLibrary build_standard_library(const CellTech& tech) {
  std::vector<CellMaster> masters;

  // Gate x positions encode the intended proximity classes:
  //   pitch 250 (spacing 160)  -> dense (below contacted pitch 340)
  //   pitch 400 (spacing 310)  -> intermediate / self-compensating
  //   pitch 470+ or lone gate  -> isolated
  masters.push_back(make_cell("INV_X1", 3,
                              {{255, "A", 1000, 660}},
                              {"A"}, tech));
  masters.push_back(make_cell("INV_X2", 4,
                              {{225, "A", 1000, 660},
                               {475, "A", 1000, 660}},
                              {"A"}, tech));
  masters.push_back(make_cell("BUF_X1", 5,
                              {{225, "A", 620, 420},
                               {595, "A", 1240, 830}},
                              {"A"}, tech));
  masters.push_back(make_cell("NAND2_X1", 4,
                              {{215, "A", 900, 900},
                               {465, "B", 900, 900}},
                              {"A", "B"}, tech));
  masters.push_back(make_cell("NAND3_X1", 6,
                              {{350, "A", 900, 1200},
                               {600, "B", 900, 1200},
                               {850, "C", 900, 1200}},
                              {"A", "B", "C"}, tech));
  masters.push_back(make_cell("NOR2_X1", 5,
                              {{360, "A", 1400, 660},
                               {620, "B", 1400, 660}},
                              {"A", "B"}, tech));
  masters.push_back(make_cell("NOR3_X1", 5,
                              {{195, "A", 1800, 660},
                               {455, "B", 1800, 660},
                               {715, "C", 1800, 660}},
                              {"A", "B", "C"}, tech));
  masters.push_back(make_cell("AOI21_X1", 6,
                              {{195, "A", 1200, 800},
                               {445, "B", 1200, 800},
                               {845, "C", 1200, 800}},
                              {"A", "B", "C"}, tech));
  masters.push_back(make_cell("OAI21_X1", 7,
                              {{175, "A", 1200, 800},
                               {575, "B", 1200, 800},
                               {825, "C", 1200, 800}},
                              {"A", "B", "C"}, tech));
  masters.push_back(make_cell("XOR2_X1", 8,
                              {{275, "A", 1000, 700},
                               {525, "B", 1000, 700},
                               {995, "A", 1000, 700},
                               {1245, "B", 1000, 700}},
                              {"A", "B"}, tech));
  add_boundary_stubs(masters, tech);
  return CellLibrary(std::move(masters));
}

}  // namespace sva
