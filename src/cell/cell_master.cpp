#include "cell/cell_master.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace sva {

CellMaster::CellMaster(std::string name, Nm width, CellTech tech)
    : name_(std::move(name)), width_(width), tech_(tech) {
  SVA_REQUIRE(width_ > 0.0);
  SVA_REQUIRE(!name_.empty());
}

std::size_t CellMaster::add_gate(Nm x_center, Nm length) {
  SVA_REQUIRE(length > 0.0);
  gates_.push_back({x_center, length});
  return gates_.size() - 1;
}

void CellMaster::add_poly_stub(const Rect& rect) {
  SVA_REQUIRE(rect.width() > 0.0 && rect.height() > 0.0);
  stubs_.push_back(rect);
}

std::size_t CellMaster::add_device(const std::string& name, DeviceType type,
                                   std::size_t gate_index, Nm width,
                                   const std::string& input_pin) {
  SVA_REQUIRE(gate_index < gates_.size());
  SVA_REQUIRE(width > 0.0);
  devices_.push_back({name, type, gate_index, width, input_pin});
  return devices_.size() - 1;
}

void CellMaster::add_pin(const std::string& name, bool is_output) {
  pins_.push_back({name, is_output, 0.0});
}

void CellMaster::add_arc(const std::string& input, const std::string& output,
                         std::vector<std::size_t> device_indices) {
  arcs_.push_back({input, output, std::move(device_indices), 0.0});
}

const Pin& CellMaster::pin(const std::string& name) const {
  for (const Pin& p : pins_)
    if (p.name == name) return p;
  throw PreconditionError("cell " + name_ + " has no pin " + name);
}

Pin& CellMaster::pin(const std::string& name) {
  for (Pin& p : pins_)
    if (p.name == name) return p;
  throw PreconditionError("cell " + name_ + " has no pin " + name);
}

Rect CellMaster::gate_rect(std::size_t gate_index) const {
  SVA_REQUIRE(gate_index < gates_.size());
  const PolyGate& g = gates_[gate_index];
  return Rect::make(g.x_lo(), tech_.poly_y_lo, g.x_hi(), tech_.poly_y_hi);
}

Rect CellMaster::device_gate_rect(std::size_t device_index) const {
  SVA_REQUIRE(device_index < devices_.size());
  const Device& d = devices_[device_index];
  const PolyGate& g = gates_[d.gate_index];
  const Nm y_lo = d.type == DeviceType::Nmos ? tech_.nmos_y_lo
                                             : tech_.pmos_y_lo;
  return Rect::make(g.x_lo(), y_lo, g.x_hi(), y_lo + d.width);
}

Layout CellMaster::layout() const {
  // Shape order matters to callers that tag shapes: gate stripes come
  // first (shape i == gate i), then stubs, then diffusion.
  Layout out;
  for (std::size_t i = 0; i < gates_.size(); ++i)
    out.add(Layer::Poly, gate_rect(i));
  for (const Rect& s : stubs_) out.add(Layer::Poly, s);
  out.add(Layer::Diffusion,
          Rect::make(0.0, tech_.nmos_y_lo, width_, tech_.nmos_y_hi));
  out.add(Layer::Diffusion,
          Rect::make(0.0, tech_.pmos_y_lo, width_, tech_.pmos_y_hi));
  return out;
}

std::size_t CellMaster::leftmost_gate() const {
  SVA_REQUIRE(!gates_.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < gates_.size(); ++i)
    if (gates_[i].x_center < gates_[best].x_center) best = i;
  return best;
}

std::size_t CellMaster::rightmost_gate() const {
  SVA_REQUIRE(!gates_.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < gates_.size(); ++i)
    if (gates_[i].x_center > gates_[best].x_center) best = i;
  return best;
}

Nm CellMaster::edge_clearance(std::size_t device_index, bool left_side) const {
  SVA_REQUIRE(device_index < devices_.size());
  const PolyGate& g = gates_[devices_[device_index].gate_index];
  return left_side ? g.x_lo() : width_ - g.x_hi();
}

bool CellMaster::is_boundary_device(std::size_t device_index) const {
  SVA_REQUIRE(device_index < devices_.size());
  const std::size_t gi = devices_[device_index].gate_index;
  return gi == leftmost_gate() || gi == rightmost_gate();
}

void CellMaster::validate() const {
  SVA_REQUIRE_MSG(!gates_.empty(), "cell must have at least one gate");
  std::vector<PolyGate> sorted = gates_;
  std::sort(sorted.begin(), sorted.end(),
            [](const PolyGate& a, const PolyGate& b) {
              return a.x_center < b.x_center;
            });
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    SVA_REQUIRE_MSG(sorted[i].x_lo() > 0.0 && sorted[i].x_hi() < width_,
                    "gate must lie strictly inside the cell");
    if (i > 0)
      SVA_REQUIRE_MSG(sorted[i].x_lo() > sorted[i - 1].x_hi(),
                      "gates must not overlap");
  }
  bool has_output = false;
  for (const Pin& p : pins_) has_output |= p.is_output;
  SVA_REQUIRE_MSG(has_output, "cell must have an output pin");
  for (const Device& d : devices_) {
    SVA_REQUIRE(d.gate_index < gates_.size());
    pin(d.input_pin);  // throws if missing
  }
  for (const TimingArc& a : arcs_) {
    SVA_REQUIRE_MSG(!pin(a.input).is_output, "arc input must be an input pin");
    SVA_REQUIRE_MSG(pin(a.output).is_output, "arc output must be an output");
    SVA_REQUIRE_MSG(!a.device_indices.empty(),
                    "arc must involve at least one device");
    for (std::size_t di : a.device_indices)
      SVA_REQUIRE(di < devices_.size());
  }
}

}  // namespace sva
