#include "cell/library_opc.hpp"

#include "opc/cutline.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/metrics.hpp"
#include "util/serialize.hpp"

namespace sva {

Layout library_opc_environment(const CellMaster& master,
                               const LibraryOpcConfig& config) {
  SVA_REQUIRE(config.dummy_gap > 0.0);
  Layout env = master.layout();
  const CellTech& tech = master.tech();
  const Nm w = config.dummy_width > 0.0 ? config.dummy_width
                                        : tech.gate_length;
  // Left and right dummy poly, full gate height (Fig. 3: "dummy poly
  // geometries inserted to emulate the impact of neighboring cells").
  env.add(Layer::DummyPoly, Rect::make(-config.dummy_gap - w, tech.poly_y_lo,
                                       -config.dummy_gap, tech.poly_y_hi));
  env.add(Layer::DummyPoly,
          Rect::make(master.width() + config.dummy_gap, tech.poly_y_lo,
                     master.width() + config.dummy_gap + w, tech.poly_y_hi));
  return env;
}

LibraryOpcCellResult library_opc_cell(const CellMaster& master,
                                      const OpcEngine& engine,
                                      const LibraryOpcConfig& config) {
  // Keyed by cell name: a prob() fault degrades the same deterministic
  // subset of masters in every run and on every thread schedule.
  SVA_FAILPOINT_KEYED(
      "opc.cell_solve",
      fnv1a64(master.name().data(), master.name().size()));
  const Layout env = library_opc_environment(master, config);
  // Tag each poly shape with its gate index; the master's layout() emits
  // gates first, so shape i < gates().size() is gate i.
  std::vector<long> tags(env.size(), -1);
  for (std::size_t i = 0; i < master.gates().size(); ++i)
    tags[i] = static_cast<long>(i);

  const CellTech& tech = master.tech();
  const Nm y_n = 0.5 * (tech.nmos_y_lo + tech.nmos_y_hi);
  const Nm y_p = 0.5 * (tech.pmos_y_lo + tech.pmos_y_hi);

  LibraryOpcCellResult result;
  result.device_cd.assign(master.devices().size(), 0.0);
  result.device_mask_width.assign(master.devices().size(), 0.0);

  for (const auto& [y, type] :
       {std::pair{y_n, DeviceType::Nmos}, std::pair{y_p, DeviceType::Pmos}}) {
    const OpcProblem problem = extract_cutline(env, y, tags);
    const OpcResult corrected = engine.correct(problem);
    result.images_simulated += corrected.images_simulated;
    for (std::size_t di = 0; di < master.devices().size(); ++di) {
      const Device& d = master.devices()[di];
      if (d.type != type) continue;
      const auto& line = corrected.by_tag(static_cast<long>(d.gate_index));
      result.device_cd[di] = line.printed_cd;
      result.device_mask_width[di] = line.line.mask_width();
    }
  }
  return result;
}

LibraryOpcCellResult library_opc_fallback(const CellMaster& master) {
  LibraryOpcCellResult result;
  const Nm drawn = master.tech().gate_length;
  result.device_cd.assign(master.devices().size(), drawn);
  result.device_mask_width.assign(master.devices().size(), drawn);
  result.images_simulated = 0;
  result.degraded = true;
  return result;
}

std::vector<LibraryOpcCellResult> library_opc_all(
    const std::vector<CellMaster>& masters, const OpcEngine& engine,
    const LibraryOpcConfig& config, FaultPolicy policy) {
  std::vector<LibraryOpcCellResult> out;
  out.reserve(masters.size());
  for (const CellMaster& m : masters) {
    if (policy == FaultPolicy::Strict) {
      out.push_back(library_opc_cell(m, engine, config));
      continue;
    }
    try {
      out.push_back(library_opc_cell(m, engine, config));
    } catch (const std::exception& e) {
      out.push_back(library_opc_fallback(m));
      MetricsRegistry::global().counter("opc.cells_degraded").add();
      diag_warn("opc", "opc_cell_degraded",
                "cell " + m.name() + " OPC solve failed (" + e.what() +
                    "); using uniform drawn-CD fallback");
    }
  }
  return out;
}

}  // namespace sva
