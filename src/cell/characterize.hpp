#pragma once
// Library characterization: analytic device model -> NLDM tables.
//
// A full SPICE-level characterization is replaced by a first-order RC
// switch model (the paper itself runs with "delay of any timing arc ...
// linearly proportional to the gate lengths of the devices involved",
// Sec. 3.1.2, and notes that circuit-simulation-based analysis is a
// drop-in refinement):
//
//   R_arc   = r_unit * (w_unit / W_avg) * (1 + 0.35 * (n_inputs - 1))
//   delay   = t_intrinsic + 0.69 * R_arc * (C_load + C_par) + k_s * slew_in
//   slew    = slew_floor + slew_gain * R_arc * (C_load + C_par) + 0.1*slew_in
//
// All resistive/intrinsic terms scale linearly with the printed gate
// length; tables are characterized at the drawn length and scaled per
// context version (see context_library.hpp).

#include <vector>

#include "cell/cell_master.hpp"
#include "cell/library.hpp"
#include "cell/nldm.hpp"
#include "cell/tech.hpp"

namespace sva {

/// A characterized timing arc: the master's arc plus its NLDM at the
/// drawn (nominal) gate length.
struct CharacterizedArc {
  std::size_t arc_index = 0;  ///< index into master.arcs()
  NldmTable nldm;
};

/// A characterized cell: pin caps are filled into the master copy held
/// here; arcs are characterized in master order.
struct CharacterizedCell {
  CellMaster master;
  std::vector<CharacterizedArc> arcs;

  const CharacterizedArc& arc_for(const std::string& input_pin) const;
};

/// Characterized library, index-aligned with the source CellLibrary.
struct CharacterizedLibrary {
  std::vector<CharacterizedCell> cells;
  ElectricalTech electrical;

  const CharacterizedCell& cell(std::size_t index) const;
};

/// Standard characterization axes (input slew ps x load fF).
std::vector<double> default_slew_axis();
std::vector<double> default_load_axis();

/// Effective drive resistance of one arc (kOhm).
double arc_drive_resistance(const CellMaster& master, const TimingArc& arc,
                            const ElectricalTech& et);

/// Output parasitic capacitance of a cell (fF).
double cell_parasitic_cap(const CellMaster& master, const ElectricalTech& et);

/// Input capacitance of a pin (fF) at the drawn gate length.
double pin_input_cap(const CellMaster& master, const std::string& pin,
                     const ElectricalTech& et);

/// Characterize one cell (fills pin caps and arc drive resistances in the
/// returned copy of the master).
CharacterizedCell characterize_cell(const CellMaster& master,
                                    const ElectricalTech& et);

/// Derive a drive-strength variant of a master: identical footprint, poly
/// geometry (gate stripes + stubs), pins, and timing arcs, with every
/// device width multiplied by `width_factor`.  Because printing depends
/// only on the poly geometry, a variant shares the base cell's library-OPC
/// CDs, boundary-device behaviour, and context classification; only its
/// electrical characterization (drive resistance, pin and parasitic caps)
/// changes.  This is what makes in-place ECO sizing legal: swapping a
/// gate to a variant never perturbs the placement or any neighbour's
/// printing context.
CellMaster scale_device_widths(const CellMaster& master, double width_factor,
                               const std::string& variant_name);

/// Characterize the whole library.
CharacterizedLibrary characterize_library(const CellLibrary& library,
                                          const ElectricalTech& et = {});

}  // namespace sva
