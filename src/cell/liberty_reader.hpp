#pragma once
// Reader for the Liberty (.lib) dialect this library writes.
//
// Supports the subset `liberty_writer` emits -- library header, one
// lu_table_template, cells with input pins (direction, capacitance) and
// an output pin with timing() groups (related_pin, cell_rise/fall,
// rise/fall_transition value tables).  Used for round-trip validation of
// exported libraries and for importing externally characterized variants
// of the same structure.

#include <string>
#include <vector>

#include "util/interp.hpp"

namespace sva {

struct ParsedLibertyPin {
  std::string name;
  bool is_output = false;
  double capacitance_ff = 0.0;
};

struct ParsedLibertyTiming {
  std::string related_pin;
  LookupTable2D cell_rise;        ///< delay table (ps)
  LookupTable2D rise_transition;  ///< output slew table (ps)
};

struct ParsedLibertyCell {
  std::string name;
  double area = 0.0;
  std::vector<ParsedLibertyPin> pins;
  std::vector<ParsedLibertyTiming> timings;

  const ParsedLibertyPin& pin(const std::string& name) const;
};

struct ParsedLiberty {
  std::string name;
  std::vector<double> slew_axis;  ///< template index_1
  std::vector<double> load_axis;  ///< template index_2
  std::vector<ParsedLibertyCell> cells;

  const ParsedLibertyCell& cell(const std::string& name) const;
};

/// Parse Liberty text; throws sva::Error with context on malformed input.
ParsedLiberty parse_liberty(const std::string& text);

}  // namespace sva
