#pragma once
// Technology constants of the synthetic 90 nm standard-cell library.
//
// Values are representative of a 90 nm-node process as described in the
// paper (gate length 90 nm, 193 nm lithography, contacted pitch used as
// the dense/isolated boundary).  Geometry is in nanometres.

#include "util/units.hpp"

namespace sva {

struct CellTech {
  Nm gate_length = 90.0;        ///< drawn poly gate length (CD)
  Nm cell_height = 2600.0;      ///< standard-cell row height
  Nm site_width = 170.0;        ///< placement site width

  Nm poly_y_lo = 100.0;         ///< gate poly vertical extent
  Nm poly_y_hi = 2500.0;

  Nm nmos_y_lo = 250.0;         ///< NMOS diffusion strip
  Nm nmos_y_hi = 1150.0;
  Nm pmos_y_lo = 1450.0;        ///< PMOS diffusion strip
  Nm pmos_y_hi = 2450.0;

  /// Contacted poly pitch; per the paper, a side with clear spacing below
  /// the contacted pitch is "dense", larger is "isolated" (footnote 5).
  Nm contacted_pitch = 340.0;

  /// Stepper radius of influence (features beyond this do not affect a
  /// gate's printing; paper: ~600 nm for 193 nm steppers).
  Nm radius_of_influence = 600.0;

  /// Height of the NMOS/PMOS strip a device occupies (used to size
  /// default devices when a master spec does not override them).
  Nm nmos_width() const { return nmos_y_hi - nmos_y_lo; }
  Nm pmos_width() const { return pmos_y_hi - pmos_y_lo; }
};

/// Electrical constants for the analytic characterization model.
/// Delay in ps, capacitance in fF, resistance in kOhm (kOhm * fF = ps).
struct ElectricalTech {
  double r_unit_kohm = 4.0;     ///< drive resistance of a 1000 nm device
  Nm w_unit = 1000.0;           ///< reference device width for r_unit
  double c_gate_ff = 1.8;       ///< gate cap of a 1000 nm x L_nom device
  double c_parasitic_ff = 0.8;  ///< fixed output parasitic
  double c_par_per_um = 0.05;   ///< width-dependent output parasitic
  double t_intrinsic_ps = 10.0; ///< fixed intrinsic delay component
  double slew_sensitivity = 0.25;  ///< d(delay)/d(input slew)
  double slew_gain = 1.4;       ///< output slew per R*C
  double slew_floor_ps = 2.0;   ///< minimum output slew
};

}  // namespace sva
