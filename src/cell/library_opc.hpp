#pragma once
// Library-based OPC (paper Sec. 3.1.1, Fig. 3).
//
// Instead of correcting every cell instance in its true placement context
// (full-chip OPC), each library master is corrected once inside an
// emulated "typical placement environment": dummy poly geometries placed
// beside the cell stand in for the neighbouring cells.  Devices away from
// the cell boundary see an environment nearly identical to any real
// placement (the radius of influence is ~600 nm), so their measured
// printed CD transfers; boundary devices are handled separately with the
// pitch->CD lookup table.

#include <vector>

#include "cell/cell_master.hpp"
#include "opc/engine.hpp"
#include "util/diagnostics.hpp"

namespace sva {

struct LibraryOpcConfig {
  /// Clear gap between the cell outline and the dummy poly on each side.
  /// Emulates the typical abutted-neighbour boundary poly distance.
  Nm dummy_gap = 200.0;
  /// Width of the dummy poly lines (drawn gate length by default 0 means
  /// "use the master's gate length").
  Nm dummy_width = 0.0;
};

struct LibraryOpcCellResult {
  /// Printed CD per device (index-aligned with master.devices()); 0 on
  /// print failure.
  std::vector<Nm> device_cd;
  /// Corrected mask width per device.
  std::vector<Nm> device_mask_width;
  std::size_t images_simulated = 0;
  /// True when the per-cell solve failed and this result is the uniform
  /// drawn-CD fallback (see library_opc_fallback): the cell times exactly
  /// like the traditional uniform corner, the same conservative stance
  /// variation-aware flows take when variation data is missing.  Degraded
  /// results are never persisted to the setup snapshot.
  bool degraded = false;
};

/// Build the dummy environment layout for a master: the master's layout
/// plus one full-height dummy line on each side.  Exposed for tests and
/// for the Fig. 3 illustration in the examples.
Layout library_opc_environment(const CellMaster& master,
                               const LibraryOpcConfig& config);

/// Run library OPC on one master.
LibraryOpcCellResult library_opc_cell(const CellMaster& master,
                                      const OpcEngine& engine,
                                      const LibraryOpcConfig& config = {});

/// Degraded stand-in for a failed per-cell solve: every device prints at
/// its drawn CD, so downstream characterization sees the uniform
/// traditional corner for this cell (delay scale 1 at nominal; corner
/// shifts come from the full uniform budget).
LibraryOpcCellResult library_opc_fallback(const CellMaster& master);

/// Run library OPC on every master of a library; results index-aligned
/// with the library.  Under FaultPolicy::Degrade a failing cell solve is
/// isolated: it yields library_opc_fallback(master), a warning diagnostic
/// (code "opc_cell_degraded"), and the "opc.cells_degraded" metric, and
/// the remaining masters still solve.  Under Strict the first failure
/// propagates.
std::vector<LibraryOpcCellResult> library_opc_all(
    const std::vector<CellMaster>& masters, const OpcEngine& engine,
    const LibraryOpcConfig& config = {},
    FaultPolicy policy = FaultPolicy::Strict);

}  // namespace sva
