#pragma once
// Library-based OPC (paper Sec. 3.1.1, Fig. 3).
//
// Instead of correcting every cell instance in its true placement context
// (full-chip OPC), each library master is corrected once inside an
// emulated "typical placement environment": dummy poly geometries placed
// beside the cell stand in for the neighbouring cells.  Devices away from
// the cell boundary see an environment nearly identical to any real
// placement (the radius of influence is ~600 nm), so their measured
// printed CD transfers; boundary devices are handled separately with the
// pitch->CD lookup table.

#include <vector>

#include "cell/cell_master.hpp"
#include "opc/engine.hpp"

namespace sva {

struct LibraryOpcConfig {
  /// Clear gap between the cell outline and the dummy poly on each side.
  /// Emulates the typical abutted-neighbour boundary poly distance.
  Nm dummy_gap = 200.0;
  /// Width of the dummy poly lines (drawn gate length by default 0 means
  /// "use the master's gate length").
  Nm dummy_width = 0.0;
};

struct LibraryOpcCellResult {
  /// Printed CD per device (index-aligned with master.devices()); 0 on
  /// print failure.
  std::vector<Nm> device_cd;
  /// Corrected mask width per device.
  std::vector<Nm> device_mask_width;
  std::size_t images_simulated = 0;
};

/// Build the dummy environment layout for a master: the master's layout
/// plus one full-height dummy line on each side.  Exposed for tests and
/// for the Fig. 3 illustration in the examples.
Layout library_opc_environment(const CellMaster& master,
                               const LibraryOpcConfig& config);

/// Run library OPC on one master.
LibraryOpcCellResult library_opc_cell(const CellMaster& master,
                                      const OpcEngine& engine,
                                      const LibraryOpcConfig& config = {});

/// Run library OPC on every master of a library; results index-aligned
/// with the library.
std::vector<LibraryOpcCellResult> library_opc_all(
    const std::vector<CellMaster>& masters, const OpcEngine& engine,
    const LibraryOpcConfig& config = {});

}  // namespace sva
