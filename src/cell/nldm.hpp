#pragma once
// Non-Linear Delay Model (NLDM) timing tables, Liberty-style.
//
// Each timing arc carries two 2-D tables indexed by (input slew, output
// load): cell delay and output slew.  "We construct timing look up tables
// (with varying load capacitance and input slews)" -- paper Sec. 3.1.2.
// Values are picoseconds; loads are femtofarads.

#include "util/interp.hpp"
#include "util/serialize.hpp"

namespace sva {

class NldmTable {
 public:
  /// Both tables share axes: x = input slew (ps), y = load (fF).
  NldmTable(LookupTable2D delay, LookupTable2D output_slew);

  double delay_ps(double input_slew_ps, double load_ff) const {
    return delay_.at(input_slew_ps, load_ff);
  }
  double output_slew_ps(double input_slew_ps, double load_ff) const {
    return slew_.at(input_slew_ps, load_ff);
  }

  const LookupTable2D& delay_table() const { return delay_; }
  const LookupTable2D& slew_table() const { return slew_; }

  /// Table with every delay/slew value multiplied by `factor`.  This is
  /// how gate-length scaling materializes new library versions: the paper
  /// assumes arc delay is linearly proportional to the involved devices'
  /// gate lengths, so a version at L_eff is the base table scaled by
  /// L_eff / L_nom.
  NldmTable scaled(double factor) const;

 private:
  LookupTable2D delay_;
  LookupTable2D slew_;
};

/// Binary codec (see util/serialize.hpp).  Deserialization re-validates
/// the NldmTable invariants (shared axes, >= 2x2 grid) and reports any
/// violation as SerializeError, so corrupt cache data can never construct
/// a malformed table.
void serialize(ByteWriter& w, const NldmTable& t);
NldmTable deserialize_nldm(ByteReader& r);

}  // namespace sva
