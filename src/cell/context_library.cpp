#include "cell/context_library.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/serialize.hpp"

namespace sva {

ContextBins::ContextBins()
    : ContextBins({400.0, 600.0}, {300.0, 400.0, 600.0}) {}

ContextBins::ContextBins(std::vector<Nm> upper_edges,
                         std::vector<Nm> representatives)
    : upper_edges_(std::move(upper_edges)),
      representatives_(std::move(representatives)) {
  SVA_REQUIRE(representatives_.size() == upper_edges_.size() + 1);
  for (std::size_t i = 1; i < upper_edges_.size(); ++i)
    SVA_REQUIRE_MSG(upper_edges_[i] > upper_edges_[i - 1],
                    "bin edges must be strictly increasing");
  for (Nm r : representatives_) SVA_REQUIRE(r > 0.0);
}

std::size_t ContextBins::bin_of(Nm spacing) const {
  for (std::size_t i = 0; i < upper_edges_.size(); ++i)
    if (spacing < upper_edges_[i]) return i;
  return upper_edges_.size();
}

Nm ContextBins::representative(std::size_t bin) const {
  SVA_REQUIRE(bin < representatives_.size());
  return representatives_[bin];
}

std::size_t ContextBins::version_count() const {
  const std::size_t b = count();
  return b * b * b * b;
}

std::size_t version_index(const VersionKey& key, std::size_t bins) {
  SVA_REQUIRE(key.lt < bins && key.rt < bins && key.lb < bins &&
              key.rb < bins);
  return ((static_cast<std::size_t>(key.lt) * bins + key.rt) * bins +
          key.lb) *
             bins +
         key.rb;
}

VersionKey version_key(std::size_t index, std::size_t bins) {
  SVA_REQUIRE(bins > 0 && index < bins * bins * bins * bins);
  VersionKey key;
  key.rb = static_cast<std::uint8_t>(index % bins);
  index /= bins;
  key.lb = static_cast<std::uint8_t>(index % bins);
  index /= bins;
  key.rt = static_cast<std::uint8_t>(index % bins);
  index /= bins;
  key.lt = static_cast<std::uint8_t>(index);
  return key;
}

ContextLibrary::ContextLibrary(const CharacterizedLibrary& characterized,
                               std::vector<LibraryOpcCellResult> library_opc,
                               const CdModel& boundary_model, ContextBins bins)
    : characterized_(&characterized),
      library_opc_(std::move(library_opc)),
      boundary_model_(&boundary_model),
      bins_(std::move(bins)) {
  SVA_REQUIRE(library_opc_.size() == characterized.cells.size());

  geometry_.resize(characterized.cells.size());
  for (std::size_t ci = 0; ci < characterized.cells.size(); ++ci) {
    const CellMaster& master = characterized.cells[ci].master;
    SVA_REQUIRE_MSG(
        library_opc_[ci].device_cd.size() == master.devices().size(),
        "library-OPC results must cover every device");
    const Nm roi = master.tech().radius_of_influence;
    auto& devices = geometry_[ci];
    devices.resize(master.devices().size());
    for (std::size_t di = 0; di < master.devices().size(); ++di) {
      const Device& d = master.devices()[di];
      const PolyGate& g = master.gates()[d.gate_index];
      DeviceGeometry geo;
      geo.boundary_left = d.gate_index == master.leftmost_gate();
      geo.boundary_right = d.gate_index == master.rightmost_gate();
      // Nearest poly feature inside the cell on each side that overlaps
      // this device vertically (other gate stripes always do; stubs only
      // if they reach into the device's diffusion strip).
      const Rect dev_rect = master.device_gate_rect(di);
      Nm left = roi;
      Nm right = roi;
      for (const PolyGate& other : master.gates()) {
        if (other.x_center < g.x_center)
          left = std::min(left, g.x_lo() - other.x_hi());
        if (other.x_center > g.x_center)
          right = std::min(right, other.x_lo() - g.x_hi());
      }
      for (const Rect& stub : master.poly_stubs()) {
        if (!stub.y_overlaps(dev_rect)) continue;
        if (stub.x_hi <= g.x_lo())
          left = std::min(left, g.x_lo() - stub.x_hi);
        if (stub.x_lo >= g.x_hi())
          right = std::min(right, stub.x_lo - g.x_hi());
      }
      geo.internal_left = left;
      geo.internal_right = right;
      devices[di] = geo;
    }
  }
}

DeviceContext ContextLibrary::device_context(std::size_t cell,
                                             const VersionKey& version,
                                             std::size_t device) const {
  SVA_REQUIRE(cell < geometry_.size());
  SVA_REQUIRE(device < geometry_[cell].size());
  const DeviceGeometry& geo = geometry_[cell][device];
  const CellMaster& master = characterized_->cells[cell].master;
  const Device& d = master.devices()[device];
  const bool pmos = d.type == DeviceType::Pmos;

  // nps_* are measured device-to-neighbour-poly, so a bin representative
  // is already the full outside spacing (it includes the edge clearance).
  DeviceContext ctx{geo.internal_left, geo.internal_right};
  if (geo.boundary_left) {
    const std::size_t bin = pmos ? version.lt : version.lb;
    ctx.s_left = std::min(ctx.s_left, bins_.representative(bin));
  }
  if (geo.boundary_right) {
    const std::size_t bin = pmos ? version.rt : version.rb;
    ctx.s_right = std::min(ctx.s_right, bins_.representative(bin));
  }
  return ctx;
}

DeviceContext ContextLibrary::device_context_measured(
    std::size_t cell, std::size_t device, Nm outside_left,
    Nm outside_right) const {
  SVA_REQUIRE(cell < geometry_.size());
  SVA_REQUIRE(device < geometry_[cell].size());
  const DeviceGeometry& geo = geometry_[cell][device];
  DeviceContext ctx{geo.internal_left, geo.internal_right};
  if (geo.boundary_left) ctx.s_left = std::min(ctx.s_left, outside_left);
  if (geo.boundary_right) ctx.s_right = std::min(ctx.s_right, outside_right);
  return ctx;
}

Nm ContextLibrary::interior_cd(std::size_t cell, std::size_t device) const {
  SVA_REQUIRE(cell < library_opc_.size());
  SVA_REQUIRE(device < library_opc_[cell].device_cd.size());
  return library_opc_[cell].device_cd[device];
}

Nm ContextLibrary::device_printed_cd(std::size_t cell,
                                     const VersionKey& version,
                                     std::size_t device) const {
  SVA_REQUIRE(cell < geometry_.size());
  const DeviceGeometry& geo = geometry_[cell][device];
  if (!geo.boundary_left && !geo.boundary_right)
    return interior_cd(cell, device);
  const CellMaster& master = characterized_->cells[cell].master;
  const DeviceContext ctx = device_context(cell, version, device);
  return boundary_model_->printed_cd_nominal(master.tech().gate_length,
                                             ctx.s_left, ctx.s_right);
}

Nm ContextLibrary::arc_effective_length(std::size_t cell,
                                        const VersionKey& version,
                                        std::size_t arc) const {
  const CellMaster& master = characterized_->cells[cell].master;
  SVA_REQUIRE(arc < master.arcs().size());
  const TimingArc& a = master.arcs()[arc];
  double sum = 0.0;
  for (std::size_t di : a.device_indices)
    sum += device_printed_cd(cell, version, di);
  return sum / static_cast<double>(a.device_indices.size());
}

double ContextLibrary::arc_delay_scale(std::size_t cell,
                                       const VersionKey& version,
                                       std::size_t arc) const {
  const CellMaster& master = characterized_->cells[cell].master;
  return arc_effective_length(cell, version, arc) /
         master.tech().gate_length;
}

std::uint64_t ContextLibrary::content_hash() const {
  std::call_once(hash_once_, [&] { hash_value_ = compute_content_hash(); });
  return hash_value_;
}

std::uint64_t ContextLibrary::compute_content_hash() const {
  Fnv1aHasher h;
  // Binning config: edges decide which version an instance binds to,
  // representatives decide what a boundary device sees inside a version.
  h.vec_f64(bins_.upper_edges());
  h.vec_f64(bins_.representatives());

  for (std::size_t ci = 0; ci < characterized_->cells.size(); ++ci) {
    const CellMaster& master = characterized_->cells[ci].master;
    h.str(master.name());
    h.f64(master.tech().gate_length);
    h.f64(master.tech().radius_of_influence);
    // Per-device printing inputs: boundary classification, internal
    // spacings, device polarity (selects the top/bottom nps corner), and
    // the library-OPC interior CD.
    h.u64(master.devices().size());
    for (std::size_t di = 0; di < master.devices().size(); ++di) {
      const DeviceGeometry& geo = geometry_[ci][di];
      h.u64((geo.boundary_left ? 1u : 0u) | (geo.boundary_right ? 2u : 0u));
      h.f64(geo.internal_left);
      h.f64(geo.internal_right);
      h.u64(static_cast<std::uint64_t>(master.devices()[di].type));
      h.f64(library_opc_[ci].device_cd[di]);
    }
    // Arc structure: which devices average into each effective length.
    h.u64(master.arcs().size());
    for (const TimingArc& arc : master.arcs()) {
      h.u64(arc.device_indices.size());
      for (std::size_t di : arc.device_indices) h.u64(di);
    }
  }

  // The boundary model has no serializable internals in general (it is an
  // abstract CdModel), so capture its behaviour by sampling the nominal
  // printed CD over the spacing range the versions can query.  Any model
  // change that could alter a cached value perturbs at least one sample.
  if (!characterized_->cells.empty()) {
    const CellTech& tech = characterized_->cells[0].master.tech();
    const Nm w = tech.gate_length;
    std::vector<Nm> samples = bins_.representatives();
    for (Nm s = 100.0; s <= 700.0; s += 25.0) samples.push_back(s);
    for (Nm s : samples) {
      h.f64(boundary_model_->printed_cd_nominal(w, s, s));
      h.f64(boundary_model_->printed_cd_nominal(
          w, s, tech.radius_of_influence));
    }
  }
  return h.digest();
}

}  // namespace sva
