#pragma once
// Liberty (.lib) emission.
//
// The paper's flow materializes "a .lib which has 81 versions of each cell
// in the original library" (Sec. 3.1.2).  This writer produces that
// artifact: a Liberty-format text library with either the base
// (drawn-length) cells or the full context-expanded version set, each
// version's tables scaled by its arcs' effective gate lengths.  The output
// is consumable by standard STA tools (NLDM tables, ps / fF units).

#include <string>

#include "cell/characterize.hpp"
#include "cell/context_library.hpp"

namespace sva {

/// Base library: one cell per master at the drawn gate length.
std::string to_liberty(const CharacterizedLibrary& library,
                       const std::string& library_name);

/// Context-expanded library: every master emitted once per context
/// version, named <CELL>_v<LT><RT><LB><RB> with per-arc scaled tables.
/// With the default 3-bin scheme this is the paper's 81-version library.
std::string to_liberty_expanded(const CharacterizedLibrary& library,
                                const ContextLibrary& context,
                                const std::string& library_name);

/// Liberty version-suffix for a key, e.g. "_v0212".
std::string version_suffix(const VersionKey& key);

}  // namespace sva
