#include "cell/liberty_reader.hpp"

#include <cctype>
#include <cstdlib>

#include "util/error.hpp"

namespace sva {
namespace {

/// Minimal Liberty tokenizer/parser over the writer's dialect.  Groups
/// are `name (args) { ... }`, attributes `name : value;` or
/// `name (args);`, and multi-line values use backslash continuations
/// (which we treat as whitespace).
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  ParsedLiberty parse() {
    skip_ws();
    expect_word("library");
    ParsedLiberty lib;
    lib.name = paren_args();
    expect('{');
    while (!peek('}')) {
      const std::string word = read_word();
      if (word == "lu_table_template") {
        (void)paren_args();
        parse_template(lib);
      } else if (word == "cell") {
        ParsedLibertyCell cell;
        cell.name = paren_args();
        parse_cell(lib, cell);
        lib.cells.push_back(std::move(cell));
      } else {
        skip_statement();
      }
    }
    expect('}');
    if (lib.slew_axis.empty() || lib.load_axis.empty())
      fail("library has no lu_table_template");
    if (lib.cells.empty()) fail("library has no cells");
    return lib;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i)
      if (text_[i] == '\n') ++line;
    throw Error("liberty line " + std::to_string(line) + ": " + message);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c)) || c == '\\') {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '*') {
        const std::size_t end = text_.find("*/", pos_ + 2);
        if (end == std::string::npos) fail("unterminated comment");
        pos_ = end + 2;
      } else {
        break;
      }
    }
  }

  bool peek(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  std::string read_word() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '.'))
      ++pos_;
    if (pos_ == start) fail("expected identifier");
    return text_.substr(start, pos_ - start);
  }

  void expect_word(const std::string& word) {
    if (read_word() != word) fail("expected '" + word + "'");
  }

  /// Read "(...)" and return the contents (without parens), trimmed.
  std::string paren_args() {
    expect('(');
    std::size_t depth = 1;
    std::string out;
    while (pos_ < text_.size() && depth > 0) {
      const char c = text_[pos_++];
      if (c == '(') ++depth;
      if (c == ')') {
        --depth;
        if (depth == 0) break;
      }
      if (depth > 0) out += c;
    }
    if (depth != 0) fail("unterminated '('");
    // Trim.
    std::size_t b = 0, e = out.size();
    while (b < e && std::isspace(static_cast<unsigned char>(out[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(out[e - 1])))
      --e;
    return out.substr(b, e - b);
  }

  /// Skip one attribute (to ';') or one group (balanced braces).
  void skip_statement() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ';') {
        ++pos_;
        return;
      }
      if (c == '{') {
        std::size_t depth = 0;
        while (pos_ < text_.size()) {
          if (text_[pos_] == '{') ++depth;
          if (text_[pos_] == '}') {
            --depth;
            if (depth == 0) {
              ++pos_;
              return;
            }
          }
          ++pos_;
        }
        fail("unterminated group");
      }
      ++pos_;
    }
  }

  /// Parse numbers from a quoted list like "1.0, 2.0" "3.0, 4.0".
  static std::vector<double> numbers_in(const std::string& s) {
    std::vector<double> out;
    const char* p = s.c_str();
    const char* end = p + s.size();
    while (p < end) {
      char* next = nullptr;
      const double v = std::strtod(p, &next);
      if (next == p) {
        ++p;
        continue;
      }
      out.push_back(v);
      p = next;
    }
    return out;
  }

  void parse_template(ParsedLiberty& lib) {
    expect('{');
    while (!peek('}')) {
      const std::string word = read_word();
      if (word == "index_1") {
        lib.slew_axis = numbers_in(paren_args());
        expect(';');
      } else if (word == "index_2") {
        lib.load_axis = numbers_in(paren_args());
        expect(';');
      } else {
        skip_statement();
      }
    }
    expect('}');
  }

  LookupTable2D parse_values_group(const ParsedLiberty& lib) {
    // After "cell_rise (template)": "{ values ( \"...\" ); }".
    expect('{');
    std::vector<double> values;
    while (!peek('}')) {
      const std::string word = read_word();
      if (word == "values") {
        values = numbers_in(paren_args());
        expect(';');
      } else {
        skip_statement();
      }
    }
    expect('}');
    if (values.size() != lib.slew_axis.size() * lib.load_axis.size())
      fail("values size does not match the template axes");
    return LookupTable2D(lib.slew_axis, lib.load_axis, std::move(values));
  }

  void parse_timing(const ParsedLiberty& lib, ParsedLibertyCell& cell) {
    expect('{');
    ParsedLibertyTiming timing;
    bool have_delay = false;
    bool have_slew = false;
    while (!peek('}')) {
      const std::string word = read_word();
      if (word == "related_pin") {
        expect(':');
        skip_ws();
        if (text_[pos_] == '"') {
          ++pos_;
          const std::size_t end = text_.find('"', pos_);
          if (end == std::string::npos) fail("unterminated string");
          timing.related_pin = text_.substr(pos_, end - pos_);
          pos_ = end + 1;
        } else {
          timing.related_pin = read_word();
        }
        expect(';');
      } else if (word == "cell_rise" || word == "cell_fall") {
        (void)paren_args();
        LookupTable2D table = parse_values_group(lib);
        if (!have_delay) {
          timing.cell_rise = std::move(table);
          have_delay = true;
        }
      } else if (word == "rise_transition" || word == "fall_transition") {
        (void)paren_args();
        LookupTable2D table = parse_values_group(lib);
        if (!have_slew) {
          timing.rise_transition = std::move(table);
          have_slew = true;
        }
      } else {
        skip_statement();
      }
    }
    expect('}');
    if (timing.related_pin.empty()) fail("timing group without related_pin");
    if (!have_delay || !have_slew) fail("timing group missing tables");
    cell.timings.push_back(std::move(timing));
  }

  void parse_pin(const ParsedLiberty& lib, ParsedLibertyCell& cell,
                 const std::string& pin_name) {
    expect('{');
    ParsedLibertyPin pin;
    pin.name = pin_name;
    while (!peek('}')) {
      const std::string word = read_word();
      if (word == "direction") {
        expect(':');
        pin.is_output = read_word() == "output";
        expect(';');
      } else if (word == "capacitance") {
        expect(':');
        skip_ws();
        char* next = nullptr;
        pin.capacitance_ff = std::strtod(text_.c_str() + pos_, &next);
        pos_ = static_cast<std::size_t>(next - text_.c_str());
        expect(';');
      } else if (word == "timing") {
        (void)paren_args();
        parse_timing(lib, cell);
      } else {
        skip_statement();
      }
    }
    expect('}');
    cell.pins.push_back(std::move(pin));
  }

  void parse_cell(const ParsedLiberty& lib, ParsedLibertyCell& cell) {
    expect('{');
    while (!peek('}')) {
      const std::string word = read_word();
      if (word == "pin") {
        const std::string pin_name = paren_args();
        parse_pin(lib, cell, pin_name);
      } else if (word == "area") {
        expect(':');
        skip_ws();
        char* next = nullptr;
        cell.area = std::strtod(text_.c_str() + pos_, &next);
        pos_ = static_cast<std::size_t>(next - text_.c_str());
        expect(';');
      } else {
        skip_statement();
      }
    }
    expect('}');
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

const ParsedLibertyPin& ParsedLibertyCell::pin(const std::string& n) const {
  for (const auto& p : pins)
    if (p.name == n) return p;
  throw Error("liberty cell " + name + " has no pin " + n);
}

const ParsedLibertyCell& ParsedLiberty::cell(const std::string& n) const {
  for (const auto& c : cells)
    if (c.name == n) return c;
  throw Error("liberty library " + name + " has no cell " + n);
}

ParsedLiberty parse_liberty(const std::string& text) {
  return Parser(text).parse();
}

}  // namespace sva
