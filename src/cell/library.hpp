#pragma once
// The synthetic 90 nm standard-cell library: the "10 most frequently used
// cells" of the paper's experiment (Sec. 4).
//
// Layout intent: internal gate spacings are deliberately varied across the
// masters (stacked gates at sub-contacted-pitch spacing, relaxed spacings
// around 400 nm, and single isolated gates) so that every device class of
// the paper's Fig. 5 -- isolated, dense, self-compensated -- occurs in
// synthesized designs.

#include <vector>

#include "cell/cell_master.hpp"

namespace sva {

/// A library is an ordered list of masters; ordering is stable and indices
/// are used as cell ids by the netlist module.
class CellLibrary {
 public:
  using Masters = std::vector<CellMaster>;

  explicit CellLibrary(Masters masters);

  const std::vector<CellMaster>& masters() const { return masters_; }
  const CellMaster& master(std::size_t index) const;
  const CellMaster& by_name(const std::string& name) const;
  std::size_t index_of(const std::string& name) const;
  std::size_t size() const { return masters_.size(); }

 private:
  std::vector<CellMaster> masters_;
};

/// Build the 10-cell library.  Masters (in index order): INV_X1, INV_X2,
/// BUF_X1, NAND2_X1, NAND3_X1, NOR2_X1, NOR3_X1, AOI21_X1, OAI21_X1,
/// XOR2_X1.
CellLibrary build_standard_library(const CellTech& tech = CellTech{});

}  // namespace sva
