#pragma once
// Human- and machine-readable rendering of an SSTA analysis.

#include <string>

#include "netlist/netlist.hpp"
#include "ssta/criticality.hpp"
#include "ssta/propagate.hpp"

namespace sva {

/// Criticality report CSV: one row per endpoint, per gate timing arc,
/// and per primary input, in deterministic (net/gate index) order.
/// Columns: kind,gate,pin,net,criticality,arrival_mean_ps,arrival_sigma_ps.
std::string criticality_csv(const Netlist& netlist, const SstaResult& ssta,
                            const CriticalityResult& crit);

/// Deterministic text summary (no timestamps/wall times): critical-delay
/// canonical form, requested quantile, optional clock yield, and the
/// top critical endpoints.  `clock_period_ps <= 0` omits the yield line.
std::string ssta_text_report(const Netlist& netlist, const SstaResult& ssta,
                             const CriticalityResult& crit, double quantile,
                             double clock_period_ps);

}  // namespace sva
