#include "ssta/canonical.hpp"

#include <algorithm>

namespace sva {

namespace {

constexpr double kSqrt2 = 1.4142135623730951;
constexpr double kInvSqrt2Pi = 0.3989422804014327;

/// Beyond this |alpha| one input dominates the max to better than
/// ~1e-15 probability; shortcutting keeps tightness exactly 0/1 and
/// avoids fp noise in the tails.
constexpr double kAlphaSaturation = 8.0;

}  // namespace

double normal_pdf(double x) { return kInvSqrt2Pi * std::exp(-0.5 * x * x); }

double normal_cdf(double x) { return 0.5 * std::erfc(-x / kSqrt2); }

double normal_quantile(double p) {
  // Acklam's rational approximation, then one Halley refinement step.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;

  if (!(p > 0.0 && p < 1.0)) {
    if (p <= 0.0) return -HUGE_VAL;
    if (p >= 1.0) return HUGE_VAL;
    return 0.0;  // NaN in, NaN-ish out; callers validate first
  }

  double x = 0.0;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One Halley step against the exact cdf tightens the tail error from
  // ~1e-9 absolute to near machine precision.
  const double e = normal_cdf(x) - p;
  const double u = e / normal_pdf(x);
  x -= u / (1.0 + 0.5 * x * u);
  return x;
}

CanonicalDelay canonical_sum(const CanonicalDelay& a, const CanonicalDelay& b) {
  CanonicalDelay out;
  out.mean_ps = a.mean_ps + b.mean_ps;
  out.a_focus_ps = a.a_focus_ps + b.a_focus_ps;
  out.a_global_ps = a.a_global_ps + b.a_global_ps;
  out.local_ps = std::sqrt(a.local_ps * a.local_ps + b.local_ps * b.local_ps);
  return out;
}

CanonicalDelay canonical_scale(const CanonicalDelay& d, double k) {
  return {d.mean_ps * k, d.a_focus_ps * k, d.a_global_ps * k, d.local_ps * k};
}

double canonical_covariance_ps2(const CanonicalDelay& a,
                                const CanonicalDelay& b) {
  return a.a_focus_ps * b.a_focus_ps + a.a_global_ps * b.a_global_ps;
}

ClarkMax clark_max(const CanonicalDelay& a, const CanonicalDelay& b) {
  return clark_max(a, b, 0.0);
}

ClarkMax clark_max(const CanonicalDelay& a, const CanonicalDelay& b,
                   double local_cov_ps2) {
  const double var_a = a.variance_ps2();
  const double var_b = b.variance_ps2();
  const double cov = canonical_covariance_ps2(a, b) + local_cov_ps2;
  const double theta2 = var_a + var_b - 2.0 * cov;

  // theta^2 is the variance of (A - B); when it vanishes the two forms
  // differ only by a deterministic offset and the max is whichever mean
  // is larger.  The relative epsilon absorbs fp noise from identical
  // forms arriving via different arithmetic orders.
  const double eps = 1e-12 * std::max({var_a, var_b, 1.0});
  if (theta2 <= eps) {
    if (a.mean_ps >= b.mean_ps) return {a, 1.0};
    return {b, 0.0};
  }

  const double theta = std::sqrt(theta2);
  const double alpha = (a.mean_ps - b.mean_ps) / theta;
  if (alpha >= kAlphaSaturation) return {a, 1.0};
  if (alpha <= -kAlphaSaturation) return {b, 0.0};

  const double t = normal_cdf(alpha);  // tightness: P(A >= B)
  const double u = 1.0 - t;
  const double pdf = normal_pdf(alpha);

  ClarkMax out;
  out.tightness_a = t;
  CanonicalDelay& m = out.value;
  m.mean_ps = a.mean_ps * t + b.mean_ps * u + theta * pdf;
  const double second_moment = (a.mean_ps * a.mean_ps + var_a) * t +
                               (b.mean_ps * b.mean_ps + var_b) * u +
                               (a.mean_ps + b.mean_ps) * theta * pdf;
  const double var_max =
      std::max(second_moment - m.mean_ps * m.mean_ps, 0.0);

  // Tightness-weighted shared sensitivities preserve the covariance of
  // the max with each global variable (Clark's E[max * X_i] identity).
  m.a_focus_ps = t * a.a_focus_ps + u * b.a_focus_ps;
  m.a_global_ps = t * a.a_global_ps + u * b.a_global_ps;
  const double shared =
      m.a_focus_ps * m.a_focus_ps + m.a_global_ps * m.a_global_ps;
  if (var_max >= shared) {
    m.local_ps = std::sqrt(var_max - shared);
  } else {
    // Matched variance smaller than the shared part alone: shrink the
    // sensitivities so the total variance is exact and drop the local.
    const double scale = shared > 0.0 ? std::sqrt(var_max / shared) : 0.0;
    m.a_focus_ps *= scale;
    m.a_global_ps *= scale;
    m.local_ps = 0.0;
  }
  return out;
}

}  // namespace sva
