#include "ssta/propagate.hpp"

#include <algorithm>
#include <cmath>

#include "core/scales.hpp"
#include "sta/scale.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace sva {

namespace {

/// sqrt(Var(f^2)) for f ~ U(-1,1): E[f^4] - E[f^2]^2 = 1/5 - 1/9.
const double kFocusSigma = std::sqrt(4.0 / 45.0);

/// Mean of f^2 for f ~ U(-1,1).
constexpr double kFocusMean = 1.0 / 3.0;

std::vector<std::vector<CanonicalDelay>> build_factors(
    const Netlist& netlist, const ContextLibrary& context,
    const std::vector<VersionKey>& versions, const SstaVariationModel& model,
    const ContextCache* cache) {
  model.budget.validate();
  SVA_REQUIRE(model.global_share >= 0.0 && model.global_share <= 1.0);
  const std::vector<std::vector<ArcAnnotation>> annotations = annotate_arcs(
      netlist, context, versions, model.budget, model.policy, 0.0, nullptr,
      cache);

  const Nm l_nom = netlist.library().master(0).tech().gate_length;
  const Nm lvar_focus = model.budget.lvar_focus(l_nom);
  // Same residual decomposition as ContextAwareSampler, optionally split
  // into a chip-global and a local part (3-sigma = residual half-range).
  const Nm sigma_residual = (model.budget.total(l_nom) -
                             model.budget.lvar_pitch(l_nom) - lvar_focus) /
                            3.0;
  const Nm sigma_global = sigma_residual * model.global_share;
  const Nm sigma_local = sigma_residual * (1.0 - model.global_share);

  std::vector<std::vector<CanonicalDelay>> factors(annotations.size());
  for (std::size_t gi = 0; gi < annotations.size(); ++gi) {
    factors[gi].resize(annotations[gi].size());
    for (std::size_t ai = 0; ai < annotations[gi].size(); ++ai) {
      const ArcAnnotation& ann = annotations[gi][ai];
      Nm s = 0.0;  // signed through-focus excursion of this arc class
      switch (ann.arc_class) {
        case ArcClass::Smile:
          s = +lvar_focus;
          break;
        case ArcClass::Frown:
          s = -lvar_focus;
          break;
        case ArcClass::SelfCompensated:
          s = 0.0;
          break;
      }
      CanonicalDelay& f = factors[gi][ai];
      f.mean_ps = (ann.l_nom_new + s * kFocusMean) / l_nom;
      f.a_focus_ps = s * kFocusSigma / l_nom;
      f.a_global_ps = sigma_global / l_nom;
      f.local_ps = sigma_local / l_nom;
    }
  }
  return factors;
}

std::vector<std::vector<double>> mean_factor_matrix(
    const std::vector<std::vector<CanonicalDelay>>& factors) {
  std::vector<std::vector<double>> out(factors.size());
  for (std::size_t gi = 0; gi < factors.size(); ++gi) {
    out[gi].resize(factors[gi].size());
    for (std::size_t ai = 0; ai < factors[gi].size(); ++ai)
      out[gi][ai] = factors[gi][ai].mean_ps;
  }
  return out;
}

}  // namespace

SstaEngine::SstaEngine(const Netlist& netlist,
                       const CharacterizedLibrary& library,
                       const ContextLibrary& context,
                       const std::vector<VersionKey>& versions,
                       const SstaVariationModel& model,
                       const StaConfig& config, const ContextCache* cache)
    : netlist_(&netlist),
      library_(&library),
      config_(config),
      factors_(build_factors(netlist, context, versions, model, cache)),
      sta_(netlist, library, config),
      base_(sta_.run(MatrixScale(mean_factor_matrix(factors_)))) {
  // Same level buckets Sta builds; rebuilt here because Sta keeps its
  // copy private and the two engines must partition work identically.
  const std::vector<std::size_t> level = netlist.gate_levels();
  std::size_t max_level = 0;
  for (std::size_t gi : netlist.topological_order())
    max_level = std::max(max_level, level[gi]);
  levels_.resize(netlist.gates().empty() ? 0 : max_level + 1);
  for (std::size_t gi : netlist.topological_order())
    levels_[level[gi]].push_back(gi);

  // Residual index space: one slot per (gate, master-arc) CD residual,
  // then one max-noise slot per gate.
  res_offset_.resize(factors_.size());
  for (std::size_t gi = 0; gi < factors_.size(); ++gi) {
    res_offset_[gi] = arc_total_;
    arc_total_ += factors_[gi].size();
  }
  n_res_ = arc_total_ + factors_.size();
}

const CanonicalDelay& SstaEngine::arc_factor(std::size_t gate,
                                             std::size_t arc_index) const {
  SVA_REQUIRE(gate < factors_.size());
  SVA_REQUIRE(arc_index < factors_[gate].size());
  return factors_[gate][arc_index];
}

void SstaEngine::evaluate_gate(std::size_t gi, State& st) const {
  const Netlist& nl = *netlist_;
  const GateInst& gate = nl.gates()[gi];
  const CharacterizedCell& cell = library_->cells[gate.cell_index];
  const double load = sta_.net_load_ff(gate.output_net);
  const auto pins = nl.input_pins_of(gate.cell_index);
  const std::size_t n = gate.fanin_nets.size();

  CanonicalDelay acc;
  std::vector<double>& q = st.gate_pin_tightness[gi];
  q.assign(n, 0.0);
  std::vector<SlewSensitivity> cand_slew(n);
  std::vector<double> acc_coef(n_res_, 0.0);
  std::vector<double> cand_coef(n_res_, 0.0);
  std::vector<std::vector<double>> cand_slew_coef(n);

  for (std::size_t pi = 0; pi < n; ++pi) {
    const std::size_t in_net = gate.fanin_nets[pi];
    const CharacterizedArc& arc = cell.arc_for(pins[pi]);
    const CanonicalDelay& fac = factors_[gi][arc.arc_index];
    const CanonicalDelay& ain = st.arrival[in_net];
    const SlewSensitivity& sin = st.slew_sens[in_net];

    // Operating point: the deterministic mean-state slew of the fanin
    // net.  Finite-difference derivatives carry slew variation to first
    // order through the NLDM tables.
    const double s0 = base_.slew_ps[in_net];
    const double d0 = arc.nldm.delay_ps(s0, load);
    const double so0 = arc.nldm.output_slew_ps(s0, load);
    const double ds = std::max(0.5, 0.05 * s0);
    const double dd_dslew =
        (arc.nldm.delay_ps(s0 + ds, load) - arc.nldm.delay_ps(s0 - ds, load)) /
        (2.0 * ds);
    const double dso_dslew = (arc.nldm.output_slew_ps(s0 + ds, load) -
                              arc.nldm.output_slew_ps(s0 - ds, load)) /
                             (2.0 * ds);

    const double wire_delay =
        config_.wire_delay_per_sink_ps *
        static_cast<double>(nl.nets()[in_net].sinks.size());

    // Arrival candidate: fanin arrival + wire + factor * table delay,
    // with the slew chain folded in (k = d(delay)/d(slew) at the mean
    // factor).  Shared variables (focus, global) chain linearly; the
    // local term chains as a coefficient vector over the independent
    // residuals, so every correlation -- the fanin's slew/arrival
    // overlap, reconvergent fanin cones, this arc's fresh residual
    // scaling both delay and output slew -- is carried exactly.
    const double k = fac.mean_ps * dd_dslew;
    const std::vector<double>& ain_c = st.arr_coef[in_net];
    const std::vector<double>& sin_c = st.slew_coef[in_net];
    const std::size_t rid = res_offset_[gi] + arc.arc_index;

    CanonicalDelay cand;
    cand.mean_ps = ain.mean_ps + wire_delay + fac.mean_ps * d0;
    cand.a_focus_ps = ain.a_focus_ps + fac.a_focus_ps * d0 + k * sin.a_focus_ps;
    cand.a_global_ps =
        ain.a_global_ps + fac.a_global_ps * d0 + k * sin.a_global_ps;
    double cand_var = 0.0;
    for (std::size_t j = 0; j < n_res_; ++j) {
      cand_coef[j] = ain_c[j] + k * sin_c[j];
      if (j == rid) cand_coef[j] += fac.local_ps * d0;
      cand_var += cand_coef[j] * cand_coef[j];
    }
    cand.local_ps = std::sqrt(cand_var);

    // Output-slew candidate, same first-order chain.
    const double ks = fac.mean_ps * dso_dslew;
    SlewSensitivity& cs = cand_slew[pi];
    cs.a_focus_ps = fac.a_focus_ps * so0 + ks * sin.a_focus_ps;
    cs.a_global_ps = fac.a_global_ps * so0 + ks * sin.a_global_ps;
    std::vector<double>& cs_c = cand_slew_coef[pi];
    cs_c.assign(n_res_, 0.0);
    double cs_var = 0.0;
    for (std::size_t j = 0; j < n_res_; ++j) {
      cs_c[j] = ks * sin_c[j];
      if (j == rid) cs_c[j] += fac.local_ps * so0;
      cs_var += cs_c[j] * cs_c[j];
    }
    cs.local_ps = std::sqrt(cs_var);

    // Left-fold Clark max in pin order; the fold updates the selection
    // probabilities so they sum to exactly 1.  The local covariance of
    // the incumbent and the candidate is the exact dot product of their
    // residual vectors (the incumbent's unassigned max-noise part is
    // independent of the candidate, so it rightly contributes nothing).
    if (pi == 0) {
      acc = cand;
      acc_coef.swap(cand_coef);
      cand_coef.assign(n_res_, 0.0);
      q[0] = 1.0;
    } else {
      double lcov = 0.0;
      for (std::size_t j = 0; j < n_res_; ++j)
        lcov += acc_coef[j] * cand_coef[j];
      const ClarkMax m = clark_max(acc, cand, lcov);
      const double t = m.tightness_a;
      for (std::size_t j = 0; j < pi; ++j) q[j] *= t;
      q[pi] = 1.0 - t;
      for (std::size_t j = 0; j < n_res_; ++j)
        acc_coef[j] = t * acc_coef[j] + (1.0 - t) * cand_coef[j];
      acc = m.value;
    }
  }

  // The tightness-blended vector under-counts the Clark-matched
  // variance (max of two forms is noisier than their blend); park the
  // deficit in this gate's own max-noise slot so downstream consumers
  // see it as a shared -- not independent -- residual.
  double mix_var = 0.0;
  for (std::size_t j = 0; j < n_res_; ++j) mix_var += acc_coef[j] * acc_coef[j];
  const double deficit = acc.local_ps * acc.local_ps - mix_var;
  acc_coef[arc_total_ + gi] = std::sqrt(std::max(deficit, 0.0));
  acc.local_ps = std::sqrt(mix_var + std::max(deficit, 0.0));

  // Merged output slew: tightness-weighted blend of the per-pin slews
  // (first-order moment matching of the selected slew), componentwise on
  // the residual vectors so downstream correlation survives the merge.
  SlewSensitivity merged;
  std::vector<double> merged_coef(n_res_, 0.0);
  for (std::size_t pi = 0; pi < n; ++pi) {
    merged.a_focus_ps += q[pi] * cand_slew[pi].a_focus_ps;
    merged.a_global_ps += q[pi] * cand_slew[pi].a_global_ps;
    const std::vector<double>& cs_c = cand_slew_coef[pi];
    for (std::size_t j = 0; j < n_res_; ++j) merged_coef[j] += q[pi] * cs_c[j];
  }
  double merged_var = 0.0;
  for (std::size_t j = 0; j < n_res_; ++j)
    merged_var += merged_coef[j] * merged_coef[j];
  merged.local_ps = std::sqrt(merged_var);

  st.arrival[gate.output_net] = acc;
  st.slew_sens[gate.output_net] = merged;
  st.arr_coef[gate.output_net] = std::move(acc_coef);
  st.slew_coef[gate.output_net] = std::move(merged_coef);
}

SstaEngine::State SstaEngine::make_state() const {
  const Netlist& nl = *netlist_;
  State st;
  st.arrival.assign(nl.nets().size(), CanonicalDelay{});
  st.slew_sens.assign(nl.nets().size(), SlewSensitivity{});
  st.gate_pin_tightness.resize(nl.gates().size());
  st.arr_coef.assign(nl.nets().size(), std::vector<double>(n_res_, 0.0));
  st.slew_coef.assign(nl.nets().size(), std::vector<double>(n_res_, 0.0));
  return st;
}

SstaResult SstaEngine::finalize(State st) const {
  const Netlist& nl = *netlist_;
  SstaResult out;

  // Chip max: fold over primary outputs in net-index order (serial, so
  // the result is identical no matter how the forward pass was split).
  // Endpoints share most of their cones, so the fold carries the same
  // exact local covariance the per-gate merges use.
  for (std::size_t ni = 0; ni < nl.nets().size(); ++ni)
    if (nl.nets()[ni].is_primary_output) out.po_nets.push_back(ni);
  SVA_REQUIRE_MSG(!out.po_nets.empty(), "netlist has no primary outputs");

  out.po_tightness.assign(out.po_nets.size(), 0.0);
  out.critical = st.arrival[out.po_nets[0]];
  std::vector<double> crit_coef = st.arr_coef[out.po_nets[0]];
  out.po_tightness[0] = 1.0;
  for (std::size_t i = 1; i < out.po_nets.size(); ++i) {
    const CanonicalDelay& cand = st.arrival[out.po_nets[i]];
    const std::vector<double>& cand_coef = st.arr_coef[out.po_nets[i]];
    double lcov = 0.0;
    for (std::size_t j = 0; j < n_res_; ++j)
      lcov += crit_coef[j] * cand_coef[j];
    const ClarkMax m = clark_max(out.critical, cand, lcov);
    const double t = m.tightness_a;
    for (std::size_t j = 0; j < i; ++j) out.po_tightness[j] *= t;
    out.po_tightness[i] = 1.0 - t;
    for (std::size_t j = 0; j < n_res_; ++j)
      crit_coef[j] = t * crit_coef[j] + (1.0 - t) * cand_coef[j];
    out.critical = m.value;
  }

  out.arrival = std::move(st.arrival);
  out.slew_sens = std::move(st.slew_sens);
  out.gate_pin_tightness = std::move(st.gate_pin_tightness);
  return out;
}

SstaResult SstaEngine::run() const {
  SVA_FAILPOINT("ssta.propagate");
  const Netlist& nl = *netlist_;
  State st = make_state();
  for (std::size_t gi : nl.topological_order()) evaluate_gate(gi, st);
  return finalize(std::move(st));
}

SstaResult SstaEngine::run_parallel(ThreadPool& pool,
                                    const CancelToken* cancel) const {
  SVA_FAILPOINT("ssta.propagate");
  State st = make_state();

  // Same inline/split threshold as Sta::run_parallel: a canonical gate
  // evaluation is a few NLDM lookups plus Clark folds (~us), so narrow
  // levels are pure fork/join overhead.
  constexpr std::size_t kGrain = 64;
  for (const std::vector<std::size_t>& level : levels_) {
    if (cancel) cancel->check();
    if (pool.thread_count() == 0 || level.size() < 2 * kGrain) {
      for (std::size_t gi : level) evaluate_gate(gi, st);
      continue;
    }
    pool.parallel_for(
        0, level.size(), [&](std::size_t i) { evaluate_gate(level[i], st); },
        kGrain);
  }
  return finalize(std::move(st));
}

}  // namespace sva
