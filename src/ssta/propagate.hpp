#pragma once
// Block-based SSTA propagation over the levelized timing graph.
//
// The paper's variation taxonomy maps onto the canonical basis as:
//
//  * through-pitch context  -> deterministic per-arc mean shift (the
//    context-predicted nominal length from core/classify, exactly the
//    systematic component ContextAwareSampler treats as deterministic);
//  * through-focus smile/frown -> sensitivity to ONE shared chip-level
//    defocus variable.  The Bossung response is quadratic (shift =
//    +-lvar_focus * f^2 with f ~ U(-1,1)), so the standardized variable
//    is X_F = (f^2 - 1/3) / sqrt(4/45): mean contribution s/3,
//    sensitivity s*sqrt(4/45), per arc class sign;
//  * chip-global CD -> a second shared variable taking `global_share`
//    of the residual sigma;
//  * the remaining residual budget -> an independent local term.
//
// Propagation: exact canonical sum over arcs, Clark moment-matched max
// at merge points (fold in fanin-pin order; the fold also yields the
// per-pin selection probabilities criticality needs).  Slew coupling is
// carried to first order: the deterministic base state (an Sta run at
// the mean factors) provides the NLDM operating points, and per-net
// slew sensitivity triples propagate through finite-difference
// derivatives of the delay/slew tables.
//
// The engine mirrors Sta's levelized structure, so run_parallel() is
// bit-identical to run() at any thread count: each gate reads only
// lower-level nets and writes only its own output state.

#include <cstddef>
#include <vector>

#include "cell/context_library.hpp"
#include "core/budget.hpp"
#include "core/classify.hpp"
#include "engine/context_cache.hpp"
#include "engine/thread_pool.hpp"
#include "netlist/netlist.hpp"
#include "ssta/canonical.hpp"
#include "sta/sta.hpp"
#include "util/cancel.hpp"

namespace sva {

/// Variation model driving the canonical decomposition.
struct SstaVariationModel {
  CdBudget budget;
  ArcLabelPolicy policy = ArcLabelPolicy::Majority;
  /// Share of the residual sigma that is chip-global (the second shared
  /// variable); the rest is independent local.  0 matches the default
  /// ContextAwareSampler exactly.
  double global_share = 0.0;
};

/// First-order sensitivities of a net's slew (all ps).  `local_ps` is
/// the norm of the net's per-residual slew coefficient vector; the full
/// vector lives in the propagation state, not in the public result.
struct SlewSensitivity {
  double a_focus_ps = 0.0;
  double a_global_ps = 0.0;
  double local_ps = 0.0;
};

/// One SSTA analysis of the whole design.
struct SstaResult {
  std::vector<CanonicalDelay> arrival;     ///< per net
  std::vector<SlewSensitivity> slew_sens;  ///< per net
  /// Per gate, per fanin pin: probability that this pin's candidate sets
  /// the gate's output max (sums to 1 per gate by construction).
  std::vector<std::vector<double>> gate_pin_tightness;
  CanonicalDelay critical;                 ///< max over primary outputs
  std::vector<std::size_t> po_nets;        ///< POs in net-index order
  std::vector<double> po_tightness;        ///< endpoint criticality, sums to 1

  double quantile_ps(double q) const { return critical.quantile_ps(q); }
  /// Gaussian parametric yield at a clock period.
  double yield_at(double clock_period_ps) const {
    const double sigma = critical.sigma_ps();
    if (sigma <= 0.0) return clock_period_ps >= critical.mean_ps ? 1.0 : 0.0;
    return normal_cdf((clock_period_ps - critical.mean_ps) / sigma);
  }
};

/// Block-based SSTA engine over the same levelized graph Sta uses.
class SstaEngine {
 public:
  /// All references must outlive the engine.  `cache`, when given, memoizes
  /// the (cell, version) effective lengths exactly like the corner flow.
  SstaEngine(const Netlist& netlist, const CharacterizedLibrary& library,
             const ContextLibrary& context,
             const std::vector<VersionKey>& versions,
             const SstaVariationModel& model, const StaConfig& config = {},
             const ContextCache* cache = nullptr);

  /// Serial propagation.
  SstaResult run() const;

  /// Levelized-parallel propagation; bit-identical to run() at any
  /// thread count.  `cancel` is polled once per level.
  SstaResult run_parallel(ThreadPool& pool,
                          const CancelToken* cancel = nullptr) const;

  /// The deterministic mean-state run backing the NLDM operating points.
  const StaResult& base_result() const { return base_; }
  const Netlist& netlist() const { return *netlist_; }

  /// Canonical delay factor (dimensionless) of one (gate, master-arc).
  const CanonicalDelay& arc_factor(std::size_t gate,
                                   std::size_t arc_index) const;

 private:
  struct State {
    std::vector<CanonicalDelay> arrival;
    std::vector<SlewSensitivity> slew_sens;
    std::vector<std::vector<double>> gate_pin_tightness;
    /// Per net: coefficient of each independent residual in the net's
    /// arrival (resp. slew) local term.  Index space is one slot per
    /// (gate, master-arc) CD residual followed by one slot per gate for
    /// the Clark max-nonlinearity noise.  `arrival[n].local_ps` equals
    /// the norm of `arr_coef[n]` by construction, and the dot product of
    /// two nets' vectors is their exact first-order local covariance --
    /// this is what keeps reconvergent merges honest.
    std::vector<std::vector<double>> arr_coef;
    std::vector<std::vector<double>> slew_coef;
  };

  void evaluate_gate(std::size_t gate, State& state) const;
  State make_state() const;
  SstaResult finalize(State state) const;

  const Netlist* netlist_;
  const CharacterizedLibrary* library_;
  StaConfig config_;
  /// Dimensionless canonical factor per (gate, master-arc), mirroring the
  /// MatrixScale layout.
  std::vector<std::vector<CanonicalDelay>> factors_;
  Sta sta_;           ///< graph/levelization + deterministic base engine
  StaResult base_;    ///< run at the mean factors (slews, operating points)
  std::vector<std::vector<std::size_t>> levels_;
  /// Residual index space: res_offset_[g] + arc_index addresses the CD
  /// residual of one (gate, master-arc); arc_total_ + g addresses the
  /// gate's max-noise slot; n_res_ is the total dimension.
  std::vector<std::size_t> res_offset_;
  std::size_t arc_total_ = 0;
  std::size_t n_res_ = 0;
};

}  // namespace sva
