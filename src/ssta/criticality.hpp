#pragma once
// Criticality computation from a forward SSTA pass (Li/Schlichtmann).
//
// The forward fold at every merge point already produced the per-pin
// selection probabilities q_i (the probability that pin i's candidate
// sets the max) and the endpoint fold produced per-PO tightness.  The
// backward pass distributes probability mass from the endpoints toward
// the primary inputs: a net's criticality is the probability that the
// chip's critical path passes through it, a gate arc's criticality the
// probability it passes through that specific (gate, pin) edge.
//
// Mass is conserved at every step, so endpoint criticalities sum to 1
// and so do the criticalities of any cutset (in particular the primary
// inputs) -- up to the usual canonical-form independence approximation
// across reconvergent fanout.

#include <cstddef>
#include <vector>

#include "netlist/netlist.hpp"
#include "ssta/propagate.hpp"

namespace sva {

struct CriticalityResult {
  /// P(critical path passes through this net), per net.
  std::vector<double> net_criticality;
  /// P(critical path uses this gate's fanin pin), per [gate][pin].
  std::vector<std::vector<double>> arc_criticality;
};

/// Backward pass over the forward result (reverse topological order,
/// serial and deterministic).
CriticalityResult compute_criticality(const Netlist& netlist,
                                      const SstaResult& ssta);

}  // namespace sva
