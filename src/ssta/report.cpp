#include "ssta/report.hpp"

#include <algorithm>
#include <cstdio>

#include "report/csv.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace sva {

namespace {

std::string num(double v, int decimals) { return fmt(v, decimals); }

}  // namespace

std::string criticality_csv(const Netlist& netlist, const SstaResult& ssta,
                            const CriticalityResult& crit) {
  const std::vector<std::string> header = {
      "kind",        "gate", "pin", "net", "criticality", "arrival_mean_ps",
      "arrival_sigma_ps"};
  std::vector<std::vector<std::string>> rows;

  for (std::size_t i = 0; i < ssta.po_nets.size(); ++i) {
    const std::size_t ni = ssta.po_nets[i];
    rows.push_back({"endpoint", "", "", netlist.nets()[ni].name,
                    num(ssta.po_tightness[i], 6),
                    num(ssta.arrival[ni].mean_ps, 3),
                    num(ssta.arrival[ni].sigma_ps(), 3)});
  }

  for (std::size_t gi = 0; gi < netlist.gates().size(); ++gi) {
    const GateInst& gate = netlist.gates()[gi];
    const auto pins = netlist.input_pins_of(gate.cell_index);
    for (std::size_t pi = 0; pi < gate.fanin_nets.size(); ++pi) {
      const std::size_t in_net = gate.fanin_nets[pi];
      rows.push_back({"arc", gate.name, pins[pi], netlist.nets()[in_net].name,
                      num(crit.arc_criticality[gi][pi], 6),
                      num(ssta.arrival[in_net].mean_ps, 3),
                      num(ssta.arrival[in_net].sigma_ps(), 3)});
    }
  }

  for (std::size_t ni = 0; ni < netlist.nets().size(); ++ni) {
    if (!netlist.nets()[ni].is_primary_input()) continue;
    rows.push_back({"input", "", "", netlist.nets()[ni].name,
                    num(crit.net_criticality[ni], 6), "0.000", "0.000"});
  }

  return rows_to_csv(header, rows);
}

std::string ssta_text_report(const Netlist& netlist, const SstaResult& ssta,
                             const CriticalityResult& crit, double quantile,
                             double clock_period_ps) {
  (void)crit;
  std::string out;
  const CanonicalDelay& c = ssta.critical;
  out += netlist.name() + ": block-based SSTA (" +
         std::to_string(netlist.gates().size()) + " gates, " +
         std::to_string(ssta.po_nets.size()) + " endpoints)\n";
  out += "  critical delay: mean " + num(units::ps_to_ns(c.mean_ps), 4) +
         " ns, sigma " + num(c.sigma_ps(), 2) + " ps (focus " +
         num(c.a_focus_ps, 2) + ", global " + num(c.a_global_ps, 2) +
         ", local " + num(c.local_ps, 2) + ")\n";
  out += "  q" + fmt_pct(quantile, 2) + ": " +
         num(units::ps_to_ns(ssta.quantile_ps(quantile)), 4) + " ns\n";
  if (clock_period_ps > 0.0)
    out += "  yield at clock " + num(units::ps_to_ns(clock_period_ps), 3) + " ns: " +
           fmt_pct(ssta.yield_at(clock_period_ps), 3) + "\n";

  // Top endpoints by criticality; net-index order breaks ties so the
  // listing is deterministic.
  std::vector<std::size_t> order(ssta.po_nets.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return ssta.po_tightness[a] > ssta.po_tightness[b];
                   });
  const std::size_t top = std::min<std::size_t>(5, order.size());
  out += "  top critical endpoints:\n";
  for (std::size_t i = 0; i < top; ++i) {
    const std::size_t k = order[i];
    const std::size_t ni = ssta.po_nets[k];
    out += "    " + pad_right(netlist.nets()[ni].name, 12) + " criticality " +
           num(ssta.po_tightness[k], 4) + "  mean " +
           num(units::ps_to_ns(ssta.arrival[ni].mean_ps), 4) + " ns  sigma " +
           num(ssta.arrival[ni].sigma_ps(), 2) + " ps\n";
  }
  return out;
}

}  // namespace sva
