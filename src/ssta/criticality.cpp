#include "ssta/criticality.hpp"

#include "util/error.hpp"

namespace sva {

CriticalityResult compute_criticality(const Netlist& netlist,
                                      const SstaResult& ssta) {
  const std::size_t n_nets = netlist.nets().size();
  const std::size_t n_gates = netlist.gates().size();
  SVA_REQUIRE(ssta.arrival.size() == n_nets);
  SVA_REQUIRE(ssta.gate_pin_tightness.size() == n_gates);

  CriticalityResult out;
  out.net_criticality.assign(n_nets, 0.0);
  out.arc_criticality.resize(n_gates);

  // Seed the endpoints with the chip-max fold probabilities.
  for (std::size_t i = 0; i < ssta.po_nets.size(); ++i)
    out.net_criticality[ssta.po_nets[i]] += ssta.po_tightness[i];

  // Reverse topological order: when a gate is visited, every downstream
  // consumer of its output has already deposited its share, so the full
  // output-net mass can be split across the fanin pins by the forward
  // fold's selection probabilities.
  const std::vector<std::size_t>& topo = netlist.topological_order();
  for (std::size_t t = topo.size(); t-- > 0;) {
    const std::size_t gi = topo[t];
    const GateInst& gate = netlist.gates()[gi];
    const double crit = out.net_criticality[gate.output_net];
    const std::vector<double>& q = ssta.gate_pin_tightness[gi];
    SVA_ASSERT(q.size() == gate.fanin_nets.size());
    std::vector<double>& arcs = out.arc_criticality[gi];
    arcs.assign(q.size(), 0.0);
    for (std::size_t pi = 0; pi < q.size(); ++pi) {
      arcs[pi] = crit * q[pi];
      out.net_criticality[gate.fanin_nets[pi]] += arcs[pi];
    }
  }
  return out;
}

}  // namespace sva
