#pragma once
// Canonical first-order delay forms for block-based SSTA.
//
// Every timing quantity is carried as
//
//   d = mean + a_focus * X_F + a_global * X_G + local * R
//
// where X_F is the one chip-level standardized defocus variable (the
// paper's through-focus smile/frown behaviour: all arcs on the chip see
// the same defocus, so their focus terms are perfectly correlated),
// X_G is a chip-global CD variable (shared residual), and R is an
// independent standard normal local term, aggregated in quadrature.
// Sums over arcs are exact; statistical max at merge points uses
// Clark's moment-matched approximation with the correlation implied by
// the shared terms.

#include <cmath>

namespace sva {

/// Standard normal pdf.
double normal_pdf(double x);

/// Standard normal cdf (via erfc; deterministic within a process).
double normal_cdf(double x);

/// Inverse standard normal cdf (Acklam's rational approximation,
/// refined with one Halley step; |error| < 1e-9 over (0,1)).
double normal_quantile(double p);

/// A canonical first-order delay form (all terms in picoseconds).
struct CanonicalDelay {
  double mean_ps = 0.0;      ///< deterministic mean
  double a_focus_ps = 0.0;   ///< sensitivity to the shared defocus variable
  double a_global_ps = 0.0;  ///< sensitivity to the chip-global CD variable
  double local_ps = 0.0;     ///< independent local sigma (>= 0)

  double variance_ps2() const {
    return a_focus_ps * a_focus_ps + a_global_ps * a_global_ps +
           local_ps * local_ps;
  }
  double sigma_ps() const { return std::sqrt(variance_ps2()); }

  /// Gaussian quantile of this form: mean + z_q * sigma.
  double quantile_ps(double q) const {
    return mean_ps + normal_quantile(q) * sigma_ps();
  }
};

/// Exact sum of two canonical forms: means and shared sensitivities add
/// linearly; independent local terms add in quadrature.
CanonicalDelay canonical_sum(const CanonicalDelay& a, const CanonicalDelay& b);

/// Scale a canonical form by a deterministic factor (k >= 0).
CanonicalDelay canonical_scale(const CanonicalDelay& d, double k);

/// Covariance between two canonical forms (shared terms only; the local
/// terms are independent by construction).
double canonical_covariance_ps2(const CanonicalDelay& a,
                                const CanonicalDelay& b);

/// Result of a Clark moment-matched max: the canonical form of
/// max(a, b), plus the tightness P(a >= b) used for criticality.
struct ClarkMax {
  CanonicalDelay value;
  double tightness_a = 1.0;  ///< probability that `a` sets the max
};

/// Clark's moment-matched statistical max of two canonical forms.
///
/// The matched form reproduces E[max] exactly and Var[max] as closely
/// as the canonical basis allows: shared sensitivities are
/// tightness-weighted (a_max = T*a_A + (1-T)*a_B) and the local term
/// absorbs the variance residual.  If the residual is negative (rare:
/// strongly anti-correlated inputs) the shared sensitivities are
/// rescaled so the total variance matches and local is zero.
///
/// Deterministic degenerate handling: when the forms are (near-)
/// perfectly correlated (theta ~ 0) the larger mean wins outright with
/// tightness 1/0; a tie goes to `a`, matching the strict `>` winner
/// selection in Sta::evaluate_gate where the incumbent keeps the max.
ClarkMax clark_max(const CanonicalDelay& a, const CanonicalDelay& b);

/// Same, with an explicit extra covariance (ps^2) between the two local
/// terms on top of the shared-variable covariance.  The propagation
/// engine supplies the exact dot product of the two forms' per-residual
/// coefficient vectors here, so reconvergent paths (which share most of
/// their upstream arcs) are not treated as independent at merge points.
ClarkMax clark_max(const CanonicalDelay& a, const CanonicalDelay& b,
                   double local_cov_ps2);

}  // namespace sva
