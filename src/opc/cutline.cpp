#include "opc/cutline.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace sva {
namespace {
constexpr Nm kMergeEps = 1e-6;
}

void OpcProblem::validate() const {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto& l = lines[i];
    SVA_REQUIRE_MSG(l.drawn_hi > l.drawn_lo, "line must have positive width");
    SVA_REQUIRE_MSG(l.mask_hi > l.mask_lo, "mask must have positive width");
    if (i > 0)
      SVA_REQUIRE_MSG(l.drawn_lo >= lines[i - 1].drawn_hi - kMergeEps,
                      "lines must be sorted and non-overlapping");
  }
}

OpcProblem extract_cutline(const Layout& layout, Nm y,
                           const std::vector<long>& shape_tags) {
  SVA_REQUIRE(shape_tags.empty() || shape_tags.size() == layout.size());

  struct Interval {
    Nm lo, hi;
    long tag;
  };
  std::vector<Interval> raw;
  const auto& shapes = layout.shapes();
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    const Shape& s = shapes[i];
    if (s.layer != Layer::Poly && s.layer != Layer::DummyPoly) continue;
    if (y < s.rect.y_lo || y > s.rect.y_hi) continue;
    const long tag = shape_tags.empty() ? -1 : shape_tags[i];
    raw.push_back({s.rect.x_lo, s.rect.x_hi, tag});
  }
  std::sort(raw.begin(), raw.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });

  OpcProblem problem;
  for (const Interval& iv : raw) {
    if (!problem.lines.empty() &&
        iv.lo <= problem.lines.back().drawn_hi + kMergeEps) {
      // Abutting/overlapping poly merges into one printed line; keep the
      // tag of the wider contributor.
      OpcLine& prev = problem.lines.back();
      const Nm prev_w = prev.drawn_width();
      prev.drawn_hi = std::max(prev.drawn_hi, iv.hi);
      prev.mask_hi = prev.drawn_hi;
      if (iv.hi - iv.lo > prev_w && iv.tag != -1) prev.tag = iv.tag;
      continue;
    }
    OpcLine line;
    line.drawn_lo = iv.lo;
    line.drawn_hi = iv.hi;
    line.mask_lo = iv.lo;
    line.mask_hi = iv.hi;
    line.tag = iv.tag;
    problem.lines.push_back(line);
  }
  problem.validate();
  return problem;
}

OpcProblem extract_cutline(const Layout& layout, Nm y) {
  return extract_cutline(layout, y, {});
}

}  // namespace sva
