#pragma once
// Sub-Resolution Assist Feature (SRAF) insertion.
//
// Paper Secs. 2 and 6: the through-focus penalty of isolated lines "is
// somewhat mitigated by insertion of assist features [11] but never
// completely", and the authors' follow-up work adds SRAFs to the process.
// Rule-based insertion: wide clear gaps receive one or two narrow
// scattering bars that make an isolated line image more like a dense one.
// The bars are below the resolution limit and must not print themselves.

#include <cstddef>

#include "opc/cutline.hpp"
#include "util/units.hpp"

namespace sva {

/// Tag carried by inserted assist lines.
inline constexpr long kSrafTag = -2;

struct SrafConfig {
  Nm width = 40.0;               ///< bar width (sub-resolution)
  Nm space_to_main = 130.0;      ///< clear space from a main feature edge
  Nm min_space_between = 120.0;  ///< clear space between two bars
  /// Gaps at least this wide receive one centred bar.
  Nm single_sraf_gap = 330.0;
  /// Gaps at least this wide receive one bar beside each main feature.
  Nm double_sraf_gap = 520.0;
};

/// Insert assist bars into the gaps of `problem` by rule; main lines are
/// untouched.  Inserted lines carry kSrafTag and correctable == false.
OpcProblem insert_srafs(const OpcProblem& problem,
                        const SrafConfig& config = {});

/// Number of assist lines in a problem.
std::size_t count_srafs(const OpcProblem& problem);

}  // namespace sva
