#include "opc/sraf.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace sva {
namespace {

OpcLine make_sraf(Nm lo, Nm width) {
  OpcLine line;
  line.drawn_lo = lo;
  line.drawn_hi = lo + width;
  line.mask_lo = lo;
  line.mask_hi = lo + width;
  line.tag = kSrafTag;
  line.correctable = false;
  return line;
}

}  // namespace

OpcProblem insert_srafs(const OpcProblem& problem, const SrafConfig& config) {
  SVA_REQUIRE(config.width > 0.0);
  SVA_REQUIRE(config.space_to_main > 0.0);
  SVA_REQUIRE(config.single_sraf_gap >=
              2.0 * config.space_to_main + config.width);
  SVA_REQUIRE(config.double_sraf_gap >=
              2.0 * (config.space_to_main + config.width) +
                  config.min_space_between);
  problem.validate();

  OpcProblem out;
  for (std::size_t i = 0; i < problem.lines.size(); ++i) {
    out.lines.push_back(problem.lines[i]);
    if (i + 1 == problem.lines.size()) break;
    const Nm gap_lo = problem.lines[i].drawn_hi;
    const Nm gap_hi = problem.lines[i + 1].drawn_lo;
    const Nm gap = gap_hi - gap_lo;
    if (gap >= config.double_sraf_gap) {
      // One bar guarding each main feature.
      out.lines.push_back(
          make_sraf(gap_lo + config.space_to_main, config.width));
      out.lines.push_back(make_sraf(
          gap_hi - config.space_to_main - config.width, config.width));
    } else if (gap >= config.single_sraf_gap) {
      // One bar centred in the gap.
      out.lines.push_back(
          make_sraf(gap_lo + (gap - config.width) / 2.0, config.width));
    }
  }
  std::sort(out.lines.begin(), out.lines.end(),
            [](const OpcLine& a, const OpcLine& b) {
              return a.drawn_lo < b.drawn_lo;
            });
  out.validate();
  return out;
}

std::size_t count_srafs(const OpcProblem& problem) {
  std::size_t n = 0;
  for (const OpcLine& l : problem.lines)
    if (l.tag == kSrafTag) ++n;
  return n;
}

}  // namespace sva
