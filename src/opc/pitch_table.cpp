#include "opc/pitch_table.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace sva {

std::vector<PostOpcPitchPoint> characterize_post_opc_pitch(
    const LithoProcess& process, const OpcEngine& engine, Nm linewidth,
    const std::vector<Nm>& spacings, std::size_t array_lines) {
  (void)process;  // imaging happens inside the engine
  return characterize_post_opc_pitch(engine, linewidth, spacings,
                                     array_lines);
}

std::vector<PostOpcPitchPoint> characterize_post_opc_pitch(
    const OpcEngine& engine, Nm linewidth, const std::vector<Nm>& spacings,
    std::size_t array_lines) {
  SVA_REQUIRE(linewidth > 0.0);
  SVA_REQUIRE(!spacings.empty());
  SVA_REQUIRE_MSG(array_lines >= 3 && array_lines % 2 == 1,
                  "need an odd number of array lines >= 3");

  std::vector<PostOpcPitchPoint> out;
  out.reserve(spacings.size());
  for (Nm spacing : spacings) {
    SVA_REQUIRE(spacing > 0.0);
    const Nm pitch = linewidth + spacing;
    OpcProblem problem;
    for (std::size_t k = 0; k < array_lines; ++k) {
      OpcLine line;
      line.drawn_lo = static_cast<double>(k) * pitch;
      line.drawn_hi = line.drawn_lo + linewidth;
      line.mask_lo = line.drawn_lo;
      line.mask_hi = line.drawn_hi;
      line.tag = static_cast<long>(k);
      problem.lines.push_back(line);
    }
    const OpcResult result = engine.correct(problem);
    const auto& center = result.by_tag(static_cast<long>(array_lines / 2));
    PostOpcPitchPoint point;
    point.spacing = spacing;
    point.printed_cd = center.printed_cd;
    point.mask_bias = center.line.mask_width() - linewidth;
    out.push_back(point);
  }
  return out;
}

LookupTable1D post_opc_spacing_table(
    const std::vector<PostOpcPitchPoint>& points) {
  SVA_REQUIRE(points.size() >= 2);
  std::vector<double> axis;
  std::vector<double> values;
  for (const auto& p : points) {
    SVA_REQUIRE_MSG(p.printed_cd > 0.0,
                    "print failure in post-OPC pitch characterization");
    axis.push_back(p.spacing);
    values.push_back(p.printed_cd);
  }
  return LookupTable1D(std::move(axis), std::move(values));
}

Nm post_opc_pitch_half_range(const std::vector<PostOpcPitchPoint>& points) {
  SVA_REQUIRE(!points.empty());
  Nm lo = points.front().printed_cd;
  Nm hi = lo;
  for (const auto& p : points) {
    lo = std::min(lo, p.printed_cd);
    hi = std::max(hi, p.printed_cd);
  }
  return (hi - lo) / 2.0;
}

}  // namespace sva
