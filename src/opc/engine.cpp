#include "opc/engine.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace sva {
namespace {

/// Half-width of the context window embedded into the supercell.  Slightly
/// beyond the radius of influence so a neighbour straddling the ROI edge
/// is still represented.
Nm window_half_width(const OpcConfig& config) {
  return config.radius_of_influence + 200.0;
}

}  // namespace

const OpcLineResult& OpcResult::by_tag(long tag) const {
  for (const auto& l : lines)
    if (l.line.tag == tag) return l;
  throw PreconditionError("no OPC line with tag " + std::to_string(tag));
}

OpcEngine::OpcEngine(const LithoProcess& process, const OpcConfig& config)
    : OpcEngine(process, process, config) {}

OpcEngine::OpcEngine(const LithoProcess& model, const LithoProcess& wafer,
                     const OpcConfig& config)
    : model_(&model), wafer_(&wafer), config_(config) {
  SVA_REQUIRE(config.max_iterations >= 0);
  SVA_REQUIRE(config.damping > 0.0 && config.damping <= 1.0);
  SVA_REQUIRE(config.mask_grid >= 0.0);
  SVA_REQUIRE(config.min_width > 0.0);
  SVA_REQUIRE(config.min_space >= 0.0);
  SVA_REQUIRE(config.max_bias >= 0.0);
  SVA_REQUIRE(config.radius_of_influence > 0.0);
}

Nm OpcEngine::snap(Nm x) const {
  if (config_.mask_grid <= 0.0) return x;
  return std::round(x / config_.mask_grid) * config_.mask_grid;
}

OpcEngine::Printed OpcEngine::simulate_line(const LithoProcess& process,
                                            const std::vector<OpcLine>& lines,
                                            std::size_t i,
                                            std::size_t* images) const {
  const OpcLine& line = lines[i];
  const Nm center = 0.5 * (line.mask_lo + line.mask_hi);
  const Nm half_window = window_half_width(config_);

  // Collect neighbour mask segments within the window, expressed as
  // (spacing, width) pairs relative to the centre line's mask edges.
  std::vector<std::pair<Nm, Nm>> left;
  Nm prev_lo = line.mask_lo;
  for (std::size_t j = i; j-- > 0;) {
    const OpcLine& n = lines[j];
    if (line.mask_lo - n.mask_hi > half_window) break;
    Nm spacing = prev_lo - n.mask_hi;
    if (spacing <= 0.0) spacing = 1.0;  // transiently abutting masks
    left.emplace_back(spacing, n.mask_width());
    prev_lo = n.mask_lo;
  }
  std::vector<std::pair<Nm, Nm>> right;
  Nm prev_hi = line.mask_hi;
  for (std::size_t j = i + 1; j < lines.size(); ++j) {
    const OpcLine& n = lines[j];
    if (n.mask_lo - line.mask_hi > half_window) break;
    Nm spacing = n.mask_lo - prev_hi;
    if (spacing <= 0.0) spacing = 1.0;
    right.emplace_back(spacing, n.mask_width());
    prev_hi = n.mask_hi;
  }

  const auto mask = MaskPattern1D::local_context(
      line.mask_width(), left, right, LithoProcess::kSupercellPeriod);
  const ImageProfile img = process.simulator().image(mask, 0.0);
  if (images != nullptr) ++*images;
  const auto printed =
      process.resist().printed_line(img, mask.period() / 2.0);
  Printed out;
  if (!printed) return out;
  out.ok = true;
  // Map supercell coordinates back to global: the centre line's mask centre
  // sits at period/2.
  const Nm offset = center - LithoProcess::kSupercellPeriod / 2.0;
  out.lo = printed->left + offset;
  out.hi = printed->right + offset;
  return out;
}

void OpcEngine::enforce_rules(std::vector<OpcLine>& lines,
                              std::size_t i) const {
  OpcLine& line = lines[i];
  // 1. Per-edge bias limit (mask rule / OPC runtime constraint).
  line.mask_lo = std::clamp(line.mask_lo, line.drawn_lo - config_.max_bias,
                            line.drawn_lo + config_.max_bias);
  line.mask_hi = std::clamp(line.mask_hi, line.drawn_hi - config_.max_bias,
                            line.drawn_hi + config_.max_bias);
  // 2. Manufacturing grid.
  line.mask_lo = snap(line.mask_lo);
  line.mask_hi = snap(line.mask_hi);
  // 3. Minimum width: grow symmetrically on grid.
  while (line.mask_width() < config_.min_width) {
    line.mask_lo -= config_.mask_grid > 0.0 ? config_.mask_grid : 0.5;
    line.mask_hi += config_.mask_grid > 0.0 ? config_.mask_grid : 0.5;
  }
  // 4. Minimum space against neighbours (push this line's edges inward;
  // neighbours are left untouched so the pass stays order-independent
  // enough for a damped iteration).
  if (i > 0) {
    const Nm lo_limit = lines[i - 1].mask_hi + config_.min_space;
    if (line.mask_lo < lo_limit && lo_limit < line.mask_hi)
      line.mask_lo = snap(lo_limit + 0.5 * config_.mask_grid);
  }
  if (i + 1 < lines.size()) {
    const Nm hi_limit = lines[i + 1].mask_lo - config_.min_space;
    if (line.mask_hi > hi_limit && hi_limit > line.mask_lo)
      line.mask_hi = snap(hi_limit - 0.5 * config_.mask_grid);
  }
}

OpcResult OpcEngine::correct(const OpcProblem& problem) const {
  problem.validate();
  std::vector<OpcLine> lines = problem.lines;
  OpcResult result;

  int iterations = 0;
  Nm max_epe = 0.0;
  for (int it = 0; it < config_.max_iterations; ++it) {
    ++iterations;
    // Jacobi pass: measure all EPEs against the current masks first.
    // Uncorrectable lines (assist features) are part of every context but
    // are neither simulated nor moved.
    std::vector<Printed> printed(lines.size());
    for (std::size_t i = 0; i < lines.size(); ++i)
      if (lines[i].correctable)
        printed[i] =
            simulate_line(*model_, lines, i, &result.images_simulated);

    max_epe = 0.0;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (!lines[i].correctable) continue;  // e.g. assist features
      if (!printed[i].ok) {
        // Feature vanished: widen the mask aggressively and keep going.
        lines[i].mask_lo -= 2.0 * config_.mask_grid;
        lines[i].mask_hi += 2.0 * config_.mask_grid;
        enforce_rules(lines, i);
        max_epe = std::max(max_epe, config_.convergence_epe * 10.0);
        continue;
      }
      const Nm epe_lo = printed[i].lo - lines[i].drawn_lo;
      const Nm epe_hi = printed[i].hi - lines[i].drawn_hi;
      max_epe = std::max({max_epe, std::abs(epe_lo), std::abs(epe_hi)});
      // Move each mask edge against its printed error.
      lines[i].mask_lo -= config_.damping * epe_lo;
      lines[i].mask_hi -= config_.damping * epe_hi;
      enforce_rules(lines, i);
    }
    if (max_epe < config_.convergence_epe) break;
  }

  // Final measurement pass with the corrected masks.
  result.iterations_used = iterations;
  result.lines.reserve(lines.size());
  Nm final_max_epe = 0.0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    OpcLineResult lr;
    lr.line = lines[i];
    const Printed p = simulate_line(*wafer_, lines, i, &result.images_simulated);
    if (p.ok) {
      lr.printed_lo = p.lo;
      lr.printed_hi = p.hi;
      lr.printed_cd = p.hi - p.lo;
      lr.epe_lo = p.lo - lines[i].drawn_lo;
      lr.epe_hi = p.hi - lines[i].drawn_hi;
      final_max_epe =
          std::max({final_max_epe, std::abs(lr.epe_lo), std::abs(lr.epe_hi)});
    }
    result.lines.push_back(lr);
  }
  result.final_max_epe = final_max_epe;
  return result;
}

OpcResult OpcEngine::measure(const OpcProblem& problem) const {
  problem.validate();
  OpcResult result;
  result.lines.reserve(problem.lines.size());
  for (std::size_t i = 0; i < problem.lines.size(); ++i) {
    OpcLineResult lr;
    lr.line = problem.lines[i];
    const Printed p =
        simulate_line(*wafer_, problem.lines, i, &result.images_simulated);
    if (p.ok) {
      lr.printed_lo = p.lo;
      lr.printed_hi = p.hi;
      lr.printed_cd = p.hi - p.lo;
      lr.epe_lo = p.lo - problem.lines[i].drawn_lo;
      lr.epe_hi = p.hi - problem.lines[i].drawn_hi;
      result.final_max_epe = std::max(
          {result.final_max_epe, std::abs(lr.epe_lo), std::abs(lr.epe_hi)});
    }
    result.lines.push_back(lr);
  }
  return result;
}

}  // namespace sva
