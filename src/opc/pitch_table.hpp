#pragma once
// Post-OPC pitch -> CD characterization (paper Sec. 3.1.1 / 3.3).
//
// "To compute the impact of through-pitch variation, we draw test layouts
// consisting of parallel poly lines with fixed width and length but
// varying spacing.  These test layouts are then corrected with the
// standard OPC flow and CD is measured to construct the lookup table."
//
// Each test layout here is a finite array of lines at one spacing; the
// centre line's post-OPC printed CD is recorded.  The resulting table is
// what the in-context timing flow uses for cell-boundary devices, and its
// half-range is the measured +-lvar_pitch.

#include <vector>

#include "litho/cd_model.hpp"
#include "opc/engine.hpp"
#include "util/interp.hpp"

namespace sva {

struct PostOpcPitchPoint {
  Nm spacing = 0.0;     ///< one-sided clear spacing of the test grating
  Nm printed_cd = 0.0;  ///< centre-line CD after OPC (0 = print failure)
  Nm mask_bias = 0.0;   ///< total mask-width change applied by OPC
};

/// Run the OPC flow on a line array per spacing and measure the centre CD.
/// `array_lines` is the number of parallel lines per test layout (odd;
/// default 7 gives three shielding lines each side of the measured one).
std::vector<PostOpcPitchPoint> characterize_post_opc_pitch(
    const OpcEngine& engine, Nm linewidth, const std::vector<Nm>& spacings,
    std::size_t array_lines = 7);

/// Backward-compatible overload; the explicit process argument is unused
/// (imaging happens inside the engine).
std::vector<PostOpcPitchPoint> characterize_post_opc_pitch(
    const LithoProcess& process, const OpcEngine& engine, Nm linewidth,
    const std::vector<Nm>& spacings, std::size_t array_lines = 7);

/// Spacing -> printed-CD lookup table from the characterization points.
/// Throws if any point failed to print.
LookupTable1D post_opc_spacing_table(
    const std::vector<PostOpcPitchPoint>& points);

/// Half-range (max - min)/2 of the post-OPC printed CD over the table:
/// the measured +-lvar_pitch.
Nm post_opc_pitch_half_range(const std::vector<PostOpcPitchPoint>& points);

}  // namespace sva
