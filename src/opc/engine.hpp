#pragma once
// Model-based OPC engine for 1-D poly-line problems.
//
// Iterative edge-movement correction: each line's two edges are fragments;
// every iteration simulates each line in its *current mask* context,
// measures the edge-placement error (EPE) of the printed edges against the
// drawn targets, and moves the mask edges against the error (damped Jacobi
// update across all lines).  Mask rules -- manufacturing grid snap, minimum
// mask width, minimum mask space, maximum per-edge bias -- are enforced
// after every move.
//
// The rules plus the finite iteration budget are what leave the residual
// systematic iso-dense bias the paper's methodology exploits: "model-based
// OPC tries to achieve the target gate length but is never able to correct
// the design perfectly ... mask rule constraints, model fidelity, and
// idiosyncrasies of the OPC algorithm" (Sec. 2).

#include <cstddef>
#include <vector>

#include "litho/cd_model.hpp"
#include "opc/cutline.hpp"
#include "util/units.hpp"

namespace sva {

struct OpcConfig {
  int max_iterations = 4;     ///< finite budget, as in production flows
  double damping = 0.6;       ///< edge-move fraction of measured EPE
  Nm mask_grid = 2.0;         ///< mask manufacturing grid (edges snap)
  Nm min_width = 50.0;        ///< minimum mask linewidth
  Nm min_space = 80.0;        ///< minimum mask space between lines
  Nm max_bias = 25.0;         ///< maximum |mask - drawn| per edge
  Nm convergence_epe = 0.25;  ///< stop when max |EPE| falls below this
  Nm radius_of_influence = 600.0;  ///< context window half-width
};

/// Per-line outcome of a correction or measurement pass.
struct OpcLineResult {
  OpcLine line;          ///< final mask edges
  Nm printed_cd = 0.0;   ///< post-OPC printed CD at best focus (0 = failure)
  Nm printed_lo = 0.0;   ///< printed edge positions (valid if printed_cd>0)
  Nm printed_hi = 0.0;
  Nm epe_lo = 0.0;       ///< final left-edge placement error
  Nm epe_hi = 0.0;       ///< final right-edge placement error
};

struct OpcResult {
  std::vector<OpcLineResult> lines;
  int iterations_used = 0;
  Nm final_max_epe = 0.0;
  std::size_t images_simulated = 0;

  /// Result for the line with the given tag; throws if absent.
  const OpcLineResult& by_tag(long tag) const;
};

class OpcEngine {
 public:
  /// Single-process engine: the OPC model and the wafer are the same
  /// simulator (idealized model fidelity).  `process` must outlive the
  /// engine.
  OpcEngine(const LithoProcess& process, const OpcConfig& config);

  /// Dual-process engine: corrections are iterated against `model`
  /// (the OPC model build) but final printing is measured with `wafer`
  /// (the true process).  The mismatch is the "model fidelity" residual
  /// the paper lists among the reasons OPC "is never able to correct the
  /// design perfectly".  Both must outlive the engine.
  OpcEngine(const LithoProcess& model, const LithoProcess& wafer,
            const OpcConfig& config);

  /// Correct all lines of the problem in place and return final masks plus
  /// post-correction printed CDs.
  OpcResult correct(const OpcProblem& problem) const;

  /// Measure printed CDs of the problem without correcting (mask edges as
  /// given).  Used for the "no OPC" baseline and for re-measuring a
  /// library-corrected cell in a different placement context.
  OpcResult measure(const OpcProblem& problem) const;

  const OpcConfig& config() const { return config_; }

 private:
  struct Printed {
    bool ok = false;
    Nm lo = 0.0;
    Nm hi = 0.0;
  };

  /// Simulate line i of `lines` with `process` and return the printed
  /// edges in global coordinates.
  Printed simulate_line(const LithoProcess& process,
                        const std::vector<OpcLine>& lines, std::size_t i,
                        std::size_t* images) const;

  /// Apply mask rules to line i given its (already updated) neighbours.
  void enforce_rules(std::vector<OpcLine>& lines, std::size_t i) const;

  Nm snap(Nm x) const;

  const LithoProcess* model_;  ///< process used to drive corrections
  const LithoProcess* wafer_;  ///< process used for final measurement
  OpcConfig config_;
};

}  // namespace sva
