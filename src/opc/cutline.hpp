#pragma once
// Cutline extraction: reduce a 2-D poly layout to the 1-D line sequences
// OPC and CD measurement operate on.
//
// Poly gates are vertical stripes; their printing is governed by the
// horizontal cross-section at the device's y position.  A cutline at a
// given y through a layout yields the ordered sequence of poly intervals
// crossing that y.  Placed rows use two standard cutlines -- one through
// the PMOS region (top) and one through the NMOS region (bottom) --
// matching the paper's distinction between top and bottom neighbour
// spacings (nps_LT vs nps_LB).

#include <vector>

#include "geom/layout.hpp"
#include "util/units.hpp"

namespace sva {

/// One poly line on a cutline.  `drawn_*` are the design (target) edges;
/// `mask_*` start equal to drawn and are modified by OPC.
struct OpcLine {
  Nm drawn_lo = 0.0;
  Nm drawn_hi = 0.0;
  Nm mask_lo = 0.0;
  Nm mask_hi = 0.0;
  /// Caller-supplied identifier (e.g. encodes instance/device); -1 = none
  /// (dummy fill, cell-internal non-gate poly), -2 = assist feature.
  long tag = -1;
  /// OPC may move this line's edges.  Sub-resolution assist features are
  /// placed by rule and left untouched (false).
  bool correctable = true;

  Nm drawn_width() const { return drawn_hi - drawn_lo; }
  Nm mask_width() const { return mask_hi - mask_lo; }
  Nm drawn_center() const { return 0.5 * (drawn_lo + drawn_hi); }
};

/// An independent 1-D OPC problem: lines sorted by x, non-overlapping.
struct OpcProblem {
  std::vector<OpcLine> lines;

  /// Validate ordering/overlap invariants (throws on violation).
  void validate() const;
};

/// Extract the poly intervals crossing horizontal line y.  Printable poly
/// (functional + dummy) participates; intervals are merged if they abut or
/// overlap (tag of the widest contributor wins).  Tags are assigned by the
/// `tag_of` callback from the shape index in `layout.shapes()`; return -1
/// for untagged shapes.
OpcProblem extract_cutline(const Layout& layout, Nm y,
                           const std::vector<long>& shape_tags);

/// Convenience: extract with all tags = -1.
OpcProblem extract_cutline(const Layout& layout, Nm y);

}  // namespace sva
