#include "core/exposure.hpp"

#include "core/scales.hpp"
#include "util/error.hpp"

namespace sva {

std::vector<ExposurePoint> analyze_exposure(
    const Netlist& netlist, const ContextLibrary& context,
    const std::vector<VersionKey>& versions,
    const std::vector<InstanceNps>& nps, const CdBudget& budget,
    const Sta& sta, const ExposureConfig& config) {
  SVA_REQUIRE(!config.doses.empty());
  SVA_REQUIRE(config.dose_cd_slope >= 0.0);
  const Nm l_nom =
      netlist.library().master(0).tech().gate_length;

  // Baseline labels at nominal dose, from the measured spacings.
  const auto baseline = annotate_arcs(netlist, context, versions, budget,
                                      config.policy, 0.0, &nps);

  std::vector<ExposurePoint> out;
  out.reserve(config.doses.size());
  for (double dose : config.doses) {
    SVA_REQUIRE(dose > 0.0);
    ExposurePoint point;
    point.dose = dose;
    // Overexposure (dose > 1) thins every line by about
    // l_nom * slope * (dose - 1); each of a gap's two bounding edges
    // retreats by half of that, so the clear spacing *grows* by the full
    // line-width change.
    point.spacing_shift = l_nom * config.dose_cd_slope * (dose - 1.0);

    const auto annotations =
        annotate_arcs(netlist, context, versions, budget, config.policy,
                      point.spacing_shift, &nps);

    point.arc_class_counts.assign(3, 0);
    for (std::size_t gi = 0; gi < annotations.size(); ++gi) {
      for (std::size_t ai = 0; ai < annotations[gi].size(); ++ai) {
        ++point.arc_class_counts[static_cast<std::size_t>(
            annotations[gi][ai].arc_class)];
        if (annotations[gi][ai].arc_class != baseline[gi][ai].arc_class)
          ++point.arc_flips;
      }
    }

    const MatrixScale bc(
        corner_factors(netlist, annotations, budget, Corner::Best));
    const MatrixScale wc(
        corner_factors(netlist, annotations, budget, Corner::Worst));
    point.sva_bc_ps = sta.run(bc).critical_delay_ps;
    point.sva_wc_ps = sta.run(wc).critical_delay_ps;
    out.push_back(std::move(point));
  }
  return out;
}

}  // namespace sva
