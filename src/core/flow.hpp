#pragma once
// The end-to-end systematic-variation-aware timing flow (paper Secs. 3-4).
//
// Construction performs the design-independent setup:
//   1. build + characterize the 10-cell library;
//   2. calibrate the wafer and OPC-model litho processes;
//   3. library-based OPC of every master in the dummy environment and
//      per-device printed-CD measurement (Sec. 3.1.1);
//   4. post-OPC pitch->CD characterization of the test gratings and the
//      boundary-device lookup table (Sec. 3.3);
//   5. expansion into the 81-version context library (Sec. 3.1.2).
//
// analyze() then runs, for one benchmark circuit: placement, nps
// extraction and version binding (Sec. 3.1.3), traditional corner STA,
// and the proposed in-context corner STA, returning the Table 2 row.
//
// Steps 3-4 dominate construction time and are pure functions of the
// configuration, so with FlowConfig::cache_dir set they are persisted to
// a content-hash-keyed snapshot and restored bit-identically on later
// runs (a warm start skips the OPC simulations entirely).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cell/characterize.hpp"
#include "cell/context_library.hpp"
#include "cell/library.hpp"
#include "cell/library_opc.hpp"
#include "core/budget.hpp"
#include "core/classify.hpp"
#include "core/scales.hpp"
#include "engine/context_cache.hpp"
#include "engine/thread_pool.hpp"
#include "litho/cd_model.hpp"
#include "netlist/iscas85.hpp"
#include "opc/engine.hpp"
#include "opc/pitch_table.hpp"
#include "place/context.hpp"
#include "place/placement.hpp"
#include "sta/sta.hpp"
#include "util/diagnostics.hpp"

namespace sva {

struct FlowConfig {
  CellTech cell_tech;
  ElectricalTech electrical;
  OpticsConfig wafer_optics;
  /// Optics of the OPC model build.  Any difference from `wafer_optics`
  /// models finite OPC model fidelity (see opc/engine.hpp): the default
  /// uses a slightly tighter annulus and less resist blur than the wafer,
  /// giving the pitch-dependent systematic residual the paper observes
  /// after production OPC (Fig. 7).
  OpticsConfig opc_model_optics = default_opc_model_optics();

  static OpticsConfig default_opc_model_optics() {
    OpticsConfig o;
    o.sigma_inner = 0.40;
    o.sigma_outer = 1.00;
    o.resist_diffusion_length = 25.0;
    return o;
  }
  OpcConfig opc;
  LibraryOpcConfig library_opc;
  PlacementConfig placement;
  StaConfig sta;
  ContextBins bins;
  CdBudget budget;
  ArcLabelPolicy arc_policy = ArcLabelPolicy::Majority;
  /// One-sided spacings of the pitch->CD test gratings (nm).
  std::vector<Nm> table_spacings = {150, 200, 250, 300, 350,
                                    400, 450, 500, 550, 600};
  /// Dense anchor spacing used to calibrate resist thresholds.
  Nm anchor_spacing = 150.0;

  /// Directory of the persistent characterization cache.  When non-empty,
  /// construction tries to restore the library-OPC and pitch products
  /// from a snapshot there (keyed by setup_content_hash()) and snapshots
  /// them after a cold computation.  Empty disables persistence; the CLI
  /// plumbs --cache-dir / --no-cache into this field.
  std::string cache_dir;

  /// Reaction to recoverable setup faults (a failed per-cell OPC solve):
  /// Degrade isolates the cell with the uniform drawn-CD fallback and a
  /// warning diagnostic; Strict propagates the failure out of the
  /// constructor.  The CLI plumbs --strict / --keep-going into this field
  /// (keep-going, i.e. Degrade, is the default).
  FaultPolicy fault_policy = FaultPolicy::Degrade;
};

/// One benchmark circuit's corner results: a row of the paper's Table 2.
struct CircuitAnalysis {
  std::string name;
  std::size_t gate_count = 0;

  double trad_nom_ps = 0.0;
  double trad_bc_ps = 0.0;
  double trad_wc_ps = 0.0;
  double sva_nom_ps = 0.0;
  double sva_bc_ps = 0.0;
  double sva_wc_ps = 0.0;

  /// Arc-class counts over the design: [smile, frown, self-compensated].
  std::vector<std::size_t> arc_class_counts;

  double trad_spread_ps() const { return trad_wc_ps - trad_bc_ps; }
  double sva_spread_ps() const { return sva_wc_ps - sva_bc_ps; }
  /// The paper's "% Reduction in Uncertainty".
  double uncertainty_reduction() const {
    return 1.0 - sva_spread_ps() / trad_spread_ps();
  }
};

class SvaFlow {
 public:
  explicit SvaFlow(const FlowConfig& config = {});

  // Non-copyable: internal components hold cross-references.
  SvaFlow(const SvaFlow&) = delete;
  SvaFlow& operator=(const SvaFlow&) = delete;

  const FlowConfig& config() const { return config_; }
  const CellLibrary& library() const { return library_; }
  const CharacterizedLibrary& characterized() const { return characterized_; }
  const LithoProcess& wafer_process() const { return wafer_; }
  const LithoProcess& model_process() const { return model_; }
  const OpcEngine& opc_engine() const { return engine_; }
  const std::vector<LibraryOpcCellResult>& library_opc_results() const {
    return library_opc_;
  }
  const std::vector<PostOpcPitchPoint>& pitch_points() const {
    return pitch_points_;
  }
  const TableCdModel& boundary_model() const { return *boundary_model_; }
  const ContextLibrary& context_library() const { return *context_; }
  /// Memoized view of the context library: (cell, version) slots are
  /// characterized once, lazily, and shared by all analyses (and all
  /// threads) running against this flow.
  const ContextCache& context_cache() const { return *context_cache_; }

  /// Warm-start the context cache from / snapshot it to a persistent
  /// cache directory (see engine/context_cache.hpp for the format and the
  /// corruption policy).  Thin forwarders so every flow consumer -- CLI
  /// commands, benches, tests -- shares one call site idiom.
  bool try_load_context_cache(const std::string& dir) const {
    return context_cache_->try_load(dir);
  }
  std::size_t save_context_cache(const std::string& dir) const {
    return context_cache_->save(dir);
  }

  /// Wall-clock seconds spent on library OPC + pitch characterization
  /// during construction (Table 1's "Library OPC Runtime").  Near zero
  /// when the setup was restored from a snapshot.
  double setup_opc_seconds() const { return setup_opc_seconds_; }

  /// True when construction restored the OPC setup products from a
  /// persistent snapshot instead of recomputing them.
  bool setup_from_cache() const { return setup_from_cache_; }

  /// True when at least one per-cell OPC solve failed and was replaced by
  /// the uniform drawn-CD fallback (FaultPolicy::Degrade).  A degraded
  /// setup is never snapshotted to the cache.
  bool setup_degraded() const { return setup_degraded_; }

  /// FNV-1a hash of everything the setup products depend on: library
  /// masters, tech and electrical parameters, both optics models, the OPC
  /// configs, grating spacings, and the binning config.  The snapshot
  /// invalidation key.
  std::uint64_t setup_content_hash() const;

  /// Setup snapshot file for this configuration inside `dir` (the content
  /// hash is part of the name, so snapshots of different configurations
  /// coexist).
  std::string setup_cache_file_path(const std::string& dir) const;

  static constexpr std::uint32_t kSetupMagic = 0x53415653;  ///< "SVAS" (LE)
  static constexpr std::uint32_t kSetupFormatVersion = 1;

  /// Generate a benchmark netlist / its placement with this flow's
  /// library and configuration.
  Netlist make_benchmark(const std::string& name) const;
  Placement make_placement(const Netlist& netlist) const;

  /// Bind every placed instance to its context version.
  std::vector<VersionKey> bind_versions(const Placement& placement) const;

  /// Full Table 2 analysis of one placed circuit.
  CircuitAnalysis analyze(const Netlist& netlist,
                          const Placement& placement) const;

  /// Parallel analysis: the six corner STA runs (traditional and SVA
  /// {nominal, best, worst}) fan out as pool tasks; with `parallel_sta`
  /// each run additionally levelizes across the pool.  Bit-identical to
  /// the serial analyze() at any thread count.  A non-null `cancel` is
  /// polled before each corner run (and per STA level when parallel_sta);
  /// a tripped token surfaces as CancelledError out of analyze().
  CircuitAnalysis analyze(const Netlist& netlist, const Placement& placement,
                          ThreadPool& pool, bool parallel_sta = false,
                          const CancelToken* cancel = nullptr) const;

  /// Convenience: generate, place, analyze.
  CircuitAnalysis analyze_benchmark(const std::string& name) const;

 private:
  CircuitAnalysis analyze_impl(const Netlist& netlist,
                               const Placement& placement, ThreadPool* pool,
                               bool parallel_sta,
                               const CancelToken* cancel) const;
  /// Restore library_opc_ + pitch_points_ from `dir`; false (and leaves
  /// both empty) when the snapshot is missing, stale, or corrupt.
  bool try_load_setup(const std::string& dir);
  void save_setup(const std::string& dir) const;
  FlowConfig config_;
  CellLibrary library_;
  CharacterizedLibrary characterized_;
  LithoProcess wafer_;
  LithoProcess model_;
  OpcEngine engine_;
  std::vector<LibraryOpcCellResult> library_opc_;
  std::vector<PostOpcPitchPoint> pitch_points_;
  std::unique_ptr<TableCdModel> boundary_model_;
  std::unique_ptr<ContextLibrary> context_;
  std::unique_ptr<ContextCache> context_cache_;
  double setup_opc_seconds_ = 0.0;
  bool setup_from_cache_ = false;
  bool setup_degraded_ = false;
};

}  // namespace sva
