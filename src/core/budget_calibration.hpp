#pragma once
// Measuring the systematic budget shares instead of assuming them.
//
// The paper computes its corners from two measured quantities (Sec. 3.3):
// "Denote the total range of CD variation after OPC by +-lvar_pitch" from
// the corrected test layouts, and "+-lvar_focus using the FEM curves
// built from fabrication of test structures"; for Table 2 it then
// *assumes* both are 30% of the total budget, citing [8].  This module
// closes the loop: it measures both half-ranges from the flow's own
// process (post-OPC pitch characterization; FEM through the calibrated
// print model) and derives a CdBudget whose shares come from measurement.

#include "core/budget.hpp"
#include "litho/bossung.hpp"
#include "litho/cd_model.hpp"
#include "litho/focus_response.hpp"
#include "opc/engine.hpp"
#include "util/units.hpp"

namespace sva {

struct MeasuredBudget {
  Nm lvar_pitch = 0.0;  ///< post-OPC through-pitch CD half-range (nm)
  Nm lvar_focus = 0.0;  ///< through-focus CD half-range over the window

  /// Derive a CdBudget: shares are the measured half-ranges over the
  /// total budget (total_fraction * l_nom), clamped so together they
  /// never exceed the whole budget (the remainder stays random).
  CdBudget to_budget(Nm l_nom, double total_fraction = 0.10,
                     double other_process_fraction = 0.05) const;
};

struct BudgetCalibrationConfig {
  std::vector<Nm> pitch_spacings = {150, 200, 250, 300, 350,
                                    400, 450, 500, 550, 600};
  /// Side spacings of the FEM test features (dense .. isolated).
  std::vector<Nm> fem_spacings = {150, 340, 600};
  Nm focus_range = 300.0;  ///< the paper's +-300 nm window
  std::size_t focus_steps = 7;
};

/// Measure both systematic half-ranges for a drawn linewidth:
/// through-pitch from OPC-corrected test gratings, through-focus from the
/// print model's Bossung response over the focus window.
MeasuredBudget measure_budget(const OpcEngine& engine,
                              const PrintModel& print_model, Nm linewidth,
                              const BudgetCalibrationConfig& config = {});

}  // namespace sva
