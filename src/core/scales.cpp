#include "core/scales.hpp"

#include "util/error.hpp"

namespace sva {

namespace {

/// Non-CD process margin applied identically in both flows.
double other_process(const CdBudget& budget, Corner corner) {
  switch (corner) {
    case Corner::Worst: return budget.other_process_factor(/*worst=*/true);
    case Corner::Best: return budget.other_process_factor(/*worst=*/false);
    case Corner::Nominal: return 1.0;
  }
  return 1.0;
}

}  // namespace

TraditionalCornerScale::TraditionalCornerScale(Nm l_nom,
                                               const CdBudget& budget,
                                               Corner corner)
    : factor_(traditional_corners(l_nom, budget).at(corner) / l_nom *
              other_process(budget, corner)) {
  SVA_ASSERT(factor_ > 0.0);
}

std::vector<ArcAnnotation> annotate_gate_arcs(
    const Netlist& netlist, std::size_t gate, const ContextLibrary& context,
    const VersionKey& version, const CdBudget& budget, ArcLabelPolicy policy,
    Nm spacing_shift, const InstanceNps* nps, const ContextCache* cache) {
  SVA_REQUIRE(gate < netlist.gates().size());
  const std::size_t ci = netlist.gates()[gate].cell_index;
  const CellMaster& master = netlist.library().master(ci);
  const Nm l_nom = master.tech().gate_length;
  const Nm contacted = master.tech().contacted_pitch;

  std::vector<ArcAnnotation> out(master.arcs().size());
  for (std::size_t ai = 0; ai < master.arcs().size(); ++ai) {
    ArcAnnotation ann;
    ann.l_nom_new = cache != nullptr
                        ? cache->arc_effective_length(ci, version, ai)
                        : context.arc_effective_length(ci, version, ai);

    std::vector<DeviceClass> classes;
    classes.reserve(master.arcs()[ai].device_indices.size());
    for (std::size_t di : master.arcs()[ai].device_indices) {
      DeviceContext ctx;
      if (nps != nullptr) {
        const bool pmos = master.devices()[di].type == DeviceType::Pmos;
        ctx = context.device_context_measured(
            ci, di, pmos ? nps->lt : nps->lb, pmos ? nps->rt : nps->rb);
      } else {
        ctx = context.device_context(ci, version, di);
      }
      classes.push_back(classify_device(ctx.s_left + spacing_shift,
                                        ctx.s_right + spacing_shift,
                                        contacted));
    }
    ann.arc_class = classify_arc(classes, policy);
    ann.corners = sva_corners(l_nom, ann.l_nom_new, ann.arc_class, budget);
    out[ai] = ann;
  }
  return out;
}

std::vector<std::vector<ArcAnnotation>> annotate_arcs(
    const Netlist& netlist, const ContextLibrary& context,
    const std::vector<VersionKey>& versions, const CdBudget& budget,
    ArcLabelPolicy policy, Nm spacing_shift,
    const std::vector<InstanceNps>* measured_nps,
    const ContextCache* cache) {
  SVA_REQUIRE(measured_nps == nullptr ||
              measured_nps->size() == netlist.gates().size());
  SVA_REQUIRE(versions.size() == netlist.gates().size());

  std::vector<std::vector<ArcAnnotation>> out(netlist.gates().size());
  for (std::size_t gi = 0; gi < netlist.gates().size(); ++gi)
    out[gi] = annotate_gate_arcs(
        netlist, gi, context, versions[gi], budget, policy, spacing_shift,
        measured_nps != nullptr ? &(*measured_nps)[gi] : nullptr, cache);
  return out;
}

std::vector<double> gate_corner_factors(
    const Netlist& netlist, std::size_t gate,
    const std::vector<ArcAnnotation>& annotations, const CdBudget& budget,
    Corner corner) {
  const Nm l_nom = netlist.library()
                       .master(netlist.gates()[gate].cell_index)
                       .tech()
                       .gate_length;
  std::vector<double> factors(annotations.size());
  for (std::size_t ai = 0; ai < annotations.size(); ++ai)
    factors[ai] = annotations[ai].corners.at(corner) / l_nom *
                  other_process(budget, corner);
  return factors;
}

std::vector<std::vector<double>> corner_factors(
    const Netlist& netlist,
    const std::vector<std::vector<ArcAnnotation>>& annotations,
    const CdBudget& budget, Corner corner) {
  std::vector<std::vector<double>> factors(annotations.size());
  for (std::size_t gi = 0; gi < annotations.size(); ++gi)
    factors[gi] = gate_corner_factors(netlist, gi, annotations[gi], budget,
                                      corner);
  return factors;
}

SvaCornerScale::SvaCornerScale(const Netlist& netlist,
                               const ContextLibrary& context,
                               const std::vector<VersionKey>& versions,
                               const CdBudget& budget, Corner corner,
                               ArcLabelPolicy policy,
                               const std::vector<InstanceNps>* measured_nps,
                               const ContextCache* cache)
    : annotations_(annotate_arcs(netlist, context, versions, budget, policy,
                                 0.0, measured_nps, cache)),
      factors_(corner_factors(netlist, annotations_, budget, corner)) {}

double SvaCornerScale::scale(std::size_t gate, std::size_t arc_index) const {
  SVA_REQUIRE(gate < factors_.size());
  SVA_REQUIRE(arc_index < factors_[gate].size());
  return factors_[gate][arc_index];
}

const ArcAnnotation& SvaCornerScale::annotation(std::size_t gate,
                                                std::size_t arc_index) const {
  SVA_REQUIRE(gate < annotations_.size());
  SVA_REQUIRE(arc_index < annotations_[gate].size());
  return annotations_[gate][arc_index];
}

std::vector<std::size_t> SvaCornerScale::class_histogram() const {
  std::vector<std::size_t> counts(3, 0);
  for (const auto& gate : annotations_)
    for (const auto& ann : gate)
      ++counts[static_cast<std::size_t>(ann.arc_class)];
  return counts;
}

}  // namespace sva
