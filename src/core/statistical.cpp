#include "core/statistical.hpp"

#include <cmath>

#include "util/error.hpp"

namespace sva {
namespace {

/// Gate-length to delay-factor conversion shared by the samplers (the
/// linear-delay-in-L model of the paper).
double factor_from_length(Nm length, Nm l_nom) {
  // Keep the factor physically positive even in extreme tails.
  return std::max(length, 0.2 * l_nom) / l_nom;
}

}  // namespace

NaiveGaussianSampler::NaiveGaussianSampler(const Netlist& netlist,
                                           const CdBudget& budget, Nm l_nom,
                                           double global_share)
    : netlist_(&netlist), l_nom_(l_nom) {
  SVA_REQUIRE(l_nom > 0.0);
  SVA_REQUIRE(global_share >= 0.0 && global_share <= 1.0);
  budget.validate();
  // The full budget is the 3-sigma excursion, split between a chip-global
  // and an independent local component.
  const Nm total_sigma = budget.total(l_nom) / 3.0;
  sigma_global_ = total_sigma * global_share;
  sigma_local_ = total_sigma * (1.0 - global_share);
}

std::vector<std::vector<double>> NaiveGaussianSampler::sample(
    Rng& rng) const {
  const Nm global = rng.normal(0.0, sigma_global_);
  std::vector<std::vector<double>> out(netlist_->gates().size());
  const CellLibrary& lib = netlist_->library();
  for (std::size_t gi = 0; gi < netlist_->gates().size(); ++gi) {
    const std::size_t n_arcs =
        lib.master(netlist_->gates()[gi].cell_index).arcs().size();
    out[gi].resize(n_arcs);
    for (std::size_t ai = 0; ai < n_arcs; ++ai) {
      const Nm length =
          l_nom_ + global + rng.normal(0.0, sigma_local_);
      out[gi][ai] = factor_from_length(length, l_nom_);
    }
  }
  return out;
}

ContextAwareSampler::ContextAwareSampler(
    const Netlist& netlist, const ContextLibrary& context,
    const std::vector<VersionKey>& versions, const CdBudget& budget,
    ArcLabelPolicy policy, double global_share)
    : netlist_(&netlist),
      annotations_(annotate_arcs(netlist, context, versions, budget, policy)) {
  budget.validate();
  SVA_REQUIRE(global_share >= 0.0 && global_share <= 1.0);
  const CellLibrary& lib = netlist.library();
  l_nom_ = lib.master(0).tech().gate_length;
  lvar_focus_ = budget.lvar_focus(l_nom_);
  // Residual randomness: whatever the systematic components do not explain
  // (3-sigma = residual half-range), optionally split into a chip-global
  // and a per-device local component.
  const Nm residual =
      (budget.total(l_nom_) - budget.lvar_pitch(l_nom_) - lvar_focus_) / 3.0;
  sigma_global_ = residual * global_share;
  sigma_residual_ = residual * (1.0 - global_share);
}

std::vector<std::vector<double>> ContextAwareSampler::sample(
    Rng& rng) const {
  // One defocus state per chip: the quadratic Bossung response of each
  // class peaks at +-lvar_focus at the edge of the focus window.
  const double f = rng.uniform(-1.0, 1.0);
  const double focus_sq = f * f;
  // One chip-global residual draw; skipped when the share is zero so the
  // historic (all-local) sample stream is untouched.
  const Nm global =
      sigma_global_ > 0.0 ? rng.normal(0.0, sigma_global_) : 0.0;

  std::vector<std::vector<double>> out(annotations_.size());
  for (std::size_t gi = 0; gi < annotations_.size(); ++gi) {
    out[gi].resize(annotations_[gi].size());
    for (std::size_t ai = 0; ai < annotations_[gi].size(); ++ai) {
      const ArcAnnotation& ann = annotations_[gi][ai];
      Nm focus_shift = 0.0;
      switch (ann.arc_class) {
        case ArcClass::Smile:
          focus_shift = +lvar_focus_ * focus_sq;
          break;
        case ArcClass::Frown:
          focus_shift = -lvar_focus_ * focus_sq;
          break;
        case ArcClass::SelfCompensated:
          focus_shift = 0.0;  // smile and frown components cancel
          break;
      }
      const Nm length = ann.l_nom_new + focus_shift + global +
                        rng.normal(0.0, sigma_residual_);
      out[gi][ai] = factor_from_length(length, l_nom_);
    }
  }
  return out;
}

SpatialGaussianSampler::SpatialGaussianSampler(const Placement& placement,
                                               const CdBudget& budget,
                                               Nm l_nom,
                                               double regional_share,
                                               Nm region_size_nm)
    : netlist_(&placement.netlist()), l_nom_(l_nom) {
  SVA_REQUIRE(l_nom > 0.0);
  SVA_REQUIRE(regional_share >= 0.0 && regional_share <= 1.0);
  SVA_REQUIRE(region_size_nm > 0.0);
  budget.validate();
  const Nm total_sigma = budget.total(l_nom) / 3.0;
  sigma_regional_ = total_sigma * regional_share;
  sigma_local_ = total_sigma * (1.0 - regional_share);

  // Region grid over the placement extent.
  const CellTech& tech = netlist_->library().master(0).tech();
  const Nm die_w = placement.row_width();
  const Nm die_h =
      static_cast<double>(placement.rows().size()) * tech.cell_height;
  n_regions_x_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(die_w / region_size_nm)));
  n_regions_y_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(die_h / region_size_nm)));

  gate_region_.resize(netlist_->gates().size());
  for (std::size_t gi = 0; gi < netlist_->gates().size(); ++gi) {
    const PlacedInstance& inst = placement.instances()[gi];
    const auto rx = std::min<std::size_t>(
        n_regions_x_ - 1,
        static_cast<std::size_t>(inst.x / region_size_nm));
    const auto ry = std::min<std::size_t>(
        n_regions_y_ - 1,
        static_cast<std::size_t>(static_cast<double>(inst.row) *
                                 tech.cell_height / region_size_nm));
    gate_region_[gi] = ry * n_regions_x_ + rx;
  }
}

std::vector<std::vector<double>> SpatialGaussianSampler::sample(
    Rng& rng) const {
  std::vector<Nm> regional(region_count());
  for (Nm& r : regional) r = rng.normal(0.0, sigma_regional_);

  const CellLibrary& lib = netlist_->library();
  std::vector<std::vector<double>> out(netlist_->gates().size());
  for (std::size_t gi = 0; gi < netlist_->gates().size(); ++gi) {
    const std::size_t n_arcs =
        lib.master(netlist_->gates()[gi].cell_index).arcs().size();
    const Nm region = regional[gate_region_[gi]];
    out[gi].resize(n_arcs);
    for (std::size_t ai = 0; ai < n_arcs; ++ai) {
      const Nm length = l_nom_ + region + rng.normal(0.0, sigma_local_);
      out[gi][ai] = factor_from_length(length, l_nom_);
    }
  }
  return out;
}

double timing_yield(const DelayDistribution& distribution,
                    double clock_period_ps) {
  SVA_REQUIRE(!distribution.delays_ps.empty());
  std::size_t ok = 0;
  for (double d : distribution.delays_ps)
    if (d <= clock_period_ps) ++ok;
  return static_cast<double>(ok) /
         static_cast<double>(distribution.delays_ps.size());
}

double period_for_yield(const DelayDistribution& distribution,
                        double yield) {
  SVA_REQUIRE(yield > 0.0 && yield <= 1.0);
  return distribution.quantile_ps(yield);
}

DelayDistribution run_monte_carlo(const Sta& sta,
                                  const GateLengthSampler& sampler,
                                  const MonteCarloConfig& config,
                                  const CancelToken* cancel) {
  SVA_REQUIRE(config.samples > 0);
  Rng rng(config.seed);
  DelayDistribution dist;
  dist.delays_ps.reserve(config.samples);
  for (std::size_t s = 0; s < config.samples; ++s) {
    if (cancel != nullptr) cancel->check();
    const MatrixScale scale(sampler.sample(rng));
    dist.delays_ps.push_back(sta.run(scale).critical_delay_ps);
  }
  return dist;
}

}  // namespace sva
