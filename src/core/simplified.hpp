#pragma once
// The paper's Sec. 5 "simplified version" of the methodology.
//
// "A simplified version of the approach described in this work would be to
// ignore the impact of systematic variation on devices which lie the
// closest to the cell boundary.  In this case, the devices at the
// periphery will have their corner cases computed in the traditional
// manner independent of the placement context.  With some loss in accuracy
// (especially for smaller sized cells which have no or very few parallel
// devices), huge characterization effort (corresponding to 81 versions of
// each cell) can be avoided."
//
// Implementation: corners are computed per *device* and averaged over the
// arc's devices --
//   * boundary devices: traditional full-budget corners at the drawn
//     length (placement-independent: no context versions needed);
//   * interior devices: systematic-aware corners around their library-OPC
//     printed CD, classified from their cell-internal spacings.

#include <vector>

#include "cell/context_library.hpp"
#include "core/budget.hpp"
#include "core/corners.hpp"
#include "netlist/netlist.hpp"
#include "sta/scale.hpp"

namespace sva {

/// Corner scale of the simplified methodology.  Requires only the context
/// library's interior (library-OPC) CDs and internal geometry -- the
/// version key is never consulted, which is exactly the characterization
/// saving the paper describes.
class SimplifiedCornerScale final : public ArcScaleProvider {
 public:
  SimplifiedCornerScale(const Netlist& netlist,
                        const ContextLibrary& context, const CdBudget& budget,
                        Corner corner);

  double scale(std::size_t gate, std::size_t arc_index) const override;

  /// Corner lengths of one device under the simplified rules (exposed for
  /// tests and the ablation bench).
  static CornerLengths device_corners(const ContextLibrary& context,
                                      std::size_t cell, std::size_t device,
                                      const CdBudget& budget);

 private:
  std::vector<std::vector<double>> factors_;  // [gate][arc]
};

}  // namespace sva
