#include "core/budget_calibration.hpp"

#include <algorithm>
#include <cmath>

#include "opc/pitch_table.hpp"
#include "util/error.hpp"

namespace sva {

CdBudget MeasuredBudget::to_budget(Nm l_nom, double total_fraction,
                                   double other_process_fraction) const {
  SVA_REQUIRE(l_nom > 0.0);
  CdBudget budget;
  budget.total_fraction = total_fraction;
  budget.other_process_fraction = other_process_fraction;
  const Nm total = budget.total(l_nom);
  SVA_REQUIRE(total > 0.0);
  double pitch_share = lvar_pitch / total;
  double focus_share = lvar_focus / total;
  // The systematic parts cannot exceed the whole budget; scale down
  // proportionally if the measurement says they would (the remainder of
  // the budget stays random).
  const double sum = pitch_share + focus_share;
  if (sum > 1.0) {
    pitch_share /= sum;
    focus_share /= sum;
  }
  budget.pitch_share = pitch_share;
  budget.focus_share = focus_share;
  budget.validate();
  return budget;
}

MeasuredBudget measure_budget(const OpcEngine& engine,
                              const PrintModel& print_model, Nm linewidth,
                              const BudgetCalibrationConfig& config) {
  SVA_REQUIRE(linewidth > 0.0);
  SVA_REQUIRE(!config.pitch_spacings.empty());
  SVA_REQUIRE(!config.fem_spacings.empty());
  SVA_REQUIRE(config.focus_range > 0.0);
  SVA_REQUIRE(config.focus_steps >= 3);

  MeasuredBudget measured;

  // Through-pitch: the paper's corrected test layouts ("+-lvar_pitch").
  const auto points = characterize_post_opc_pitch(
      engine, linewidth, config.pitch_spacings);
  measured.lvar_pitch = post_opc_pitch_half_range(points);

  // Through-focus: CD half-range over the focus window for each test
  // feature (the paper's FEM, here through the calibrated print model).
  const auto defocus = defocus_sweep(config.focus_range, config.focus_steps);
  Nm worst = 0.0;
  for (Nm spacing : config.fem_spacings) {
    Nm lo = 1e18, hi = -1e18;
    for (Nm dz : defocus) {
      const Nm cd = print_model.printed_cd(linewidth, spacing, spacing, dz,
                                           1.0);
      if (cd <= 0.0) continue;
      lo = std::min(lo, cd);
      hi = std::max(hi, cd);
    }
    if (hi >= lo) worst = std::max(worst, (hi - lo) / 2.0);
  }
  measured.lvar_focus = worst;
  return measured;
}

}  // namespace sva
