#pragma once
// Systematic-variation aware detailed placement (whitespace shaping).
//
// The paper closes with: "Systematic nature of focus dependent CD
// variation suggests potential implications for compensating for such
// focus variation" -- the idea the authors later developed into
// self-compensating design.  This module implements the placement-level
// version: once device labels are known, *moving cells within their row's
// whitespace* changes the neighbour spacings, and with them the
// smile/frown labels and the context-predicted nominal lengths, so the
// worst-case corner can be improved without touching the netlist.
//
// Strategy: greedy hill climbing over the instances on (or near) the
// worst-corner critical path; each candidate tries site-quantized shifts
// inside its legal range and keeps the best improvement of the WC corner
// delay.

#include <cstddef>

#include "cell/context_library.hpp"
#include "core/budget.hpp"
#include "core/classify.hpp"
#include "netlist/netlist.hpp"
#include "place/placement.hpp"
#include "sta/sta.hpp"

namespace sva {

struct CompensationConfig {
  std::size_t max_passes = 3;      ///< greedy sweeps over the critical path
  std::size_t candidates_per_pass = 40;  ///< path gates considered per sweep
  Nm step = 170.0;                 ///< site-quantized trial shift
  std::size_t steps_each_way = 2;  ///< trials per direction per candidate
  ArcLabelPolicy policy = ArcLabelPolicy::Majority;
};

struct CompensationResult {
  double wc_before_ps = 0.0;
  double wc_after_ps = 0.0;
  std::size_t moves_applied = 0;
  std::size_t moves_evaluated = 0;

  double improvement() const {
    return 1.0 - wc_after_ps / wc_before_ps;
  }
};

/// Optimize the placement in place against the SVA worst-case corner.
/// The placement is modified; the netlist and all libraries are not.
CompensationResult compensate_placement(Placement& placement,
                                        const ContextLibrary& context,
                                        const CharacterizedLibrary& library,
                                        const CdBudget& budget,
                                        const StaConfig& sta_config,
                                        const CompensationConfig& config = {});

}  // namespace sva
