#pragma once
// Corner-aware ArcScaleProviders: the bridge from corner gate lengths to
// the STA engine.
//
// TraditionalCornerScale reproduces the sign-off flow the paper criticizes
// (every arc scaled by the full-budget corner length).  SvaCornerScale is
// the proposed flow: each placed instance is bound to its context version
// (one of the 81), every arc gets a context-predicted nominal length and a
// smile/frown/self-compensated label, and corners are computed with
// Eqs. (1)-(5).

#include <vector>

#include "cell/context_library.hpp"
#include "core/budget.hpp"
#include "core/classify.hpp"
#include "core/corners.hpp"
#include "engine/context_cache.hpp"
#include "netlist/netlist.hpp"
#include "place/context.hpp"
#include "sta/scale.hpp"

namespace sva {

/// Traditional corner: uniform scaling of every arc.
class TraditionalCornerScale final : public ArcScaleProvider {
 public:
  TraditionalCornerScale(Nm l_nom, const CdBudget& budget, Corner corner);

  double scale(std::size_t, std::size_t) const override { return factor_; }
  double factor() const { return factor_; }

 private:
  double factor_;
};

/// Per-(gate, arc) classification and corner data of the SVA flow.
struct ArcAnnotation {
  Nm l_nom_new = 0.0;           ///< context-predicted effective length
  ArcClass arc_class = ArcClass::SelfCompensated;
  CornerLengths corners;
};

/// The systematic-variation-aware corner scale.
class SvaCornerScale final : public ArcScaleProvider {
 public:
  /// `context` must outlive the scale; `versions` holds the bound version
  /// of each netlist gate (from place/context.hpp).
  SvaCornerScale(const Netlist& netlist, const ContextLibrary& context,
                 const std::vector<VersionKey>& versions,
                 const CdBudget& budget, Corner corner,
                 ArcLabelPolicy policy = ArcLabelPolicy::Majority,
                 const std::vector<InstanceNps>* measured_nps = nullptr,
                 const ContextCache* cache = nullptr);

  double scale(std::size_t gate, std::size_t arc_index) const override;

  /// Annotation of one gate's arc (for reports and tests).
  const ArcAnnotation& annotation(std::size_t gate,
                                  std::size_t arc_index) const;

  /// Count of arcs per class over the whole design (for reports).
  std::vector<std::size_t> class_histogram() const;

 private:
  std::vector<std::vector<ArcAnnotation>> annotations_;  // [gate][arc]
  std::vector<std::vector<double>> factors_;             // [gate][arc]
};

/// Annotate every arc of a design (shared by the corner scales, the
/// statistical samplers, and the exposure analysis).
///
/// Effective lengths (the 81-version delay tables) always come from the
/// binned versions; device *classification* uses the measured nps values
/// when `measured_nps` is provided (the paper labels devices from the
/// physical layout, Sec. 3.2), falling back to the bin representatives
/// otherwise.
///
/// `spacing_shift` offsets every device's effective side spacing before
/// classification: exposure-dose errors widen or thin all printed lines,
/// shrinking or growing the clear spacings between them (Sec. 6: "Exposure
/// variation can alter the nature of devices (i.e. dense or isolated)").
///
/// When `cache` is given, effective lengths come from the memoized
/// (cell, version) slots instead of re-deriving them per instance --
/// bit-identical values, characterized once and shared across threads.
std::vector<std::vector<ArcAnnotation>> annotate_arcs(
    const Netlist& netlist, const ContextLibrary& context,
    const std::vector<VersionKey>& versions, const CdBudget& budget,
    ArcLabelPolicy policy, Nm spacing_shift = 0.0,
    const std::vector<InstanceNps>* measured_nps = nullptr,
    const ContextCache* cache = nullptr);

/// Annotate the arcs of a single gate (the per-gate body of
/// annotate_arcs).  ECO candidate evaluation re-annotates just the
/// instances whose placement context a move perturbs; `nps`, when given,
/// holds the (hypothetical) measured spacings of this one instance.
std::vector<ArcAnnotation> annotate_gate_arcs(
    const Netlist& netlist, std::size_t gate, const ContextLibrary& context,
    const VersionKey& version, const CdBudget& budget, ArcLabelPolicy policy,
    Nm spacing_shift = 0.0, const InstanceNps* nps = nullptr,
    const ContextCache* cache = nullptr);

/// Delay factors per (gate, arc) for one corner from annotations.
std::vector<std::vector<double>> corner_factors(
    const Netlist& netlist,
    const std::vector<std::vector<ArcAnnotation>>& annotations,
    const CdBudget& budget, Corner corner);

/// One gate's corner factor row (the per-gate body of corner_factors).
std::vector<double> gate_corner_factors(
    const Netlist& netlist, std::size_t gate,
    const std::vector<ArcAnnotation>& annotations, const CdBudget& budget,
    Corner corner);

}  // namespace sva
