#include "core/corners.hpp"

#include "util/error.hpp"

namespace sva {

const char* to_string(Corner corner) {
  switch (corner) {
    case Corner::Best: return "BC";
    case Corner::Nominal: return "Nom";
    case Corner::Worst: return "WC";
  }
  return "?";
}

Nm CornerLengths::at(Corner corner) const {
  switch (corner) {
    case Corner::Best: return bc;
    case Corner::Nominal: return nom;
    case Corner::Worst: return wc;
  }
  throw PreconditionError("invalid corner");
}

CornerLengths traditional_corners(Nm l_nom, const CdBudget& budget) {
  SVA_REQUIRE(l_nom > 0.0);
  budget.validate();
  const Nm total = budget.total(l_nom);
  return {l_nom - total, l_nom, l_nom + total};
}

CornerLengths sva_corners(Nm l_nom, Nm l_nom_new, ArcClass arc_class,
                          const CdBudget& budget) {
  SVA_REQUIRE(l_nom > 0.0);
  SVA_REQUIRE_MSG(l_nom_new > 0.0,
                  "context-predicted gate length must be positive");
  budget.validate();
  const Nm residual = budget.total(l_nom) - budget.lvar_pitch(l_nom);
  const Nm lvar_focus = budget.lvar_focus(l_nom);

  // Eq. (1): remove the predictable pitch component around the
  // context-aware nominal.
  CornerLengths c;
  c.nom = l_nom_new;
  c.wc = l_nom_new + residual;
  c.bc = l_nom_new - residual;

  // Eqs. (2)-(5): trim the focus component per arc class.
  switch (arc_class) {
    case ArcClass::Smile:
      // Dense lines only thicken (slow down) out of focus; the fast
      // corner cannot be reached through focus.
      c.bc += lvar_focus;
      break;
    case ArcClass::Frown:
      // Isolated lines only thin (speed up) out of focus; the slow corner
      // cannot be reached through focus.
      c.wc -= lvar_focus;
      break;
    case ArcClass::SelfCompensated:
      c.wc -= lvar_focus;
      c.bc += lvar_focus;
      break;
  }
  SVA_ASSERT_MSG(c.wc >= c.bc, "corner inversion: check budget shares");
  return c;
}

}  // namespace sva
