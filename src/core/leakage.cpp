#include "core/leakage.hpp"

#include <cmath>

#include "util/error.hpp"

namespace sva {

double LeakageModel::device_leakage_na(Nm width, Nm length,
                                       Nm l_nom) const {
  SVA_REQUIRE(width > 0.0 && length > 0.0 && l_nom > 0.0);
  return i0_na * (width / w0) * std::exp(-(length - l_nom) / l_slope);
}

LeakageAnalysis analyze_leakage(const Netlist& netlist,
                                const ContextLibrary& context,
                                const std::vector<VersionKey>& versions,
                                const std::vector<InstanceNps>& nps,
                                const CdBudget& budget,
                                const LeakageModel& model) {
  SVA_REQUIRE(versions.size() == netlist.gates().size());
  SVA_REQUIRE(nps.size() == netlist.gates().size());
  budget.validate();
  const CellLibrary& lib = netlist.library();

  LeakageAnalysis out;
  for (std::size_t gi = 0; gi < netlist.gates().size(); ++gi) {
    const std::size_t ci = netlist.gates()[gi].cell_index;
    const CellMaster& master = lib.master(ci);
    const Nm l_nom = master.tech().gate_length;
    const Nm total = budget.total(l_nom);
    const Nm residual = total - budget.lvar_pitch(l_nom);
    const Nm lvar_focus = budget.lvar_focus(l_nom);

    for (std::size_t di = 0; di < master.devices().size(); ++di) {
      const Device& d = master.devices()[di];
      // Traditional: context-blind drawn length, full-budget worst case
      // (shortest channel leaks most).
      out.nominal_traditional_na +=
          model.device_leakage_na(d.width, l_nom, l_nom);
      out.worst_traditional_na +=
          model.device_leakage_na(d.width, l_nom - total, l_nom);

      // Context-aware: the device's predicted printed CD plus class-aware
      // worst-case shortening.  Dense devices only *thicken* out of focus
      // (they cannot get leakier through focus); isolated devices thin.
      const Nm predicted =
          context.device_printed_cd(ci, versions[gi], di);
      const bool pmos = d.type == DeviceType::Pmos;
      const DeviceContext ctx = context.device_context_measured(
          ci, di, pmos ? nps[gi].lt : nps[gi].lb,
          pmos ? nps[gi].rt : nps[gi].rb);
      const DeviceClass cls = classify_device(
          ctx.s_left, ctx.s_right, master.tech().contacted_pitch);
      // Mirror the timing corners (Eqs. 2-5): isolated devices can reach
      // the full thin extreme; dense and self-compensated ones cannot get
      // thinner through focus, so their worst shortening is trimmed.
      Nm worst_shortening = residual;
      if (cls == DeviceClass::Dense || cls == DeviceClass::SelfCompensated)
        worst_shortening -= lvar_focus;

      out.nominal_context_na +=
          model.device_leakage_na(d.width, predicted, l_nom);
      out.worst_context_na += model.device_leakage_na(
          d.width, predicted - worst_shortening, l_nom);
    }
  }
  return out;
}

}  // namespace sva
