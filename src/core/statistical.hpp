#pragma once
// Statistical timing extension (paper Sec. 6, future work).
//
// "We also plan to further quantify such pessimism by using statistical
// timing methodology with more realistic gate length distribution based on
// iso-dense attributes and proximity spatial information, as opposed to
// the simplistic Gaussian distribution of gate length variation."
//
// Monte-Carlo SSTA over the mapped design with two gate-length models:
//
//  * NaiveGaussianSampler -- the "simplistic" model the paper criticizes:
//    every device's length is Gaussian around the drawn length with the
//    full CD budget as its 3-sigma range, split into a chip-global
//    component and an independent local component.
//
//  * ContextAwareSampler -- the realistic model: the through-pitch
//    component is *deterministic* given the placement (the context-
//    predicted nominal), the through-focus component is a single shared
//    exposure-level defocus variable acting through each arc's
//    smile/frown character, and only the residual budget is random.
//
// Both produce a critical-delay distribution; comparing their upper
// quantiles to the corner analyses quantifies the pessimism statistically.

#include <cstdint>
#include <vector>

#include "cell/context_library.hpp"
#include "core/budget.hpp"
#include "core/classify.hpp"
#include "core/scales.hpp"
#include "netlist/netlist.hpp"
#include "place/placement.hpp"
#include "sta/sta.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace sva {

/// Draws one sample of per-arc delay factors.
class GateLengthSampler {
 public:
  virtual ~GateLengthSampler() = default;
  virtual std::vector<std::vector<double>> sample(Rng& rng) const = 0;
};

/// The "simplistic Gaussian" model: L = l_nom + global + local, with
/// 3-sigma(global) + 3-sigma(local) spanning the full CD budget.
class NaiveGaussianSampler final : public GateLengthSampler {
 public:
  /// `global_share` of the budget is chip-correlated, the rest local.
  NaiveGaussianSampler(const Netlist& netlist, const CdBudget& budget,
                       Nm l_nom, double global_share = 0.5);

  std::vector<std::vector<double>> sample(Rng& rng) const override;

 private:
  const Netlist* netlist_;
  Nm l_nom_;
  Nm sigma_global_;
  Nm sigma_local_;
};

/// The context-aware model: deterministic systematic nominal per arc, one
/// shared defocus variable acting through the arc class, Gaussian
/// residual.
class ContextAwareSampler final : public GateLengthSampler {
 public:
  /// `global_share` splits the residual sigma into a chip-correlated
  /// component and an independent local one (0 = all local, the historic
  /// behaviour; the global draw is skipped entirely at 0 so existing
  /// sample streams are bit-identical).
  ContextAwareSampler(const Netlist& netlist, const ContextLibrary& context,
                      const std::vector<VersionKey>& versions,
                      const CdBudget& budget,
                      ArcLabelPolicy policy = ArcLabelPolicy::Majority,
                      double global_share = 0.0);

  std::vector<std::vector<double>> sample(Rng& rng) const override;

 private:
  const Netlist* netlist_;
  Nm l_nom_;
  Nm lvar_focus_;
  Nm sigma_global_;
  Nm sigma_residual_;
  /// Context-predicted nominal length and class per (gate, arc).
  std::vector<std::vector<ArcAnnotation>> annotations_;
};

/// Spatially correlated Gaussian model (cf. the paper's discussion of
/// [15], Orshansky et al.: "spatial variation effects" at intra-chip
/// scale).  The die is covered by a coarse grid of independent regional
/// Gaussians; a gate takes its region's value (plus a local residual), so
/// nearby gates are correlated and distant ones are not.
class SpatialGaussianSampler final : public GateLengthSampler {
 public:
  /// `regional_share` of the budget's 3-sigma is regional; the rest is
  /// per-device.  `region_size_nm` sets the correlation length.
  SpatialGaussianSampler(const Placement& placement, const CdBudget& budget,
                         Nm l_nom, double regional_share = 0.6,
                         Nm region_size_nm = 25000.0);

  std::vector<std::vector<double>> sample(Rng& rng) const override;

  std::size_t region_count() const { return n_regions_x_ * n_regions_y_; }

 private:
  const Netlist* netlist_;
  Nm l_nom_;
  Nm sigma_regional_;
  Nm sigma_local_;
  std::size_t n_regions_x_ = 1;
  std::size_t n_regions_y_ = 1;
  std::vector<std::size_t> gate_region_;  ///< per netlist gate
};

/// Result of a Monte-Carlo run.
struct DelayDistribution {
  std::vector<double> delays_ps;  ///< one critical delay per sample

  Summary summary() const { return summarize(delays_ps); }
  double quantile_ps(double q) const { return quantile(delays_ps, q); }
};

struct MonteCarloConfig {
  std::size_t samples = 1000;
  std::uint64_t seed = 20040607;  ///< DAC 2004 conference date
};

/// Fraction of samples meeting a clock period: the parametric timing
/// yield the paper's motivation cites ("Statistical Timing for Parametric
/// Yield Prediction", [4]).  Pessimistic corner methodologies force the
/// clock to the WC corner; the distribution shows the yield actually
/// available at faster clocks.
double timing_yield(const DelayDistribution& distribution,
                    double clock_period_ps);

/// Smallest clock period achieving at least `yield` (e.g. 0.999).
double period_for_yield(const DelayDistribution& distribution, double yield);

/// Run Monte-Carlo SSTA: one STA evaluation per sampled process instance.
/// A non-null `cancel` is polled between samples (throwing CancelledError),
/// so `--deadline`/SIGINT leave a clean sample prefix instead of an
/// uninterruptible loop.
DelayDistribution run_monte_carlo(const Sta& sta,
                                  const GateLengthSampler& sampler,
                                  const MonteCarloConfig& config = {},
                                  const CancelToken* cancel = nullptr);

}  // namespace sva
