#pragma once
// The gate-length (CD) variation budget.
//
// Traditional corners assume every device can move by the *total* CD
// variation.  The paper decomposes that budget: a through-pitch share and
// a through-focus share are systematic and predictable ("at least 50% of
// ACLV is systematic"); Table 2 is computed "assuming lvar_focus and
// lvar_pitch each to be 30% of the total gate length variation [8]".

#include "util/error.hpp"
#include "util/units.hpp"

namespace sva {

struct CdBudget {
  /// Total half-spread of gate length as a fraction of the drawn length:
  /// l_WC = l_nom * (1 + total_fraction).
  double total_fraction = 0.10;
  /// Share of the total that is systematic through-pitch variation.
  double pitch_share = 0.30;
  /// Share of the total that is systematic through-focus variation.
  double focus_share = 0.30;

  /// Fractional delay margin at the slow/fast corners from non-CD process
  /// parameters (threshold voltage, oxide thickness, ...).  The paper's
  /// corner libraries are "constructed with just the process corners"
  /// (Sec. 4), which include these; the SVA methodology trims only the
  /// systematic CD components, so this margin remains on both sides and
  /// dilutes the achievable spread reduction into the reported 28-40%.
  double other_process_fraction = 0.05;

  void validate() const {
    SVA_REQUIRE(total_fraction > 0.0 && total_fraction < 1.0);
    SVA_REQUIRE(pitch_share >= 0.0 && focus_share >= 0.0);
    SVA_REQUIRE_MSG(pitch_share + focus_share <= 1.0,
                    "systematic shares cannot exceed the whole budget");
    SVA_REQUIRE(other_process_fraction >= 0.0 &&
                other_process_fraction < 1.0);
  }

  /// Delay multiplier of the non-CD process parameters at a corner.
  double other_process_factor(bool worst) const {
    return worst ? 1.0 + other_process_fraction
                 : 1.0 - other_process_fraction;
  }

  /// Absolute half-spreads at a given drawn gate length (nm).
  Nm total(Nm l_nom) const { return total_fraction * l_nom; }
  Nm lvar_pitch(Nm l_nom) const { return pitch_share * total(l_nom); }
  Nm lvar_focus(Nm l_nom) const { return focus_share * total(l_nom); }
};

}  // namespace sva
