#pragma once
// Corner gate-length computation: the paper's Eqs. (1)-(5) (Sec. 3.3).
//
// Traditional corners worst-case every device over the whole CD budget:
//
//   l_WC = l_nom + lvar_total,   l_BC = l_nom - lvar_total.
//
// The systematic-variation-aware corners start from the iso-dense-aware
// nominal l_nom_new (predicted from the placement context) and remove the
// pitch share from both sides (Eq. 1):
//
//   l_WC_pitch = l_nom_new + (lvar_total - lvar_pitch)
//   l_BC_pitch = l_nom_new - (lvar_total - lvar_pitch)
//
// then trim the focus share from the side where the arc's Bossung
// behaviour cannot move (Eqs. 2-5):
//
//   smile  (dense; CD only grows out of focus):  BC += lvar_focus
//   frown  (iso;   CD only shrinks out of focus): WC -= lvar_focus
//   self-compensated: both (the smile and frown components cancel).
//
// Longer gate == slower, so the slow (WC) timing corner uses the largest
// gate length and the fast (BC) corner the smallest.

#include "core/budget.hpp"
#include "core/classify.hpp"
#include "util/units.hpp"

namespace sva {

enum class Corner { Best, Nominal, Worst };

const char* to_string(Corner corner);

/// Best/nominal/worst gate lengths for one timing arc.
struct CornerLengths {
  Nm bc = 0.0;
  Nm nom = 0.0;
  Nm wc = 0.0;

  Nm at(Corner corner) const;
  Nm spread() const { return wc - bc; }
};

/// Traditional (context-blind) corners at a drawn length.
CornerLengths traditional_corners(Nm l_nom, const CdBudget& budget);

/// Systematic-variation-aware corners for one arc.
/// `l_nom` is the drawn length (the budget's reference); `l_nom_new` is
/// the context-predicted effective length of the arc.
CornerLengths sva_corners(Nm l_nom, Nm l_nom_new, ArcClass arc_class,
                          const CdBudget& budget);

}  // namespace sva
