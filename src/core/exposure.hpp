#pragma once
// Exposure-dose variation analysis (paper Sec. 6, current work).
//
// "Another process phenomenon not accounted for in our current experiments
// is exposure dose variation.  Exposure variation can alter the nature of
// devices (i.e. dense or isolated)."
//
// Mechanism: a dose error widens (underexposure) or thins (overexposure)
// every printed line; the clear spacing between a device and its
// neighbours shrinks or grows accordingly.  Devices whose spacings sit
// near the contacted-pitch threshold then flip between dense and isolated,
// which flips their smile/frown labels and with them the corner trims.
// This analysis sweeps the dose, counts device/arc class flips, and
// re-evaluates the SVA corners under the flipped labels to quantify how
// robust the methodology's corner trimming is to dose errors.

#include <vector>

#include "cell/context_library.hpp"
#include "core/budget.hpp"
#include "core/classify.hpp"
#include "netlist/netlist.hpp"
#include "place/context.hpp"
#include "sta/sta.hpp"

namespace sva {

struct ExposureConfig {
  std::vector<double> doses = {0.90, 0.95, 1.00, 1.05, 1.10};
  /// Fractional printed-CD change per unit relative dose (matches the
  /// FocusResponseParams dose slope).
  double dose_cd_slope = 0.25;
  ArcLabelPolicy policy = ArcLabelPolicy::Majority;
};

struct ExposurePoint {
  double dose = 1.0;
  Nm spacing_shift = 0.0;        ///< applied to every device spacing
  std::size_t arc_flips = 0;     ///< arcs whose class differs vs dose 1.0
  std::vector<std::size_t> arc_class_counts;  ///< [smile, frown, selfcomp]
  double sva_bc_ps = 0.0;        ///< corners under the dose's labels
  double sva_wc_ps = 0.0;

  double spread_ps() const { return sva_wc_ps - sva_bc_ps; }
};

/// Sweep exposure dose and report label flips and corner movement.
/// `nps` holds the measured spacings of every placed instance -- the
/// continuous values the dose shift acts on (binned representatives would
/// hide small shifts entirely).
std::vector<ExposurePoint> analyze_exposure(
    const Netlist& netlist, const ContextLibrary& context,
    const std::vector<VersionKey>& versions,
    const std::vector<InstanceNps>& nps, const CdBudget& budget,
    const Sta& sta, const ExposureConfig& config = {});

}  // namespace sva
