#pragma once
// Device and timing-arc classification (paper Sec. 3.2, Fig. 5).
//
// "We analyze the devices in the layout and label them as isolated, dense
// or self-compensated depending on the spacing to the nearest poly line on
// the left and the right. ... We assume dense spacing to be less than the
// contacted-pitch and anything larger to be isolated."
//
// Arc labels follow from the devices in the transition: all-dense -> the
// arc smiles (gets slower out of focus), all-isolated -> frowns (gets
// faster), mixed -> self-compensated.  The default policy is the paper's
// majority vote (footnote 6); a conservative policy (any mix ->
// self-compensated) is provided for the ablation bench.

#include <vector>

#include "util/units.hpp"

namespace sva {

enum class DeviceClass { Dense, Isolated, SelfCompensated };
enum class ArcClass { Smile, Frown, SelfCompensated };

const char* to_string(DeviceClass c);
const char* to_string(ArcClass c);

/// Classify one device from its two side spacings.  A side is dense if
/// its spacing is below `contacted_pitch`; dense+dense -> Dense,
/// iso+iso -> Isolated, mixed -> SelfCompensated.
DeviceClass classify_device(Nm s_left, Nm s_right, Nm contacted_pitch);

enum class ArcLabelPolicy {
  /// Paper footnote 6: "the majority determines the nature"; ties and any
  /// self-compensated majority map to SelfCompensated.
  Majority,
  /// Conservative: an arc is Smile/Frown only if *every* device agrees;
  /// any mixture is SelfCompensated.  (Ablation: less corner trimming on
  /// one side, never wrong-sided.)
  Conservative,
};

/// Label an arc from its devices' classes.
ArcClass classify_arc(const std::vector<DeviceClass>& devices,
                      ArcLabelPolicy policy = ArcLabelPolicy::Majority);

}  // namespace sva
