#include "core/classify.hpp"

#include "util/error.hpp"

namespace sva {

const char* to_string(DeviceClass c) {
  switch (c) {
    case DeviceClass::Dense: return "dense";
    case DeviceClass::Isolated: return "isolated";
    case DeviceClass::SelfCompensated: return "self-compensated";
  }
  return "?";
}

const char* to_string(ArcClass c) {
  switch (c) {
    case ArcClass::Smile: return "smile";
    case ArcClass::Frown: return "frown";
    case ArcClass::SelfCompensated: return "self-compensated";
  }
  return "?";
}

DeviceClass classify_device(Nm s_left, Nm s_right, Nm contacted_pitch) {
  SVA_REQUIRE(contacted_pitch > 0.0);
  const bool dense_l = s_left < contacted_pitch;
  const bool dense_r = s_right < contacted_pitch;
  if (dense_l && dense_r) return DeviceClass::Dense;
  if (!dense_l && !dense_r) return DeviceClass::Isolated;
  return DeviceClass::SelfCompensated;
}

ArcClass classify_arc(const std::vector<DeviceClass>& devices,
                      ArcLabelPolicy policy) {
  SVA_REQUIRE_MSG(!devices.empty(), "arc must involve at least one device");
  std::size_t dense = 0;
  std::size_t isolated = 0;
  for (DeviceClass c : devices) {
    if (c == DeviceClass::Dense) ++dense;
    if (c == DeviceClass::Isolated) ++isolated;
  }
  const std::size_t selfcomp = devices.size() - dense - isolated;

  if (policy == ArcLabelPolicy::Conservative) {
    if (dense == devices.size()) return ArcClass::Smile;
    if (isolated == devices.size()) return ArcClass::Frown;
    return ArcClass::SelfCompensated;
  }
  // Majority policy.
  if (dense > isolated && dense > selfcomp) return ArcClass::Smile;
  if (isolated > dense && isolated > selfcomp) return ArcClass::Frown;
  return ArcClass::SelfCompensated;
}

}  // namespace sva
