#include "core/compensation.hpp"

#include <algorithm>

#include "core/scales.hpp"
#include "place/context.hpp"
#include "util/error.hpp"

namespace sva {
namespace {

/// Worst-corner analysis of the current placement state.
StaResult evaluate_wc(const Placement& placement,
                      const ContextLibrary& context, const CdBudget& budget,
                      const Sta& sta, ArcLabelPolicy policy) {
  const auto nps = extract_nps(placement);
  const auto versions = assign_versions(nps, context.bins());
  const SvaCornerScale wc(placement.netlist(), context, versions, budget,
                          Corner::Worst, policy, &nps);
  return sta.run(wc);
}

}  // namespace

CompensationResult compensate_placement(Placement& placement,
                                        const ContextLibrary& context,
                                        const CharacterizedLibrary& library,
                                        const CdBudget& budget,
                                        const StaConfig& sta_config,
                                        const CompensationConfig& config) {
  SVA_REQUIRE(config.max_passes > 0);
  SVA_REQUIRE(config.candidates_per_pass > 0);
  SVA_REQUIRE(config.step > 0.0);
  SVA_REQUIRE(config.steps_each_way > 0);

  const Netlist& netlist = placement.netlist();
  const Sta sta(netlist, library, sta_config);

  CompensationResult result;
  StaResult current =
      evaluate_wc(placement, context, budget, sta, config.policy);
  result.wc_before_ps = current.critical_delay_ps;

  for (std::size_t pass = 0; pass < config.max_passes; ++pass) {
    bool improved_this_pass = false;
    // Candidates: gates on the current worst path, worst-first (the path
    // is input->output; later gates see accumulated slews, but any gate
    // on it bounds the path delay).
    std::vector<std::size_t> candidates = current.critical_path;
    if (candidates.size() > config.candidates_per_pass)
      candidates.resize(config.candidates_per_pass);

    for (std::size_t gi : candidates) {
      const auto [lo, hi] = placement.shift_range(gi);
      Nm best_dx = 0.0;
      double best_delay = current.critical_delay_ps;
      for (int dir : {-1, +1}) {
        for (std::size_t k = 1; k <= config.steps_each_way; ++k) {
          const Nm dx = dir * config.step * static_cast<double>(k);
          if (dx < lo || dx > hi) continue;
          placement.shift_instance(gi, dx);
          ++result.moves_evaluated;
          const StaResult trial =
              evaluate_wc(placement, context, budget, sta, config.policy);
          if (trial.critical_delay_ps < best_delay - 1e-9) {
            best_delay = trial.critical_delay_ps;
            best_dx = dx;
          }
          placement.shift_instance(gi, -dx);  // restore
        }
      }
      if (best_dx != 0.0) {
        placement.shift_instance(gi, best_dx);
        ++result.moves_applied;
        improved_this_pass = true;
        current = evaluate_wc(placement, context, budget, sta,
                              config.policy);
      }
    }
    if (!improved_this_pass) break;
  }

  result.wc_after_ps = current.critical_delay_ps;
  return result;
}

}  // namespace sva
