#include "core/simplified.hpp"

#include "core/classify.hpp"
#include "util/error.hpp"

namespace sva {
namespace {

/// A lone device's Bossung behaviour maps directly onto the arc-class
/// vocabulary: dense lines smile, isolated lines frown.
ArcClass device_bossung_class(DeviceClass cls) {
  switch (cls) {
    case DeviceClass::Dense: return ArcClass::Smile;
    case DeviceClass::Isolated: return ArcClass::Frown;
    case DeviceClass::SelfCompensated: return ArcClass::SelfCompensated;
  }
  return ArcClass::SelfCompensated;
}

double other_process(const CdBudget& budget, Corner corner) {
  switch (corner) {
    case Corner::Worst: return budget.other_process_factor(true);
    case Corner::Best: return budget.other_process_factor(false);
    case Corner::Nominal: return 1.0;
  }
  return 1.0;
}

}  // namespace

CornerLengths SimplifiedCornerScale::device_corners(
    const ContextLibrary& context, std::size_t cell, std::size_t device,
    const CdBudget& budget) {
  const CellMaster& master = context.characterized().cells[cell].master;
  const Nm l_nom = master.tech().gate_length;
  if (master.is_boundary_device(device))
    return traditional_corners(l_nom, budget);

  // Interior device: context is version-independent; any key works.
  const VersionKey any{};
  const DeviceContext ctx = context.device_context(cell, any, device);
  const DeviceClass cls = classify_device(ctx.s_left, ctx.s_right,
                                          master.tech().contacted_pitch);
  return sva_corners(l_nom, context.interior_cd(cell, device),
                     device_bossung_class(cls), budget);
}

SimplifiedCornerScale::SimplifiedCornerScale(const Netlist& netlist,
                                             const ContextLibrary& context,
                                             const CdBudget& budget,
                                             Corner corner) {
  budget.validate();
  const CellLibrary& lib = netlist.library();
  // Per-cell, per-arc factors: the simplified corners do not depend on the
  // instance, so compute once per master and share.
  std::vector<std::vector<double>> per_cell(lib.size());
  for (std::size_t ci = 0; ci < lib.size(); ++ci) {
    const CellMaster& master = lib.master(ci);
    const Nm l_nom = master.tech().gate_length;
    per_cell[ci].resize(master.arcs().size());
    for (std::size_t ai = 0; ai < master.arcs().size(); ++ai) {
      const TimingArc& arc = master.arcs()[ai];
      double sum = 0.0;
      for (std::size_t di : arc.device_indices)
        sum += device_corners(context, ci, di, budget).at(corner);
      const Nm l_eff =
          sum / static_cast<double>(arc.device_indices.size());
      per_cell[ci][ai] = l_eff / l_nom * other_process(budget, corner);
    }
  }

  factors_.resize(netlist.gates().size());
  for (std::size_t gi = 0; gi < netlist.gates().size(); ++gi)
    factors_[gi] = per_cell[netlist.gates()[gi].cell_index];
}

double SimplifiedCornerScale::scale(std::size_t gate,
                                    std::size_t arc_index) const {
  SVA_REQUIRE(gate < factors_.size());
  SVA_REQUIRE(arc_index < factors_[gate].size());
  return factors_[gate][arc_index];
}

}  // namespace sva
