#include "core/flow.hpp"

#include <chrono>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace sva {
namespace {

double seconds_since(
    const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

SvaFlow::SvaFlow(const FlowConfig& config)
    : config_(config),
      library_(build_standard_library(config.cell_tech)),
      characterized_(characterize_library(library_, config.electrical)),
      wafer_(config.wafer_optics, config.cell_tech.gate_length,
             config.cell_tech.gate_length + config.anchor_spacing),
      model_(config.opc_model_optics, config.cell_tech.gate_length,
             config.cell_tech.gate_length + config.anchor_spacing),
      engine_(model_, wafer_, config.opc) {
  config_.budget.validate();

  const auto t0 = std::chrono::steady_clock::now();
  log_info("flow: library OPC of ", library_.size(), " masters");
  library_opc_ = library_opc_all(library_.masters(), engine_,
                                 config_.library_opc);
  log_info("flow: post-OPC pitch characterization (",
           config_.table_spacings.size(), " spacings)");
  pitch_points_ = characterize_post_opc_pitch(
      wafer_, engine_, config_.cell_tech.gate_length, config_.table_spacings);
  setup_opc_seconds_ = seconds_since(t0);

  boundary_model_ = std::make_unique<TableCdModel>(
      config_.cell_tech.gate_length, post_opc_spacing_table(pitch_points_),
      config_.cell_tech.radius_of_influence);
  context_ = std::make_unique<ContextLibrary>(
      characterized_, library_opc_, *boundary_model_, config_.bins);
}

Netlist SvaFlow::make_benchmark(const std::string& name) const {
  return generate_iscas85_like(name, library_);
}

Placement SvaFlow::make_placement(const Netlist& netlist) const {
  return Placement(netlist, config_.placement);
}

std::vector<VersionKey> SvaFlow::bind_versions(
    const Placement& placement) const {
  return assign_versions(extract_nps(placement), config_.bins);
}

CircuitAnalysis SvaFlow::analyze(const Netlist& netlist,
                                 const Placement& placement) const {
  SVA_REQUIRE(&placement.netlist() == &netlist);
  const Nm l_nom = config_.cell_tech.gate_length;
  const Sta sta(netlist, characterized_, config_.sta);

  CircuitAnalysis out;
  out.name = netlist.name();
  out.gate_count = netlist.gates().size();

  // Traditional corner analysis: the drawn-length library plus uniform
  // full-budget corners.
  {
    const UnitScale nominal;
    out.trad_nom_ps = sta.run(nominal).critical_delay_ps;
    const TraditionalCornerScale bc(l_nom, config_.budget, Corner::Best);
    const TraditionalCornerScale wc(l_nom, config_.budget, Corner::Worst);
    out.trad_bc_ps = sta.run(bc).critical_delay_ps;
    out.trad_wc_ps = sta.run(wc).critical_delay_ps;
  }

  // In-context analysis with the expanded library.  Delay tables come
  // from the binned versions; device labels use the measured spacings.
  {
    const std::vector<InstanceNps> nps = extract_nps(placement);
    const std::vector<VersionKey> versions =
        assign_versions(nps, config_.bins);
    const SvaCornerScale nom(netlist, *context_, versions, config_.budget,
                             Corner::Nominal, config_.arc_policy, &nps);
    const SvaCornerScale bc(netlist, *context_, versions, config_.budget,
                            Corner::Best, config_.arc_policy, &nps);
    const SvaCornerScale wc(netlist, *context_, versions, config_.budget,
                            Corner::Worst, config_.arc_policy, &nps);
    out.sva_nom_ps = sta.run(nom).critical_delay_ps;
    out.sva_bc_ps = sta.run(bc).critical_delay_ps;
    out.sva_wc_ps = sta.run(wc).critical_delay_ps;
    out.arc_class_counts = wc.class_histogram();
  }
  return out;
}

CircuitAnalysis SvaFlow::analyze_benchmark(const std::string& name) const {
  const Netlist netlist = make_benchmark(name);
  const Placement placement = make_placement(netlist);
  return analyze(netlist, placement);
}

}  // namespace sva
