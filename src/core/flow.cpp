#include "core/flow.hpp"

#include <chrono>
#include <cstdio>

#include <algorithm>

#include "engine/metrics.hpp"
#include "util/diagnostics.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/filelock.hpp"
#include "util/logging.hpp"
#include "util/retry.hpp"
#include "util/serialize.hpp"

namespace sva {
namespace {

double seconds_since(
    const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

SvaFlow::SvaFlow(const FlowConfig& config)
    : config_(config),
      library_(build_standard_library(config.cell_tech)),
      characterized_(characterize_library(library_, config.electrical)),
      wafer_(config.wafer_optics, config.cell_tech.gate_length,
             config.cell_tech.gate_length + config.anchor_spacing),
      model_(config.opc_model_optics, config.cell_tech.gate_length,
             config.cell_tech.gate_length + config.anchor_spacing),
      engine_(model_, wafer_, config.opc) {
  config_.budget.validate();

  const auto t0 = std::chrono::steady_clock::now();
  if (!config_.cache_dir.empty() && try_load_setup(config_.cache_dir)) {
    setup_from_cache_ = true;
    MetricsRegistry::global().counter("flow.setup_disk_hits").add();
    log_info("flow: characterization setup restored from ",
             setup_cache_file_path(config_.cache_dir));
  } else {
    if (!config_.cache_dir.empty())
      MetricsRegistry::global().counter("flow.setup_disk_misses").add();
    log_info("flow: library OPC of ", library_.size(), " masters");
    library_opc_ = library_opc_all(library_.masters(), engine_,
                                   config_.library_opc,
                                   config_.fault_policy);
    setup_degraded_ = std::any_of(
        library_opc_.begin(), library_opc_.end(),
        [](const LibraryOpcCellResult& r) { return r.degraded; });
    if (setup_degraded_)
      MetricsRegistry::global().counter("flow.setup_degraded").add();
    log_info("flow: post-OPC pitch characterization (",
             config_.table_spacings.size(), " spacings)");
    pitch_points_ = characterize_post_opc_pitch(
        wafer_, engine_, config_.cell_tech.gate_length,
        config_.table_spacings);
    // Never persist a degraded setup: the fallback CDs are a conservative
    // stand-in, not characterization data a later healthy run should
    // warm-start from.
    if (!config_.cache_dir.empty() && !setup_degraded_) {
      try {
        save_setup(config_.cache_dir);
      } catch (const std::exception& e) {
        log_warn("flow: setup snapshot failed (", e.what(), ")");
      }
    }
  }
  setup_opc_seconds_ = seconds_since(t0);

  boundary_model_ = std::make_unique<TableCdModel>(
      config_.cell_tech.gate_length, post_opc_spacing_table(pitch_points_),
      config_.cell_tech.radius_of_influence);
  context_ = std::make_unique<ContextLibrary>(
      characterized_, library_opc_, *boundary_model_, config_.bins);
  context_cache_ = std::make_unique<ContextCache>(*context_);
}

std::uint64_t SvaFlow::setup_content_hash() const {
  Fnv1aHasher h;
  const CellTech& t = config_.cell_tech;
  h.f64(t.gate_length).f64(t.cell_height).f64(t.site_width);
  h.f64(t.poly_y_lo).f64(t.poly_y_hi);
  h.f64(t.nmos_y_lo).f64(t.nmos_y_hi).f64(t.pmos_y_lo).f64(t.pmos_y_hi);
  h.f64(t.contacted_pitch).f64(t.radius_of_influence);
  const ElectricalTech& e = config_.electrical;
  h.f64(e.r_unit_kohm).f64(e.w_unit).f64(e.c_gate_ff).f64(e.c_parasitic_ff);
  h.f64(e.c_par_per_um).f64(e.t_intrinsic_ps).f64(e.slew_sensitivity);
  h.f64(e.slew_gain).f64(e.slew_floor_ps);
  for (const OpticsConfig* o :
       {&config_.wafer_optics, &config_.opc_model_optics}) {
    h.f64(o->wavelength).f64(o->na).f64(o->sigma_inner).f64(o->sigma_outer);
    h.u64(static_cast<std::uint64_t>(o->source_radial));
    h.u64(static_cast<std::uint64_t>(o->source_azimuthal));
    h.f64(o->resist_diffusion_length);
  }
  const OpcConfig& c = config_.opc;
  h.u64(static_cast<std::uint64_t>(c.max_iterations));
  h.f64(c.damping).f64(c.mask_grid).f64(c.min_width).f64(c.min_space);
  h.f64(c.max_bias).f64(c.convergence_epe).f64(c.radius_of_influence);
  h.f64(config_.library_opc.dummy_gap).f64(config_.library_opc.dummy_width);
  h.vec_f64(config_.table_spacings);
  h.f64(config_.anchor_spacing);
  h.vec_f64(config_.bins.upper_edges());
  h.vec_f64(config_.bins.representatives());
  // Master structure.  The geometry itself is a pure function of the tech
  // already hashed, so name + device/arc counts suffice to catch a
  // different library.
  h.u64(library_.size());
  for (const CellMaster& m : library_.masters()) {
    h.str(m.name());
    h.u64(m.devices().size());
    h.u64(m.arcs().size());
  }
  return h.digest();
}

std::string SvaFlow::setup_cache_file_path(const std::string& dir) const {
  char name[64];
  std::snprintf(name, sizeof(name), "setup_%016llx.svac",
                static_cast<unsigned long long>(setup_content_hash()));
  return dir + "/" + name;
}

bool SvaFlow::try_load_setup(const std::string& dir) {
  const std::string path = setup_cache_file_path(dir);
  std::string bytes;
  try {
    bytes = with_retry("flow setup read", RetryPolicy{},
                       [&] { return read_file_bytes(path); });
  } catch (const FileMissingError&) {
    // No snapshot yet: the normal first run, not worth a warning.
    log_debug("flow: no setup snapshot at ", path);
    return false;
  } catch (const Error& e) {
    // Transport failure that survived the retries; the file itself may be
    // intact, so leave it in place for the next run.
    diag_warn("flow", "setup_read_failed",
              std::string("setup cold start: ") + e.what());
    return false;
  }

  // Parse and validate everything -- including a checksum of the payload
  // bytes -- before committing, so a corrupt snapshot can never yield
  // wrong characterization data.
  std::vector<LibraryOpcCellResult> opc;
  std::vector<PostOpcPitchPoint> points;
  try {
    SVA_FAILPOINT("flow.setup_load");
    ByteReader r(bytes);
    if (r.u32() != kSetupMagic) throw SerializeError("bad magic");
    if (r.u32() != kSetupFormatVersion)
      throw SerializeError("unsupported format version");
    if (r.u64() != setup_content_hash())
      throw SerializeError("content hash mismatch (stale snapshot)");
    const std::uint64_t payload_hash = r.u64();
    if (fnv1a64_words(bytes.data() + (bytes.size() - r.remaining()),
                      r.remaining()) != payload_hash)
      throw SerializeError("payload checksum mismatch");
    const std::uint64_t n_masters = r.u64();
    if (n_masters != library_.size())
      throw SerializeError("master count mismatch");
    opc.reserve(library_.size());
    for (std::size_t i = 0; i < library_.size(); ++i) {
      LibraryOpcCellResult res;
      res.device_cd = r.vec_f64();
      res.device_mask_width = r.vec_f64();
      res.images_simulated = static_cast<std::size_t>(r.u64());
      if (res.device_cd.size() != library_.masters()[i].devices().size() ||
          res.device_mask_width.size() != res.device_cd.size())
        throw SerializeError("device count mismatch");
      opc.push_back(std::move(res));
    }
    const std::uint64_t n_points = r.u64();
    if (n_points != config_.table_spacings.size())
      throw SerializeError("pitch point count mismatch");
    points.reserve(config_.table_spacings.size());
    for (std::size_t i = 0; i < config_.table_spacings.size(); ++i) {
      PostOpcPitchPoint p;
      p.spacing = r.f64();
      p.printed_cd = r.f64();
      p.mask_bias = r.f64();
      if (p.spacing != config_.table_spacings[i])
        throw SerializeError("pitch spacing mismatch");
      points.push_back(p);
    }
    r.expect_end();
  } catch (const Error& e) {
    // The snapshot failed validation: quarantine it so later runs
    // cold-start on a clean miss instead of re-parsing a bad file.
    quarantine_file(path);
    MetricsRegistry::global().counter("flow.setup_quarantined").add();
    diag_warn("flow", "setup_quarantined",
              "setup snapshot " + path + " quarantined (" + e.what() +
                  "); cold start");
    return false;
  }

  library_opc_ = std::move(opc);
  pitch_points_ = std::move(points);
  return true;
}

void SvaFlow::save_setup(const std::string& dir) const {
  ByteWriter payload;
  payload.u64(library_opc_.size());
  for (const LibraryOpcCellResult& res : library_opc_) {
    payload.vec_f64(res.device_cd);
    payload.vec_f64(res.device_mask_width);
    payload.u64(res.images_simulated);
  }
  payload.u64(pitch_points_.size());
  for (const PostOpcPitchPoint& p : pitch_points_) {
    payload.f64(p.spacing);
    payload.f64(p.printed_cd);
    payload.f64(p.mask_bias);
  }

  ByteWriter file;
  file.u32(kSetupMagic);
  file.u32(kSetupFormatVersion);
  file.u64(setup_content_hash());
  file.u64(fnv1a64_words(payload.bytes().data(), payload.size()));
  // Per-file advisory lock: concurrent processes cold-starting the same
  // configuration serialize their snapshot writes instead of racing the
  // temp+rename (last-writer-wins is correct either way -- the contents
  // are identical -- but the lock keeps temp-file churn bounded).
  const FileLock lock = FileLock::acquire(setup_cache_file_path(dir));
  atomic_write_file(setup_cache_file_path(dir),
                    file.bytes() + payload.bytes());
  log_debug("flow: setup snapshot saved to ", setup_cache_file_path(dir));
}

Netlist SvaFlow::make_benchmark(const std::string& name) const {
  return generate_iscas85_like(name, library_);
}

Placement SvaFlow::make_placement(const Netlist& netlist) const {
  return Placement(netlist, config_.placement);
}

std::vector<VersionKey> SvaFlow::bind_versions(
    const Placement& placement) const {
  return assign_versions(extract_nps(placement), config_.bins);
}

CircuitAnalysis SvaFlow::analyze(const Netlist& netlist,
                                 const Placement& placement) const {
  return analyze_impl(netlist, placement, nullptr, false, nullptr);
}

CircuitAnalysis SvaFlow::analyze(const Netlist& netlist,
                                 const Placement& placement, ThreadPool& pool,
                                 bool parallel_sta,
                                 const CancelToken* cancel) const {
  return analyze_impl(netlist, placement, &pool, parallel_sta, cancel);
}

CircuitAnalysis SvaFlow::analyze_impl(const Netlist& netlist,
                                      const Placement& placement,
                                      ThreadPool* pool, bool parallel_sta,
                                      const CancelToken* cancel) const {
  SVA_REQUIRE(&placement.netlist() == &netlist);
  ScopedTimer timer(MetricsRegistry::global().timer("flow.analyze"));
  const Nm l_nom = config_.cell_tech.gate_length;
  const Sta sta(netlist, characterized_, config_.sta);

  CircuitAnalysis out;
  out.name = netlist.name();
  out.gate_count = netlist.gates().size();

  // Traditional corners: the drawn-length library plus uniform
  // full-budget corners.
  const UnitScale trad_nom;
  const TraditionalCornerScale trad_bc(l_nom, config_.budget, Corner::Best);
  const TraditionalCornerScale trad_wc(l_nom, config_.budget, Corner::Worst);

  // In-context corners with the expanded library.  Delay tables come from
  // the binned versions (memoized in the context cache); device labels use
  // the measured spacings.  Annotating once and deriving the three corner
  // factor matrices is exactly what three SvaCornerScale constructions
  // would compute, without re-annotating per corner.
  const std::vector<InstanceNps> nps = extract_nps(placement);
  const std::vector<VersionKey> versions = assign_versions(nps, config_.bins);
  const std::vector<std::vector<ArcAnnotation>> annotations =
      annotate_arcs(netlist, *context_, versions, config_.budget,
                    config_.arc_policy, 0.0, &nps, context_cache_.get());
  const MatrixScale sva_nom(
      corner_factors(netlist, annotations, config_.budget, Corner::Nominal));
  const MatrixScale sva_bc(
      corner_factors(netlist, annotations, config_.budget, Corner::Best));
  const MatrixScale sva_wc(
      corner_factors(netlist, annotations, config_.budget, Corner::Worst));

  out.arc_class_counts.assign(3, 0);
  for (const auto& gate : annotations)
    for (const ArcAnnotation& ann : gate)
      ++out.arc_class_counts[static_cast<std::size_t>(ann.arc_class)];

  const ArcScaleProvider* scales[6] = {&trad_nom, &trad_bc, &trad_wc,
                                       &sva_nom, &sva_bc, &sva_wc};
  double* fields[6] = {&out.trad_nom_ps, &out.trad_bc_ps, &out.trad_wc_ps,
                       &out.sva_nom_ps, &out.sva_bc_ps, &out.sva_wc_ps};
  auto run_one = [&](std::size_t i) {
    *fields[i] =
        (pool != nullptr && parallel_sta)
            ? sta.run_parallel(*scales[i], *pool, cancel).critical_delay_ps
            : sta.run(*scales[i]).critical_delay_ps;
  };
  if (pool != nullptr) {
    TaskGroup group(*pool, cancel);
    for (std::size_t i = 0; i < 6; ++i)
      group.run([&run_one, i] { run_one(i); });
    group.wait();
  } else {
    for (std::size_t i = 0; i < 6; ++i) {
      if (cancel) cancel->check();
      run_one(i);
    }
  }
  return out;
}

CircuitAnalysis SvaFlow::analyze_benchmark(const std::string& name) const {
  const Netlist netlist = make_benchmark(name);
  const Placement placement = make_placement(netlist);
  return analyze(netlist, placement);
}

}  // namespace sva
