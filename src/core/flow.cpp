#include "core/flow.hpp"

#include <chrono>

#include "engine/metrics.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace sva {
namespace {

double seconds_since(
    const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

SvaFlow::SvaFlow(const FlowConfig& config)
    : config_(config),
      library_(build_standard_library(config.cell_tech)),
      characterized_(characterize_library(library_, config.electrical)),
      wafer_(config.wafer_optics, config.cell_tech.gate_length,
             config.cell_tech.gate_length + config.anchor_spacing),
      model_(config.opc_model_optics, config.cell_tech.gate_length,
             config.cell_tech.gate_length + config.anchor_spacing),
      engine_(model_, wafer_, config.opc) {
  config_.budget.validate();

  const auto t0 = std::chrono::steady_clock::now();
  log_info("flow: library OPC of ", library_.size(), " masters");
  library_opc_ = library_opc_all(library_.masters(), engine_,
                                 config_.library_opc);
  log_info("flow: post-OPC pitch characterization (",
           config_.table_spacings.size(), " spacings)");
  pitch_points_ = characterize_post_opc_pitch(
      wafer_, engine_, config_.cell_tech.gate_length, config_.table_spacings);
  setup_opc_seconds_ = seconds_since(t0);

  boundary_model_ = std::make_unique<TableCdModel>(
      config_.cell_tech.gate_length, post_opc_spacing_table(pitch_points_),
      config_.cell_tech.radius_of_influence);
  context_ = std::make_unique<ContextLibrary>(
      characterized_, library_opc_, *boundary_model_, config_.bins);
  context_cache_ = std::make_unique<ContextCache>(*context_);
}

Netlist SvaFlow::make_benchmark(const std::string& name) const {
  return generate_iscas85_like(name, library_);
}

Placement SvaFlow::make_placement(const Netlist& netlist) const {
  return Placement(netlist, config_.placement);
}

std::vector<VersionKey> SvaFlow::bind_versions(
    const Placement& placement) const {
  return assign_versions(extract_nps(placement), config_.bins);
}

CircuitAnalysis SvaFlow::analyze(const Netlist& netlist,
                                 const Placement& placement) const {
  return analyze_impl(netlist, placement, nullptr, false);
}

CircuitAnalysis SvaFlow::analyze(const Netlist& netlist,
                                 const Placement& placement, ThreadPool& pool,
                                 bool parallel_sta) const {
  return analyze_impl(netlist, placement, &pool, parallel_sta);
}

CircuitAnalysis SvaFlow::analyze_impl(const Netlist& netlist,
                                      const Placement& placement,
                                      ThreadPool* pool,
                                      bool parallel_sta) const {
  SVA_REQUIRE(&placement.netlist() == &netlist);
  ScopedTimer timer(MetricsRegistry::global().timer("flow.analyze"));
  const Nm l_nom = config_.cell_tech.gate_length;
  const Sta sta(netlist, characterized_, config_.sta);

  CircuitAnalysis out;
  out.name = netlist.name();
  out.gate_count = netlist.gates().size();

  // Traditional corners: the drawn-length library plus uniform
  // full-budget corners.
  const UnitScale trad_nom;
  const TraditionalCornerScale trad_bc(l_nom, config_.budget, Corner::Best);
  const TraditionalCornerScale trad_wc(l_nom, config_.budget, Corner::Worst);

  // In-context corners with the expanded library.  Delay tables come from
  // the binned versions (memoized in the context cache); device labels use
  // the measured spacings.  Annotating once and deriving the three corner
  // factor matrices is exactly what three SvaCornerScale constructions
  // would compute, without re-annotating per corner.
  const std::vector<InstanceNps> nps = extract_nps(placement);
  const std::vector<VersionKey> versions = assign_versions(nps, config_.bins);
  const std::vector<std::vector<ArcAnnotation>> annotations =
      annotate_arcs(netlist, *context_, versions, config_.budget,
                    config_.arc_policy, 0.0, &nps, context_cache_.get());
  const MatrixScale sva_nom(
      corner_factors(netlist, annotations, config_.budget, Corner::Nominal));
  const MatrixScale sva_bc(
      corner_factors(netlist, annotations, config_.budget, Corner::Best));
  const MatrixScale sva_wc(
      corner_factors(netlist, annotations, config_.budget, Corner::Worst));

  out.arc_class_counts.assign(3, 0);
  for (const auto& gate : annotations)
    for (const ArcAnnotation& ann : gate)
      ++out.arc_class_counts[static_cast<std::size_t>(ann.arc_class)];

  const ArcScaleProvider* scales[6] = {&trad_nom, &trad_bc, &trad_wc,
                                       &sva_nom, &sva_bc, &sva_wc};
  double* fields[6] = {&out.trad_nom_ps, &out.trad_bc_ps, &out.trad_wc_ps,
                       &out.sva_nom_ps, &out.sva_bc_ps, &out.sva_wc_ps};
  auto run_one = [&](std::size_t i) {
    *fields[i] = (pool != nullptr && parallel_sta)
                     ? sta.run_parallel(*scales[i], *pool).critical_delay_ps
                     : sta.run(*scales[i]).critical_delay_ps;
  };
  if (pool != nullptr) {
    TaskGroup group(*pool);
    for (std::size_t i = 0; i < 6; ++i)
      group.run([&run_one, i] { run_one(i); });
    group.wait();
  } else {
    for (std::size_t i = 0; i < 6; ++i) run_one(i);
  }
  return out;
}

CircuitAnalysis SvaFlow::analyze_benchmark(const std::string& name) const {
  const Netlist netlist = make_benchmark(name);
  const Placement placement = make_placement(netlist);
  return analyze(netlist, placement);
}

}  // namespace sva
