#pragma once
// Context-aware leakage estimation.
//
// Subthreshold leakage is exponential in gate length, so the same
// systematic CD components that drive timing drive leakage even harder --
// the direction the authors took next ("Defocus-Aware Leakage Estimation
// and Control", Kahng/Muddu/Sharma, builds directly on this methodology).
//
// Model: I_leak(device) = i0 * (W / W0) * exp(-(L - L_nom) / L_slope),
// the standard first-order subthreshold dependence: shorter channels leak
// exponentially more.  Three estimates are compared:
//
//  * traditional worst case -- every device at L_nom - lvar_total;
//  * context-aware worst case -- per-device printed CD from the context
//    library, minus only the *residual* (non-systematic) budget, with the
//    through-focus term entering by device class (isolated devices thin
//    further out of focus; dense devices thicken and leak *less*);
//  * context-aware nominal -- per-device printed CD as-is.

#include <vector>

#include "cell/context_library.hpp"
#include "core/budget.hpp"
#include "core/classify.hpp"
#include "netlist/netlist.hpp"
#include "place/context.hpp"

namespace sva {

struct LeakageModel {
  double i0_na = 10.0;    ///< leakage of a W0-wide device at L_nom (nA)
  Nm w0 = 1000.0;         ///< reference width
  Nm l_slope = 12.0;      ///< exponential length sensitivity (nm/e-fold)

  /// Leakage of one device (nA).
  double device_leakage_na(Nm width, Nm length, Nm l_nom) const;
};

struct LeakageAnalysis {
  double nominal_traditional_na = 0.0;  ///< all devices at drawn length
  double worst_traditional_na = 0.0;    ///< all devices at L_nom - total
  double nominal_context_na = 0.0;      ///< context-predicted lengths
  double worst_context_na = 0.0;        ///< context + class-aware corners

  /// Pessimism of the traditional worst case vs the context-aware one.
  double worst_case_ratio() const {
    return worst_traditional_na / worst_context_na;
  }
};

/// Estimate chip leakage under the four models.  `nps` are the measured
/// spacings used for device classification (as in the timing flow).
LeakageAnalysis analyze_leakage(const Netlist& netlist,
                                const ContextLibrary& context,
                                const std::vector<VersionKey>& versions,
                                const std::vector<InstanceNps>& nps,
                                const CdBudget& budget,
                                const LeakageModel& model = {});

}  // namespace sva
