#pragma once
// Row-based standard-cell placement.
//
// The methodology needs placements only for their proximity statistics:
// which cells abut, and how much whitespace separates neighbours.  The
// placer assigns gates to rows in topological order chunks (a crude
// locality heuristic) and distributes the row's whitespace over the gaps
// between cells with a mix of abutments and 1..6-site gaps, site-aligned,
// reproducing the whitespace distribution a utilization-constrained P&R
// run yields.

#include <cstdint>
#include <vector>

#include "geom/layout.hpp"
#include "netlist/netlist.hpp"

namespace sva {

struct PlacementConfig {
  double utilization = 0.70;   ///< total cell width / total row width
  double abut_probability = 0.45;  ///< chance two neighbours abut (gap 0)
  std::uint64_t seed = 1;      ///< whitespace-distribution seed
};

struct PlacedInstance {
  std::size_t gate = 0;  ///< netlist gate index
  std::size_t row = 0;
  Nm x = 0.0;            ///< left edge of the cell
};

class Placement {
 public:
  /// Place every gate of the netlist.  The netlist (and its library) must
  /// outlive the placement.
  Placement(const Netlist& netlist, const PlacementConfig& config);

  const Netlist& netlist() const { return *netlist_; }

  /// One entry per netlist gate, index-aligned.
  const std::vector<PlacedInstance>& instances() const { return instances_; }

  /// Gate indices of one row, ordered left to right.
  const std::vector<std::vector<std::size_t>>& rows() const { return rows_; }

  Nm row_width() const { return row_width_; }

  /// Left / right neighbour gate of an instance within its row, or
  /// SIZE_MAX if it is first/last.
  std::size_t left_neighbor(std::size_t gate) const;
  std::size_t right_neighbor(std::size_t gate) const;

  /// Clear gap between an instance and its neighbour cell outline on one
  /// side; returns `fallback` when there is no neighbour.
  Nm gap_left(std::size_t gate, Nm fallback) const;
  Nm gap_right(std::size_t gate, Nm fallback) const;

  /// Assembled flat layout of one row (all masters instantiated at their
  /// x positions, y = 0) together with per-shape tags:
  /// tag = gate_index * kTagStride + poly_gate_index for gate stripes,
  /// -1 for everything else.
  static constexpr long kTagStride = 16;
  Layout row_layout(std::size_t row, std::vector<long>* shape_tags) const;

  /// Decode a row-layout tag.
  static std::size_t tag_gate(long tag) { return static_cast<std::size_t>(tag) / kTagStride; }
  static std::size_t tag_poly(long tag) { return static_cast<std::size_t>(tag) % kTagStride; }

  /// Legal horizontal move range of an instance within its row: how far it
  /// can shift left (negative) and right (positive) without overlapping
  /// its neighbours or leaving the row.
  std::pair<Nm, Nm> shift_range(std::size_t gate) const;

  /// Move an instance by dx within its row.  Throws if the move is
  /// outside shift_range().  Used by variation-aware detailed-placement
  /// optimizations (whitespace re-distribution changes the neighbour
  /// spacings and with them the smile/frown labels).
  void shift_instance(std::size_t gate, Nm dx);

 private:
  const Netlist* netlist_;
  std::vector<PlacedInstance> instances_;
  std::vector<std::vector<std::size_t>> rows_;
  std::vector<std::size_t> position_in_row_;  // per gate
  Nm row_width_ = 0.0;
};

}  // namespace sva
