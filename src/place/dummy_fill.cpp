#include "place/dummy_fill.hpp"

#include <algorithm>

#include "place/context.hpp"
#include "util/error.hpp"

namespace sva {
namespace {

void validate(const DummyFillConfig& config) {
  SVA_REQUIRE(config.fill_width > 0.0);
  SVA_REQUIRE(config.target_spacing > 0.0);
  SVA_REQUIRE(config.min_gap_to_fill >=
              config.fill_width + 2.0 * 140.0);  // printable on both sides
}

/// Plan fill for one clear interval [lo, hi] of a row.
void fill_gap(DummyFillPlan& plan, std::size_t row, Nm lo, Nm hi,
              const DummyFillConfig& config) {
  const Nm gap = hi - lo;
  if (gap < config.min_gap_to_fill) return;
  const Nm two_dummy_extent =
      2.0 * (config.target_spacing + config.fill_width) + 140.0;
  if (gap >= two_dummy_extent) {
    plan.lines.emplace_back(row, lo + config.target_spacing);
    plan.lines.emplace_back(
        row, hi - config.target_spacing - config.fill_width);
  } else {
    plan.lines.emplace_back(row, lo + (gap - config.fill_width) / 2.0);
  }
}

}  // namespace

DummyFillPlan plan_dummy_fill(const Placement& placement,
                              const DummyFillConfig& config) {
  validate(config);
  const CellLibrary& lib = placement.netlist().library();
  DummyFillPlan plan;
  for (std::size_t r = 0; r < placement.rows().size(); ++r) {
    const auto& row = placement.rows()[r];
    Nm cursor = 0.0;
    for (std::size_t gi : row) {
      const PlacedInstance& inst = placement.instances()[gi];
      fill_gap(plan, r, cursor, inst.x, config);
      cursor = inst.x +
               lib.master(placement.netlist().gates()[gi].cell_index)
                   .width();
    }
    fill_gap(plan, r, cursor, placement.row_width(), config);
  }
  return plan;
}

void apply_dummy_fill(Layout& row_layout, const DummyFillPlan& plan,
                      std::size_t row, const CellTech& tech,
                      const DummyFillConfig& config) {
  for (const auto& [r, x] : plan.lines) {
    if (r != row) continue;
    row_layout.add(Layer::DummyPoly,
                   Rect::make(x, tech.poly_y_lo, x + config.fill_width,
                              tech.poly_y_hi));
  }
}

std::vector<InstanceNps> nps_with_fill(const Placement& placement,
                                       const DummyFillPlan& plan,
                                       const DummyFillConfig& config) {
  const Netlist& netlist = placement.netlist();
  const CellLibrary& lib = netlist.library();
  std::vector<InstanceNps> nps = extract_nps(placement);

  // Per-row sorted dummy positions for quick nearest queries.
  std::vector<std::vector<Nm>> per_row(placement.rows().size());
  for (const auto& [r, x] : plan.lines) per_row[r].push_back(x);
  for (auto& v : per_row) std::sort(v.begin(), v.end());

  for (std::size_t gi = 0; gi < netlist.gates().size(); ++gi) {
    const PlacedInstance& inst = placement.instances()[gi];
    const CellMaster& master = lib.master(netlist.gates()[gi].cell_index);
    const auto& dummies = per_row[inst.row];
    if (dummies.empty()) continue;

    const Nm left_edge =
        inst.x + master.gates()[master.leftmost_gate()].x_lo();
    const Nm right_edge =
        inst.x + master.gates()[master.rightmost_gate()].x_hi();
    // Nearest dummy fully to the left / right of the boundary devices.
    Nm left_dist = 1e18;
    Nm right_dist = 1e18;
    for (Nm x : dummies) {
      const Nm dummy_hi = x + config.fill_width;
      if (dummy_hi <= left_edge)
        left_dist = std::min(left_dist, left_edge - dummy_hi);
      if (x >= right_edge) right_dist = std::min(right_dist, x - right_edge);
    }
    // A full-height dummy caps both the top and bottom spacings.
    nps[gi].lt = std::min(nps[gi].lt, left_dist);
    nps[gi].lb = std::min(nps[gi].lb, left_dist);
    nps[gi].rt = std::min(nps[gi].rt, right_dist);
    nps[gi].rb = std::min(nps[gi].rb, right_dist);
  }
  return nps;
}

}  // namespace sva
