#pragma once
// Placement-context extraction: the paper's nps_LT / nps_RT / nps_LB /
// nps_RB parameters (Sec. 3.1.2, Fig. 4) and their binning into cell
// versions.
//
// For every placed instance we measure, on each side and for each
// diffusion strip (top = PMOS, bottom = NMOS), the clear distance from the
// boundary device's gate edge to the nearest poly feature of the
// neighbouring cell.  Distances are clamped to the radius of influence
// (anything farther prints like an isolated edge); instances at row ends
// are isolated on that side.

#include <vector>

#include "cell/context_library.hpp"
#include "place/placement.hpp"

namespace sva {

/// Measured neighbour-poly spacings of one instance (nm, clamped to ROI).
struct InstanceNps {
  Nm lt = 0.0;  ///< left-top: PMOS-side spacing into the left neighbour
  Nm rt = 0.0;
  Nm lb = 0.0;  ///< left-bottom: NMOS-side spacing into the left neighbour
  Nm rb = 0.0;
};

/// Measure nps for every gate of the placement (index-aligned with
/// netlist gates).
std::vector<InstanceNps> extract_nps(const Placement& placement);

/// Bin measured spacings into a cell-version key.
VersionKey nps_to_version(const InstanceNps& nps, const ContextBins& bins);

/// Bin every instance.
std::vector<VersionKey> assign_versions(const std::vector<InstanceNps>& nps,
                                        const ContextBins& bins);

}  // namespace sva
