#pragma once
// Placement-context extraction: the paper's nps_LT / nps_RT / nps_LB /
// nps_RB parameters (Sec. 3.1.2, Fig. 4) and their binning into cell
// versions.
//
// For every placed instance we measure, on each side and for each
// diffusion strip (top = PMOS, bottom = NMOS), the clear distance from the
// boundary device's gate edge to the nearest poly feature of the
// neighbouring cell.  Distances are clamped to the radius of influence
// (anything farther prints like an isolated edge); instances at row ends
// are isolated on that side.

#include <vector>

#include "cell/context_library.hpp"
#include "place/placement.hpp"

namespace sva {

/// Measured neighbour-poly spacings of one instance (nm, clamped to ROI).
struct InstanceNps {
  Nm lt = 0.0;  ///< left-top: PMOS-side spacing into the left neighbour
  Nm rt = 0.0;
  Nm lb = 0.0;  ///< left-bottom: NMOS-side spacing into the left neighbour
  Nm rb = 0.0;
};

/// Measure nps for every gate of the placement (index-aligned with
/// netlist gates).
std::vector<InstanceNps> extract_nps(const Placement& placement);

/// One instance's re-measured spacings after a hypothetical move.
struct NpsUpdate {
  std::size_t gate = 0;
  InstanceNps nps;
};

/// Spacing perturbation: the nps values after shifting `gate` by `dx`
/// within its row, WITHOUT mutating the placement.  Returns updates for
/// exactly the instances a shift can affect -- the moved gate and its
/// immediate left/right row neighbours (nps measurement never reaches
/// past the abutting neighbour cell) -- in ascending gate order.  `dx`
/// must lie inside shift_range(gate).  ECO context re-spacing evaluates
/// candidates through this; a committed move then calls shift_instance()
/// and the same values become the new measured state.
std::vector<NpsUpdate> nps_after_shift(const Placement& placement,
                                       std::size_t gate, Nm dx);

/// Bin measured spacings into a cell-version key.
VersionKey nps_to_version(const InstanceNps& nps, const ContextBins& bins);

/// Bin every instance.
std::vector<VersionKey> assign_versions(const std::vector<InstanceNps>& nps,
                                        const ContextBins& bins);

}  // namespace sva
