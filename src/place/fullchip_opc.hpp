#pragma once
// Full-chip OPC: per-instance correction of the entire placed design.
//
// This is the expensive flow the paper's library-based OPC replaces
// ("Model-based OPC is very computation intensive.  Typical numbers range
// from about 1100 seconds for a small 5900 gate design to several CPU
// days", Sec. 3.1).  It is implemented here both as the accuracy reference
// for Table 1 (library-OPC CDs are compared against full-chip-OPC CDs)
// and as the source of the Fig. 7 post-OPC CD-error distribution.
//
// Each placement row is corrected jointly along two cutlines (PMOS strip,
// NMOS strip); every gate stripe's printed CD is then measured in its true
// corrected context.

#include <vector>

#include "opc/engine.hpp"
#include "place/placement.hpp"

namespace sva {

struct FullChipOpcResult {
  /// Printed CD per gate instance per master device index; 0 on failure.
  std::vector<std::vector<Nm>> device_cd;
  /// Final mask width per gate instance per master device index.
  std::vector<std::vector<Nm>> device_mask_width;
  std::size_t images_simulated = 0;
  std::size_t lines_corrected = 0;
};

/// Correct the whole placement and measure every device's printed CD.
FullChipOpcResult full_chip_opc(const Placement& placement,
                                const OpcEngine& engine);

}  // namespace sva
