#include "place/context.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace sva {
namespace {

/// Poly features of `master` (gate stripes + stubs) that vertically
/// overlap the strip [y_lo, y_hi], as x intervals in cell coordinates.
std::vector<std::pair<Nm, Nm>> poly_intervals_in_strip(
    const CellMaster& master, Nm y_lo, Nm y_hi) {
  std::vector<std::pair<Nm, Nm>> out;
  const Rect strip = Rect::make(-1e9, y_lo, 1e9, y_hi);
  for (std::size_t gi = 0; gi < master.gates().size(); ++gi) {
    const Rect r = master.gate_rect(gi);
    if (r.y_overlaps(strip)) out.emplace_back(r.x_lo, r.x_hi);
  }
  for (const Rect& s : master.poly_stubs())
    if (s.y_overlaps(strip)) out.emplace_back(s.x_lo, s.x_hi);
  return out;
}

/// A single hypothetical x-position override (SIZE_MAX => no override).
struct XOverride {
  std::size_t gate = static_cast<std::size_t>(-1);
  Nm x = 0.0;
};

Nm x_of(const Placement& placement, std::size_t gi, const XOverride& ov) {
  return gi == ov.gate ? ov.x : placement.instances()[gi].x;
}

/// Measure one side/strip spacing for instance `gi`.
Nm measure_side(const Placement& placement, std::size_t gi, bool left,
                Nm strip_y_lo, Nm strip_y_hi, Nm roi,
                const XOverride& ov = {}) {
  const Netlist& netlist = placement.netlist();
  const CellLibrary& lib = netlist.library();
  const CellMaster& master = lib.master(netlist.gates()[gi].cell_index);

  const std::size_t boundary_gate =
      left ? master.leftmost_gate() : master.rightmost_gate();
  const PolyGate& g = master.gates()[boundary_gate];
  const Nm own_edge = x_of(placement, gi, ov) + (left ? g.x_lo() : g.x_hi());

  const std::size_t n =
      left ? placement.left_neighbor(gi) : placement.right_neighbor(gi);
  if (n == static_cast<std::size_t>(-1)) return roi;

  const CellMaster& n_master = lib.master(netlist.gates()[n].cell_index);
  const Nm n_x = x_of(placement, n, ov);
  Nm best = roi;
  for (const auto& [x_lo, x_hi] :
       poly_intervals_in_strip(n_master, strip_y_lo, strip_y_hi)) {
    if (left) {
      const Nm edge = n_x + x_hi;
      if (edge <= own_edge) best = std::min(best, own_edge - edge);
    } else {
      const Nm edge = n_x + x_lo;
      if (edge >= own_edge) best = std::min(best, edge - own_edge);
    }
  }
  return best;
}

/// All four spacings of one instance under an optional x override.
InstanceNps measure_instance(const Placement& placement, std::size_t gi,
                             const CellTech& tech, Nm roi,
                             const XOverride& ov = {}) {
  InstanceNps nps;
  nps.lt = measure_side(placement, gi, /*left=*/true, tech.pmos_y_lo,
                        tech.pmos_y_hi, roi, ov);
  nps.rt = measure_side(placement, gi, /*left=*/false, tech.pmos_y_lo,
                        tech.pmos_y_hi, roi, ov);
  nps.lb = measure_side(placement, gi, /*left=*/true, tech.nmos_y_lo,
                        tech.nmos_y_hi, roi, ov);
  nps.rb = measure_side(placement, gi, /*left=*/false, tech.nmos_y_lo,
                        tech.nmos_y_hi, roi, ov);
  return nps;
}

}  // namespace

std::vector<InstanceNps> extract_nps(const Placement& placement) {
  const Netlist& netlist = placement.netlist();
  const CellLibrary& lib = netlist.library();
  const CellTech& tech = lib.master(0).tech();
  const Nm roi = tech.radius_of_influence;

  std::vector<InstanceNps> out(netlist.gates().size());
  for (std::size_t gi = 0; gi < netlist.gates().size(); ++gi)
    out[gi] = measure_instance(placement, gi, tech, roi);
  return out;
}

std::vector<NpsUpdate> nps_after_shift(const Placement& placement,
                                       std::size_t gate, Nm dx) {
  const Netlist& netlist = placement.netlist();
  SVA_REQUIRE(gate < netlist.gates().size());
  const auto [lo, hi] = placement.shift_range(gate);
  SVA_REQUIRE_MSG(dx >= lo - 1e-9 && dx <= hi + 1e-9,
                  "shift outside the legal range");
  const CellTech& tech = netlist.library().master(0).tech();
  const Nm roi = tech.radius_of_influence;
  const XOverride ov{gate, placement.instances()[gate].x + dx};

  std::vector<std::size_t> affected;
  const std::size_t l = placement.left_neighbor(gate);
  const std::size_t r = placement.right_neighbor(gate);
  if (l != static_cast<std::size_t>(-1)) affected.push_back(l);
  affected.push_back(gate);
  if (r != static_cast<std::size_t>(-1)) affected.push_back(r);
  std::sort(affected.begin(), affected.end());

  std::vector<NpsUpdate> out;
  out.reserve(affected.size());
  for (std::size_t gi : affected)
    out.push_back({gi, measure_instance(placement, gi, tech, roi, ov)});
  return out;
}

VersionKey nps_to_version(const InstanceNps& nps, const ContextBins& bins) {
  VersionKey key;
  key.lt = static_cast<std::uint8_t>(bins.bin_of(nps.lt));
  key.rt = static_cast<std::uint8_t>(bins.bin_of(nps.rt));
  key.lb = static_cast<std::uint8_t>(bins.bin_of(nps.lb));
  key.rb = static_cast<std::uint8_t>(bins.bin_of(nps.rb));
  return key;
}

std::vector<VersionKey> assign_versions(const std::vector<InstanceNps>& nps,
                                        const ContextBins& bins) {
  std::vector<VersionKey> out;
  out.reserve(nps.size());
  for (const InstanceNps& n : nps) out.push_back(nps_to_version(n, bins));
  return out;
}

}  // namespace sva
