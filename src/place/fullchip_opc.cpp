#include "place/fullchip_opc.hpp"

#include "opc/cutline.hpp"
#include "util/error.hpp"

namespace sva {

FullChipOpcResult full_chip_opc(const Placement& placement,
                                const OpcEngine& engine) {
  const Netlist& netlist = placement.netlist();
  const CellLibrary& lib = netlist.library();
  const CellTech& tech = lib.master(0).tech();
  const Nm y_n = 0.5 * (tech.nmos_y_lo + tech.nmos_y_hi);
  const Nm y_p = 0.5 * (tech.pmos_y_lo + tech.pmos_y_hi);

  FullChipOpcResult result;
  result.device_cd.resize(netlist.gates().size());
  result.device_mask_width.resize(netlist.gates().size());
  for (std::size_t gi = 0; gi < netlist.gates().size(); ++gi) {
    const std::size_t n_dev =
        lib.master(netlist.gates()[gi].cell_index).devices().size();
    result.device_cd[gi].assign(n_dev, 0.0);
    result.device_mask_width[gi].assign(n_dev, 0.0);
  }

  std::vector<long> tags;
  for (std::size_t r = 0; r < placement.rows().size(); ++r) {
    const Layout row = placement.row_layout(r, &tags);
    if (row.empty()) continue;
    for (const auto& [y, type] : {std::pair{y_n, DeviceType::Nmos},
                                  std::pair{y_p, DeviceType::Pmos}}) {
      const OpcProblem problem = extract_cutline(row, y, tags);
      const OpcResult corrected = engine.correct(problem);
      result.images_simulated += corrected.images_simulated;
      result.lines_corrected += corrected.lines.size();
      for (const OpcLineResult& lr : corrected.lines) {
        if (lr.line.tag < 0) continue;
        const std::size_t gi = Placement::tag_gate(lr.line.tag);
        const std::size_t poly = Placement::tag_poly(lr.line.tag);
        const CellMaster& master =
            lib.master(netlist.gates()[gi].cell_index);
        for (std::size_t di = 0; di < master.devices().size(); ++di) {
          const Device& d = master.devices()[di];
          if (d.type != type || d.gate_index != poly) continue;
          result.device_cd[gi][di] = lr.printed_cd;
          result.device_mask_width[gi][di] = lr.line.mask_width();
        }
      }
    }
  }
  return result;
}

}  // namespace sva
