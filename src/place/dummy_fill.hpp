#pragma once
// Dummy-poly fill of placement whitespace.
//
// The manufacturing-side complement of the paper's methodology: instead of
// (only) *modelling* the proximity dependence, production flows insert
// non-functional poly into whitespace so every boundary device sees a
// dense-like neighbourhood -- the same trick the library-OPC environment
// plays with its dummy geometries (Fig. 3), applied to the real layout.
// Fill narrows the spread of neighbour spacings, which (a) moves most
// arcs toward the smile/dense class and (b) shrinks the context-induced
// CD spread itself.

#include <cstddef>

#include "geom/layout.hpp"
#include "place/context.hpp"
#include "place/placement.hpp"

namespace sva {

struct DummyFillConfig {
  Nm fill_width = 90.0;     ///< dummy line width (drawn gate length)
  Nm min_gap_to_fill = 370.0;  ///< gaps at least this wide receive fill
  Nm target_spacing = 150.0;   ///< desired spacing from cell poly to fill
};

struct DummyFillPlan {
  /// One full-height dummy line per entry: (row, absolute x of left edge).
  std::vector<std::pair<std::size_t, Nm>> lines;

  std::size_t count() const { return lines.size(); }
};

/// Plan dummy insertion for every gap (including row ends) of the
/// placement.  The plan is geometry-only; apply it when assembling row
/// layouts with apply_dummy_fill().
DummyFillPlan plan_dummy_fill(const Placement& placement,
                              const DummyFillConfig& config = {});

/// Append the plan's dummies for one row to a row layout (shape tags, if
/// tracked by the caller, should record -1 for them).
void apply_dummy_fill(Layout& row_layout, const DummyFillPlan& plan,
                      std::size_t row, const CellTech& tech,
                      const DummyFillConfig& config = {});

/// Effective nps with fill: the measured spacing capped by the distance
/// to the nearest planned dummy.  Returns the per-instance spacings after
/// fill for version binding.
std::vector<InstanceNps> nps_with_fill(const Placement& placement,
                                       const DummyFillPlan& plan,
                                       const DummyFillConfig& config = {});

}  // namespace sva
