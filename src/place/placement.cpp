#include "place/placement.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace sva {

Placement::Placement(const Netlist& netlist, const PlacementConfig& config)
    : netlist_(&netlist) {
  SVA_REQUIRE(config.utilization > 0.0 && config.utilization <= 1.0);
  SVA_REQUIRE(config.abut_probability >= 0.0 &&
              config.abut_probability <= 1.0);
  SVA_REQUIRE_MSG(!netlist.gates().empty(), "cannot place an empty netlist");

  const CellLibrary& lib = netlist.library();
  const CellTech& tech = lib.master(0).tech();
  Rng rng(config.seed);

  // Total cell width and square-ish die dimensioning.
  Nm total_width = 0.0;
  for (const GateInst& g : netlist.gates())
    total_width += lib.master(g.cell_index).width();
  const Nm placed_width = total_width / config.utilization;
  const auto n_rows = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(
             std::sqrt(placed_width / tech.cell_height))));
  row_width_ = placed_width / static_cast<double>(n_rows);

  // Assign gates to rows in topological-order chunks: neighbouring logic
  // lands in the same or adjacent rows.
  const auto& topo = netlist.topological_order();
  rows_.resize(n_rows);
  instances_.resize(netlist.gates().size());
  position_in_row_.resize(netlist.gates().size());

  std::size_t row = 0;
  Nm used = 0.0;
  const Nm target_cell_width_per_row = total_width / static_cast<double>(n_rows);
  for (std::size_t gi : topo) {
    const Nm w = lib.master(netlist.gates()[gi].cell_index).width();
    if (used + w > target_cell_width_per_row && row + 1 < n_rows &&
        !rows_[row].empty()) {
      ++row;
      used = 0.0;
    }
    rows_[row].push_back(gi);
    used += w;
  }

  // Distribute whitespace within each row: gaps are site multiples; a
  // fraction of neighbours abut.
  for (std::size_t r = 0; r < n_rows; ++r) {
    Nm cells_w = 0.0;
    for (std::size_t gi : rows_[r])
      cells_w += lib.master(netlist_->gates()[gi].cell_index).width();
    Nm remaining = std::max(0.0, row_width_ - cells_w);
    Nm x = 0.0;
    for (std::size_t pos = 0; pos < rows_[r].size(); ++pos) {
      const std::size_t gi = rows_[r][pos];
      if (pos > 0 && remaining >= tech.site_width &&
          !rng.bernoulli(config.abut_probability)) {
        const auto max_sites = std::min<std::int64_t>(
            6, static_cast<std::int64_t>(remaining / tech.site_width));
        const Nm gap =
            static_cast<double>(rng.uniform_int(1, max_sites)) *
            tech.site_width;
        x += gap;
        remaining -= gap;
      }
      instances_[gi] = {gi, r, x};
      position_in_row_[gi] = pos;
      x += lib.master(netlist_->gates()[gi].cell_index).width();
    }
  }
}

std::size_t Placement::left_neighbor(std::size_t gate) const {
  SVA_REQUIRE(gate < instances_.size());
  const std::size_t pos = position_in_row_[gate];
  if (pos == 0) return static_cast<std::size_t>(-1);
  return rows_[instances_[gate].row][pos - 1];
}

std::size_t Placement::right_neighbor(std::size_t gate) const {
  SVA_REQUIRE(gate < instances_.size());
  const std::size_t pos = position_in_row_[gate];
  const auto& row = rows_[instances_[gate].row];
  if (pos + 1 >= row.size()) return static_cast<std::size_t>(-1);
  return row[pos + 1];
}

Nm Placement::gap_left(std::size_t gate, Nm fallback) const {
  const std::size_t n = left_neighbor(gate);
  if (n == static_cast<std::size_t>(-1)) return fallback;
  const CellLibrary& lib = netlist_->library();
  const Nm n_right =
      instances_[n].x + lib.master(netlist_->gates()[n].cell_index).width();
  return instances_[gate].x - n_right;
}

Nm Placement::gap_right(std::size_t gate, Nm fallback) const {
  const std::size_t n = right_neighbor(gate);
  if (n == static_cast<std::size_t>(-1)) return fallback;
  const CellLibrary& lib = netlist_->library();
  const Nm g_right = instances_[gate].x +
                     lib.master(netlist_->gates()[gate].cell_index).width();
  return instances_[n].x - g_right;
}

std::pair<Nm, Nm> Placement::shift_range(std::size_t gate) const {
  SVA_REQUIRE(gate < instances_.size());
  const CellLibrary& lib = netlist_->library();
  const Nm width = lib.master(netlist_->gates()[gate].cell_index).width();
  const Nm x = instances_[gate].x;

  Nm min_x = 0.0;
  const std::size_t l = left_neighbor(gate);
  if (l != static_cast<std::size_t>(-1))
    min_x = instances_[l].x +
            lib.master(netlist_->gates()[l].cell_index).width();
  Nm max_x = row_width_ - width;
  const std::size_t r = right_neighbor(gate);
  if (r != static_cast<std::size_t>(-1)) max_x = instances_[r].x - width;
  return {min_x - x, max_x - x};
}

void Placement::shift_instance(std::size_t gate, Nm dx) {
  const auto [lo, hi] = shift_range(gate);
  SVA_REQUIRE_MSG(dx >= lo - 1e-9 && dx <= hi + 1e-9,
                  "shift would overlap a neighbour or leave the row");
  instances_[gate].x += dx;
}

Layout Placement::row_layout(std::size_t row,
                             std::vector<long>* shape_tags) const {
  SVA_REQUIRE(row < rows_.size());
  Layout out;
  if (shape_tags != nullptr) shape_tags->clear();
  const CellLibrary& lib = netlist_->library();
  for (std::size_t gi : rows_[row]) {
    const CellMaster& master =
        lib.master(netlist_->gates()[gi].cell_index);
    const Layout cell = master.layout();
    SVA_REQUIRE_MSG(master.gates().size() <
                        static_cast<std::size_t>(kTagStride),
                    "master has too many poly gates for the tag encoding");
    const Nm dx = instances_[gi].x;
    out.merge_translated(cell, dx, 0.0);
    if (shape_tags != nullptr) {
      for (std::size_t si = 0; si < cell.size(); ++si) {
        const bool is_gate_stripe = si < master.gates().size();
        shape_tags->push_back(
            is_gate_stripe
                ? static_cast<long>(gi) * kTagStride + static_cast<long>(si)
                : -1L);
      }
    }
  }
  return out;
}

}  // namespace sva
