#include "litho/pitch_curve.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace sva {

std::vector<PitchCdPoint> through_pitch_curve(const LithoProcess& process,
                                              Nm linewidth,
                                              const std::vector<Nm>& pitches,
                                              Nm defocus, double dose) {
  SVA_REQUIRE(linewidth > 0.0);
  SVA_REQUIRE(!pitches.empty());
  std::vector<PitchCdPoint> out;
  out.reserve(pitches.size());
  for (Nm pitch : pitches) {
    SVA_REQUIRE_MSG(pitch > linewidth, "pitch must exceed linewidth");
    const auto mask = MaskPattern1D::grating(linewidth, pitch);
    const auto cd = process.printed_cd(mask, defocus, dose);
    out.push_back({pitch, cd.value_or(0.0)});
  }
  return out;
}

std::vector<Nm> pitch_sweep(Nm pitch_lo, Nm pitch_hi, std::size_t count) {
  SVA_REQUIRE(count >= 2);
  SVA_REQUIRE(pitch_hi > pitch_lo && pitch_lo > 0.0);
  std::vector<Nm> out(count);
  for (std::size_t i = 0; i < count; ++i)
    out[i] = pitch_lo + (pitch_hi - pitch_lo) * static_cast<double>(i) /
                            static_cast<double>(count - 1);
  return out;
}

LookupTable1D spacing_cd_table(const std::vector<PitchCdPoint>& curve,
                               Nm linewidth) {
  SVA_REQUIRE(curve.size() >= 2);
  std::vector<double> spacing;
  std::vector<double> cd;
  for (const auto& p : curve) {
    SVA_REQUIRE_MSG(p.cd > 0.0,
                    "print failure in pitch curve; cannot build table");
    spacing.push_back(p.pitch - linewidth);
    cd.push_back(p.cd);
  }
  return LookupTable1D(std::move(spacing), std::move(cd));
}

Nm pitch_cd_half_range(const std::vector<PitchCdPoint>& curve) {
  SVA_REQUIRE(!curve.empty());
  Nm lo = curve.front().cd;
  Nm hi = curve.front().cd;
  for (const auto& p : curve) {
    lo = std::min(lo, p.cd);
    hi = std::max(hi, p.cd);
  }
  return (hi - lo) / 2.0;
}

}  // namespace sva
