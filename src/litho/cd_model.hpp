#pragma once
// Printed-CD models.
//
// LithoProcess bundles the aerial-image simulator with a calibrated
// threshold resist and the supercell embedding convention, exposing
// "printed CD of a line in a given 1-D context" as one call.
//
// On top of it sit three CdModel implementations used by different parts
// of the methodology:
//
//  * SimulatedCdModel  -- full simulation (what the paper calls
//    "lithography simulations ... to predict the printed shape").  Used by
//    OPC and full-chip CD extraction.
//  * TableCdModel      -- the paper's pitch->CD lookup table ("we construct
//    a look-up table which matches pitch to printed CD"), built post-OPC
//    and used for cell-boundary devices during in-context timing.
//  * EmpiricalCdModel  -- closed-form iso-dense bias + Bossung focus term +
//    dose slope.  Fast path for statistical sweeps and the ablation
//    benches; its defaults encode the magnitudes the paper quotes (~10%
//    through-pitch, smile/frown through focus).

#include <memory>
#include <optional>
#include <vector>

#include "litho/aerial.hpp"
#include "litho/mask1d.hpp"
#include "litho/optics.hpp"
#include "litho/resist.hpp"
#include "util/interp.hpp"
#include "util/units.hpp"

namespace sva {

/// Simulator + calibrated resist + embedding conventions.
class LithoProcess {
 public:
  /// Calibrates the resist threshold so a dense grating of
  /// (anchor_linewidth, anchor_pitch) prints at its drawn CD at best
  /// focus / nominal dose.
  LithoProcess(const OpticsConfig& optics, Nm anchor_linewidth,
               Nm anchor_pitch);

  /// Explicit process dose point: the resist threshold is fixed and mask
  /// sizing is left to OPC.  Choosing the threshold slightly above the
  /// dense-pattern isofocal intensity reproduces the smile/frown Bossung
  /// asymmetry of Fig. 2 (a threshold below it makes every pitch frown).
  LithoProcess(const OpticsConfig& optics, double threshold);

  /// Printed CD of the centre line of `mask`; nullopt if it fails to print.
  std::optional<Nm> printed_cd(const MaskPattern1D& mask, Nm defocus = 0.0,
                               double dose = 1.0) const;

  /// Printed CD of a line of (mask) width `center_width` with the given
  /// neighbours, embedded in the standard supercell.
  std::optional<Nm> printed_cd_in_context(
      Nm center_width,
      const std::vector<std::pair<Nm, Nm>>& left_neighbors,
      const std::vector<std::pair<Nm, Nm>>& right_neighbors,
      Nm defocus = 0.0, double dose = 1.0) const;

  /// Supercell period used to embed local contexts; large enough that
  /// periodic replicas sit beyond the radius of influence of the centre
  /// line and of every neighbour within it.
  static constexpr Nm kSupercellPeriod = 3000.0;

  const AerialImageSimulator& simulator() const { return simulator_; }
  const ThresholdResist& resist() const { return resist_; }
  const OpticsConfig& optics() const { return simulator_.optics(); }

 private:
  AerialImageSimulator simulator_;
  ThresholdResist resist_;
};

/// Abstract printed-CD model: a gate of drawn width w whose clear spacing
/// to the nearest poly on the left/right is s_left/s_right.
class CdModel {
 public:
  virtual ~CdModel() = default;

  /// Printed gate length.  Spacings beyond the radius of influence are to
  /// be clamped by the implementation; defocus in nm; dose relative to
  /// nominal (1.0).
  virtual Nm printed_cd(Nm drawn_width, Nm s_left, Nm s_right, Nm defocus,
                        double dose) const = 0;

  Nm printed_cd_nominal(Nm drawn_width, Nm s_left, Nm s_right) const {
    return printed_cd(drawn_width, s_left, s_right, 0.0, 1.0);
  }
};

/// Full-simulation CD model.  Neighbours are modeled as single lines of
/// the same drawn width at the queried spacings (the dominant first-order
/// context; second-order neighbours are already beyond most of the
/// proximity kernel for the spacings of interest).
class SimulatedCdModel final : public CdModel {
 public:
  /// `process` must outlive the model.
  SimulatedCdModel(const LithoProcess& process, Nm radius_of_influence);

  Nm printed_cd(Nm drawn_width, Nm s_left, Nm s_right, Nm defocus,
                double dose) const override;

 private:
  const LithoProcess* process_;
  Nm roi_;
};

/// Pitch -> CD lookup (built from post-OPC measurements of symmetric
/// test gratings).  Asymmetric contexts combine the two sides' half
/// contributions: CD(s_l, s_r) = w + (delta(s_l) + delta(s_r)) / 2 where
/// delta(s) = table(w + 2s ... ) - w for the symmetric spacing s.
class TableCdModel final : public CdModel {
 public:
  /// `spacing_to_cd`: CD of the test line as a function of one-sided
  /// spacing s (symmetric grating with pitch = linewidth + s).
  TableCdModel(Nm table_linewidth, LookupTable1D spacing_to_cd,
               Nm radius_of_influence);

  Nm printed_cd(Nm drawn_width, Nm s_left, Nm s_right, Nm defocus,
                double dose) const override;

  const LookupTable1D& table() const { return spacing_to_cd_; }

 private:
  Nm table_linewidth_;
  LookupTable1D spacing_to_cd_;
  Nm roi_;
};

/// Closed-form model of the two systematic components plus dose slope.
struct EmpiricalCdParams {
  Nm dense_spacing = 150.0;   ///< spacing at/below which a side is "dense"
  Nm iso_spacing = 600.0;     ///< spacing at/above which a side is "iso"
  double pitch_bias = 0.10;   ///< fractional CD drop dense -> iso (paper ~10%)
  double focus_gain = 0.06;   ///< fractional |CD shift| at full defocus
  Nm focus_scale = 300.0;     ///< defocus (nm) at which focus_gain applies
  double dose_slope = 0.25;   ///< fractional CD change per unit dose error
};

class EmpiricalCdModel final : public CdModel {
 public:
  explicit EmpiricalCdModel(const EmpiricalCdParams& params);

  Nm printed_cd(Nm drawn_width, Nm s_left, Nm s_right, Nm defocus,
                double dose) const override;

  const EmpiricalCdParams& params() const { return params_; }

  /// Smooth dense(+1) .. iso(-1) character of one side's spacing; used both
  /// here and by tests.
  double side_character(Nm spacing) const;

 private:
  EmpiricalCdParams params_;
};

}  // namespace sva
