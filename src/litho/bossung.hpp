#pragma once
// Bossung curves and the Focus-Exposure Matrix (FEM).
//
// A Bossung plot (paper Fig. 2) traces printed CD versus defocus for a
// family of exposure doses.  Dense lines "smile" (CD grows out of focus),
// isolated lines "frown" (CD shrinks).  The FEM collects CD over a
// (defocus x dose) grid for a set of pitches; the paper builds it from
// fabricated test structures and uses it to quantify +-lvar_focus, the
// through-focus share of the CD budget (Sec. 3.3).

#include <vector>

#include "litho/cd_model.hpp"
#include "util/units.hpp"

namespace sva {

/// CD vs defocus at one (pitch, dose).
struct BossungCurve {
  Nm pitch = 0.0;
  double dose = 1.0;
  std::vector<Nm> defocus;  ///< sample axis
  std::vector<Nm> cd;       ///< printed CD at each defocus (0 = failure)
};

/// Sweep defocus for each dose at a fixed (linewidth, pitch).
std::vector<BossungCurve> bossung_family(const LithoProcess& process,
                                         Nm linewidth, Nm pitch,
                                         const std::vector<Nm>& defocus_axis,
                                         const std::vector<double>& doses);

/// Focus-exposure matrix for one pitch.
struct FemEntry {
  Nm pitch = 0.0;
  std::vector<Nm> defocus_axis;
  std::vector<double> dose_axis;
  /// Row-major CD grid: cd[i_defocus * dose_axis.size() + i_dose].
  std::vector<Nm> cd;

  Nm cd_at(std::size_t i_defocus, std::size_t i_dose) const;
};

struct FocusExposureMatrix {
  std::vector<FemEntry> entries;  ///< one per pitch

  /// Maximum over pitches and doses of |CD(defocus) - CD(0)| / 2, i.e. the
  /// half-range of the through-focus CD excursion: the measured lvar_focus.
  Nm focus_half_range() const;
};

/// Build the FEM by simulation (stands in for the paper's fabricated test
/// structures; see DESIGN.md substitution table).
FocusExposureMatrix build_fem(const LithoProcess& process, Nm linewidth,
                              const std::vector<Nm>& pitches,
                              const std::vector<Nm>& defocus_axis,
                              const std::vector<double>& doses);

/// Evenly spaced defocus axis -range..+range inclusive (odd count keeps a
/// sample exactly at best focus).
std::vector<Nm> defocus_sweep(Nm range, std::size_t count);

/// Bossung curvature sign of a curve: positive = smile (dense-like),
/// negative = frown (iso-like).  Computed as CD(extreme defocus) - CD(0)
/// averaged over both focus extremes; requires a defocus axis containing 0.
double bossung_curvature(const BossungCurve& curve);

}  // namespace sva
