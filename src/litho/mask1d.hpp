#pragma once
// One-dimensional periodic mask patterns.
//
// Poly gates are long vertical stripes, so their printing is governed by
// the one-dimensional cross-section of the mask: opaque line segments on a
// clear background, repeated with some period.  Arbitrary local contexts
// (a gate plus its neighbours within the radius of influence) are embedded
// in a large "supercell" period so that periodic replicas are too far away
// to matter.
//
// Segments carry a complex transmission (0 for chrome on a binary mask;
// e.g. sqrt(0.06)*exp(i*pi) for 6% attenuated PSM, supported as a process
// extension).

#include <complex>
#include <vector>

#include "util/units.hpp"

namespace sva {

/// An opaque (or semi-transparent) segment of the mask cross-section.
struct MaskSegment {
  Nm x_lo = 0.0;
  Nm x_hi = 0.0;
  std::complex<double> transmission = 0.0;

  Nm width() const { return x_hi - x_lo; }
};

/// Periodic 1-D mask: clear background (transmission 1) with segments.
class MaskPattern1D {
 public:
  /// Construct with validation: positive period, segments sorted,
  /// non-overlapping, and inside [0, period].
  MaskPattern1D(Nm period, std::vector<MaskSegment> segments);

  Nm period() const { return period_; }
  const std::vector<MaskSegment>& segments() const { return segments_; }

  /// Complex Fourier coefficient c_n of the transmission function:
  /// t(x) = sum_n c_n exp(i 2 pi n x / period).
  std::complex<double> fourier_coefficient(int n) const;

  /// Mask transmission at a point (for tests / plotting).
  std::complex<double> transmission_at(Nm x) const;

  /// Fraction of the period that is clear (|t| == 1).
  double clear_fraction() const;

  // ---- Constructors for the patterns the experiments need ----

  /// Equal-width lines on the given pitch: one line of width `linewidth`
  /// centred in each period.  This is the paper's test-structure layout
  /// ("parallel poly lines with fixed width ... varying spacing").
  static MaskPattern1D grating(Nm linewidth, Nm pitch);

  /// A line of width `center_width` centred at period/2, with neighbour
  /// lines given as (edge-to-edge clear spacing from the centre line,
  /// width) on the left and right, embedded in `period`.  Neighbour lists
  /// are ordered nearest-first.
  static MaskPattern1D local_context(Nm center_width,
                                     const std::vector<std::pair<Nm, Nm>>&
                                         left_neighbors,
                                     const std::vector<std::pair<Nm, Nm>>&
                                         right_neighbors,
                                     Nm period);

  /// Index of the segment covering period/2 (the centre line in patterns
  /// built by local_context / grating).
  std::size_t center_segment_index() const;

  /// Copy of this pattern with every segment's transmission replaced --
  /// e.g. with_transmission(attenuated_psm_transmission()) turns a binary
  /// mask into a 6% attenuated phase-shift mask.
  MaskPattern1D with_transmission(std::complex<double> transmission) const;

  /// Complex transmission of an attenuated PSM absorber: sqrt(T) with a
  /// 180-degree phase shift (default T = 6%).
  static std::complex<double> attenuated_psm_transmission(
      double intensity_transmittance = 0.06);

 private:
  Nm period_ = 0.0;
  std::vector<MaskSegment> segments_;
};

}  // namespace sva
