#include "litho/process_window.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace sva {
namespace {

/// Index of the axis sample closest to `value`.
template <typename Axis>
std::size_t nearest_index(const Axis& axis, double value) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < axis.size(); ++i)
    if (std::abs(axis[i] - value) < std::abs(axis[best] - value)) best = i;
  return best;
}

}  // namespace

ProcessWindow compute_process_window(const FemEntry& entry, Nm target_cd,
                                     double tolerance) {
  SVA_REQUIRE(target_cd > 0.0);
  SVA_REQUIRE(tolerance > 0.0 && tolerance < 1.0);
  SVA_REQUIRE(!entry.defocus_axis.empty() && !entry.dose_axis.empty());

  ProcessWindow window;
  window.target_cd = target_cd;
  window.tolerance = tolerance;

  auto in_spec = [&](std::size_t i_dz, std::size_t i_dose) {
    const Nm cd = entry.cd_at(i_dz, i_dose);
    return cd > 0.0 && std::abs(cd - target_cd) <= tolerance * target_cd;
  };

  const std::size_t i_focus = nearest_index(entry.defocus_axis, 0.0);
  const std::size_t i_dose = nearest_index(entry.dose_axis, 1.0);

  // DOF: widest contiguous defocus span containing best focus, in spec at
  // nominal dose.
  if (in_spec(i_focus, i_dose)) {
    std::size_t lo = i_focus;
    while (lo > 0 && in_spec(lo - 1, i_dose)) --lo;
    std::size_t hi = i_focus;
    while (hi + 1 < entry.defocus_axis.size() && in_spec(hi + 1, i_dose))
      ++hi;
    window.dof_at_nominal_dose =
        entry.defocus_axis[hi] - entry.defocus_axis[lo];
  }

  // Exposure latitude at best focus.
  if (in_spec(i_focus, i_dose)) {
    std::size_t lo = i_dose;
    while (lo > 0 && in_spec(i_focus, lo - 1)) --lo;
    std::size_t hi = i_dose;
    while (hi + 1 < entry.dose_axis.size() && in_spec(i_focus, hi + 1)) ++hi;
    window.exposure_latitude = entry.dose_axis[hi] - entry.dose_axis[lo];
  }

  // Largest all-in-spec rectangle (brute force over index ranges; FEM
  // grids are small).
  const std::size_t nf = entry.defocus_axis.size();
  const std::size_t nd = entry.dose_axis.size();
  double best_area = -1.0;
  for (std::size_t f0 = 0; f0 < nf; ++f0) {
    for (std::size_t f1 = f0; f1 < nf; ++f1) {
      for (std::size_t d0 = 0; d0 < nd; ++d0) {
        for (std::size_t d1 = d0; d1 < nd; ++d1) {
          bool ok = true;
          for (std::size_t f = f0; f <= f1 && ok; ++f)
            for (std::size_t d = d0; d <= d1 && ok; ++d)
              ok = in_spec(f, d);
          if (!ok) continue;
          const Nm f_span = entry.defocus_axis[f1] - entry.defocus_axis[f0];
          const double d_span = entry.dose_axis[d1] - entry.dose_axis[d0];
          const double area = (f_span + 1.0) * (d_span + 1e-3);
          if (area > best_area) {
            best_area = area;
            window.best_window_defocus_span = f_span;
            window.best_window_dose_span = d_span;
          }
        }
      }
    }
  }
  return window;
}

}  // namespace sva
