#include "litho/aerial.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace sva {

ImageProfile::ImageProfile(Nm period,
                           std::vector<std::complex<double>> coefficients)
    : period_(period), b_(std::move(coefficients)) {
  SVA_REQUIRE(period_ > 0.0);
  SVA_REQUIRE(!b_.empty());
}

double ImageProfile::intensity(Nm x) const {
  const double base = 2.0 * std::numbers::pi * x / period_;
  double v = b_[0].real();
  for (std::size_t k = 1; k < b_.size(); ++k) {
    const double phase = base * static_cast<double>(k);
    v += 2.0 * (b_[k].real() * std::cos(phase) -
                b_[k].imag() * std::sin(phase));
  }
  // Numerical round-off can produce tiny negative values in dark regions.
  return std::max(v, 0.0);
}

std::vector<double> ImageProfile::sample(std::size_t n) const {
  SVA_REQUIRE(n >= 2);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = intensity(period_ * static_cast<double>(i) /
                       static_cast<double>(n));
  return out;
}

double ImageProfile::mean_intensity() const { return b_[0].real(); }

double ImageProfile::sampled_min() const {
  const auto s = sample(512);
  return *std::min_element(s.begin(), s.end());
}

double ImageProfile::sampled_max() const {
  const auto s = sample(512);
  return *std::max_element(s.begin(), s.end());
}

AerialImageSimulator::AerialImageSimulator(const OpticsConfig& optics)
    : optics_(optics), source_(sample_annular_source(optics)) {}

AerialImageSimulator::Tcc AerialImageSimulator::compute_tcc(
    Nm period, Nm defocus) const {
  const int n_max = static_cast<int>(
      std::ceil(period * optics_.max_frequency()));
  const int n_ord = 2 * n_max + 1;
  Tcc tcc;
  tcc.n_max = n_max;
  tcc.t.assign(static_cast<std::size_t>(n_ord) * n_ord, 0.0);

  std::vector<std::complex<double>> pupil(static_cast<std::size_t>(n_ord));
  const double inv_lambda = 1.0 / optics_.wavelength;
  for (const SourcePoint& s : source_) {
    const double beta = s.sy * optics_.na;
    for (int n = -n_max; n <= n_max; ++n) {
      const double alpha =
          optics_.wavelength * static_cast<double>(n) / period +
          s.sx * optics_.na;
      const double rho2 = alpha * alpha + beta * beta;
      std::complex<double> p = 0.0;
      if (rho2 <= optics_.na * optics_.na) {
        // Exact scalar defocus phase; clamp the radicand against round-off.
        const double cos_theta = std::sqrt(std::max(0.0, 1.0 - rho2));
        const double phase =
            2.0 * std::numbers::pi * inv_lambda * defocus * (1.0 - cos_theta);
        p = std::polar(1.0, phase);
      }
      pupil[static_cast<std::size_t>(n + n_max)] = p;
    }
    for (int n = 0; n < n_ord; ++n) {
      const auto pn = pupil[static_cast<std::size_t>(n)];
      if (pn == std::complex<double>(0.0)) continue;
      for (int m = 0; m < n_ord; ++m) {
        const auto pm = pupil[static_cast<std::size_t>(m)];
        if (pm == std::complex<double>(0.0)) continue;
        tcc.t[static_cast<std::size_t>(n) * n_ord + m] +=
            s.weight * pn * std::conj(pm);
      }
    }
  }
  return tcc;
}

const AerialImageSimulator::Tcc& AerialImageSimulator::tcc_for(
    Nm period, Nm defocus) const {
  const auto key = std::make_pair(
      static_cast<long long>(std::llround(period * 1000.0)),
      static_cast<long long>(std::llround(defocus * 1000.0)));
  auto it = cache_.find(key);
  if (it == cache_.end())
    it = cache_.emplace(key, compute_tcc(period, defocus)).first;
  return it->second;
}

ImageProfile AerialImageSimulator::image(const MaskPattern1D& mask,
                                         Nm defocus) const {
  ++images_computed_;
  const Tcc& tcc = tcc_for(mask.period(), defocus);
  const int n_max = tcc.n_max;
  const int n_ord = 2 * n_max + 1;

  std::vector<std::complex<double>> c(static_cast<std::size_t>(n_ord));
  for (int n = -n_max; n <= n_max; ++n)
    c[static_cast<std::size_t>(n + n_max)] = mask.fourier_coefficient(n);

  // b_k = sum_n TCC(n, n-k) c_n conj(c_{n-k}), k = 0 .. 2*n_max.
  std::vector<std::complex<double>> b(static_cast<std::size_t>(2 * n_max + 1),
                                      0.0);
  for (int k = 0; k <= 2 * n_max; ++k) {
    std::complex<double> acc = 0.0;
    for (int n = -n_max + k; n <= n_max; ++n) {
      const int m = n - k;
      acc += tcc.t[static_cast<std::size_t>(n + n_max) * n_ord +
                   (m + n_max)] *
             c[static_cast<std::size_t>(n + n_max)] *
             std::conj(c[static_cast<std::size_t>(m + n_max)]);
    }
    b[static_cast<std::size_t>(k)] = acc;
  }

  // Resist diffusion: Gaussian blur of the intensity, exact in Fourier
  // space.  G(f) = exp(-2 pi^2 sigma^2 f^2) with f = k / period.
  const double sigma = optics_.resist_diffusion_length;
  if (sigma > 0.0) {
    const double c = 2.0 * std::numbers::pi * std::numbers::pi * sigma *
                     sigma / (mask.period() * mask.period());
    for (std::size_t k = 1; k < b.size(); ++k)
      b[k] *= std::exp(-c * static_cast<double>(k) * static_cast<double>(k));
  }
  return ImageProfile(mask.period(), std::move(b));
}

}  // namespace sva
