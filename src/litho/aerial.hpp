#pragma once
// Partially coherent aerial-image computation for 1-D periodic masks.
//
// Hopkins formulation specialized to 1-D periodic objects: with mask
// Fourier coefficients c_n, the image is
//
//   I(x) = sum_{n,m} TCC(n, m) c_n conj(c_m) exp(i 2 pi (n - m) x / p)
//
// where the transmission cross-coefficients
//
//   TCC(n, m) = sum_s w(s) P_s(n) conj(P_s(m))
//
// integrate, over the discretized annular source, the (defocus-aberrated)
// pupil evaluated at each diffraction order shifted by the source point.
// Defocus enters as the exact scalar phase
// (2 pi / lambda) * dz * (1 - sqrt(1 - alpha^2 - beta^2)) with alpha/beta
// the direction cosines of the order as launched by the source point.
//
// The TCC depends only on (period, defocus, optics), not on the mask
// contents, so it is cached: OPC iterations that re-simulate an edited mask
// at a fixed supercell period reuse the same TCC and only recompute the
// O(N^2) coefficient contraction.
//
// The resulting image is stored as a short cosine series (class
// ImageProfile), which can be evaluated exactly at any x; CD measurement
// then uses bisection on the analytic profile instead of grid sampling.

#include <complex>
#include <map>
#include <memory>
#include <vector>

#include "litho/mask1d.hpp"
#include "litho/optics.hpp"
#include "util/units.hpp"

namespace sva {

/// Aerial-image intensity over one mask period, stored as Fourier series
/// I(x) = b_0 + 2 sum_{k>=1} Re(b_k exp(i 2 pi k x / p)).
class ImageProfile {
 public:
  ImageProfile(Nm period, std::vector<std::complex<double>> coefficients);

  Nm period() const { return period_; }

  /// Exact intensity at x (periodic in x).
  double intensity(Nm x) const;

  /// Sample n evenly spaced points over one period (for plotting/tests).
  std::vector<double> sample(std::size_t n) const;

  /// Mean intensity over the period (== b_0).
  double mean_intensity() const;

  /// Minimum / maximum of n-point sampling (n = 512), for contrast checks.
  double sampled_min() const;
  double sampled_max() const;

 private:
  Nm period_;
  std::vector<std::complex<double>> b_;  // b_[k], k = 0..K
};

/// Abbe/Hopkins imaging engine with TCC caching.
class AerialImageSimulator {
 public:
  explicit AerialImageSimulator(const OpticsConfig& optics);

  /// Image of `mask` at the given defocus (nm; 0 = best focus).
  /// Exposure dose is not applied here -- it scales intensity linearly and
  /// is handled by the resist model.
  ImageProfile image(const MaskPattern1D& mask, Nm defocus) const;

  const OpticsConfig& optics() const { return optics_; }

  /// Number of distinct TCCs computed so far (cache statistics; used by
  /// tests and the OPC runtime accounting).
  std::size_t tcc_cache_size() const { return cache_.size(); }

  /// Total images computed (proxy for simulation work; the Table 1
  /// runtime comparison uses wall-clock, this is for sanity checks).
  std::size_t images_computed() const { return images_computed_; }

 private:
  struct Tcc {
    int n_max = 0;
    // Row-major (2*n_max+1)^2 matrix, index (n + n_max, m + n_max).
    std::vector<std::complex<double>> t;
  };

  const Tcc& tcc_for(Nm period, Nm defocus) const;
  Tcc compute_tcc(Nm period, Nm defocus) const;

  OpticsConfig optics_;
  std::vector<SourcePoint> source_;
  // Cache key: (period, defocus) quantized to 1e-3 nm.
  mutable std::map<std::pair<long long, long long>, Tcc> cache_;
  mutable std::size_t images_computed_ = 0;
};

}  // namespace sva
