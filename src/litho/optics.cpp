#include "litho/optics.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace sva {

void validate(const OpticsConfig& optics) {
  SVA_REQUIRE(optics.wavelength > 0.0);
  SVA_REQUIRE(optics.na > 0.0 && optics.na < 1.0);
  SVA_REQUIRE(optics.sigma_inner >= 0.0);
  SVA_REQUIRE(optics.sigma_outer > optics.sigma_inner);
  SVA_REQUIRE(optics.sigma_outer <= 1.0);
  SVA_REQUIRE(optics.source_radial > 0);
  SVA_REQUIRE(optics.source_azimuthal > 0);
  SVA_REQUIRE(optics.resist_diffusion_length >= 0.0);
}

std::vector<SourcePoint> sample_annular_source(const OpticsConfig& optics) {
  validate(optics);
  std::vector<SourcePoint> points;
  points.reserve(static_cast<std::size_t>(optics.source_radial) *
                 static_cast<std::size_t>(optics.source_azimuthal));

  const double r0 = optics.sigma_inner;
  const double r1 = optics.sigma_outer;
  double total_weight = 0.0;
  for (int ir = 0; ir < optics.source_radial; ++ir) {
    // Midpoint radii; weight proportional to the ring area it represents.
    const double t0 = static_cast<double>(ir) / optics.source_radial;
    const double t1 = static_cast<double>(ir + 1) / optics.source_radial;
    const double ra = r0 + (r1 - r0) * t0;
    const double rb = r0 + (r1 - r0) * t1;
    const double r = 0.5 * (ra + rb);
    const double ring_area = rb * rb - ra * ra;
    for (int ia = 0; ia < optics.source_azimuthal; ++ia) {
      // Offset half a step so no sample sits exactly on the x axis; this
      // avoids degenerate symmetric cancellations in tests.
      const double theta = 2.0 * std::numbers::pi *
                           (static_cast<double>(ia) + 0.5) /
                           optics.source_azimuthal;
      const double w = ring_area / optics.source_azimuthal;
      points.push_back({r * std::cos(theta), r * std::sin(theta), w});
      total_weight += w;
    }
  }
  SVA_ASSERT(total_weight > 0.0);
  for (auto& p : points) p.weight /= total_weight;
  return points;
}

}  // namespace sva
