#pragma once
// Projection-optics configuration and illumination-source sampling.
//
// The paper's lithography context: 193 nm stepper, NA = 0.7, annular
// illumination (Fig. 1 caption).  We model a Koehler partially coherent
// system by Abbe decomposition: the annular source is discretized into
// point sources; each point source images the mask coherently and the
// intensities add.  Source coordinates are in sigma units (fraction of NA).

#include <vector>

#include "util/units.hpp"

namespace sva {

struct OpticsConfig {
  // Defaults reproduce the paper's context (193 nm, NA 0.7, annular) with
  // the annulus radii and resist blur tuned so the through-pitch curve has
  // the Fig. 1 shape: CD falls with pitch and flattens beyond the ~600 nm
  // radius of influence.
  Nm wavelength = 193.0;        ///< exposure wavelength
  double na = 0.70;             ///< numerical aperture
  double sigma_inner = 0.55;    ///< annulus inner radius (sigma units)
  double sigma_outer = 0.95;    ///< annulus outer radius (sigma units)
  int source_radial = 5;        ///< radial source-sample count
  int source_azimuthal = 16;    ///< azimuthal source-sample count

  /// Lumped resist blur (acid diffusion in a chemically amplified resist),
  /// applied as a Gaussian convolution of the aerial image.  Damps the
  /// long-range coherent ringing a pure aerial-image model exhibits, which
  /// is also why the empirical radius of influence is finite.
  Nm resist_diffusion_length = 35.0;

  /// Highest spatial frequency (cycles/nm) passed by the system for any
  /// source point: (1 + sigma_outer) * NA / lambda.
  double max_frequency() const {
    return (1.0 + sigma_outer) * na / wavelength;
  }

  /// Classical "radius of influence" scale: features farther than this
  /// have negligible effect on a line's printing.  The paper quotes
  /// ~600 nm for 193 nm steppers; we expose it as a derived default that
  /// callers may override via TechnologyParams.
  Nm radius_of_influence() const { return 600.0; }
};

/// One point of the discretized source.
struct SourcePoint {
  double sx = 0.0;      ///< x direction cosine in sigma units
  double sy = 0.0;      ///< y direction cosine in sigma units
  double weight = 0.0;  ///< quadrature weight (weights sum to 1)
};

/// Discretize an annular source on a polar grid with area weighting.
/// Throws if the annulus is empty or sampling counts are non-positive.
std::vector<SourcePoint> sample_annular_source(const OpticsConfig& optics);

/// Validate an OpticsConfig (positive wavelength, 0 < NA < 1,
/// 0 <= sigma_inner < sigma_outer, positive sample counts).
void validate(const OpticsConfig& optics);

}  // namespace sva
