#pragma once
// Parametric through-focus CD response (Bossung behaviour).
//
// Why this layer exists: a scalar aerial-image + constant-threshold-resist
// model cannot reproduce the dense-line "smile" the paper reports.  For a
// dense pattern at 240 nm pitch only two diffraction orders interfere per
// source point, so the image is a raised cosine whose mean (B0) is exactly
// focus-invariant; once the mask is sized to target at best focus, the CD
// through focus is then threshold-independent and always shrinks (frowns).
// The experimentally observed smile comes from resist development, mask
// topography and EMF effects outside a scalar threshold model.
//
// The paper itself consumes through-focus variation parametrically -- FEM
// curves from fabricated test structures feed a single budget number
// (lvar_focus) plus per-feature smile/frown signs -- so we do the same:
// nominal (best-focus) CD comes from full simulation; the focus excursion
// is a calibrated quadratic whose sign follows the feature's iso/dense
// character and whose magnitude matches the paper's budget share (through-
// focus variation "can account for up to 30% of the total ACLV budget").
// This substitution is recorded in DESIGN.md.

#include "litho/cd_model.hpp"
#include "util/units.hpp"

namespace sva {

struct FocusResponseParams {
  Nm dense_spacing = 150.0;  ///< side spacing at/below which side is dense
  Nm iso_spacing = 600.0;    ///< side spacing at/above which side is iso
  /// Fractional CD increase of a fully dense line at |defocus| ==
  /// focus_scale (the smile amplitude).
  double smile_gain = 0.05;
  /// Fractional CD decrease of a fully isolated line at |defocus| ==
  /// focus_scale (the frown amplitude).  Iso lines degrade faster than
  /// dense ones smile, as both the paper's Fig. 2 and our raw simulation
  /// show, so the default exceeds smile_gain.
  double frown_gain = 0.08;
  Nm focus_scale = 300.0;    ///< defocus at which the gains apply
  /// Fractional CD decrease per unit relative dose increase (overexposure
  /// clears more resist and thins dark lines).
  double dose_slope = 0.25;
};

/// CD excursion model through focus and dose.
class FocusResponse {
 public:
  explicit FocusResponse(const FocusResponseParams& params);

  /// Iso/dense character of one side's spacing: +1 fully dense, -1 fully
  /// isolated, smooth in between.
  double side_character(Nm spacing) const;

  /// Character of a line given both side spacings (average of the sides).
  double line_character(Nm s_left, Nm s_right) const;

  /// CD shift (nm) of a line of nominal CD `cd_nominal` with the given side
  /// spacings at (defocus, dose) relative to (0, 1).
  Nm delta_cd(Nm cd_nominal, Nm s_left, Nm s_right, Nm defocus,
              double dose) const;

  const FocusResponseParams& params() const { return params_; }

 private:
  FocusResponseParams params_;
};

/// Complete printed-CD model: best-focus CD from full aerial-image
/// simulation, focus/dose excursion from the calibrated FocusResponse.
class PrintModel final : public CdModel {
 public:
  /// `process` must outlive the model.
  PrintModel(const LithoProcess& process, const FocusResponseParams& params,
             Nm radius_of_influence);

  Nm printed_cd(Nm drawn_width, Nm s_left, Nm s_right, Nm defocus,
                double dose) const override;

  const FocusResponse& focus_response() const { return response_; }

 private:
  SimulatedCdModel nominal_;
  FocusResponse response_;
  Nm roi_;
};

}  // namespace sva
