#include "litho/bossung.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace sva {

std::vector<BossungCurve> bossung_family(const LithoProcess& process,
                                         Nm linewidth, Nm pitch,
                                         const std::vector<Nm>& defocus_axis,
                                         const std::vector<double>& doses) {
  SVA_REQUIRE(!defocus_axis.empty());
  SVA_REQUIRE(!doses.empty());
  const auto mask = MaskPattern1D::grating(linewidth, pitch);
  std::vector<BossungCurve> out;
  out.reserve(doses.size());
  for (double dose : doses) {
    BossungCurve curve;
    curve.pitch = pitch;
    curve.dose = dose;
    curve.defocus = defocus_axis;
    curve.cd.reserve(defocus_axis.size());
    for (Nm dz : defocus_axis) {
      const auto cd = process.printed_cd(mask, dz, dose);
      curve.cd.push_back(cd.value_or(0.0));
    }
    out.push_back(std::move(curve));
  }
  return out;
}

Nm FemEntry::cd_at(std::size_t i_defocus, std::size_t i_dose) const {
  SVA_REQUIRE(i_defocus < defocus_axis.size() && i_dose < dose_axis.size());
  return cd[i_defocus * dose_axis.size() + i_dose];
}

Nm FocusExposureMatrix::focus_half_range() const {
  SVA_REQUIRE(!entries.empty());
  Nm worst = 0.0;
  for (const auto& e : entries) {
    // Locate the best-focus sample.
    std::size_t i0 = 0;
    for (std::size_t i = 1; i < e.defocus_axis.size(); ++i)
      if (std::abs(e.defocus_axis[i]) < std::abs(e.defocus_axis[i0])) i0 = i;
    for (std::size_t j = 0; j < e.dose_axis.size(); ++j) {
      const Nm cd0 = e.cd_at(i0, j);
      if (cd0 <= 0.0) continue;  // failure at best focus: not a usable pitch
      for (std::size_t i = 0; i < e.defocus_axis.size(); ++i) {
        const Nm cd = e.cd_at(i, j);
        if (cd <= 0.0) continue;
        worst = std::max(worst, std::abs(cd - cd0) / 2.0);
      }
    }
  }
  return worst;
}

FocusExposureMatrix build_fem(const LithoProcess& process, Nm linewidth,
                              const std::vector<Nm>& pitches,
                              const std::vector<Nm>& defocus_axis,
                              const std::vector<double>& doses) {
  SVA_REQUIRE(!pitches.empty());
  SVA_REQUIRE(!defocus_axis.empty());
  SVA_REQUIRE(!doses.empty());
  FocusExposureMatrix fem;
  fem.entries.reserve(pitches.size());
  for (Nm pitch : pitches) {
    FemEntry entry;
    entry.pitch = pitch;
    entry.defocus_axis = defocus_axis;
    entry.dose_axis = doses;
    entry.cd.reserve(defocus_axis.size() * doses.size());
    const auto mask = MaskPattern1D::grating(linewidth, pitch);
    for (Nm dz : defocus_axis)
      for (double dose : doses) {
        const auto cd = process.printed_cd(mask, dz, dose);
        entry.cd.push_back(cd.value_or(0.0));
      }
    fem.entries.push_back(std::move(entry));
  }
  return fem;
}

std::vector<Nm> defocus_sweep(Nm range, std::size_t count) {
  SVA_REQUIRE(range > 0.0);
  SVA_REQUIRE(count >= 3);
  std::vector<Nm> out(count);
  for (std::size_t i = 0; i < count; ++i)
    out[i] = -range + 2.0 * range * static_cast<double>(i) /
                          static_cast<double>(count - 1);
  return out;
}

double bossung_curvature(const BossungCurve& curve) {
  SVA_REQUIRE(curve.defocus.size() == curve.cd.size());
  SVA_REQUIRE(curve.cd.size() >= 3);
  // Best-focus index.
  std::size_t i0 = 0;
  for (std::size_t i = 1; i < curve.defocus.size(); ++i)
    if (std::abs(curve.defocus[i]) < std::abs(curve.defocus[i0])) i0 = i;
  const Nm cd0 = curve.cd[i0];
  SVA_REQUIRE_MSG(cd0 > 0.0, "feature fails to print at best focus");
  const Nm cd_neg = curve.cd.front();
  const Nm cd_pos = curve.cd.back();
  return 0.5 * ((cd_neg - cd0) + (cd_pos - cd0));
}

}  // namespace sva
