#pragma once
// Through-pitch CD curves (paper Fig. 1 and the Sec. 3.3 test layouts).
//
// A through-pitch curve measures the printed CD of a fixed-width line in a
// symmetric grating as the pitch sweeps from dense to isolated.  The
// uncorrected curve is Fig. 1; the post-OPC curve (built by the opc module)
// feeds the pitch->CD lookup table used for cell-boundary devices.

#include <vector>

#include "litho/cd_model.hpp"
#include "util/interp.hpp"
#include "util/units.hpp"

namespace sva {

struct PitchCdPoint {
  Nm pitch = 0.0;
  Nm cd = 0.0;  ///< printed CD (0 on print failure)
};

/// Printed CD of (uncorrected) gratings at each pitch.
std::vector<PitchCdPoint> through_pitch_curve(const LithoProcess& process,
                                              Nm linewidth,
                                              const std::vector<Nm>& pitches,
                                              Nm defocus = 0.0,
                                              double dose = 1.0);

/// Evenly spaced pitch sweep from `pitch_lo` to `pitch_hi` inclusive.
std::vector<Nm> pitch_sweep(Nm pitch_lo, Nm pitch_hi, std::size_t count);

/// Convert a curve into a one-sided-spacing -> CD lookup table
/// (spacing = pitch - linewidth).  Points with CD == 0 (print failures)
/// are rejected with an exception: the table must be usable everywhere.
LookupTable1D spacing_cd_table(const std::vector<PitchCdPoint>& curve,
                               Nm linewidth);

/// Total half-range of CD over the curve: (max - min) / 2.  This is the
/// paper's +-lvar_pitch measured from the test layouts.
Nm pitch_cd_half_range(const std::vector<PitchCdPoint>& curve);

}  // namespace sva
