#include "litho/meef.hpp"

#include "util/error.hpp"

namespace sva {

double meef_at_pitch(const LithoProcess& process, Nm linewidth, Nm pitch,
                     Nm delta, Nm defocus) {
  SVA_REQUIRE(linewidth > 0.0);
  SVA_REQUIRE(delta > 0.0 && delta < linewidth / 2.0);
  SVA_REQUIRE(pitch > linewidth + 2.0 * delta);

  const auto narrow =
      process.printed_cd(MaskPattern1D::grating(linewidth - delta, pitch),
                         defocus);
  const auto wide =
      process.printed_cd(MaskPattern1D::grating(linewidth + delta, pitch),
                         defocus);
  if (!narrow || !wide) return 0.0;
  return (*wide - *narrow) / (2.0 * delta);
}

std::vector<MeefPoint> meef_through_pitch(const LithoProcess& process,
                                          Nm linewidth,
                                          const std::vector<Nm>& pitches,
                                          Nm delta, Nm defocus) {
  SVA_REQUIRE(!pitches.empty());
  std::vector<MeefPoint> out;
  out.reserve(pitches.size());
  for (Nm pitch : pitches)
    out.push_back(
        {pitch, meef_at_pitch(process, linewidth, pitch, delta, defocus)});
  return out;
}

}  // namespace sva
