#pragma once
// Constant-threshold resist model and printed-CD measurement.
//
// A positive resist develops away wherever the delivered intensity
// (dose * I(x)) exceeds a threshold, so a chrome line prints as the
// contiguous region around the line centre where dose * I(x) < threshold.
// Printed CD is the distance between the two threshold crossings, located
// by coarse outward scanning plus bisection on the analytic image profile.
//
// The threshold is calibrated once per process so that an anchor pattern
// (dense grating at the technology's contacted pitch) prints exactly at
// its drawn CD at best focus and nominal dose -- the same anchoring a real
// OPC model build performs against wafer data.

#include <optional>

#include "litho/aerial.hpp"
#include "util/units.hpp"

namespace sva {

/// Result of a printed-line measurement.
struct PrintedLine {
  Nm left = 0.0;   ///< left resist edge
  Nm right = 0.0;  ///< right resist edge

  Nm cd() const { return right - left; }
};

class ThresholdResist {
 public:
  /// Construct with an explicit threshold (intensity units; the clear-field
  /// image level is 1.0).
  explicit ThresholdResist(double threshold);

  double threshold() const { return threshold_; }

  /// The printed line around x_center at the given dose, or nullopt if the
  /// feature fails to print (intensity at the centre is already above the
  /// effective threshold, or no crossing is found within half a period).
  std::optional<PrintedLine> printed_line(const ImageProfile& image,
                                          Nm x_center,
                                          double dose = 1.0) const;

  /// Printed CD around x_center; nullopt on print failure.
  std::optional<Nm> printed_cd(const ImageProfile& image, Nm x_center,
                               double dose = 1.0) const;

  /// Calibrate the threshold so that `anchor` prints its centre line at
  /// `target_cd` at the given simulator's best focus and dose 1.
  /// Throws if no threshold in (0, clear-field level) achieves the target.
  static ThresholdResist calibrate(const AerialImageSimulator& simulator,
                                   const MaskPattern1D& anchor,
                                   Nm target_cd);

 private:
  double threshold_;
};

}  // namespace sva
