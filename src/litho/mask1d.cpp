#include "litho/mask1d.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace sva {
namespace {
constexpr Nm kGeomEps = 1e-9;
}

MaskPattern1D::MaskPattern1D(Nm period, std::vector<MaskSegment> segments)
    : period_(period), segments_(std::move(segments)) {
  SVA_REQUIRE(period_ > 0.0);
  std::sort(segments_.begin(), segments_.end(),
            [](const MaskSegment& a, const MaskSegment& b) {
              return a.x_lo < b.x_lo;
            });
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const auto& s = segments_[i];
    SVA_REQUIRE_MSG(s.x_hi > s.x_lo, "segment must have positive width");
    SVA_REQUIRE_MSG(s.x_lo >= -kGeomEps && s.x_hi <= period_ + kGeomEps,
                    "segment must lie within one period");
    if (i > 0)
      SVA_REQUIRE_MSG(s.x_lo >= segments_[i - 1].x_hi - kGeomEps,
                      "segments must not overlap");
  }
}

std::complex<double> MaskPattern1D::fourier_coefficient(int n) const {
  // t(x) = 1 + sum_k (t_k - 1) * indicator(S_k); the clear background
  // contributes only to c_0.
  if (n == 0) {
    std::complex<double> c = 1.0;
    for (const auto& s : segments_)
      c += (s.transmission - 1.0) * (s.width() / period_);
    return c;
  }
  const double omega = 2.0 * std::numbers::pi * n / period_;
  std::complex<double> c = 0.0;
  const std::complex<double> i_omega(0.0, omega);
  for (const auto& s : segments_) {
    // (1/p) * integral_a^b exp(-i omega x) dx
    const std::complex<double> seg =
        (std::exp(-i_omega * s.x_lo) - std::exp(-i_omega * s.x_hi)) /
        (i_omega * period_);
    c += (s.transmission - 1.0) * seg;
  }
  return c;
}

std::complex<double> MaskPattern1D::transmission_at(Nm x) const {
  double xm = std::fmod(x, period_);
  if (xm < 0.0) xm += period_;
  for (const auto& s : segments_)
    if (xm >= s.x_lo && xm < s.x_hi) return s.transmission;
  return 1.0;
}

double MaskPattern1D::clear_fraction() const {
  Nm covered = 0.0;
  for (const auto& s : segments_) covered += s.width();
  return 1.0 - covered / period_;
}

MaskPattern1D MaskPattern1D::grating(Nm linewidth, Nm pitch) {
  SVA_REQUIRE(linewidth > 0.0);
  SVA_REQUIRE_MSG(pitch > linewidth, "pitch must exceed linewidth");
  const Nm c = pitch / 2.0;
  return MaskPattern1D(pitch, {{c - linewidth / 2.0, c + linewidth / 2.0}});
}

MaskPattern1D MaskPattern1D::local_context(
    Nm center_width, const std::vector<std::pair<Nm, Nm>>& left_neighbors,
    const std::vector<std::pair<Nm, Nm>>& right_neighbors, Nm period) {
  SVA_REQUIRE(center_width > 0.0);
  SVA_REQUIRE(period > center_width);
  const Nm c = period / 2.0;
  std::vector<MaskSegment> segs;
  segs.push_back({c - center_width / 2.0, c + center_width / 2.0});

  Nm edge = c - center_width / 2.0;
  for (const auto& [spacing, width] : left_neighbors) {
    SVA_REQUIRE(spacing > 0.0 && width > 0.0);
    const Nm hi = edge - spacing;
    const Nm lo = hi - width;
    SVA_REQUIRE_MSG(lo > 0.0, "left neighbours exceed supercell period");
    segs.push_back({lo, hi});
    edge = lo;
  }
  edge = c + center_width / 2.0;
  for (const auto& [spacing, width] : right_neighbors) {
    SVA_REQUIRE(spacing > 0.0 && width > 0.0);
    const Nm lo = edge + spacing;
    const Nm hi = lo + width;
    SVA_REQUIRE_MSG(hi < period, "right neighbours exceed supercell period");
    segs.push_back({lo, hi});
    edge = hi;
  }
  return MaskPattern1D(period, std::move(segs));
}

MaskPattern1D MaskPattern1D::with_transmission(
    std::complex<double> transmission) const {
  std::vector<MaskSegment> segs = segments_;
  for (MaskSegment& s : segs) s.transmission = transmission;
  return MaskPattern1D(period_, std::move(segs));
}

std::complex<double> MaskPattern1D::attenuated_psm_transmission(
    double intensity_transmittance) {
  SVA_REQUIRE(intensity_transmittance >= 0.0 &&
              intensity_transmittance < 1.0);
  return std::polar(std::sqrt(intensity_transmittance), std::numbers::pi);
}

std::size_t MaskPattern1D::center_segment_index() const {
  const Nm c = period_ / 2.0;
  for (std::size_t i = 0; i < segments_.size(); ++i)
    if (segments_[i].x_lo <= c && c <= segments_[i].x_hi) return i;
  throw PreconditionError("no segment covers the pattern centre");
}

}  // namespace sva
