#include "litho/focus_response.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace sva {

FocusResponse::FocusResponse(const FocusResponseParams& params)
    : params_(params) {
  SVA_REQUIRE(params.dense_spacing > 0.0);
  SVA_REQUIRE(params.iso_spacing > params.dense_spacing);
  SVA_REQUIRE(params.focus_scale > 0.0);
  SVA_REQUIRE(params.smile_gain >= 0.0);
  SVA_REQUIRE(params.frown_gain >= 0.0);
}

double FocusResponse::side_character(Nm spacing) const {
  const double t = std::clamp((spacing - params_.dense_spacing) /
                                  (params_.iso_spacing - params_.dense_spacing),
                              0.0, 1.0);
  const double smooth = t * t * (3.0 - 2.0 * t);
  return 1.0 - 2.0 * smooth;
}

double FocusResponse::line_character(Nm s_left, Nm s_right) const {
  return 0.5 * (side_character(s_left) + side_character(s_right));
}

Nm FocusResponse::delta_cd(Nm cd_nominal, Nm s_left, Nm s_right, Nm defocus,
                           double dose) const {
  SVA_REQUIRE(cd_nominal > 0.0);
  SVA_REQUIRE(dose > 0.0);
  const double character = line_character(s_left, s_right);
  const double f2 = (defocus / params_.focus_scale) *
                    (defocus / params_.focus_scale);
  // Interpolate the quadratic gain between the smile (+, dense) and frown
  // (-, iso) amplitudes through the character.
  const double dense_mix = (character + 1.0) / 2.0;  // 1 dense .. 0 iso
  const double gain = dense_mix * params_.smile_gain -
                      (1.0 - dense_mix) * params_.frown_gain;
  const double focus_term = gain * f2;
  const double dose_term = -params_.dose_slope * (dose - 1.0);
  return cd_nominal * (focus_term + dose_term);
}

PrintModel::PrintModel(const LithoProcess& process,
                       const FocusResponseParams& params,
                       Nm radius_of_influence)
    : nominal_(process, radius_of_influence),
      response_(params),
      roi_(radius_of_influence) {}

Nm PrintModel::printed_cd(Nm drawn_width, Nm s_left, Nm s_right, Nm defocus,
                          double dose) const {
  const Nm sl = std::min(s_left, roi_);
  const Nm sr = std::min(s_right, roi_);
  const Nm nominal = nominal_.printed_cd(drawn_width, sl, sr, 0.0, 1.0);
  if (nominal <= 0.0) return 0.0;  // print failure at best focus
  return nominal + response_.delta_cd(nominal, sl, sr, defocus, dose);
}

}  // namespace sva
