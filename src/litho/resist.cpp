#include "litho/resist.hpp"

#include <cmath>

#include "util/error.hpp"

namespace sva {
namespace {

// Coarse scan step when hunting for the threshold crossing, and the
// bisection tolerance on the located edge.
constexpr Nm kScanStep = 1.0;
constexpr Nm kEdgeTolerance = 1e-3;

// Bisect a crossing of intensity == th between x_in (dark side) and x_out
// (bright side).
Nm bisect_edge(const ImageProfile& image, double th, Nm x_in, Nm x_out) {
  for (int it = 0; it < 60; ++it) {
    const Nm mid = 0.5 * (x_in + x_out);
    if (image.intensity(mid) < th)
      x_in = mid;
    else
      x_out = mid;
    if (std::abs(x_out - x_in) < kEdgeTolerance) break;
  }
  return 0.5 * (x_in + x_out);
}

}  // namespace

ThresholdResist::ThresholdResist(double threshold) : threshold_(threshold) {
  SVA_REQUIRE_MSG(threshold > 0.0, "resist threshold must be positive");
}

std::optional<PrintedLine> ThresholdResist::printed_line(
    const ImageProfile& image, Nm x_center, double dose) const {
  SVA_REQUIRE(dose > 0.0);
  const double th = threshold_ / dose;
  if (image.intensity(x_center) >= th) return std::nullopt;

  const Nm half_period = image.period() / 2.0;

  // Scan right from the centre until intensity rises through the threshold.
  Nm right = x_center;
  {
    Nm x = x_center;
    bool found = false;
    while (x - x_center < half_period) {
      const Nm next = x + kScanStep;
      if (image.intensity(next) >= th) {
        right = bisect_edge(image, th, x, next);
        found = true;
        break;
      }
      x = next;
    }
    if (!found) return std::nullopt;  // dark over the whole half-period
  }
  // Scan left symmetrically.
  Nm left = x_center;
  {
    Nm x = x_center;
    bool found = false;
    while (x_center - x < half_period) {
      const Nm next = x - kScanStep;
      if (image.intensity(next) >= th) {
        left = bisect_edge(image, th, x, next);
        found = true;
        break;
      }
      x = next;
    }
    if (!found) return std::nullopt;
  }
  return PrintedLine{left, right};
}

std::optional<Nm> ThresholdResist::printed_cd(const ImageProfile& image,
                                              Nm x_center,
                                              double dose) const {
  const auto line = printed_line(image, x_center, dose);
  if (!line) return std::nullopt;
  return line->cd();
}

ThresholdResist ThresholdResist::calibrate(
    const AerialImageSimulator& simulator, const MaskPattern1D& anchor,
    Nm target_cd) {
  SVA_REQUIRE(target_cd > 0.0);
  const ImageProfile image = simulator.image(anchor, /*defocus=*/0.0);
  const Nm center = anchor.period() / 2.0;

  // Printed CD grows monotonically with threshold (a higher threshold keeps
  // more of the dip "dark"), so bisection on the threshold converges.
  double lo = 1e-4;
  double hi = image.sampled_max() * 0.999;
  auto cd_at = [&](double th) -> double {
    const auto cd = ThresholdResist(th).printed_cd(image, center);
    return cd ? *cd : 0.0;
  };
  SVA_REQUIRE_MSG(cd_at(hi) >= target_cd,
                  "anchor pattern cannot print the target CD at any "
                  "threshold; check optics/pattern");
  for (int it = 0; it < 80; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (cd_at(mid) < target_cd)
      lo = mid;
    else
      hi = mid;
  }
  const double th = 0.5 * (lo + hi);
  const double achieved = cd_at(th);
  SVA_ASSERT_MSG(std::abs(achieved - target_cd) < 0.5,
                 "threshold calibration failed to converge");
  return ThresholdResist(th);
}

}  // namespace sva
