#pragma once
// Mask Error Enhancement Factor (MEEF).
//
// MEEF = d(printed CD) / d(mask CD): how strongly mask-making errors --
// one of the ACLV sources the paper lists in Sec. 2 ("mask variation") --
// are amplified into wafer CD errors.  MEEF grows as features approach
// the resolution limit and differs through pitch, which is why mask
// variation contributes a pitch-dependent (partly systematic) share of
// the CD budget.

#include <vector>

#include "litho/cd_model.hpp"
#include "util/units.hpp"

namespace sva {

/// MEEF of a grating at one pitch, by central finite difference on the
/// mask linewidth (all dimensions wafer-scale, as in this codebase).
/// Returns 0 if either perturbed feature fails to print.
double meef_at_pitch(const LithoProcess& process, Nm linewidth, Nm pitch,
                     Nm delta = 2.0, Nm defocus = 0.0);

struct MeefPoint {
  Nm pitch = 0.0;
  double meef = 0.0;
};

/// MEEF across a pitch sweep.
std::vector<MeefPoint> meef_through_pitch(const LithoProcess& process,
                                          Nm linewidth,
                                          const std::vector<Nm>& pitches,
                                          Nm delta = 2.0, Nm defocus = 0.0);

}  // namespace sva
