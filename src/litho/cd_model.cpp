#include "litho/cd_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace sva {

LithoProcess::LithoProcess(const OpticsConfig& optics, Nm anchor_linewidth,
                           Nm anchor_pitch)
    : simulator_(optics),
      resist_(ThresholdResist::calibrate(
          simulator_, MaskPattern1D::grating(anchor_linewidth, anchor_pitch),
          anchor_linewidth)) {}

LithoProcess::LithoProcess(const OpticsConfig& optics, double threshold)
    : simulator_(optics), resist_(threshold) {}

std::optional<Nm> LithoProcess::printed_cd(const MaskPattern1D& mask,
                                           Nm defocus, double dose) const {
  const ImageProfile img = simulator_.image(mask, defocus);
  return resist_.printed_cd(img, mask.period() / 2.0, dose);
}

std::optional<Nm> LithoProcess::printed_cd_in_context(
    Nm center_width, const std::vector<std::pair<Nm, Nm>>& left_neighbors,
    const std::vector<std::pair<Nm, Nm>>& right_neighbors, Nm defocus,
    double dose) const {
  const auto mask = MaskPattern1D::local_context(
      center_width, left_neighbors, right_neighbors, kSupercellPeriod);
  return printed_cd(mask, defocus, dose);
}

SimulatedCdModel::SimulatedCdModel(const LithoProcess& process,
                                   Nm radius_of_influence)
    : process_(&process), roi_(radius_of_influence) {
  SVA_REQUIRE(radius_of_influence > 0.0);
}

Nm SimulatedCdModel::printed_cd(Nm drawn_width, Nm s_left, Nm s_right,
                                Nm defocus, double dose) const {
  SVA_REQUIRE(drawn_width > 0.0);
  SVA_REQUIRE(s_left > 0.0 && s_right > 0.0);
  // Beyond the radius of influence a neighbour is equivalent to one parked
  // exactly at the ROI (the paper bins every larger spacing with 600 nm).
  const Nm sl = std::min(s_left, roi_);
  const Nm sr = std::min(s_right, roi_);
  std::vector<std::pair<Nm, Nm>> left{{sl, drawn_width}};
  std::vector<std::pair<Nm, Nm>> right{{sr, drawn_width}};
  const auto cd =
      process_->printed_cd_in_context(drawn_width, left, right, defocus, dose);
  // A print failure (vanishing feature) is reported as CD 0; callers that
  // must distinguish use LithoProcess directly.
  return cd.value_or(0.0);
}

TableCdModel::TableCdModel(Nm table_linewidth, LookupTable1D spacing_to_cd,
                           Nm radius_of_influence)
    : table_linewidth_(table_linewidth),
      spacing_to_cd_(std::move(spacing_to_cd)),
      roi_(radius_of_influence) {
  SVA_REQUIRE(table_linewidth > 0.0);
  SVA_REQUIRE(radius_of_influence > 0.0);
  SVA_REQUIRE(spacing_to_cd_.size() >= 2);
}

Nm TableCdModel::printed_cd(Nm drawn_width, Nm s_left, Nm s_right, Nm defocus,
                            double dose) const {
  SVA_REQUIRE(drawn_width > 0.0);
  (void)defocus;  // the table is characterized at best focus
  (void)dose;     // and nominal dose, exactly as in the paper (Sec. 3.1.1)
  const Nm sl = std::min(s_left, roi_);
  const Nm sr = std::min(s_right, roi_);
  const Nm delta_l = spacing_to_cd_.at(sl) - table_linewidth_;
  const Nm delta_r = spacing_to_cd_.at(sr) - table_linewidth_;
  // Each side contributes half of the symmetric-grating bias; scale the
  // absolute bias with the drawn width ratio so the table (characterized
  // at one linewidth) generalizes to nearby widths.
  const double scale = drawn_width / table_linewidth_;
  return drawn_width + scale * 0.5 * (delta_l + delta_r);
}

EmpiricalCdModel::EmpiricalCdModel(const EmpiricalCdParams& params)
    : params_(params) {
  SVA_REQUIRE(params.dense_spacing > 0.0);
  SVA_REQUIRE(params.iso_spacing > params.dense_spacing);
  SVA_REQUIRE(params.focus_scale > 0.0);
  SVA_REQUIRE(params.pitch_bias >= 0.0 && params.pitch_bias < 1.0);
  SVA_REQUIRE(params.focus_gain >= 0.0 && params.focus_gain < 1.0);
}

double EmpiricalCdModel::side_character(Nm spacing) const {
  // Smoothstep from +1 (dense) at dense_spacing to -1 (iso) at iso_spacing.
  const double t = std::clamp(
      (spacing - params_.dense_spacing) /
          (params_.iso_spacing - params_.dense_spacing),
      0.0, 1.0);
  const double smooth = t * t * (3.0 - 2.0 * t);
  return 1.0 - 2.0 * smooth;
}

Nm EmpiricalCdModel::printed_cd(Nm drawn_width, Nm s_left, Nm s_right,
                                Nm defocus, double dose) const {
  SVA_REQUIRE(drawn_width > 0.0);
  SVA_REQUIRE(dose > 0.0);
  const double char_l = side_character(s_left);
  const double char_r = side_character(s_right);
  const double character = 0.5 * (char_l + char_r);  // +1 dense .. -1 iso

  // Through-pitch: isolated sides print thinner by pitch_bias (paper: CD
  // systematically decreases as pitch grows, ~10% over 300..600 nm).
  // Each side contributes its "iso fraction" (0 when dense, 1 when iso).
  const double iso_fraction = 0.5 * ((1.0 - char_l) / 2.0 +
                                     (1.0 - char_r) / 2.0);
  const double pitch_term = -params_.pitch_bias * iso_fraction;

  // Through-focus: quadratic Bossung; dense smiles (+), iso frowns (-).
  const double f = defocus / params_.focus_scale;
  const double focus_term = params_.focus_gain * character * f * f;

  // Dose: higher dose clears more resist -> thinner dark line.
  const double dose_term = -params_.dose_slope * (dose - 1.0);

  return drawn_width * (1.0 + pitch_term + focus_term + dose_term);
}

}  // namespace sva
