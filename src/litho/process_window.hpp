#pragma once
// Process-window analysis on a focus-exposure matrix.
//
// Standard lithographic metrics computed from a FEM: depth of focus (DOF)
// at a given dose, exposure latitude (EL) at a given focus, and the
// largest rectangular (defocus-range x dose-range) window in which the
// printed CD stays within a tolerance of target.  The paper's premise --
// isolated features lose CD through focus much faster than dense ones --
// shows up directly as a smaller isolated-feature window, and the ±300 nm
// focus range of Sec. 3.3 can be judged against the measured DOF.

#include <cstddef>

#include "litho/bossung.hpp"
#include "util/units.hpp"

namespace sva {

struct ProcessWindow {
  Nm target_cd = 0.0;
  double tolerance = 0.10;  ///< fractional CD tolerance

  /// Contiguous defocus span around best focus within tolerance at
  /// nominal dose (0 if even best focus fails).
  Nm dof_at_nominal_dose = 0.0;
  /// Contiguous dose span around nominal within tolerance at best focus.
  double exposure_latitude = 0.0;
  /// Largest rectangle (all grid points in tolerance): spans.
  Nm best_window_defocus_span = 0.0;
  double best_window_dose_span = 0.0;

  bool usable() const { return dof_at_nominal_dose > 0.0; }
};

/// Analyze one FEM entry against a target CD.  The entry's axes must be
/// sorted ascending (as build_fem produces) and contain the nominal
/// dose 1.0 and best focus 0.0 within their ranges.
ProcessWindow compute_process_window(const FemEntry& entry, Nm target_cd,
                                     double tolerance = 0.10);

}  // namespace sva
