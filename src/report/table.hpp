#pragma once
// Aligned-column text tables for the paper-style outputs (Tables 1 and 2).

#include <string>
#include <vector>

namespace sva {

/// Builds a fixed-column text table.  Numeric cells should be pre-formatted
/// with sva::fmt so the caller controls precision.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Add a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }

  /// Render with a header rule, columns separated by two spaces, numbers
  /// right-aligned (a cell is "numeric" if it parses as a double, with an
  /// optional trailing '%').
  std::string render() const;

  /// Render as comma-separated values (headers first).
  std::string render_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sva
