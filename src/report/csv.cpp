#include "report/csv.hpp"

#include <fstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace sva {

std::string series_to_csv(const std::vector<Series>& series) {
  std::string out = "series,x,y\n";
  for (const auto& s : series) {
    SVA_REQUIRE(s.x.size() == s.y.size());
    for (std::size_t i = 0; i < s.x.size(); ++i)
      out += s.name + ',' + fmt(s.x[i], 6) + ',' + fmt(s.y[i], 6) + '\n';
  }
  return out;
}

namespace {

std::string csv_cell(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

std::string rows_to_csv(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i > 0) out += ',';
    out += csv_cell(header[i]);
  }
  out += '\n';
  for (const auto& row : rows) {
    SVA_REQUIRE_MSG(row.size() == header.size(),
                    "CSV row width must match the header");
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += csv_cell(row[i]);
    }
    out += '\n';
  }
  return out;
}

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) throw Error("cannot open file for writing: " + path);
  os << text;
  if (!os) throw Error("write failed: " + path);
}

}  // namespace sva
