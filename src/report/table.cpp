#include "report/table.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace sva {
namespace {

bool is_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  std::string s = cell;
  if (s.back() == '%') s.pop_back();
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

std::string escape_csv(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SVA_REQUIRE_MSG(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  SVA_REQUIRE_MSG(cells.size() == headers_.size(),
                  "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out += "  ";
    out += pad_right(headers_[c], widths[c]);
  }
  out += '\n';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out += "  ";
    out += std::string(widths[c], '-');
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += "  ";
      out += is_numeric(row[c]) ? pad_left(row[c], widths[c])
                                : pad_right(row[c], widths[c]);
    }
    out += '\n';
  }
  return out;
}

std::string Table::render_csv() const {
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out += ',';
    out += escape_csv(headers_[c]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += escape_csv(row[c]);
    }
    out += '\n';
  }
  return out;
}

}  // namespace sva
