#pragma once
// CSV emission for plot series, so bench outputs can be re-plotted with
// external tooling.

#include <string>
#include <vector>

#include "report/ascii_plot.hpp"

namespace sva {

/// Render series as CSV.  Series may have different x grids; output format
/// is long-form: series,x,y -- one row per point.
std::string series_to_csv(const std::vector<Series>& series);

/// Render pre-formatted rows as CSV under a header.  Every row must have
/// exactly header.size() cells; cells containing commas, quotes, or
/// newlines are quoted (RFC 4180 style).
std::string rows_to_csv(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows);

/// Write text to a file, creating/truncating it.  Throws sva::Error on
/// failure.  Benches use this to drop CSV artifacts next to stdout tables.
void write_text_file(const std::string& path, const std::string& text);

}  // namespace sva
