#include "report/ascii_plot.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace sva {
namespace {

constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};

struct Range {
  double lo = 0.0;
  double hi = 1.0;
};

Range find_range(const std::vector<Series>& series, bool use_x) {
  Range r{1e300, -1e300};
  for (const auto& s : series) {
    const auto& v = use_x ? s.x : s.y;
    for (double x : v) {
      r.lo = std::min(r.lo, x);
      r.hi = std::max(r.hi, x);
    }
  }
  if (r.lo > r.hi) return {0.0, 1.0};
  if (r.lo == r.hi) return {r.lo - 1.0, r.hi + 1.0};
  // Small margin so extreme points do not sit on the frame.
  const double pad = 0.03 * (r.hi - r.lo);
  return {r.lo - pad, r.hi + pad};
}

}  // namespace

std::string render_plot(const std::vector<Series>& series,
                        const PlotOptions& options) {
  SVA_REQUIRE(!series.empty());
  SVA_REQUIRE(options.width >= 16 && options.height >= 4);
  for (const auto& s : series) SVA_REQUIRE(s.x.size() == s.y.size());

  const Range xr = find_range(series, true);
  const Range yr = find_range(series, false);

  std::vector<std::string> grid(options.height,
                                std::string(options.width, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % (sizeof kGlyphs)];
    const auto& s = series[si];
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const double fx = (s.x[i] - xr.lo) / (xr.hi - xr.lo);
      const double fy = (s.y[i] - yr.lo) / (yr.hi - yr.lo);
      auto cx = static_cast<std::size_t>(
          std::clamp(fx * static_cast<double>(options.width - 1), 0.0,
                     static_cast<double>(options.width - 1)));
      auto cy = static_cast<std::size_t>(
          std::clamp(fy * static_cast<double>(options.height - 1), 0.0,
                     static_cast<double>(options.height - 1)));
      grid[options.height - 1 - cy][cx] = glyph;
    }
  }

  std::string out;
  if (!options.title.empty()) out += options.title + '\n';
  const std::string y_hi_label = fmt(yr.hi, 3);
  const std::string y_lo_label = fmt(yr.lo, 3);
  const std::size_t label_w = std::max(y_hi_label.size(), y_lo_label.size());

  for (std::size_t row = 0; row < options.height; ++row) {
    std::string label(label_w, ' ');
    if (row == 0) label = pad_left(y_hi_label, label_w);
    if (row == options.height - 1) label = pad_left(y_lo_label, label_w);
    out += label + " |" + grid[row] + '\n';
  }
  out += std::string(label_w + 1, ' ') + '+' +
         std::string(options.width, '-') + '\n';
  out += std::string(label_w + 2, ' ') + pad_right(fmt(xr.lo, 1),
                                                   options.width - 8) +
         pad_left(fmt(xr.hi, 1), 8) + '\n';
  if (!options.x_label.empty())
    out += std::string(label_w + 2, ' ') + "x: " + options.x_label + '\n';
  if (!options.y_label.empty())
    out += std::string(label_w + 2, ' ') + "y: " + options.y_label + '\n';
  for (std::size_t si = 0; si < series.size(); ++si)
    out += std::string(label_w + 2, ' ') + kGlyphs[si % (sizeof kGlyphs)] +
           " = " + series[si].name + '\n';
  return out;
}

std::string render_histogram(const Histogram& histogram,
                             const std::string& title,
                             std::size_t max_bar_width) {
  SVA_REQUIRE(max_bar_width >= 1);
  std::size_t peak = 1;
  for (std::size_t c : histogram.counts) peak = std::max(peak, c);

  std::string out;
  if (!title.empty()) out += title + '\n';
  for (std::size_t i = 0; i < histogram.counts.size(); ++i) {
    const double lo = histogram.lo + static_cast<double>(i) *
                                         histogram.bin_width;
    const double hi = lo + histogram.bin_width;
    const auto bar = static_cast<std::size_t>(std::llround(
        static_cast<double>(histogram.counts[i]) /
        static_cast<double>(peak) * static_cast<double>(max_bar_width)));
    out += pad_left(fmt(lo, 1), 8) + " .. " + pad_left(fmt(hi, 1), 8) +
           "  " + pad_left(std::to_string(histogram.counts[i]), 7) + "  " +
           std::string(bar, '#') + '\n';
  }
  if (histogram.underflow != 0)
    out += "  underflow: " + std::to_string(histogram.underflow) + '\n';
  if (histogram.overflow != 0)
    out += "  overflow: " + std::to_string(histogram.overflow) + '\n';
  return out;
}

}  // namespace sva
