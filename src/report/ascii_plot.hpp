#pragma once
// Terminal line plots and histograms.
//
// The figure benches (Fig. 1 pitch curve, Fig. 2 Bossung, Fig. 7 CD-error
// histogram) emit both a CSV of the series and an ASCII rendering so the
// shape is visible directly in the bench output.

#include <string>
#include <vector>

#include "util/stats.hpp"

namespace sva {

/// One named series of (x, y) points.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

struct PlotOptions {
  std::size_t width = 72;    ///< plot area width in characters
  std::size_t height = 20;   ///< plot area height in characters
  std::string x_label;
  std::string y_label;
  std::string title;
};

/// Render one or more series into a character grid.  Each series is drawn
/// with its own glyph ('*', 'o', '+', 'x', ...); a legend is appended.
std::string render_plot(const std::vector<Series>& series,
                        const PlotOptions& options);

/// Render a histogram as horizontal bars, one line per bin.
std::string render_histogram(const Histogram& histogram,
                             const std::string& title,
                             std::size_t max_bar_width = 60);

}  // namespace sva
