#include "util/strings.hpp"

#include <cstdio>

#include "util/error.hpp"

namespace sva {

std::string fmt(double v, int decimals) {
  SVA_REQUIRE(decimals >= 0 && decimals <= 12);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string fmt_pct(double fraction, int decimals) {
  return fmt(fraction * 100.0, decimals) + "%";
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace sva
