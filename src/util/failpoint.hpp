#pragma once
// Named fault-injection points, near-zero-cost when disabled.
//
// A failpoint is a named hook compiled into a failure-prone code path --
// cache file reads, per-cell OPC solves, batch jobs -- that normally does
// nothing: the macro is one relaxed atomic load of a global "anything
// configured?" counter.  When a test (or the SVA_FAILPOINTS environment
// variable, parsed by the CLI) arms a failpoint, hits at that site execute
// the configured action:
//
//   throw        throw FailPointError on every hit
//   prob(p)      throw FailPointError with probability p per hit
//   delay(ms)    sleep for `ms` milliseconds, then continue
//   corrupt      flip a payload byte at sites that support it (serialize
//                writes); sites without a payload treat corrupt as throw
//   off          disarm (same as clear())
//
// Probability decisions are a pure hash of (site name, hit key), so a site
// keyed by a stable identity -- the circuit name for "batch.job", the cell
// name for "opc.cell_solve" -- classifies deterministically across runs
// and thread schedules.  Unkeyed sites roll a fresh per-hit counter key,
// which is what lets a bounded retry of a transiently failing read succeed
// on the next attempt.
//
// The wired sites are listed in catalogue(); the chaos suite sweeps it.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace sva {

/// Fault injected by an armed failpoint.  Deliberately a plain sva::Error
/// subclass: injected faults must flow through exactly the handling that
/// real faults of the wrapped operation would.
class FailPointError : public Error {
 public:
  explicit FailPointError(const std::string& what) : Error(what) {}
};

/// What a hit on an armed failpoint asks the site to do.  Throwing actions
/// never return through hit(); Corrupt is returned only to sites that
/// declared support for it.
enum class FailAction { None, Corrupt };

class FailPoints {
 public:
  /// Fast path: false whenever no failpoint is armed (one relaxed load).
  static bool any_active() {
    return active_count().load(std::memory_order_relaxed) > 0;
  }

  /// Arm `name` with an action spec ("throw", "prob(0.1)", "delay(5)",
  /// "corrupt", "off").  Throws PreconditionError on a malformed spec.
  static void set(const std::string& name, const std::string& spec);
  static void clear(const std::string& name);
  static void clear_all();

  /// Parse a comma-separated "name=spec,name=spec" list (the
  /// SVA_FAILPOINTS format) and arm every entry.
  static void configure(const std::string& list);
  /// configure($SVA_FAILPOINTS) when the variable is set; returns the
  /// number of armed failpoints.
  static std::size_t configure_from_env();

  /// Names of every failpoint site wired into the codebase, for sweeps
  /// and documentation.  Arming a name outside this list is allowed (the
  /// hook simply never fires).
  static const std::vector<std::string>& catalogue();

  /// Number of times an armed action actually fired (threw, corrupted, or
  /// delayed) at `name` since the last clear of that name.
  static std::uint64_t fired_count(const std::string& name);

  /// Slow path behind any_active(): look up `name`, execute its action.
  /// `key` seeds the prob() decision; kNoKey draws a fresh per-hit counter
  /// value instead.  Sites that can corrupt their payload pass
  /// supports_corrupt=true and honour a Corrupt return.
  static constexpr std::uint64_t kNoKey = ~0ull;
  static FailAction hit(const char* name, std::uint64_t key = kNoKey,
                        bool supports_corrupt = false);

 private:
  static std::atomic<int>& active_count();
};

}  // namespace sva

/// Failpoint with a per-hit counter key: each hit (and each retry) rolls
/// an independent prob() decision.
#define SVA_FAILPOINT(name)                               \
  do {                                                    \
    if (::sva::FailPoints::any_active())                  \
      ::sva::FailPoints::hit(name);                       \
  } while (false)

/// Failpoint keyed by a stable identity: prob() classifies the same key
/// the same way in every run and on every thread schedule.
#define SVA_FAILPOINT_KEYED(name, key)                    \
  do {                                                    \
    if (::sva::FailPoints::any_active())                  \
      ::sva::FailPoints::hit(name, (key));                \
  } while (false)
