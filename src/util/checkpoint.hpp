#pragma once
// Checkpoint envelope for interrupted-run journals.
//
// A checkpoint is the committed prefix of a deterministic run -- the
// accepted ECO moves, the completed batch-job slots -- written when a
// CancelToken trips so `--resume` can skip straight past work already
// done.  The envelope binds the payload to its producer three ways:
//
//   kind          which subsystem wrote it ("eco", "batch"), so a batch
//                 journal can never be fed to the optimizer;
//   content hash  the same identity the cache snapshots key on (setup
//                 hash + job/config identity), so a checkpoint from a
//                 different netlist, library, or config is rejected, not
//                 silently replayed into the wrong run;
//   checksum      fnv1a64_words over the payload, so a torn or corrupt
//                 file reads as SerializeError (and the caller cold-starts)
//                 rather than as plausible state.
//
// Writes go through FileLock + atomic temp+rename, so N processes
// checkpointing into one directory never tear each other's journals.
// Failpoint `checkpoint.write` models a failed journal write: the run
// still exits with the cancelled code, it just reports that no resume
// file exists.

#include <cstdint>
#include <string>

namespace sva {

/// Envelope magic "SVAK" (little-endian u32) + format version.
inline constexpr std::uint32_t kCheckpointMagic = 0x4b415653u;
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Wrap `payload` in the envelope and atomically write it to `path`
/// (under the path's FileLock).  Throws sva::Error on IO failure.
void write_checkpoint(const std::string& path, const std::string& kind,
                      std::uint64_t content_hash, const std::string& payload);

/// Read and unwrap `path`.  Throws FileMissingError when absent,
/// SerializeError on a bad magic/version/checksum, a kind other than
/// `kind`, or -- unless `expected_hash` is kAnyHash -- a content hash
/// other than `expected_hash`.  Returns the payload bytes.
inline constexpr std::uint64_t kAnyHash = ~0ull;
std::string read_checkpoint(const std::string& path, const std::string& kind,
                            std::uint64_t expected_hash = kAnyHash);

/// Content hash recorded in `path`'s envelope without validating it
/// against an expectation (still checks magic/version/kind/checksum).
std::uint64_t checkpoint_content_hash(const std::string& path,
                                      const std::string& kind);

}  // namespace sva
