#pragma once
// Size/age garbage collection for a shared on-disk cache directory.
//
// A long-lived shared SVA_CACHE_DIR accumulates three kinds of debris:
// snapshots for libraries/configs nobody uses any more, quarantined
// `*.corrupt*` evidence files, and `*.tmp.*` leftovers from writers that
// died between open and rename.  The GC pass (CLI `--cache-gc`) removes
// debris and then evicts the oldest snapshots until the directory fits a
// size budget.  Eviction is safe by construction: every `.svac` file is a
// pure cache entry -- deleting one costs a re-characterization, never
// correctness.
//
// The pass runs under the directory-wide `gc` FileLock so two concurrent
// `--cache-gc` invocations never double-delete, and it never touches
// `.lock` sidecars (unlinking one from under a live holder would let two
// writers in) or checkpoint journals (`*.ckpt`, which are not cache).

#include <cstdint>
#include <string>

namespace sva {

struct CacheGcConfig {
  /// Evict oldest snapshots until the directory's snapshot bytes fit.
  std::uint64_t max_total_bytes = 512ull * 1024 * 1024;
  /// Snapshots and quarantine files untouched for longer are removed
  /// regardless of the size budget.  <= 0 disables the age rule.
  double max_age_days = 30.0;
  /// Temp-file leftovers older than this are orphans (their writer is
  /// gone -- a live atomic_write_file holds a temp for milliseconds).
  double tmp_age_minutes = 10.0;
};

struct CacheGcStats {
  std::uint64_t scanned_files = 0;
  std::uint64_t removed_files = 0;
  std::uint64_t removed_bytes = 0;
  std::uint64_t kept_files = 0;
  std::uint64_t kept_bytes = 0;

  std::string summary() const;
};

/// Run one GC pass over `cache_dir`.  Missing directory is a no-op (empty
/// stats).  Throws sva::Error only when the GC lock cannot be acquired.
CacheGcStats run_cache_gc(const std::string& cache_dir,
                          const CacheGcConfig& config = {});

}  // namespace sva
