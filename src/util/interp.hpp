#pragma once
// Interpolation utilities: 1-D and 2-D table lookup with linear
// interpolation and linear extrapolation at the edges.
//
// These are the numerical backbone of NLDM timing-table evaluation
// (delay(load, slew)), pitch->CD lookup tables, and Bossung/FEM surfaces.
// Axes must be strictly increasing; lookups clamp-extrapolate linearly,
// which matches how Liberty table evaluation behaves outside the
// characterized window.

#include <cstddef>
#include <vector>

namespace sva {

/// Piecewise-linear y(x) over a strictly increasing axis.
class LookupTable1D {
 public:
  LookupTable1D() = default;

  /// Construct from matching axis/value vectors (axis strictly increasing,
  /// at least one point).
  LookupTable1D(std::vector<double> axis, std::vector<double> values);

  /// Interpolated (or edge-extrapolated) value at x.
  double at(double x) const;

  /// Derivative dy/dx of the segment containing x (edge segments used for
  /// out-of-range x).  Zero for single-point tables.
  double slope_at(double x) const;

  std::size_t size() const { return axis_.size(); }
  const std::vector<double>& axis() const { return axis_; }
  const std::vector<double>& values() const { return values_; }

  /// Minimum / maximum of the stored values (not of the interpolant,
  /// which for piecewise-linear data is the same).
  double min_value() const;
  double max_value() const;

 private:
  std::vector<double> axis_;
  std::vector<double> values_;
};

/// Bilinear z(x, y) over a strictly increasing grid.
/// Values are stored row-major: value(ix, iy) = values[ix * ny + iy].
class LookupTable2D {
 public:
  LookupTable2D() = default;

  LookupTable2D(std::vector<double> x_axis, std::vector<double> y_axis,
                std::vector<double> values);

  /// Bilinearly interpolated (edge-extrapolated) value at (x, y).
  double at(double x, double y) const;

  std::size_t nx() const { return x_axis_.size(); }
  std::size_t ny() const { return y_axis_.size(); }
  const std::vector<double>& x_axis() const { return x_axis_; }
  const std::vector<double>& y_axis() const { return y_axis_; }
  const std::vector<double>& values() const { return values_; }

  double value_at(std::size_t ix, std::size_t iy) const;

  /// Apply f to every stored value (used to derive scaled corner tables).
  template <typename F>
  LookupTable2D transformed(F&& f) const {
    std::vector<double> v = values_;
    for (double& x : v) x = f(x);
    return LookupTable2D(x_axis_, y_axis_, std::move(v));
  }

 private:
  std::vector<double> x_axis_;
  std::vector<double> y_axis_;
  std::vector<double> values_;
};

namespace interp {

/// Index i such that axis[i] <= x < axis[i+1], clamped to a valid segment
/// start for out-of-range x.  Axis must have >= 2 entries.
std::size_t segment_index(const std::vector<double>& axis, double x);

/// Linear interpolation between (x0,y0) and (x1,y1); extrapolates.
double lerp(double x0, double y0, double x1, double y1, double x);

}  // namespace interp
}  // namespace sva
