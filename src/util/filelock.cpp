#include "util/filelock.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>

#include "util/diagnostics.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"

namespace sva {
namespace {

// Record our PID in the (just-locked) sidecar so a later acquirer can run
// the dead-holder takeover check.  Best effort: a torn or missing PID only
// disables takeover, never correctness.
void write_holder_pid(int fd) {
  char buf[32];
  const int n = std::snprintf(buf, sizeof(buf), "%ld\n",
                              static_cast<long>(::getpid()));
  if (n <= 0) return;
  (void)::ftruncate(fd, 0);
  (void)::lseek(fd, 0, SEEK_SET);
  (void)::write(fd, buf, static_cast<std::size_t>(n));
}

// PID recorded in the sidecar, or -1 when unreadable/empty.
long read_holder_pid(const std::string& lock_path) {
  std::FILE* f = std::fopen(lock_path.c_str(), "rb");
  if (f == nullptr) return -1;
  char buf[32] = {0};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  if (n == 0) return -1;
  char* end = nullptr;
  const long pid = std::strtol(buf, &end, 10);
  return (end != buf && pid > 0) ? pid : -1;
}

bool process_alive(long pid) {
  // kill(pid, 0): 0 or EPERM means the process exists; ESRCH means dead.
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
}

int open_lock_file(const std::string& lock_path) {
  return ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
}

// The lock is acquired before the write that would otherwise create the
// target's directory (cold cache dir), so the sidecar's parent must be
// made here.  Racing creators are fine; only total failure matters.
void ensure_parent_dir(const std::string& lock_path) {
  std::error_code ec;
  const std::filesystem::path parent =
      std::filesystem::path(lock_path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
}

}  // namespace

std::string lock_sidecar_path(const std::string& target_path) {
  return target_path + ".lock";
}

FileLock::FileLock(FileLock&& other) noexcept
    : fd_(other.fd_), lock_path_(std::move(other.lock_path_)) {
  other.fd_ = -1;
  other.lock_path_.clear();
}

FileLock& FileLock::operator=(FileLock&& other) noexcept {
  if (this != &other) {
    release();
    fd_ = other.fd_;
    lock_path_ = std::move(other.lock_path_);
    other.fd_ = -1;
    other.lock_path_.clear();
  }
  return *this;
}

void FileLock::release() noexcept {
  if (fd_ < 0) return;
  // close() drops the flock; the sidecar stays (see header).
  ::close(fd_);
  fd_ = -1;
  lock_path_.clear();
}

FileLock FileLock::acquire(const std::string& target_path, int timeout_ms) {
  SVA_FAILPOINT("cache.lock");
  const std::string lock_path = lock_sidecar_path(target_path);
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::milliseconds(timeout_ms);
  const auto takeover_check_at =
      start + std::chrono::milliseconds(timeout_ms / 2);
  bool takeover_done = false;
  int backoff_ms = 1;

  ensure_parent_dir(lock_path);
  int fd = open_lock_file(lock_path);
  if (fd < 0)
    throw Error("cannot open lock file '" + lock_path +
                "': " + std::strerror(errno));

  for (;;) {
    if (::flock(fd, LOCK_EX | LOCK_NB) == 0) {
      // Raced unlink (takeover by another process): our descriptor may
      // point at a dead inode whose lock nobody else can see.  Re-stat and
      // retry against the live sidecar if so.
      struct stat on_disk{}, ours{};
      if (::stat(lock_path.c_str(), &on_disk) == 0 &&
          ::fstat(fd, &ours) == 0 && on_disk.st_ino == ours.st_ino) {
        write_holder_pid(fd);
        FileLock lock;
        lock.fd_ = fd;
        lock.lock_path_ = lock_path;
        return lock;
      }
      ::close(fd);
      fd = open_lock_file(lock_path);
      if (fd < 0)
        throw Error("cannot reopen lock file '" + lock_path +
                    "': " + std::strerror(errno));
      continue;
    }
    if (errno != EWOULDBLOCK && errno != EINTR) {
      const int saved = errno;
      ::close(fd);
      throw Error("flock('" + lock_path + "') failed: " +
                  std::strerror(saved));
    }

    const auto now = std::chrono::steady_clock::now();
    if (!takeover_done && now >= takeover_check_at) {
      takeover_done = true;
      const long holder = read_holder_pid(lock_path);
      if (holder > 0 && holder != static_cast<long>(::getpid()) &&
          !process_alive(holder)) {
        // flock says busy but the recorded holder is dead: broken state on
        // an flock-emulating filesystem.  Unlink the sidecar and retry on
        // the fresh inode (live holders on real flock keep their lock --
        // it is bound to the old inode, which we no longer consult).
        log_warn("lock '", lock_path, "' held by dead pid ", holder,
                 "; taking over");
        diag_warn("filelock", "lock_takeover",
                  "stale lock '" + lock_path + "' (dead pid " +
                      std::to_string(holder) + ") removed");
        MetricsRegistry::global().counter("filelock.takeovers").add();
        (void)::unlink(lock_path.c_str());
        ::close(fd);
        fd = open_lock_file(lock_path);
        if (fd < 0)
          throw Error("cannot reopen lock file '" + lock_path +
                      "': " + std::strerror(errno));
        continue;
      }
    }
    if (now >= deadline) {
      ::close(fd);
      throw Error("timed out after " + std::to_string(timeout_ms) +
                  " ms waiting for lock '" + lock_path + "'");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min(backoff_ms * 2, 10);
  }
}

FileLock FileLock::try_acquire(const std::string& target_path,
                               int timeout_ms) noexcept {
  try {
    return acquire(target_path, timeout_ms);
  } catch (const std::exception& e) {
    log_warn("lock acquisition failed: ", e.what());
    return FileLock();
  }
}

}  // namespace sva
