#pragma once
// Bounded retry-with-backoff for transient failures.
//
// Cache reads can fail transiently (NFS hiccup, AV scanner holding the
// file, an injected "serialize.read" fault); retrying a couple of times
// with a short exponential backoff converts those into a warm start that
// is bit-identical to an untroubled run.  Permanent conditions are not
// retried: FileMissingError (a missing snapshot is the normal cold start)
// rethrows immediately, and anything still failing after max_attempts
// propagates to the caller's degradation path.
//
// The daemon client reuses the same loop with two extra knobs.
// transient_only narrows the retried set to TransientError -- the classes
// where nothing observable happened beyond the attempt itself (Busy,
// connect-refused on either transport: a down TCP daemon is the same
// ECONNREFUSED as a missing Unix socket, EOF before any response byte),
// so a retry is idempotent by construction.  max_jitter adds a uniform random slice to
// each backoff so concurrent clients rejected together do not re-collide
// on the same tick.
//
// Every swallowed failure counts the "io.retries" metric, so soak runs
// show how often the transient path actually fired.

#include <algorithm>
#include <chrono>
#include <random>
#include <thread>

#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/serialize.hpp"

namespace sva {

/// A failure the caller may safely repeat: the attempt had no observable
/// effect (admission was refused, the connection never opened, or the
/// peer hung up before the first response byte).  May carry a
/// server-provided earliest-useful-retry hint (0 = none).
class TransientError : public Error {
 public:
  explicit TransientError(const std::string& what,
                          std::uint64_t retry_after_ms = 0)
      : Error(what), retry_after_ms_(retry_after_ms) {}
  std::uint64_t retry_after_ms() const { return retry_after_ms_; }

 private:
  std::uint64_t retry_after_ms_;
};

struct RetryPolicy {
  int max_attempts = 3;
  std::chrono::milliseconds initial_backoff{1};
  int backoff_multiplier = 2;
  /// Extra uniform-random sleep in [0, max_jitter] per retry; 0 keeps the
  /// backoff deterministic (the cache-IO callers' behaviour).
  std::chrono::milliseconds max_jitter{0};
  /// Retry only TransientError; any other sva::Error rethrows
  /// immediately.  Off by default: the cache-IO callers retry every
  /// recoverable Error as before.
  bool transient_only = false;
};

namespace retry_detail {
inline std::chrono::milliseconds jitter(std::chrono::milliseconds max) {
  if (max.count() <= 0) return std::chrono::milliseconds{0};
  thread_local std::mt19937_64 rng{std::random_device{}()};
  std::uniform_int_distribution<std::int64_t> dist(0, max.count());
  return std::chrono::milliseconds{dist(rng)};
}
}  // namespace retry_detail

/// Run `fn`, retrying transient sva::Error failures per `policy`.  Returns
/// fn()'s value; rethrows FileMissingError immediately and the last error
/// once attempts are exhausted.  A TransientError's retry_after_ms hint
/// raises (never lowers below itself) the next sleep.
template <typename Fn>
auto with_retry(const char* what, const RetryPolicy& policy, Fn&& fn)
    -> decltype(fn()) {
  auto backoff = policy.initial_backoff;
  for (int attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (const FileMissingError&) {
      throw;  // permanent: absence is a state, not a fault
    } catch (const Error& e) {
      if (attempt >= policy.max_attempts) throw;
      const auto* transient = dynamic_cast<const TransientError*>(&e);
      if (policy.transient_only && transient == nullptr) throw;
      MetricsRegistry::global().counter("io.retries").add();
      log_debug("retrying ", what, " (attempt ", attempt, "/",
                policy.max_attempts, "): ", e.what());
      auto sleep_for = backoff;
      if (transient != nullptr && transient->retry_after_ms() > 0)
        sleep_for = std::max(
            sleep_for, std::chrono::milliseconds(
                           static_cast<std::int64_t>(transient->retry_after_ms())));
      sleep_for += retry_detail::jitter(policy.max_jitter);
      std::this_thread::sleep_for(sleep_for);
      backoff *= policy.backoff_multiplier;
    }
  }
}

}  // namespace sva
