#pragma once
// Bounded retry-with-backoff for transient I/O.
//
// Cache reads can fail transiently (NFS hiccup, AV scanner holding the
// file, an injected "serialize.read" fault); retrying a couple of times
// with a short exponential backoff converts those into a warm start that
// is bit-identical to an untroubled run.  Permanent conditions are not
// retried: FileMissingError (a missing snapshot is the normal cold start)
// rethrows immediately, and anything still failing after max_attempts
// propagates to the caller's degradation path.
//
// Every swallowed failure counts the "io.retries" metric, so soak runs
// show how often the transient path actually fired.

#include <chrono>
#include <thread>

#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/serialize.hpp"

namespace sva {

struct RetryPolicy {
  int max_attempts = 3;
  std::chrono::milliseconds initial_backoff{1};
  int backoff_multiplier = 2;
};

/// Run `fn`, retrying transient sva::Error failures per `policy`.  Returns
/// fn()'s value; rethrows FileMissingError immediately and the last error
/// once attempts are exhausted.
template <typename Fn>
auto with_retry(const char* what, const RetryPolicy& policy, Fn&& fn)
    -> decltype(fn()) {
  auto backoff = policy.initial_backoff;
  for (int attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (const FileMissingError&) {
      throw;  // permanent: absence is a state, not a fault
    } catch (const Error& e) {
      if (attempt >= policy.max_attempts) throw;
      MetricsRegistry::global().counter("io.retries").add();
      log_debug("retrying ", what, " (attempt ", attempt, "/",
                policy.max_attempts, "): ", e.what());
      std::this_thread::sleep_for(backoff);
      backoff *= policy.backoff_multiplier;
    }
  }
}

}  // namespace sva
