#include "util/checkpoint.hpp"

#include "util/failpoint.hpp"
#include "util/filelock.hpp"
#include "util/serialize.hpp"

namespace sva {
namespace {

struct Envelope {
  std::string kind;
  std::uint64_t content_hash = 0;
  std::string payload;
};

Envelope read_envelope(const std::string& path, const std::string& kind) {
  const std::string bytes = read_file_bytes(path);
  ByteReader r(bytes);
  if (r.u32() != kCheckpointMagic)
    throw SerializeError("'" + path + "' is not a checkpoint (bad magic)");
  if (const std::uint32_t v = r.u32(); v != kCheckpointVersion)
    throw SerializeError("checkpoint '" + path + "' has version " +
                         std::to_string(v) + ", expected " +
                         std::to_string(kCheckpointVersion));
  Envelope env;
  env.kind = r.str();
  env.content_hash = r.u64();
  env.payload = r.str();
  const std::uint64_t checksum = r.u64();
  r.expect_end();
  if (checksum != fnv1a64_words(env.payload.data(), env.payload.size()))
    throw SerializeError("checkpoint '" + path + "' failed its checksum");
  if (env.kind != kind)
    throw SerializeError("checkpoint '" + path + "' is a '" + env.kind +
                         "' journal, expected '" + kind + "'");
  return env;
}

}  // namespace

void write_checkpoint(const std::string& path, const std::string& kind,
                      std::uint64_t content_hash,
                      const std::string& payload) {
  SVA_FAILPOINT("checkpoint.write");
  ByteWriter w;
  w.u32(kCheckpointMagic);
  w.u32(kCheckpointVersion);
  w.str(kind);
  w.u64(content_hash);
  w.str(payload);
  w.u64(fnv1a64_words(payload.data(), payload.size()));
  const FileLock lock = FileLock::acquire(path);
  atomic_write_file(path, w.bytes());
}

std::string read_checkpoint(const std::string& path, const std::string& kind,
                            std::uint64_t expected_hash) {
  Envelope env = read_envelope(path, kind);
  if (expected_hash != kAnyHash && env.content_hash != expected_hash)
    throw SerializeError(
        "checkpoint '" + path + "' was written for different inputs " +
        "(content hash mismatch); refusing to resume from it");
  return std::move(env.payload);
}

std::uint64_t checkpoint_content_hash(const std::string& path,
                                      const std::string& kind) {
  return read_envelope(path, kind).content_hash;
}

}  // namespace sva
