#pragma once
// Thread-safe structured diagnostics: the machine-readable record of every
// degradation the system survived.
//
// Logging answers "what happened, in order"; this sink answers "what went
// wrong, classified".  Every graceful-degradation site -- a quarantined
// cache snapshot, a per-cell OPC fallback, an isolated batch-job failure --
// reports one Diagnostic with a severity, the component that degraded, a
// stable error code scripts can grep/assert on, and a human message.  Each
// report also logs at the matching level and feeds MetricsRegistry
// ("diagnostics.warning", "diag.<code>", ...), so --metrics shows degraded
// runs and --diagnostics renders the full classified report.
//
// Severity totals are exact even past the storage cap; only the per-entry
// detail is bounded (soak runs cannot grow memory without bound).

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace sva {

/// How a flow reacts to a recoverable fault: Strict propagates (fail
/// fast, exit non-zero); Degrade falls back to the documented conservative
/// behaviour and records a Diagnostic.  The CLI's --strict/--keep-going.
enum class FaultPolicy { Strict, Degrade };

enum class DiagSeverity { Info = 0, Warning = 1, Error = 2 };

const char* severity_label(DiagSeverity severity);  ///< "info"/"warning"/"error"

struct Diagnostic {
  DiagSeverity severity = DiagSeverity::Info;
  std::string component;  ///< subsystem: "batch", "opc", "context_cache", ...
  std::string code;       ///< stable machine-readable code (DESIGN.md §10)
  std::string message;    ///< human detail (circuit name, path, cause)
};

class Diagnostics {
 public:
  /// Process-wide sink; all degradation sites report here.
  static Diagnostics& global();

  void report(DiagSeverity severity, std::string component, std::string code,
              std::string message);

  std::vector<Diagnostic> snapshot() const;
  /// Total reports at `severity` (exact, including entries past the cap).
  std::uint64_t count(DiagSeverity severity) const;
  /// Stored entries whose code is `code` (capped at kMaxStored).
  std::size_t count_code(const std::string& code) const;

  /// Classified report for the CLI --diagnostics flag: one line per entry
  /// plus a severity summary; empty string when nothing was reported.
  std::string render() const;

  void reset();

  /// Stored-entry cap; severity totals keep counting past it.
  static constexpr std::size_t kMaxStored = 10000;

 private:
  mutable std::mutex mu_;
  std::vector<Diagnostic> entries_;
  std::uint64_t dropped_ = 0;
  std::uint64_t totals_[3] = {0, 0, 0};
};

/// Shorthands used at degradation sites.
void diag_info(std::string component, std::string code, std::string message);
void diag_warn(std::string component, std::string code, std::string message);
void diag_error(std::string component, std::string code, std::string message);

}  // namespace sva
