#pragma once
// Advisory per-file locking for multi-process cache safety.
//
// N CLI processes pointed at one SVA_CACHE_DIR coordinate writes through
// flock(2) on a sidecar "<target>.lock" file.  flock is advisory (readers
// never block -- the validate-whole-file-before-commit read path already
// tolerates concurrent rename) and is released by the kernel when the
// holder dies, so a SIGKILLed writer can never wedge the cache.
//
// The takeover path covers the one case flock cannot: a *stale sidecar
// held by nobody yet locked through a leaked descriptor* does not exist
// under real flock semantics, but a lock file whose recorded holder PID is
// dead while flock still reports busy (seen on some network/overlay
// filesystems that emulate flock per-file rather than per-open) is broken
// state -- after half the acquire budget we read the holder PID and, if
// that process no longer exists, unlink the sidecar and retry against the
// fresh inode.  Takeovers are diagnosed (`lock_takeover`) and counted
// (`filelock.takeovers`), never silent.
//
// Failpoint `cache.lock` fires on every acquire attempt, letting the chaos
// suite model lock-service failures.

#include <cstdint>
#include <string>

namespace sva {

/// RAII advisory lock on "<target>.lock".  Movable, not copyable.
class FileLock {
 public:
  FileLock() = default;
  FileLock(FileLock&& other) noexcept;
  FileLock& operator=(FileLock&& other) noexcept;
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;
  ~FileLock() { release(); }

  /// Acquire the lock guarding `target_path` (sidecar `<target>.lock`),
  /// polling with backoff for up to `timeout_ms`.  Returns a held lock on
  /// success; throws sva::Error on timeout or unrecoverable IO error.
  static FileLock acquire(const std::string& target_path,
                          int timeout_ms = kDefaultTimeoutMs);

  /// Non-throwing variant: default-constructed (un-held) lock on failure.
  static FileLock try_acquire(const std::string& target_path,
                              int timeout_ms = kDefaultTimeoutMs) noexcept;

  bool held() const { return fd_ >= 0; }
  const std::string& lock_path() const { return lock_path_; }

  /// Drop the lock (flock released, descriptor closed).  The sidecar file
  /// is left in place -- unlinking it would race a concurrent acquirer
  /// that already opened the same inode.
  void release() noexcept;

  static constexpr int kDefaultTimeoutMs = 10000;

 private:
  int fd_ = -1;
  std::string lock_path_;
};

/// Sidecar path convention, exposed for tests and the GC pass (which must
/// never evict live lock files).
std::string lock_sidecar_path(const std::string& target_path);

}  // namespace sva
