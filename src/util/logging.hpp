#pragma once
// Minimal leveled logging.
//
// Benches and examples narrate flow progress at Info level; tests silence
// everything below Warn.  A single global level keeps the interface small;
// this system is single-threaded by design (EDA flows here are batch
// experiments), so no synchronization is needed.

#include <sstream>
#include <string>

namespace sva {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line at the given level (newline appended).
void log(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::Debug)
    log(LogLevel::Debug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::Info)
    log(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::Warn)
    log(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::Error)
    log(LogLevel::Error, detail::concat(std::forward<Args>(args)...));
}

}  // namespace sva
