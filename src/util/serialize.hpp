#pragma once
// Versioned little-endian binary codec + FNV-1a content hashing.
//
// This is the foundation of the persistent on-disk context-library cache:
// characterized tables are snapshotted once and reloaded warm by later CLI
// runs, test binaries, and benches.  Byte order is fixed little-endian
// regardless of host, so cache files and the golden byte sequences in the
// tests are platform-stable.  ByteReader treats every malformed input --
// truncation, overlong counts, non-increasing axes -- as SerializeError,
// never undefined behaviour: callers (ContextCache::try_load) catch it and
// fall back to cold characterization.
//
// Codecs for cell-layer types that util cannot depend on (NldmTable) live
// with their type (cell/nldm.hpp) and compose these primitives.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"
#include "util/interp.hpp"

namespace sva {

/// Malformed or truncated serialized data (corrupt / stale cache file).
class SerializeError : public Error {
 public:
  explicit SerializeError(const std::string& what) : Error(what) {}
};

/// The file simply does not exist (the normal cold start).  Distinct from
/// other read failures so retry logic can treat absence as permanent while
/// retrying genuinely transient I/O errors.
class FileMissingError : public SerializeError {
 public:
  explicit FileMissingError(const std::string& what) : SerializeError(what) {}
};

/// 64-bit FNV-1a over a byte range.
std::uint64_t fnv1a64(const void* data, std::size_t size,
                      std::uint64_t seed = 0xcbf29ce484222325ull);

/// 64-bit FNV-1a over the buffer viewed as little-endian 64-bit words,
/// with the trailing partial word zero-padded and the total byte size
/// mixed in last.  ~8x faster than the byte-wise form; used to checksum
/// bulk cache payloads.  Not interoperable with fnv1a64.
std::uint64_t fnv1a64_words(const void* data, std::size_t size);

/// Incremental FNV-1a hasher for composite content keys (library + tech +
/// binning config).  Multi-byte values are hashed in their little-endian
/// byte order, so keys match across hosts.
class Fnv1aHasher {
 public:
  Fnv1aHasher& bytes(const void* data, std::size_t size);
  Fnv1aHasher& u64(std::uint64_t v);
  Fnv1aHasher& f64(double v);  ///< hashes the IEEE-754 bit pattern
  Fnv1aHasher& str(const std::string& s);  ///< length-prefixed
  Fnv1aHasher& vec_f64(const std::vector<double>& v);  ///< length-prefixed

  std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

/// Append-only little-endian byte sink.
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void str(const std::string& s);              ///< u64 length + raw bytes
  void vec_f64(const std::vector<double>& v);  ///< u64 count + doubles

  const std::string& bytes() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian reader over a byte buffer (not owned).
/// Every accessor throws SerializeError instead of reading past the end,
/// and length prefixes are validated against the remaining bytes before
/// any allocation (a corrupt count cannot trigger a huge allocation).
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : p_(data.data()), end_(data.data() + data.size()) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();
  std::vector<double> vec_f64();

  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }
  bool at_end() const { return p_ == end_; }
  /// Throws SerializeError unless the whole buffer was consumed.
  void expect_end() const;

 private:
  const char* need(std::size_t n);  ///< advance past n bytes or throw
  const char* p_;
  const char* end_;
};

/// Interpolation-table codecs.  Deserialization re-validates the table
/// invariants (matching sizes, strictly increasing axes) and reports any
/// violation as SerializeError.
void serialize(ByteWriter& w, const LookupTable1D& t);
LookupTable1D deserialize_lut1d(ByteReader& r);
void serialize(ByteWriter& w, const LookupTable2D& t);
LookupTable2D deserialize_lut2d(ByteReader& r);

/// Atomically replace `path` with `bytes`: write to a unique temp file in
/// the same directory, then rename.  A concurrent reader sees either the
/// old file or the new one, never a torn write.  Creates parent
/// directories.  Throws Error on I/O failure.
void atomic_write_file(const std::string& path, const std::string& bytes);

/// Whole file as bytes; throws FileMissingError when the file does not
/// exist and SerializeError on any other open/read failure.
std::string read_file_bytes(const std::string& path);

/// Best-effort quarantine of a corrupt snapshot: rename `path` to
/// `path + ".corrupt.<pid>.<counter>"` so it is never re-parsed -- the
/// next run cold-starts cleanly instead of re-validating a file known to
/// be bad.  The PID+counter suffix makes names collision-proof: repeated
/// corruption of the same slot (or two processes quarantining at once)
/// preserves every piece of evidence instead of overwriting the last.
/// Returns false (and logs) when the rename itself fails; never throws.
bool quarantine_file(const std::string& path) noexcept;

}  // namespace sva
