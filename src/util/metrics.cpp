#include "util/metrics.hpp"

#include <cstdio>

namespace sva {

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

TimerStat& MetricsRegistry::timer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = timers_[name];
  if (!slot) slot = std::make_unique<TimerStat>();
  return *slot;
}

LogHistogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LogHistogram>();
  return *slot;
}

std::vector<MetricsRegistry::HistogramSample>
MetricsRegistry::snapshot_histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HistogramSample> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSample s;
    s.name = name;
    for (std::size_t i = 0; i < LogHistogram::kBuckets; ++i) {
      s.buckets[i] = h->bucket(i);
      s.total += s.buckets[i];
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + timers_.size());
  for (const auto& [name, c] : counters_)
    out.push_back({name, c->value(), 0.0, false});
  for (const auto& [name, t] : timers_)
    out.push_back({name, t->count(), t->seconds(), true});
  return out;
}

std::string MetricsRegistry::render() const {
  std::string out;
  char line[160];
  for (const MetricSample& s : snapshot()) {
    if (s.is_timer)
      std::snprintf(line, sizeof line, "  %-32s %10.3f s  (%llu samples)\n",
                    s.name.c_str(), s.seconds,
                    static_cast<unsigned long long>(s.count));
    else
      std::snprintf(line, sizeof line, "  %-32s %10llu\n", s.name.c_str(),
                    static_cast<unsigned long long>(s.count));
    out += line;
  }
  for (const HistogramSample& s : snapshot_histograms()) {
    std::snprintf(line, sizeof line, "  %-32s %10llu samples (log2 buckets)\n",
                  s.name.c_str(), static_cast<unsigned long long>(s.total));
    out += line;
  }
  return out;
}

std::string MetricsRegistry::render_json() const {
  // Metric names are plain identifiers, but escape defensively so the
  // output is always valid JSON whatever callers register.
  const auto quoted = [](const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char esc[8];
        std::snprintf(esc, sizeof esc, "\\u%04x", c);
        out += esc;
      } else {
        out += c;
      }
    }
    return out + "\"";
  };
  std::string counters, timers;
  char buf[96];
  for (const MetricSample& s : snapshot()) {
    std::string& section = s.is_timer ? timers : counters;
    if (!section.empty()) section += ',';
    if (s.is_timer) {
      std::snprintf(buf, sizeof buf, ":{\"seconds\":%.9f,\"count\":%llu}",
                    s.seconds, static_cast<unsigned long long>(s.count));
    } else {
      std::snprintf(buf, sizeof buf, ":%llu",
                    static_cast<unsigned long long>(s.count));
    }
    section += quoted(s.name) + buf;
  }
  std::string histograms;
  for (const HistogramSample& s : snapshot_histograms()) {
    if (!histograms.empty()) histograms += ',';
    std::snprintf(buf, sizeof buf, ":{\"total\":%llu,\"buckets\":[",
                  static_cast<unsigned long long>(s.total));
    histograms += quoted(s.name) + buf;
    for (std::size_t i = 0; i < s.buckets.size(); ++i) {
      std::snprintf(buf, sizeof buf, "%s%llu", i == 0 ? "" : ",",
                    static_cast<unsigned long long>(s.buckets[i]));
      histograms += buf;
    }
    histograms += "]}";
  }
  return "{\"counters\":{" + counters + "},\"histograms\":{" + histograms +
         "},\"timers\":{" + timers + "}}";
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, t] : timers_) t->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace sva
