#include "util/metrics.hpp"

#include <cstdio>

namespace sva {

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

TimerStat& MetricsRegistry::timer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = timers_[name];
  if (!slot) slot = std::make_unique<TimerStat>();
  return *slot;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + timers_.size());
  for (const auto& [name, c] : counters_)
    out.push_back({name, c->value(), 0.0, false});
  for (const auto& [name, t] : timers_)
    out.push_back({name, t->count(), t->seconds(), true});
  return out;
}

std::string MetricsRegistry::render() const {
  std::string out;
  char line[160];
  for (const MetricSample& s : snapshot()) {
    if (s.is_timer)
      std::snprintf(line, sizeof line, "  %-32s %10.3f s  (%llu samples)\n",
                    s.name.c_str(), s.seconds,
                    static_cast<unsigned long long>(s.count));
    else
      std::snprintf(line, sizeof line, "  %-32s %10llu\n", s.name.c_str(),
                    static_cast<unsigned long long>(s.count));
    out += line;
  }
  return out;
}

std::string MetricsRegistry::render_json() const {
  // Metric names are plain identifiers, but escape defensively so the
  // output is always valid JSON whatever callers register.
  const auto quoted = [](const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char esc[8];
        std::snprintf(esc, sizeof esc, "\\u%04x", c);
        out += esc;
      } else {
        out += c;
      }
    }
    return out + "\"";
  };
  std::string counters, timers;
  char buf[96];
  for (const MetricSample& s : snapshot()) {
    std::string& section = s.is_timer ? timers : counters;
    if (!section.empty()) section += ',';
    if (s.is_timer) {
      std::snprintf(buf, sizeof buf, ":{\"seconds\":%.9f,\"count\":%llu}",
                    s.seconds, static_cast<unsigned long long>(s.count));
    } else {
      std::snprintf(buf, sizeof buf, ":%llu",
                    static_cast<unsigned long long>(s.count));
    }
    section += quoted(s.name) + buf;
  }
  return "{\"counters\":{" + counters + "},\"timers\":{" + timers + "}}";
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, t] : timers_) t->reset();
}

}  // namespace sva
