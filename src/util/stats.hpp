#pragma once
// Descriptive statistics and histogram construction.
//
// Used to summarize per-device CD-error populations (Table 1, Fig. 7) and
// timing-spread distributions (Table 2).

#include <cstddef>
#include <string>
#include <vector>

namespace sva {

/// Summary statistics of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  double min = 0.0;
  double max = 0.0;
};

/// Compute summary statistics; requires a non-empty sample.
Summary summarize(const std::vector<double>& xs);

/// Value at quantile q in [0, 1] by linear interpolation of order
/// statistics; requires a non-empty sample.
double quantile(std::vector<double> xs, double q);

/// Fraction of samples with |x| <= bound.
double fraction_within(const std::vector<double>& xs, double bound);

/// Fixed-width histogram.
struct Histogram {
  double lo = 0.0;            ///< lower edge of first bin
  double bin_width = 0.0;
  std::vector<std::size_t> counts;
  std::size_t underflow = 0;  ///< samples below lo
  std::size_t overflow = 0;   ///< samples at or above the last edge

  /// Center of bin i.
  double bin_center(std::size_t i) const { return lo + (i + 0.5) * bin_width; }
  std::size_t total() const;
};

/// Build a histogram with n_bins equal bins over [lo, hi).
Histogram make_histogram(const std::vector<double>& xs, double lo, double hi,
                         std::size_t n_bins);

}  // namespace sva
