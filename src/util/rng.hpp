#pragma once
// Deterministic pseudo-random number generation.
//
// Every stochastic choice in the system (benchmark-circuit generation,
// whitespace distribution, random component of linewidth variation) goes
// through this generator so that experiments are reproducible bit-for-bit
// across runs and platforms.  We implement xoshiro256** (Blackman/Vigna)
// seeded through splitmix64; <random> engines are avoided because their
// distributions are not guaranteed identical across standard libraries.

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace sva {

/// xoshiro256** PRNG with platform-independent helper distributions.
class Rng {
 public:
  /// Seed from a 64-bit value (expanded through splitmix64).
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

  /// Seed from a string (e.g. a benchmark-circuit name) so each named
  /// workload gets an independent, stable stream.
  explicit Rng(std::string_view name);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal variate (Box-Muller; deterministic pairing).
  double normal();

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Pick an index in [0, weights.size()) with probability proportional to
  /// the (non-negative) weights.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of an index vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace sva
