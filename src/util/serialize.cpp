#include "util/serialize.hpp"

#include <unistd.h>

#include <atomic>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "util/failpoint.hpp"
#include "util/logging.hpp"

namespace sva {
namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

// Little-endian encode/decode of an unsigned integer of N bytes.  The
// byte-by-byte form is host-endianness independent.
template <typename T>
void put_le(std::string& buf, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i)
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

template <typename T>
T get_le(const char* p) {
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i)
    v |= static_cast<T>(static_cast<unsigned char>(p[i])) << (8 * i);
  return v;
}

void le_bytes_of_u64(std::uint64_t v, unsigned char out[8]) {
  for (std::size_t i = 0; i < 8; ++i)
    out[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xff);
}

// Per-process unique suffix for temp and quarantine names.  The PID alone
// is not enough: two threads of one process (or two quick writes of the
// same slot) would collide, so a process-wide counter disambiguates.
std::string unique_name_suffix() {
  static std::atomic<std::uint64_t> counter{0};
  return std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t size,
                      std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a64_words(const void* data, std::size_t size) {
  const auto* p = static_cast<const char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ull;
  const std::size_t words = size / 8;
  for (std::size_t i = 0; i < words; ++i) {
    std::uint64_t w;
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(&w, p + 8 * i, 8);
    } else {
      w = get_le<std::uint64_t>(p + 8 * i);
    }
    h ^= w;
    h *= kFnvPrime;
  }
  if (const std::size_t rem = size % 8; rem != 0) {
    char tail[8] = {0};
    std::memcpy(tail, p + 8 * words, rem);
    h ^= get_le<std::uint64_t>(tail);
    h *= kFnvPrime;
  }
  // Mix in the size so buffers differing only in trailing zero bytes
  // (absorbed by the padding) still hash differently.
  h ^= size;
  h *= kFnvPrime;
  return h;
}

Fnv1aHasher& Fnv1aHasher::bytes(const void* data, std::size_t size) {
  hash_ = fnv1a64(data, size, hash_);
  return *this;
}

Fnv1aHasher& Fnv1aHasher::u64(std::uint64_t v) {
  unsigned char le[8];
  le_bytes_of_u64(v, le);
  return bytes(le, sizeof(le));
}

Fnv1aHasher& Fnv1aHasher::f64(double v) {
  return u64(std::bit_cast<std::uint64_t>(v));
}

Fnv1aHasher& Fnv1aHasher::str(const std::string& s) {
  u64(s.size());
  return bytes(s.data(), s.size());
}

Fnv1aHasher& Fnv1aHasher::vec_f64(const std::vector<double>& v) {
  u64(v.size());
  for (double x : v) f64(x);
  return *this;
}

void ByteWriter::u8(std::uint8_t v) { put_le(buf_, v); }
void ByteWriter::u32(std::uint32_t v) { put_le(buf_, v); }
void ByteWriter::u64(std::uint64_t v) { put_le(buf_, v); }
void ByteWriter::f64(double v) { put_le(buf_, std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::str(const std::string& s) {
  u64(s.size());
  buf_.append(s);
}

void ByteWriter::vec_f64(const std::vector<double>& v) {
  u64(v.size());
  if constexpr (std::endian::native == std::endian::little) {
    // Bulk append: IEEE-754 doubles on a little-endian host already have
    // the on-disk byte order.  Empty vectors may hand out a null data()
    // pointer, which append/memcpy must never see.
    if (!v.empty())
      buf_.append(reinterpret_cast<const char*>(v.data()),
                  v.size() * sizeof(double));
  } else {
    for (double x : v) f64(x);
  }
}

const char* ByteReader::need(std::size_t n) {
  if (remaining() < n)
    throw SerializeError("truncated data: need " + std::to_string(n) +
                         " bytes, have " + std::to_string(remaining()));
  const char* p = p_;
  p_ += n;
  return p;
}

std::uint8_t ByteReader::u8() { return get_le<std::uint8_t>(need(1)); }
std::uint32_t ByteReader::u32() { return get_le<std::uint32_t>(need(4)); }
std::uint64_t ByteReader::u64() { return get_le<std::uint64_t>(need(8)); }
double ByteReader::f64() {
  return std::bit_cast<double>(get_le<std::uint64_t>(need(8)));
}

std::string ByteReader::str() {
  const std::uint64_t n = u64();
  if (n > remaining())
    throw SerializeError("corrupt string length " + std::to_string(n));
  const char* p = need(static_cast<std::size_t>(n));
  return std::string(p, static_cast<std::size_t>(n));
}

std::vector<double> ByteReader::vec_f64() {
  const std::uint64_t n = u64();
  if (n > remaining() / sizeof(double))
    throw SerializeError("corrupt vector length " + std::to_string(n));
  std::vector<double> v(static_cast<std::size_t>(n));
  if constexpr (std::endian::native == std::endian::little) {
    if (!v.empty())
      std::memcpy(v.data(), need(v.size() * sizeof(double)),
                  v.size() * sizeof(double));
  } else {
    for (double& x : v) x = f64();
  }
  return v;
}

void ByteReader::expect_end() const {
  if (!at_end())
    throw SerializeError("trailing bytes: " + std::to_string(remaining()) +
                         " unread");
}

namespace {

void require_strictly_increasing(const std::vector<double>& axis) {
  if (axis.empty()) throw SerializeError("corrupt table: empty axis");
  for (std::size_t i = 1; i < axis.size(); ++i)
    if (!(axis[i] > axis[i - 1]))
      throw SerializeError("corrupt table: axis not strictly increasing");
}

}  // namespace

void serialize(ByteWriter& w, const LookupTable1D& t) {
  w.vec_f64(t.axis());
  w.vec_f64(t.values());
}

LookupTable1D deserialize_lut1d(ByteReader& r) {
  std::vector<double> axis = r.vec_f64();
  std::vector<double> values = r.vec_f64();
  require_strictly_increasing(axis);
  if (values.size() != axis.size())
    throw SerializeError("corrupt 1-D table: axis/value size mismatch");
  return LookupTable1D(std::move(axis), std::move(values));
}

void serialize(ByteWriter& w, const LookupTable2D& t) {
  w.vec_f64(t.x_axis());
  w.vec_f64(t.y_axis());
  w.vec_f64(t.values());
}

LookupTable2D deserialize_lut2d(ByteReader& r) {
  std::vector<double> x = r.vec_f64();
  std::vector<double> y = r.vec_f64();
  std::vector<double> values = r.vec_f64();
  require_strictly_increasing(x);
  require_strictly_increasing(y);
  if (values.size() != x.size() * y.size())
    throw SerializeError("corrupt 2-D table: value count mismatch");
  return LookupTable2D(std::move(x), std::move(y), std::move(values));
}

void atomic_write_file(const std::string& path, const std::string& bytes) {
  namespace fs = std::filesystem;
  // Failpoint: throw models a failed write; corrupt flips one payload byte
  // (the checksum-validated read path must catch it and quarantine).
  const std::string* payload = &bytes;
  std::string corrupted;
  if (FailPoints::any_active() &&
      FailPoints::hit("serialize.write", FailPoints::kNoKey,
                      /*supports_corrupt=*/true) == FailAction::Corrupt &&
      !bytes.empty()) {
    corrupted = bytes;
    corrupted[corrupted.size() / 2] ^= 0x55;
    payload = &corrupted;
  }
  const fs::path target(path);
  std::error_code ec;
  if (target.has_parent_path()) {
    fs::create_directories(target.parent_path(), ec);
    if (ec)
      throw Error("cannot create cache directory '" +
                  target.parent_path().string() + "': " + ec.message());
  }
  const fs::path tmp = target.string() + ".tmp." + unique_name_suffix();
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) throw Error("cannot open '" + tmp.string() + "' for write");
  const std::size_t written =
      std::fwrite(payload->data(), 1, payload->size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != payload->size() || !flushed) {
    fs::remove(tmp, ec);
    throw Error("short write to '" + tmp.string() + "'");
  }
  try {
    SVA_FAILPOINT("serialize.rename");
  } catch (...) {
    fs::remove(tmp, ec);
    throw;
  }
  fs::rename(tmp, target, ec);
  if (ec) {
    std::error_code ec2;
    fs::remove(tmp, ec2);
    throw Error("cannot rename '" + tmp.string() + "' to '" + path +
                "': " + ec.message());
  }
}

std::string read_file_bytes(const std::string& path) {
  // Unkeyed failpoint: a prob() fault here re-rolls per attempt, so a
  // bounded retry (util/retry.hpp) models a genuinely transient error.
  SVA_FAILPOINT("serialize.read");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT)
      throw FileMissingError("no such file '" + path + "'");
    throw SerializeError("cannot open '" + path + "'");
  }
  std::string bytes;
  char chunk[65536];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
    bytes.append(chunk, n);
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) throw SerializeError("read error on '" + path + "'");
  return bytes;
}

bool quarantine_file(const std::string& path) noexcept {
  std::error_code ec;
  // Collision-proof destination: PID + counter keep every corruption event
  // as separate evidence -- repeated corruption of one slot (or two
  // processes quarantining concurrently) must never overwrite a prior
  // quarantine file.
  std::string dest;
  try {
    dest = path + ".corrupt." + unique_name_suffix();
  } catch (...) {
    return false;
  }
  std::filesystem::rename(path, dest, ec);
  if (ec) {
    log_warn("quarantine of '", path, "' failed: ", ec.message());
    return false;
  }
  log_warn("quarantined corrupt file '", path, "' -> '", dest, "'");
  return true;
}

}  // namespace sva
