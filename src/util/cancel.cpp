#include "util/cancel.hpp"

#include <csignal>
#include <limits>
#include <string>

namespace sva {

const char* cancel_reason_name(CancelReason reason) {
  switch (reason) {
    case CancelReason::None: return "none";
    case CancelReason::Api: return "api";
    case CancelReason::Signal: return "signal";
    case CancelReason::Deadline: return "deadline";
    case CancelReason::Watchdog: return "watchdog";
  }
  return "unknown";
}

Deadline Deadline::after_seconds(double seconds) {
  Deadline d;
  d.valid_ = true;
  d.at_ = std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(seconds));
  return d;
}

double Deadline::remaining_seconds() const {
  if (!valid_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(at_ - std::chrono::steady_clock::now())
      .count();
}

bool CancelToken::poll() const {
  if (heartbeat_ != nullptr)
    heartbeat_->fetch_add(1, std::memory_order_relaxed);
  if (tripped_.load(std::memory_order_relaxed)) return true;
  if (deadline_.expired()) {
    request_cancel(CancelReason::Deadline);
    return true;
  }
  return false;
}

void CancelToken::check() const {
  if (!poll()) return;
  switch (reason()) {
    case CancelReason::Deadline:
      throw CancelledError("deadline exceeded");
    case CancelReason::Signal:
      throw CancelledError("cancelled by signal " +
                           std::to_string(signal_number()));
    case CancelReason::Watchdog:
      throw CancelledError("cancelled by watchdog (job stalled)");
    default:
      throw CancelledError("cancelled");
  }
}

void CancelToken::request_cancel(CancelReason reason,
                                 int signal_number) const {
  // First trip wins: the reason/signo stores only land when we are the
  // ones flipping tripped_ from false to true.
  bool expected = false;
  if (tripped_.compare_exchange_strong(expected, true,
                                       std::memory_order_acq_rel)) {
    reason_.store(static_cast<int>(reason), std::memory_order_release);
    signo_.store(signal_number, std::memory_order_release);
  }
}

void CancelToken::reset() {
  tripped_.store(false, std::memory_order_release);
  reason_.store(0, std::memory_order_release);
  signo_.store(0, std::memory_order_release);
  deadline_ = Deadline();
}

CancelToken& global_cancel_token() {
  static CancelToken token;
  return token;
}

namespace {

// Async-signal-safe: request_cancel on the sticky-flag path is two
// lock-free atomic ops and the token's static init is forced before the
// handler can fire (install touches it first).
extern "C" void sva_cancel_signal_handler(int signo) {
  global_cancel_token().request_cancel(CancelReason::Signal, signo);
}

}  // namespace

void install_cancel_signal_handlers() {
  (void)global_cancel_token();  // complete static init before handlers arm
  std::signal(SIGINT, sva_cancel_signal_handler);
  std::signal(SIGTERM, sva_cancel_signal_handler);
}

}  // namespace sva
