#include "util/cache_gc.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <vector>

#include "util/filelock.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"

namespace sva {
namespace {

namespace fs = std::filesystem;

struct Entry {
  fs::path path;
  std::uint64_t bytes = 0;
  double age_seconds = 0.0;
  bool is_snapshot = false;   // *.svac -- evictable for size
  bool is_quarantine = false; // *.corrupt* -- age rule only
  bool is_tmp = false;        // *.tmp.* -- orphan rule
};

bool remove_entry(const Entry& e, CacheGcStats& stats) {
  std::error_code ec;
  if (!fs::remove(e.path, ec) || ec) return false;
  ++stats.removed_files;
  stats.removed_bytes += e.bytes;
  return true;
}

}  // namespace

std::string CacheGcStats::summary() const {
  return "cache-gc: scanned " + std::to_string(scanned_files) +
         " files, removed " + std::to_string(removed_files) + " (" +
         std::to_string(removed_bytes) + " bytes), kept " +
         std::to_string(kept_files) + " (" + std::to_string(kept_bytes) +
         " bytes)";
}

CacheGcStats run_cache_gc(const std::string& cache_dir,
                          const CacheGcConfig& config) {
  CacheGcStats stats;
  std::error_code ec;
  if (!fs::is_directory(cache_dir, ec)) return stats;

  // Directory-wide lock: one GC at a time, and writers' per-file locks are
  // irrelevant -- GC only unlinks, and atomic rename wins either way (a
  // writer racing an eviction simply re-creates the snapshot).
  const FileLock gc_lock = FileLock::acquire(cache_dir + "/gc");

  const auto now = fs::file_time_type::clock::now();
  std::vector<Entry> entries;
  for (const fs::directory_entry& de : fs::directory_iterator(cache_dir, ec)) {
    if (ec) break;
    if (!de.is_regular_file(ec) || ec) continue;
    const std::string name = de.path().filename().string();
    if (name.size() >= 5 && name.ends_with(".lock")) continue;  // live locks
    if (name.ends_with(".ckpt")) continue;  // resume journals are not cache
    Entry e;
    e.path = de.path();
    e.bytes = static_cast<std::uint64_t>(de.file_size(ec));
    if (ec) continue;
    const auto mtime = de.last_write_time(ec);
    if (ec) continue;
    e.age_seconds =
        std::chrono::duration<double>(now - mtime).count();
    e.is_tmp = name.find(".tmp.") != std::string::npos;
    e.is_quarantine = name.find(".corrupt") != std::string::npos;
    e.is_snapshot = !e.is_tmp && !e.is_quarantine && name.ends_with(".svac");
    ++stats.scanned_files;
    entries.push_back(std::move(e));
  }

  const double max_age_s = config.max_age_days * 86400.0;
  const double tmp_age_s = config.tmp_age_minutes * 60.0;
  std::vector<Entry> snapshots;
  for (Entry& e : entries) {
    if (e.is_tmp && e.age_seconds > tmp_age_s) {
      if (remove_entry(e, stats)) continue;
    } else if ((e.is_quarantine || e.is_snapshot) && config.max_age_days > 0 &&
               e.age_seconds > max_age_s) {
      if (remove_entry(e, stats)) continue;
    }
    if (e.is_snapshot) {
      snapshots.push_back(e);
      continue;
    }
    ++stats.kept_files;
    stats.kept_bytes += e.bytes;
  }

  // Size budget applies to the snapshots only; evict oldest-first (ties
  // broken by path for a deterministic order).
  std::sort(snapshots.begin(), snapshots.end(),
            [](const Entry& a, const Entry& b) {
              if (a.age_seconds != b.age_seconds)
                return a.age_seconds > b.age_seconds;
              return a.path < b.path;
            });
  std::uint64_t snapshot_bytes = 0;
  for (const Entry& e : snapshots) snapshot_bytes += e.bytes;
  std::size_t i = 0;
  while (snapshot_bytes > config.max_total_bytes && i < snapshots.size()) {
    if (remove_entry(snapshots[i], stats)) {
      snapshot_bytes -= snapshots[i].bytes;
    } else {
      ++stats.kept_files;
      stats.kept_bytes += snapshots[i].bytes;
    }
    ++i;
  }
  for (; i < snapshots.size(); ++i) {
    ++stats.kept_files;
    stats.kept_bytes += snapshots[i].bytes;
  }

  MetricsRegistry::global().counter("cache_gc.removed").add(
      stats.removed_files);
  if (stats.removed_files > 0) log_info(stats.summary());
  return stats;
}

}  // namespace sva
