#include "util/diagnostics.hpp"

#include <cctype>
#include <utility>

#include "util/logging.hpp"
#include "util/metrics.hpp"

namespace sva {
namespace {

LogLevel log_level_of(DiagSeverity severity) {
  switch (severity) {
    case DiagSeverity::Info:
      return LogLevel::Info;
    case DiagSeverity::Warning:
      return LogLevel::Warn;
    case DiagSeverity::Error:
      return LogLevel::Error;
  }
  return LogLevel::Error;
}

}  // namespace

const char* severity_label(DiagSeverity severity) {
  switch (severity) {
    case DiagSeverity::Info:
      return "info";
    case DiagSeverity::Warning:
      return "warning";
    case DiagSeverity::Error:
      return "error";
  }
  return "error";
}

Diagnostics& Diagnostics::global() {
  static Diagnostics sink;
  return sink;
}

void Diagnostics::report(DiagSeverity severity, std::string component,
                         std::string code, std::string message) {
  if (log_level() <= log_level_of(severity))
    log(log_level_of(severity),
        "[" + component + "/" + code + "] " + message);
  MetricsRegistry::global()
      .counter(std::string("diagnostics.") + severity_label(severity))
      .add();
  MetricsRegistry::global().counter("diag." + code).add();

  std::lock_guard<std::mutex> lock(mu_);
  ++totals_[static_cast<std::size_t>(severity)];
  if (entries_.size() >= kMaxStored) {
    ++dropped_;
    return;
  }
  entries_.push_back({severity, std::move(component), std::move(code),
                      std::move(message)});
}

std::vector<Diagnostic> Diagnostics::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

std::uint64_t Diagnostics::count(DiagSeverity severity) const {
  std::lock_guard<std::mutex> lock(mu_);
  return totals_[static_cast<std::size_t>(severity)];
}

std::size_t Diagnostics::count_code(const std::string& code) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const Diagnostic& d : entries_)
    if (d.code == code) ++n;
  return n;
}

std::string Diagnostics::render() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.empty() && totals_[0] + totals_[1] + totals_[2] == 0)
    return "";
  std::string out;
  for (const Diagnostic& d : entries_) {
    const char level = severity_label(d.severity)[0];
    out += "  ";
    out += static_cast<char>(std::toupper(level));
    out += " [" + d.component + "] " + d.code + ": " + d.message + "\n";
  }
  if (dropped_ > 0)
    out += "  ... " + std::to_string(dropped_) + " further entries dropped\n";
  out += "  summary: " + std::to_string(totals_[2]) + " error(s), " +
         std::to_string(totals_[1]) + " warning(s), " +
         std::to_string(totals_[0]) + " info\n";
  return out;
}

void Diagnostics::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  dropped_ = 0;
  totals_[0] = totals_[1] = totals_[2] = 0;
}

void diag_info(std::string component, std::string code, std::string message) {
  Diagnostics::global().report(DiagSeverity::Info, std::move(component),
                               std::move(code), std::move(message));
}

void diag_warn(std::string component, std::string code, std::string message) {
  Diagnostics::global().report(DiagSeverity::Warning, std::move(component),
                               std::move(code), std::move(message));
}

void diag_error(std::string component, std::string code, std::string message) {
  Diagnostics::global().report(DiagSeverity::Error, std::move(component),
                               std::move(code), std::move(message));
}

}  // namespace sva
