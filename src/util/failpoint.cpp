#include "util/failpoint.hpp"

#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "util/metrics.hpp"

namespace sva {
namespace {

enum class ActionKind { Throw, Prob, Delay, Corrupt };

struct Config {
  ActionKind kind = ActionKind::Throw;
  double probability = 1.0;   ///< for Prob
  std::uint64_t delay_ms = 0; ///< for Delay
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Config> armed;
  std::map<std::string, std::uint64_t> hit_counters;  ///< per-name kNoKey keys
  std::map<std::string, std::uint64_t> fired;
};

Registry& registry() {
  static Registry r;
  return r;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t name_seed(const char* name) {
  // FNV-1a over the name; duplicated here (instead of serialize.hpp) to
  // keep failpoint free of higher-layer includes.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char* p = name; *p != '\0'; ++p) {
    h ^= static_cast<unsigned char>(*p);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Uniform [0, 1) from (site, key): a pure function, so keyed sites make
/// the same decision in every run.
double uniform_of(const char* name, std::uint64_t key) {
  const std::uint64_t bits = splitmix64(name_seed(name) ^ key);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

/// Parse "prob(0.25)" / "delay(10)" payloads.
double parse_paren_number(const std::string& spec, std::size_t open,
                          const std::string& what) {
  const std::size_t close = spec.rfind(')');
  if (close == std::string::npos || close < open + 2 ||
      close + 1 != spec.size())
    throw PreconditionError("malformed failpoint action '" + spec + "'");
  const std::string body = spec.substr(open + 1, close - open - 1);
  std::size_t parsed = 0;
  double v = 0.0;
  try {
    v = std::stod(body, &parsed);
  } catch (const std::exception&) {
    parsed = 0;
  }
  if (parsed != body.size())
    throw PreconditionError("failpoint " + what + " expects a number, got '" +
                            body + "'");
  return v;
}

Config parse_spec(const std::string& spec) {
  Config c;
  if (spec == "throw") {
    c.kind = ActionKind::Throw;
    return c;
  }
  if (spec == "corrupt") {
    c.kind = ActionKind::Corrupt;
    return c;
  }
  if (spec.rfind("prob(", 0) == 0) {
    c.kind = ActionKind::Prob;
    c.probability = parse_paren_number(spec, 4, "prob()");
    if (!(c.probability >= 0.0 && c.probability <= 1.0))
      throw PreconditionError("failpoint prob() expects p in [0,1], got '" +
                              spec + "'");
    return c;
  }
  if (spec.rfind("delay(", 0) == 0) {
    c.kind = ActionKind::Delay;
    const double ms = parse_paren_number(spec, 5, "delay()");
    if (!(ms >= 0.0))
      throw PreconditionError("failpoint delay() expects ms >= 0, got '" +
                              spec + "'");
    c.delay_ms = static_cast<std::uint64_t>(ms);
    return c;
  }
  throw PreconditionError("unknown failpoint action '" + spec +
                          "' (expected throw, prob(p), delay(ms), corrupt, "
                          "or off)");
}

[[noreturn]] void throw_injected(const char* name, const char* how) {
  throw FailPointError(std::string("injected fault at failpoint '") + name +
                       "' (" + how + ")");
}

}  // namespace

std::atomic<int>& FailPoints::active_count() {
  static std::atomic<int> count{0};
  return count;
}

void FailPoints::set(const std::string& name, const std::string& spec) {
  if (name.empty())
    throw PreconditionError("failpoint name must be non-empty");
  if (spec == "off") {
    clear(name);
    return;
  }
  const Config config = parse_spec(spec);  // validate before arming
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const bool fresh = r.armed.emplace(name, config).second;
  if (!fresh)
    r.armed[name] = config;
  else
    active_count().fetch_add(1, std::memory_order_relaxed);
}

void FailPoints::clear(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (r.armed.erase(name) > 0)
    active_count().fetch_sub(1, std::memory_order_relaxed);
  r.hit_counters.erase(name);
  r.fired.erase(name);
}

void FailPoints::clear_all() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  active_count().fetch_sub(static_cast<int>(r.armed.size()),
                           std::memory_order_relaxed);
  r.armed.clear();
  r.hit_counters.clear();
  r.fired.clear();
}

void FailPoints::configure(const std::string& list) {
  std::size_t begin = 0;
  while (begin <= list.size()) {
    std::size_t end = list.find(',', begin);
    if (end == std::string::npos) end = list.size();
    const std::string entry = list.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0)
      throw PreconditionError("malformed SVA_FAILPOINTS entry '" + entry +
                              "' (expected name=action)");
    set(entry.substr(0, eq), entry.substr(eq + 1));
  }
}

std::size_t FailPoints::configure_from_env() {
  const char* env = std::getenv("SVA_FAILPOINTS");
  if (env == nullptr || *env == '\0') return 0;
  configure(env);
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.armed.size();
}

const std::vector<std::string>& FailPoints::catalogue() {
  static const std::vector<std::string> kSites = {
      "serialize.read",      // read_file_bytes (cache file reads)
      "serialize.write",     // atomic_write_file payload (supports corrupt)
      "serialize.rename",    // atomic_write_file temp->target rename
      "context_cache.load",  // ContextCache::try_load validation
      "context_cache.save",  // ContextCache::save
      "flow.setup_load",     // SvaFlow setup snapshot validation
      "opc.cell_solve",      // per-cell library OPC (keyed by cell name)
      "engine.task",         // thread-pool task execution
      "batch.job",           // BatchRunner job (keyed by circuit name)
      "checkpoint.write",    // write_checkpoint envelope write
      "cache.lock",          // FileLock::acquire (cache/checkpoint locks)
      "server.accept",       // daemon accept loop (connection dropped)
      "server.read",         // daemon per-connection frame read
      "server.conn.accept",  // post-accept supervision (pre-shed drop)
      "server.conn.read",    // supervised frame read (before any byte)
      "server.conn.write",   // supervised frame write (before any byte)
      "server.lane.run",     // executor-lane job harness (lane crash/stall)
      "server.watchdog.tick",// daemon watchdog scan (tick skipped)
      "ssta.propagate",      // SstaEngine forward pass entry
  };
  return kSites;
}

std::uint64_t FailPoints::fired_count(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.fired.find(name);
  return it == r.fired.end() ? 0 : it->second;
}

FailAction FailPoints::hit(const char* name, std::uint64_t key,
                           bool supports_corrupt) {
  Config config;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    const auto it = r.armed.find(name);
    if (it == r.armed.end()) return FailAction::None;
    config = it->second;
    if (config.kind == ActionKind::Prob && key == kNoKey)
      key = r.hit_counters[name]++;
    if (config.kind == ActionKind::Prob &&
        uniform_of(name, key) >= config.probability)
      return FailAction::None;
    ++r.fired[name];
  }
  MetricsRegistry::global().counter("failpoints.fired").add();
  switch (config.kind) {
    case ActionKind::Throw:
      throw_injected(name, "throw");
    case ActionKind::Prob:
      throw_injected(name, "prob");
    case ActionKind::Delay:
      std::this_thread::sleep_for(std::chrono::milliseconds(config.delay_ms));
      return FailAction::None;
    case ActionKind::Corrupt:
      if (supports_corrupt) return FailAction::Corrupt;
      throw_injected(name, "corrupt, unsupported at this site");
  }
  return FailAction::None;
}

}  // namespace sva
