#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace sva {

Summary summarize(const std::vector<double>& xs) {
  SVA_REQUIRE_MSG(!xs.empty(), "cannot summarize an empty sample");
  Summary s;
  s.count = xs.size();
  s.min = xs.front();
  s.max = xs.front();
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) ss += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(ss / static_cast<double>(xs.size()));
  return s;
}

double quantile(std::vector<double> xs, double q) {
  SVA_REQUIRE(!xs.empty());
  SVA_REQUIRE(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto i = static_cast<std::size_t>(pos);
  if (i + 1 >= xs.size()) return xs.back();
  const double frac = pos - static_cast<double>(i);
  return xs[i] + frac * (xs[i + 1] - xs[i]);
}

double fraction_within(const std::vector<double>& xs, double bound) {
  SVA_REQUIRE(!xs.empty());
  SVA_REQUIRE(bound >= 0.0);
  std::size_t n = 0;
  for (double x : xs)
    if (std::abs(x) <= bound) ++n;
  return static_cast<double>(n) / static_cast<double>(xs.size());
}

std::size_t Histogram::total() const {
  std::size_t t = underflow + overflow;
  for (std::size_t c : counts) t += c;
  return t;
}

Histogram make_histogram(const std::vector<double>& xs, double lo, double hi,
                         std::size_t n_bins) {
  SVA_REQUIRE(hi > lo);
  SVA_REQUIRE(n_bins > 0);
  Histogram h;
  h.lo = lo;
  h.bin_width = (hi - lo) / static_cast<double>(n_bins);
  h.counts.assign(n_bins, 0);
  for (double x : xs) {
    if (x < lo) {
      ++h.underflow;
    } else if (x >= hi) {
      ++h.overflow;
    } else {
      auto i = static_cast<std::size_t>((x - lo) / h.bin_width);
      if (i >= n_bins) i = n_bins - 1;  // numerical edge at the top border
      ++h.counts[i];
    }
  }
  return h;
}

}  // namespace sva
