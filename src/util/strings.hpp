#pragma once
// Small string/formatting helpers shared across modules.

#include <string>
#include <vector>

namespace sva {

/// printf-style double formatting with fixed decimals, e.g. fmt(3.14159, 2)
/// == "3.14".
std::string fmt(double v, int decimals);

/// Format as a percentage with the given decimals: fmt_pct(0.2834, 1) ==
/// "28.3%".  The input is a fraction, not a percentage.
std::string fmt_pct(double fraction, int decimals);

/// Left/right padding to a fixed width (no truncation if already wider).
std::string pad_left(const std::string& s, std::size_t width);
std::string pad_right(const std::string& s, std::size_t width);

/// Join strings with a separator.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// True if `s` starts with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

}  // namespace sva
