#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace sva {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

/// FNV-1a hash of a string, used to derive seeds from workload names.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // splitmix64 expansion guards against poor seeds (e.g. 0) as recommended
  // by the xoshiro authors.
  for (auto& s : state_) s = splitmix64(seed);
}

Rng::Rng(std::string_view name) : Rng(fnv1a(name)) {}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  SVA_REQUIRE(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  SVA_REQUIRE(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller: generates two independent normals per two uniforms.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  SVA_REQUIRE(stddev >= 0.0);
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) {
  SVA_REQUIRE(p >= 0.0 && p <= 1.0);
  return uniform() < p;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  SVA_REQUIRE(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    SVA_REQUIRE_MSG(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  SVA_REQUIRE_MSG(total > 0.0, "at least one weight must be positive");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: fall back to last bucket
}

}  // namespace sva
