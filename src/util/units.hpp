#pragma once
// Units used throughout the SVA-timing system.
//
// All layout geometry is in nanometres (double).  All time quantities are
// in picoseconds (double).  Capacitance is in femtofarads.  Exposure dose
// and source coordinates are dimensionless.  Keeping one unit per physical
// dimension (rather than templated unit types) matches common EDA practice
// (LEF/DEF databases, Liberty tables) while the aliases below keep
// signatures self-documenting.

namespace sva {

/// Length in nanometres.
using Nm = double;
/// Time in picoseconds.
using Ps = double;
/// Capacitance in femtofarads.
using Ff = double;
/// Dimensionless quantity (dose, sigma, ratios).
using Unitless = double;

namespace units {

inline constexpr Nm kMicron = 1000.0;        ///< 1 um in nm
inline constexpr Ps kNanosecond = 1000.0;    ///< 1 ns in ps

/// Convert picoseconds to nanoseconds (for paper-style table output).
constexpr double ps_to_ns(Ps ps) { return ps / kNanosecond; }
/// Convert nanometres to microns.
constexpr double nm_to_um(Nm nm) { return nm / kMicron; }

}  // namespace units
}  // namespace sva
