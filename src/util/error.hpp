#pragma once
// Error handling for the SVA-timing system.
//
// Following the C++ Core Guidelines (E.2, I.6) we throw exceptions for
// errors that violate function preconditions or invariants discovered at
// run time.  SVA_REQUIRE is used at public API boundaries; internal
// invariants use SVA_ASSERT (also active in release builds -- EDA bugs that
// silently corrupt timing data are far more expensive than the check).

#include <stdexcept>
#include <string>

namespace sva {

/// Base class of all exceptions thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Violated precondition of a public API function.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// Violated internal invariant (a bug in this library).
class InvariantError : public Error {
 public:
  explicit InvariantError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  throw PreconditionError(std::string(file) + ":" + std::to_string(line) +
                          ": requirement failed: " + expr +
                          (msg.empty() ? "" : " (" + msg + ")"));
}
[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  throw InvariantError(std::string(file) + ":" + std::to_string(line) +
                       ": invariant failed: " + expr +
                       (msg.empty() ? "" : " (" + msg + ")"));
}
}  // namespace detail
}  // namespace sva

/// Check a precondition of a public API function; throws PreconditionError.
#define SVA_REQUIRE(expr)                                                  \
  do {                                                                     \
    if (!(expr))                                                           \
      ::sva::detail::throw_precondition(#expr, __FILE__, __LINE__, "");    \
  } while (false)

/// Check a precondition with an explanatory message.
#define SVA_REQUIRE_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr))                                                           \
      ::sva::detail::throw_precondition(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Check an internal invariant; throws InvariantError.
#define SVA_ASSERT(expr)                                                   \
  do {                                                                     \
    if (!(expr))                                                           \
      ::sva::detail::throw_invariant(#expr, __FILE__, __LINE__, "");       \
  } while (false)

/// Check an internal invariant with an explanatory message.
#define SVA_ASSERT_MSG(expr, msg)                                          \
  do {                                                                     \
    if (!(expr))                                                           \
      ::sva::detail::throw_invariant(#expr, __FILE__, __LINE__, (msg));    \
  } while (false)
