#pragma once
// Lightweight engine observability: named monotonic counters and wall-time
// accumulators with lock-free increments.
//
// The registry hands out stable references (creation takes a lock, updates
// are relaxed atomics), so hot paths -- pool workers, the STA inner loop,
// the context cache -- pay one atomic add per event.  snapshot()/render()
// give the CLI and benches a consistent view; reset() zeroes values between
// batch runs without invalidating held references.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sva {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Accumulated wall time (nanoseconds internally) plus sample count.
class TimerStat {
 public:
  void add_seconds(double s) {
    nanos_.fetch_add(static_cast<std::uint64_t>(s * 1e9),
                     std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  double seconds() const {
    return static_cast<double>(nanos_.load(std::memory_order_relaxed)) * 1e-9;
  }
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  void reset() {
    nanos_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> nanos_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// One row of a metrics snapshot.
struct MetricSample {
  std::string name;
  std::uint64_t count = 0;
  double seconds = 0.0;   ///< 0 for plain counters
  bool is_timer = false;
};

class MetricsRegistry {
 public:
  /// Process-wide registry (pools, caches, and the batch runner all report
  /// here unless handed a private registry).
  static MetricsRegistry& global();

  /// Look up or create; the returned reference stays valid for the
  /// registry's lifetime.
  Counter& counter(const std::string& name);
  TimerStat& timer(const std::string& name);

  std::vector<MetricSample> snapshot() const;
  /// Aligned "name  value" listing, sorted by name; empty string when no
  /// metric has fired yet.
  std::string render() const;
  /// Machine-readable snapshot:
  ///   {"counters":{"name":N,...},"timers":{"name":{"seconds":S,"count":N}}}
  /// (stable key order -- the registry iterates sorted names), so daemon
  /// metrics are scrapeable via --metrics-json and the server's
  /// `metrics` request.
  std::string render_json() const;
  /// Zero every value; held Counter/TimerStat references stay valid.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<TimerStat>> timers_;
};

/// RAII wall-time sample into a TimerStat.
class ScopedTimer {
 public:
  explicit ScopedTimer(TimerStat& stat)
      : stat_(&stat), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    stat_->add_seconds(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_)
                           .count());
  }

 private:
  TimerStat* stat_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sva
