#pragma once
// Lightweight engine observability: named monotonic counters and wall-time
// accumulators with lock-free increments.
//
// The registry hands out stable references (creation takes a lock, updates
// are relaxed atomics), so hot paths -- pool workers, the STA inner loop,
// the context cache -- pay one atomic add per event.  snapshot()/render()
// give the CLI and benches a consistent view; reset() zeroes values between
// batch runs without invalidating held references.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sva {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Counters are normally monotone; sub() exists for the few that act
  /// as gauges (e.g. server.conn.active, decremented on close).  Callers
  /// must pair sub() with an earlier add() so the value never wraps.
  void sub(std::uint64_t n = 1) {
    value_.fetch_sub(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Accumulated wall time (nanoseconds internally) plus sample count.
class TimerStat {
 public:
  void add_seconds(double s) {
    nanos_.fetch_add(static_cast<std::uint64_t>(s * 1e9),
                     std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  double seconds() const {
    return static_cast<double>(nanos_.load(std::memory_order_relaxed)) * 1e-9;
  }
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  void reset() {
    nanos_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> nanos_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// Bounded log2-bucket histogram for millisecond-scale durations.
///
/// Bucket 0 holds value 0, bucket i (1 <= i <= kBuckets-2) holds
/// [2^(i-1), 2^i), and the last bucket absorbs everything at or above
/// 2^(kBuckets-2) -- a fixed-footprint distribution (no allocation, one
/// relaxed atomic add per sample) that is cheap enough for the daemon's
/// per-job wait/run latencies.
class LogHistogram {
 public:
  static constexpr std::size_t kBuckets = 20;

  void add(std::uint64_t value) {
    buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t total() const {
    std::uint64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }
  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

  /// Which bucket a value lands in (exposed for tests).
  static std::size_t bucket_of(std::uint64_t value) {
    if (value == 0) return 0;
    std::size_t b = 1;
    while (value > 1 && b + 1 < kBuckets) {
      value >>= 1;
      ++b;
    }
    return b;
  }
  /// Inclusive lower bound of bucket i (0, 1, 2, 4, 8, ...).
  static std::uint64_t bucket_floor(std::size_t i) {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// One row of a metrics snapshot.
struct MetricSample {
  std::string name;
  std::uint64_t count = 0;
  double seconds = 0.0;   ///< 0 for plain counters
  bool is_timer = false;
};

class MetricsRegistry {
 public:
  /// Process-wide registry (pools, caches, and the batch runner all report
  /// here unless handed a private registry).
  static MetricsRegistry& global();

  /// Look up or create; the returned reference stays valid for the
  /// registry's lifetime.
  Counter& counter(const std::string& name);
  TimerStat& timer(const std::string& name);
  LogHistogram& histogram(const std::string& name);

  std::vector<MetricSample> snapshot() const;
  /// Name + bucket counts of every registered histogram, sorted by name.
  struct HistogramSample {
    std::string name;
    std::uint64_t total = 0;
    std::array<std::uint64_t, LogHistogram::kBuckets> buckets{};
  };
  std::vector<HistogramSample> snapshot_histograms() const;
  /// Aligned "name  value" listing, sorted by name; empty string when no
  /// metric has fired yet.
  std::string render() const;
  /// Machine-readable snapshot:
  ///   {"counters":{"name":N,...},
  ///    "histograms":{"name":{"total":N,"buckets":[...]},...},
  ///    "timers":{"name":{"seconds":S,"count":N}}}
  /// Key order is stable: the three sections appear alphabetically and
  /// the registry iterates sorted names within each, so daemon metrics
  /// are scrapeable (and diffable) via --metrics-json and the server's
  /// `metrics` request.
  std::string render_json() const;
  /// Zero every value; held Counter/TimerStat references stay valid.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<TimerStat>> timers_;
  std::map<std::string, std::unique_ptr<LogHistogram>> histograms_;
};

/// RAII wall-time sample into a TimerStat.
class ScopedTimer {
 public:
  explicit ScopedTimer(TimerStat& stat)
      : stat_(&stat), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    stat_->add_seconds(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_)
                           .count());
  }

 private:
  TimerStat* stat_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sva
