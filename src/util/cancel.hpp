#pragma once
// Cooperative cancellation and wall-clock deadlines for long runs.
//
// A CancelToken is a shared flag that long loops poll at iteration
// granularity: the batch runner between jobs, the ECO optimizer between
// commit iterations, parallel_for between chunks, the levelized STA
// between levels.  Nothing is ever interrupted mid-computation -- a
// cancelled operation finishes (or discards) the unit it is on and stops
// at the next poll site, which is what makes checkpointed state always a
// prefix of an uninterrupted run.
//
// Two poll tiers keep the hot paths free:
//   cancelled()  one relaxed atomic load -- safe anywhere, any frequency;
//   poll()       cancelled() plus the deadline comparison; expiry trips
//                the flag, so after the first expired poll every
//                subsequent cancelled() sees it too.
//
// Signals: install_cancel_signal_handlers() routes SIGINT/SIGTERM into
// global_cancel_token() with an async-signal-safe handler (two lock-free
// atomic stores, nothing else).  The CLI installs it once at startup; the
// run then winds down cooperatively and exits with the documented
// "cancelled" exit code after writing its checkpoint.

#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/error.hpp"

namespace sva {

/// Raised at a poll site once the token is tripped.  Deliberately NOT an
/// sva::Error subclass: cancellation is not a fault, and the graceful-
/// degradation handlers (batch job isolation, cache cold-start fallbacks)
/// must never swallow it as one.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Why a token tripped; the first request wins and is sticky.
enum class CancelReason : int {
  None = 0,
  Api = 1,
  Signal = 2,
  Deadline = 3,
  /// The server watchdog declared the job stuck (no heartbeat progress).
  Watchdog = 4,
};

const char* cancel_reason_name(CancelReason reason);

/// A wall-clock deadline (monotonic clock, so a system-time step can
/// neither extend nor shorten a run).  Value type; cheap to copy.
class Deadline {
 public:
  /// No deadline: never expires.
  Deadline() = default;

  static Deadline after_seconds(double seconds);

  bool valid() const { return valid_; }
  bool expired() const {
    return valid_ && std::chrono::steady_clock::now() >= at_;
  }
  /// Seconds until expiry (negative once past); +inf when not valid().
  double remaining_seconds() const;

 private:
  std::chrono::steady_clock::time_point at_{};
  bool valid_ = false;
};

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Hot-path check: one relaxed load, no clock read.  True once the
  /// token tripped (request_cancel or an expired deadline seen by poll).
  bool cancelled() const {
    return tripped_.load(std::memory_order_relaxed);
  }

  /// Iteration-granularity check: cancelled() plus the deadline
  /// comparison.  An expired deadline trips the flag, so the transition
  /// is observed exactly once and is sticky.
  bool poll() const;

  /// poll(), throwing CancelledError when tripped.  The message names the
  /// reason ("cancelled by signal", "deadline exceeded", ...).
  void check() const;

  /// Trip the token.  First caller's reason sticks.  Async-signal-safe
  /// when called with CancelReason::Signal (lock-free atomic stores only).
  void request_cancel(CancelReason reason = CancelReason::Api,
                      int signal_number = 0) const;

  /// Arm (or replace) the wall-clock deadline.  Not thread-safe against
  /// concurrent poll() -- arm before handing the token to workers.
  void set_deadline(const Deadline& deadline) { deadline_ = deadline; }
  const Deadline& deadline() const { return deadline_; }

  /// Liveness hook for the server watchdog: while set, every poll()
  /// increments `beat` (relaxed), so a watchdog distinguishes "long but
  /// cooperative" from "stuck between poll sites".  cancelled() stays one
  /// relaxed load and never beats.  Arm before handing the token to
  /// workers, like set_deadline.
  void set_heartbeat(std::atomic<std::uint64_t>* beat) { heartbeat_ = beat; }

  CancelReason reason() const {
    return static_cast<CancelReason>(reason_.load(std::memory_order_acquire));
  }
  /// Signal number behind a CancelReason::Signal trip (0 otherwise).
  int signal_number() const {
    return signo_.load(std::memory_order_acquire);
  }

  /// Re-arm for another run (tests; the CLI never resets).
  void reset();

 private:
  mutable std::atomic<bool> tripped_{false};
  mutable std::atomic<int> reason_{0};
  mutable std::atomic<int> signo_{0};
  Deadline deadline_;
  std::atomic<std::uint64_t>* heartbeat_ = nullptr;
};

/// The process-wide token the CLI threads through every command.
CancelToken& global_cancel_token();

/// Route SIGINT and SIGTERM into global_cancel_token().  Idempotent.  The
/// handler performs only lock-free atomic stores; a second signal while
/// the first is still winding down is absorbed by the sticky flag (send
/// SIGKILL to force an immediate kill).
void install_cancel_signal_handlers();

}  // namespace sva
