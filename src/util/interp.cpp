#include "util/interp.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace sva {
namespace interp {

std::size_t segment_index(const std::vector<double>& axis, double x) {
  SVA_REQUIRE(axis.size() >= 2);
  // upper_bound-1 gives the segment whose start is <= x; clamp into range.
  const auto it = std::upper_bound(axis.begin(), axis.end(), x);
  const auto raw = static_cast<std::ptrdiff_t>(it - axis.begin()) - 1;
  const auto max_seg = static_cast<std::ptrdiff_t>(axis.size()) - 2;
  return static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(raw, 0, max_seg));
}

double lerp(double x0, double y0, double x1, double y1, double x) {
  SVA_REQUIRE(x1 != x0);
  const double t = (x - x0) / (x1 - x0);
  return y0 + t * (y1 - y0);
}

}  // namespace interp

namespace {

void check_axis(const std::vector<double>& axis) {
  SVA_REQUIRE_MSG(!axis.empty(), "axis must be non-empty");
  for (std::size_t i = 1; i < axis.size(); ++i)
    SVA_REQUIRE_MSG(axis[i] > axis[i - 1], "axis must be strictly increasing");
}

}  // namespace

LookupTable1D::LookupTable1D(std::vector<double> axis,
                             std::vector<double> values)
    : axis_(std::move(axis)), values_(std::move(values)) {
  check_axis(axis_);
  SVA_REQUIRE(axis_.size() == values_.size());
}

double LookupTable1D::at(double x) const {
  SVA_REQUIRE_MSG(!axis_.empty(), "lookup on empty table");
  if (axis_.size() == 1) return values_[0];
  const std::size_t i = interp::segment_index(axis_, x);
  return interp::lerp(axis_[i], values_[i], axis_[i + 1], values_[i + 1], x);
}

double LookupTable1D::slope_at(double x) const {
  SVA_REQUIRE_MSG(!axis_.empty(), "lookup on empty table");
  if (axis_.size() == 1) return 0.0;
  const std::size_t i = interp::segment_index(axis_, x);
  return (values_[i + 1] - values_[i]) / (axis_[i + 1] - axis_[i]);
}

double LookupTable1D::min_value() const {
  SVA_REQUIRE(!values_.empty());
  return *std::min_element(values_.begin(), values_.end());
}

double LookupTable1D::max_value() const {
  SVA_REQUIRE(!values_.empty());
  return *std::max_element(values_.begin(), values_.end());
}

LookupTable2D::LookupTable2D(std::vector<double> x_axis,
                             std::vector<double> y_axis,
                             std::vector<double> values)
    : x_axis_(std::move(x_axis)),
      y_axis_(std::move(y_axis)),
      values_(std::move(values)) {
  check_axis(x_axis_);
  check_axis(y_axis_);
  SVA_REQUIRE(values_.size() == x_axis_.size() * y_axis_.size());
}

double LookupTable2D::value_at(std::size_t ix, std::size_t iy) const {
  SVA_REQUIRE(ix < nx() && iy < ny());
  return values_[ix * ny() + iy];
}

double LookupTable2D::at(double x, double y) const {
  SVA_REQUIRE_MSG(!values_.empty(), "lookup on empty table");
  if (nx() == 1 && ny() == 1) return values_[0];
  if (nx() == 1) {
    const std::size_t j = interp::segment_index(y_axis_, y);
    return interp::lerp(y_axis_[j], value_at(0, j), y_axis_[j + 1],
                        value_at(0, j + 1), y);
  }
  if (ny() == 1) {
    const std::size_t i = interp::segment_index(x_axis_, x);
    return interp::lerp(x_axis_[i], value_at(i, 0), x_axis_[i + 1],
                        value_at(i + 1, 0), x);
  }
  const std::size_t i = interp::segment_index(x_axis_, x);
  const std::size_t j = interp::segment_index(y_axis_, y);
  const double lo = interp::lerp(y_axis_[j], value_at(i, j), y_axis_[j + 1],
                                 value_at(i, j + 1), y);
  const double hi = interp::lerp(y_axis_[j], value_at(i + 1, j),
                                 y_axis_[j + 1], value_at(i + 1, j + 1), y);
  return interp::lerp(x_axis_[i], lo, x_axis_[i + 1], hi, x);
}

}  // namespace sva
