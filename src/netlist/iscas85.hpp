#pragma once
// ISCAS85-like benchmark circuits.
//
// The paper synthesizes the ISCAS85 benchmarks with the 10 most-used cells
// of a 90 nm library.  The original netlists and the commercial synthesis
// flow are not available offline, so we generate deterministic circuits
// that reproduce each benchmark's published interface and size -- primary
// input/output counts and gate count -- with realistic logic depth, fanout
// distribution, and cell mix (see DESIGN.md substitution table).  Every
// statistic the paper reports (CD-error distributions, corner path delays,
// OPC runtimes) depends on these aggregates, not on the exact boolean
// functions.

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace sva {

/// Published interface/size of one ISCAS85 benchmark.
struct BenchmarkSpec {
  std::string name;
  std::size_t primary_inputs = 0;
  std::size_t primary_outputs = 0;
  std::size_t gate_count = 0;
};

/// All ten ISCAS85 benchmarks with their published statistics.
const std::vector<BenchmarkSpec>& iscas85_specs();

/// Spec by (case-insensitive) name, e.g. "C432"; throws if unknown.
const BenchmarkSpec& iscas85_spec(const std::string& name);

/// Generate the ISCAS85-like circuit for a spec, mapped onto `library`.
/// Deterministic: the same (spec, library) always yields the same netlist.
Netlist generate_iscas85_like(const BenchmarkSpec& spec,
                              const CellLibrary& library);

/// Convenience: generate by benchmark name.
Netlist generate_iscas85_like(const std::string& name,
                              const CellLibrary& library);

}  // namespace sva
