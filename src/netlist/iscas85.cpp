#include "netlist/iscas85.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace sva {
namespace {

/// Cell-mix weights, indexed like build_standard_library() masters:
/// INV_X1, INV_X2, BUF_X1, NAND2_X1, NAND3_X1, NOR2_X1, NOR3_X1,
/// AOI21_X1, OAI21_X1, XOR2_X1.  Roughly the mix a 2-input-NAND-heavy
/// technology mapper produces.
const std::vector<double> kCellMix = {0.16, 0.04, 0.04, 0.24, 0.10,
                                      0.12, 0.06, 0.08, 0.08, 0.08};

}  // namespace

const std::vector<BenchmarkSpec>& iscas85_specs() {
  static const std::vector<BenchmarkSpec> specs = {
      {"C432", 36, 7, 160},    {"C499", 41, 32, 202},
      {"C880", 60, 26, 383},   {"C1355", 41, 32, 546},
      {"C1908", 33, 25, 880},  {"C2670", 233, 140, 1193},
      {"C3540", 50, 22, 1669}, {"C5315", 178, 123, 2307},
      {"C6288", 32, 32, 2406}, {"C7552", 207, 108, 3512},
  };
  return specs;
}

const BenchmarkSpec& iscas85_spec(const std::string& name) {
  std::string upper = name;
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  for (const auto& s : iscas85_specs())
    if (s.name == upper) return s;
  throw PreconditionError("unknown ISCAS85 benchmark: " + name);
}

Netlist generate_iscas85_like(const BenchmarkSpec& spec,
                              const CellLibrary& library) {
  SVA_REQUIRE(spec.primary_inputs > 0);
  SVA_REQUIRE(spec.primary_outputs > 0);
  SVA_REQUIRE(spec.gate_count > 0);

  Rng rng(spec.name);  // deterministic per-benchmark stream
  Netlist netlist(library, spec.name);

  // --- Level plan: depth grows slowly with size (ISCAS85 depths are
  // roughly 17..47 for 160..3500 gates); gate counts per level follow a
  // raised-cosine profile (wide middle, narrow ends).
  const std::size_t depth = static_cast<std::size_t>(std::clamp(
      8.0 + 5.5 * std::log2(static_cast<double>(spec.gate_count) / 32.0),
      10.0, 48.0));
  std::vector<double> profile(depth);
  for (std::size_t l = 0; l < depth; ++l) {
    const double t = (static_cast<double>(l) + 0.5) /
                     static_cast<double>(depth);
    profile[l] = 0.35 + std::sin(t * 3.14159265358979);
  }
  double profile_sum = 0.0;
  for (double p : profile) profile_sum += p;
  std::vector<std::size_t> per_level(depth, 0);
  std::size_t assigned = 0;
  for (std::size_t l = 0; l < depth; ++l) {
    per_level[l] = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::floor(
               static_cast<double>(spec.gate_count) * profile[l] /
               profile_sum)));
    assigned += per_level[l];
  }
  // Distribute the rounding remainder over the widest levels.
  while (assigned < spec.gate_count) {
    const std::size_t l = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(depth) - 1));
    ++per_level[l];
    ++assigned;
  }
  while (assigned > spec.gate_count) {
    const std::size_t l = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(depth) - 1));
    if (per_level[l] > 1) {
      --per_level[l];
      --assigned;
    }
  }

  // --- Primary inputs.
  std::vector<std::size_t> pi_nets;
  pi_nets.reserve(spec.primary_inputs);
  for (std::size_t i = 0; i < spec.primary_inputs; ++i)
    pi_nets.push_back(
        netlist.add_primary_input("pi" + std::to_string(i)));

  // Candidate fanin pool per level: nets produced at that level
  // (level 0 = PIs).  Locality: a fanin comes from one of the previous
  // few levels with geometrically decaying probability, which yields
  // ISCAS-like shallow reconvergence rather than global spaghetti.
  std::vector<std::vector<std::size_t>> level_nets(depth + 1);
  level_nets[0] = pi_nets;

  // Track nets not yet used as a fanin so we can prefer them and keep the
  // number of dangling outputs near zero.
  std::vector<std::size_t> fanout_count(netlist.nets().size(), 0);

  std::size_t gate_id = 0;
  for (std::size_t l = 1; l <= depth; ++l) {
    const std::size_t count = per_level[l - 1];
    for (std::size_t k = 0; k < count; ++k) {
      const std::size_t cell = rng.weighted_index(kCellMix);
      const std::size_t n_inputs = netlist.input_pins_of(cell).size();
      std::vector<std::size_t> fanins;
      fanins.reserve(n_inputs);
      for (std::size_t f = 0; f < n_inputs; ++f) {
        // Pick the source level: previous level with p=0.6, then decay.
        std::size_t src_level = l - 1;
        while (src_level > 0 && rng.bernoulli(0.4)) --src_level;
        const auto& pool = level_nets[src_level].empty()
                               ? level_nets[0]
                               : level_nets[src_level];
        // Prefer a not-yet-consumed net from the pool (two tries), else
        // uniform.
        std::size_t net = pool[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(pool.size()) - 1))];
        if (fanout_count[net] > 0) {
          const std::size_t retry =
              pool[static_cast<std::size_t>(rng.uniform_int(
                  0, static_cast<std::int64_t>(pool.size()) - 1))];
          if (fanout_count[retry] == 0) net = retry;
        }
        // Avoid duplicate fanins on one gate when possible.
        if (std::find(fanins.begin(), fanins.end(), net) != fanins.end() &&
            pool.size() > 1) {
          net = pool[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(pool.size()) - 1))];
        }
        fanins.push_back(net);
        ++fanout_count[net];
      }
      const std::size_t out = netlist.add_gate(
          "g" + std::to_string(gate_id++), cell, fanins);
      fanout_count.resize(netlist.nets().size(), 0);
      level_nets[l].push_back(out);
    }
  }

  // --- Primary outputs: prefer deep, unconsumed nets.
  std::vector<std::size_t> candidates;
  for (std::size_t l = depth + 1; l-- > 1;)
    for (std::size_t net : level_nets[l])
      if (fanout_count[net] == 0) candidates.push_back(net);
  std::size_t po_marked = 0;
  for (std::size_t net : candidates) {
    if (po_marked == spec.primary_outputs) break;
    netlist.mark_primary_output(net);
    ++po_marked;
  }
  // Not enough dangling nets: take the deepest driven nets as well.
  for (std::size_t l = depth + 1; l-- > 1 && po_marked < spec.primary_outputs;)
    for (std::size_t net : level_nets[l]) {
      if (po_marked == spec.primary_outputs) break;
      if (!netlist.nets()[net].is_primary_output) {
        netlist.mark_primary_output(net);
        ++po_marked;
      }
    }
  SVA_ASSERT(po_marked == spec.primary_outputs);

  netlist.validate();
  return netlist;
}

Netlist generate_iscas85_like(const std::string& name,
                              const CellLibrary& library) {
  return generate_iscas85_like(iscas85_spec(name), library);
}

}  // namespace sva
