#include "netlist/netlist.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace sva {

Netlist::Netlist(const CellLibrary& library, std::string name)
    : library_(&library), name_(std::move(name)) {}

std::size_t Netlist::add_primary_input(const std::string& name) {
  SVA_REQUIRE_MSG(topo_cache_.empty(),
                  "netlist is frozen after topological_order()");
  Net net;
  net.name = name;
  nets_.push_back(std::move(net));
  return nets_.size() - 1;
}

std::vector<std::string> Netlist::input_pins_of(std::size_t cell_index) const {
  const CellMaster& master = library_->master(cell_index);
  std::vector<std::string> pins;
  for (const Pin& p : master.pins())
    if (!p.is_output) pins.push_back(p.name);
  return pins;
}

std::size_t Netlist::add_gate(const std::string& name, std::size_t cell_index,
                              const std::vector<std::size_t>& fanins) {
  SVA_REQUIRE_MSG(topo_cache_.empty(),
                  "netlist is frozen after topological_order()");
  SVA_REQUIRE(cell_index < library_->size());
  const auto input_pins = input_pins_of(cell_index);
  SVA_REQUIRE_MSG(fanins.size() == input_pins.size(),
                  "fanin count must equal the master's input pin count");
  for (std::size_t n : fanins) SVA_REQUIRE(n < nets_.size());

  const std::size_t gate_index = gates_.size();
  Net out;
  out.name = name + "_out";
  out.driver_gate = gate_index;
  nets_.push_back(std::move(out));
  const std::size_t out_net = nets_.size() - 1;

  GateInst gate;
  gate.name = name;
  gate.cell_index = cell_index;
  gate.fanin_nets = fanins;
  gate.output_net = out_net;
  gates_.push_back(std::move(gate));

  for (std::size_t pin = 0; pin < fanins.size(); ++pin)
    nets_[fanins[pin]].sinks.push_back({gate_index, pin});
  return out_net;
}

void Netlist::set_gate_cell(std::size_t gate, std::size_t cell_index) {
  SVA_REQUIRE(gate < gates_.size());
  SVA_REQUIRE(cell_index < library_->size());
  SVA_REQUIRE_MSG(
      input_pins_of(cell_index) == input_pins_of(gates_[gate].cell_index),
      "replacement master must have identical input pins");
  gates_[gate].cell_index = cell_index;
}

void Netlist::mark_primary_output(std::size_t net) {
  SVA_REQUIRE(net < nets_.size());
  nets_[net].is_primary_output = true;
}

std::size_t Netlist::primary_input_count() const {
  std::size_t n = 0;
  for (const Net& net : nets_)
    if (net.is_primary_input()) ++n;
  return n;
}

std::size_t Netlist::primary_output_count() const {
  std::size_t n = 0;
  for (const Net& net : nets_)
    if (net.is_primary_output) ++n;
  return n;
}

const std::vector<std::size_t>& Netlist::topological_order() const {
  if (!topo_cache_.empty() || gates_.empty()) return topo_cache_;
  // Kahn's algorithm over gate->gate dependencies.
  std::vector<std::size_t> pending(gates_.size(), 0);
  for (std::size_t gi = 0; gi < gates_.size(); ++gi)
    for (std::size_t net : gates_[gi].fanin_nets)
      if (!nets_[net].is_primary_input()) ++pending[gi];

  std::vector<std::size_t> ready;
  for (std::size_t gi = 0; gi < gates_.size(); ++gi)
    if (pending[gi] == 0) ready.push_back(gi);

  topo_cache_.reserve(gates_.size());
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const std::size_t gi = ready[head];
    topo_cache_.push_back(gi);
    for (const NetSink& sink : nets_[gates_[gi].output_net].sinks)
      if (--pending[sink.gate] == 0) ready.push_back(sink.gate);
  }
  SVA_ASSERT_MSG(topo_cache_.size() == gates_.size(),
                 "netlist contains a combinational cycle");
  return topo_cache_;
}

std::vector<std::size_t> Netlist::gate_levels() const {
  std::vector<std::size_t> level(gates_.size(), 0);
  for (std::size_t gi : topological_order()) {
    std::size_t lvl = 0;
    for (std::size_t net : gates_[gi].fanin_nets) {
      if (nets_[net].is_primary_input()) continue;
      lvl = std::max(lvl, level[nets_[net].driver_gate] + 1);
    }
    level[gi] = lvl;
  }
  return level;
}

void Netlist::validate() const {
  for (const GateInst& g : gates_) {
    SVA_REQUIRE(g.cell_index < library_->size());
    SVA_REQUIRE(g.output_net < nets_.size());
    SVA_REQUIRE(input_pins_of(g.cell_index).size() == g.fanin_nets.size());
    for (std::size_t n : g.fanin_nets) SVA_REQUIRE(n < nets_.size());
  }
  for (std::size_t ni = 0; ni < nets_.size(); ++ni) {
    const Net& net = nets_[ni];
    if (!net.is_primary_input()) {
      SVA_REQUIRE(net.driver_gate < gates_.size());
      SVA_REQUIRE(gates_[net.driver_gate].output_net == ni);
    }
    for (const NetSink& s : net.sinks) {
      SVA_REQUIRE(s.gate < gates_.size());
      SVA_REQUIRE(gates_[s.gate].fanin_nets.at(s.pin_index) == ni);
    }
  }
  topological_order();  // throws on cycles
}

}  // namespace sva
