#pragma once
// Technology mapping of simple boolean networks onto the cell library.
//
// The paper "synthesize[s] ISCAS85 benchmark circuits with the 10 cells";
// this module provides the equivalent entry point for user designs: a
// small boolean-network IR (AND/OR/NAND/NOR/NOT/XOR/BUF of arbitrary
// arity) and a structural mapper that decomposes it onto the library
// masters (NAND2/NAND3/NOR2/NOR3/INV/...).  No logic optimization is
// attempted -- mapping is structural, as Table 1/2 experiments only need
// realistic cell mixes and connectivity.

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace sva {

enum class BoolOp { Input, Not, Buf, And, Or, Nand, Nor, Xor };

/// One node of the boolean network; nodes reference earlier nodes only.
struct BoolNode {
  std::string name;
  BoolOp op = BoolOp::Input;
  std::vector<std::size_t> fanins;
};

/// A boolean network: nodes in topological order plus output markers.
class BoolNetwork {
 public:
  /// Add a primary input; returns node id.
  std::size_t add_input(const std::string& name);
  /// Add an operator node over existing nodes; returns node id.
  std::size_t add_op(const std::string& name, BoolOp op,
                     std::vector<std::size_t> fanins);
  void mark_output(std::size_t node);

  const std::vector<BoolNode>& nodes() const { return nodes_; }
  const std::vector<std::size_t>& outputs() const { return outputs_; }

  /// Validate arities (Not/Buf exactly 1 fanin, others >= 2) and
  /// topological referencing.
  void validate() const;

 private:
  std::vector<BoolNode> nodes_;
  std::vector<std::size_t> outputs_;
};

/// Map a boolean network onto the library.  Wide AND/OR/NAND/NOR are
/// decomposed into 2/3-input trees; XOR of arity > 2 into XOR2 trees;
/// AND = NAND + INV, OR = NOR + INV.
Netlist map_to_library(const BoolNetwork& network,
                       const CellLibrary& library,
                       const std::string& design_name);

}  // namespace sva
