#include "netlist/bench_format.hpp"

#include <algorithm>
#include <functional>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>

#include "util/error.hpp"

namespace sva {
namespace {

struct ParsedGate {
  std::string output;
  std::string op;
  std::vector<std::string> inputs;
  std::size_t line_number = 0;
};

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw Error(".bench line " + std::to_string(line) + ": " + message);
}

std::string strip(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

BoolOp op_from_name(const std::string& name, std::size_t arity,
                    std::size_t line) {
  const std::string u = upper(name);
  if (u == "DFF" || u == "DFFSR" || u == "LATCH")
    fail(line, "sequential element '" + name +
                   "' not supported (combinational flow)");
  if (u == "NOT" || u == "INV") {
    if (arity != 1) fail(line, "NOT takes exactly one input");
    return BoolOp::Not;
  }
  if (u == "BUF" || u == "BUFF") {
    if (arity != 1) fail(line, "BUF takes exactly one input");
    return BoolOp::Buf;
  }
  if (arity < 2) fail(line, name + " needs at least two inputs");
  if (u == "AND") return BoolOp::And;
  if (u == "OR") return BoolOp::Or;
  if (u == "NAND") return BoolOp::Nand;
  if (u == "NOR") return BoolOp::Nor;
  if (u == "XOR") return BoolOp::Xor;
  if (u == "XNOR") return BoolOp::Xor;  // handled by caller (adds NOT)
  fail(line, "unknown gate type '" + name + "'");
}

}  // namespace

BoolNetwork parse_bench(const std::string& text) {
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::vector<ParsedGate> gates;

  std::istringstream stream(text);
  std::string raw;
  std::size_t line_number = 0;
  while (std::getline(stream, raw)) {
    ++line_number;
    // Strip comments and whitespace.
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw = raw.substr(0, hash);
    const std::string line = strip(raw);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      // INPUT(x) or OUTPUT(x).
      const std::size_t open = line.find('(');
      const std::size_t close = line.rfind(')');
      if (open == std::string::npos || close == std::string::npos ||
          close < open)
        fail(line_number, "expected INPUT(name) or OUTPUT(name)");
      const std::string kind = upper(strip(line.substr(0, open)));
      const std::string name =
          strip(line.substr(open + 1, close - open - 1));
      if (name.empty()) fail(line_number, "empty signal name");
      if (kind == "INPUT")
        input_names.push_back(name);
      else if (kind == "OUTPUT")
        output_names.push_back(name);
      else
        fail(line_number, "unknown declaration '" + kind + "'");
      continue;
    }

    // out = OP(a, b, ...)
    ParsedGate gate;
    gate.line_number = line_number;
    gate.output = strip(line.substr(0, eq));
    const std::string rhs = strip(line.substr(eq + 1));
    const std::size_t open = rhs.find('(');
    const std::size_t close = rhs.rfind(')');
    if (gate.output.empty() || open == std::string::npos ||
        close == std::string::npos || close < open)
      fail(line_number, "expected 'out = OP(in, ...)'");
    gate.op = strip(rhs.substr(0, open));
    std::string args = rhs.substr(open + 1, close - open - 1);
    std::istringstream arg_stream(args);
    std::string arg;
    while (std::getline(arg_stream, arg, ',')) {
      const std::string a = strip(arg);
      if (a.empty()) fail(line_number, "empty operand");
      gate.inputs.push_back(a);
    }
    if (gate.inputs.empty()) fail(line_number, "gate with no inputs");
    gates.push_back(std::move(gate));
  }

  if (input_names.empty()) throw Error(".bench: no INPUT declarations");
  if (output_names.empty()) throw Error(".bench: no OUTPUT declarations");

  // Build the network in dependency order (gates may be listed in any
  // order in .bench files).
  BoolNetwork network;
  std::map<std::string, std::size_t> node_of;
  for (const std::string& name : input_names) {
    if (node_of.count(name))
      throw Error(".bench: duplicate INPUT '" + name + "'");
    node_of[name] = network.add_input(name);
  }
  std::map<std::string, const ParsedGate*> gate_of;
  for (const ParsedGate& g : gates) {
    if (gate_of.count(g.output) || node_of.count(g.output))
      fail(g.line_number, "signal '" + g.output + "' driven twice");
    gate_of[g.output] = &g;
  }

  // Iterative DFS to resolve dependencies without deep recursion.
  std::function<std::size_t(const std::string&, std::size_t)> resolve =
      [&](const std::string& name, std::size_t from_line) -> std::size_t {
    const auto found = node_of.find(name);
    if (found != node_of.end()) return found->second;
    const auto gate_it = gate_of.find(name);
    if (gate_it == gate_of.end())
      fail(from_line, "undefined signal '" + name + "'");
    const ParsedGate& g = *gate_it->second;
    // Cycle guard: temporarily mark as in-progress.
    static constexpr std::size_t kInProgress = static_cast<std::size_t>(-2);
    node_of[name] = kInProgress;
    std::vector<std::size_t> fanins;
    for (const std::string& in : g.inputs) {
      const auto it = node_of.find(in);
      if (it != node_of.end() && it->second == kInProgress)
        fail(g.line_number, "combinational cycle through '" + in + "'");
      fanins.push_back(resolve(in, g.line_number));
    }
    const BoolOp op = op_from_name(g.op, g.inputs.size(), g.line_number);
    std::size_t node = network.add_op(name, op, std::move(fanins));
    if (upper(g.op) == "XNOR")
      node = network.add_op(name + "_n", BoolOp::Not, {node});
    node_of[name] = node;
    return node;
  };

  for (const std::string& out : output_names) {
    const std::size_t node = resolve(out, 0);
    network.mark_output(node);
  }
  network.validate();
  return network;
}

Netlist load_bench(const std::string& text, const CellLibrary& library,
                   const std::string& design_name) {
  return map_to_library(parse_bench(text), library, design_name);
}

Netlist load_bench_file(const std::string& path, const CellLibrary& library,
                        const std::string& design_name) {
  std::ifstream is(path);
  if (!is) throw Error("cannot open .bench file: " + path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return load_bench(buffer.str(), library, design_name);
}

}  // namespace sva
