#pragma once
// Gate-level netlist mapped onto the standard-cell library.
//
// Combinational only: the ISCAS85 benchmarks the paper evaluates are
// combinational circuits timed from primary inputs to primary outputs.
// Nets have a single driver (a gate output or a primary input) and any
// number of sinks (gate input pins or primary outputs).

#include <string>
#include <vector>

#include "cell/library.hpp"

namespace sva {

inline constexpr std::size_t kNoDriver = static_cast<std::size_t>(-1);

struct NetSink {
  std::size_t gate = 0;       ///< sink gate index
  std::size_t pin_index = 0;  ///< index into the master's *input* pin list
};

struct Net {
  std::string name;
  std::size_t driver_gate = kNoDriver;  ///< kNoDriver => primary input
  std::vector<NetSink> sinks;
  bool is_primary_output = false;

  bool is_primary_input() const { return driver_gate == kNoDriver; }
};

struct GateInst {
  std::string name;
  std::size_t cell_index = 0;            ///< master index in the library
  std::vector<std::size_t> fanin_nets;   ///< one per master input pin
  std::size_t output_net = 0;
};

/// A combinational mapped netlist.  The library reference must outlive the
/// netlist.
class Netlist {
 public:
  explicit Netlist(const CellLibrary& library, std::string name = "top");

  const std::string& name() const { return name_; }
  const CellLibrary& library() const { return *library_; }

  /// Create a primary-input net; returns its net index.
  std::size_t add_primary_input(const std::string& name);

  /// Create a gate of the given master driven by `fanins` (one net per
  /// master input pin, in pin order); returns the gate's output net index.
  std::size_t add_gate(const std::string& name, std::size_t cell_index,
                       const std::vector<std::size_t>& fanins);

  /// Mark a net as a primary output.
  void mark_primary_output(std::size_t net);

  /// Swap a gate's master for a pin-compatible one (same input pin names
  /// in the same order, e.g. a drive-strength variant).  Connectivity and
  /// topology are untouched, so the cached topological order stays valid;
  /// callers holding derived per-cell state (an Sta's net-load cache) must
  /// re-sync it.  Used by ECO gate sizing.
  void set_gate_cell(std::size_t gate, std::size_t cell_index);

  const std::vector<Net>& nets() const { return nets_; }
  const std::vector<GateInst>& gates() const { return gates_; }

  std::size_t primary_input_count() const;
  std::size_t primary_output_count() const;

  /// Input-pin names of a gate's master, in fanin order.
  std::vector<std::string> input_pins_of(std::size_t cell_index) const;

  /// Gates in topological order (fanins before the gate).  Cached after
  /// first call; the netlist must not be modified afterwards.
  const std::vector<std::size_t>& topological_order() const;

  /// Logic level of each gate (PIs at level 0; gate level = 1 + max fanin
  /// gate level).
  std::vector<std::size_t> gate_levels() const;

  /// Validate: every fanin net exists, fanin counts match master input
  /// pins, the graph is acyclic, every PO net exists.  Throws on error.
  void validate() const;

 private:
  const CellLibrary* library_;
  std::string name_;
  std::vector<Net> nets_;
  std::vector<GateInst> gates_;
  mutable std::vector<std::size_t> topo_cache_;
};

}  // namespace sva
