#pragma once
// Structural (gate-level) Verilog writer and reader.
//
// The interchange format every P&R / sign-off flow speaks.  The writer
// emits one module with the library cells instantiated by name and
// explicit port connections; the reader parses that structural subset
// back (no behavioural constructs, no assigns), so designs round-trip and
// externally synthesized gate-level netlists using this library's cell
// names can be imported.

#include <string>

#include "netlist/netlist.hpp"

namespace sva {

/// Emit a gate-level Verilog module for the netlist.
std::string to_verilog(const Netlist& netlist);

/// Parse a structural Verilog module (the dialect to_verilog emits: one
/// module, input/output/wire declarations, cell instantiations with named
/// port connections).  Cell types are resolved against `library` by name;
/// throws sva::Error with a line number on anything unsupported.
Netlist parse_verilog(const std::string& text, const CellLibrary& library);

/// Write to / read from files.
void write_verilog_file(const std::string& path, const Netlist& netlist);
Netlist read_verilog_file(const std::string& path,
                          const CellLibrary& library);

}  // namespace sva
