#pragma once
// Reader for the ISCAS85/89 ".bench" netlist format.
//
// The original ISCAS85 circuits the paper evaluates are distributed in
// this format:
//
//   # c17
//   INPUT(1)
//   INPUT(2)
//   OUTPUT(22)
//   10 = NAND(1, 3)
//   22 = NAND(10, 16)
//
// This reader parses the combinational subset (INPUT/OUTPUT plus
// AND/OR/NAND/NOR/NOT/BUF/XOR gates of any arity) into a BoolNetwork, so
// the bundled synthetic benchmark generator can be swapped for the real
// netlists whenever the files are available: parse + map_to_library gives
// a Netlist the rest of the flow consumes unchanged.  DFF gates (ISCAS89)
// are rejected: the timing flow is combinational, as in the paper.

#include <string>

#include "netlist/mapper.hpp"

namespace sva {

/// Parse .bench text into a boolean network.  Throws sva::Error with a
/// line number on malformed input, undefined signals, multiple drivers,
/// or sequential elements.
BoolNetwork parse_bench(const std::string& text);

/// Convenience: parse and map onto a library in one step.
Netlist load_bench(const std::string& text, const CellLibrary& library,
                   const std::string& design_name);

/// Read a file and load_bench() it.
Netlist load_bench_file(const std::string& path, const CellLibrary& library,
                        const std::string& design_name);

}  // namespace sva
