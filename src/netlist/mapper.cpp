#include "netlist/mapper.hpp"

#include "util/error.hpp"

namespace sva {

std::size_t BoolNetwork::add_input(const std::string& name) {
  nodes_.push_back({name, BoolOp::Input, {}});
  return nodes_.size() - 1;
}

std::size_t BoolNetwork::add_op(const std::string& name, BoolOp op,
                                std::vector<std::size_t> fanins) {
  SVA_REQUIRE(op != BoolOp::Input);
  for (std::size_t f : fanins)
    SVA_REQUIRE_MSG(f < nodes_.size(), "fanin must reference earlier node");
  nodes_.push_back({name, op, std::move(fanins)});
  return nodes_.size() - 1;
}

void BoolNetwork::mark_output(std::size_t node) {
  SVA_REQUIRE(node < nodes_.size());
  outputs_.push_back(node);
}

void BoolNetwork::validate() const {
  SVA_REQUIRE_MSG(!outputs_.empty(), "network needs at least one output");
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const BoolNode& n = nodes_[i];
    for (std::size_t f : n.fanins) SVA_REQUIRE(f < i);
    switch (n.op) {
      case BoolOp::Input:
        SVA_REQUIRE(n.fanins.empty());
        break;
      case BoolOp::Not:
      case BoolOp::Buf:
        SVA_REQUIRE_MSG(n.fanins.size() == 1, "NOT/BUF take one fanin");
        break;
      default:
        SVA_REQUIRE_MSG(n.fanins.size() >= 2,
                        "logic ops take at least two fanins");
    }
  }
}

namespace {

/// Helper carrying the mapping state.
class Mapper {
 public:
  Mapper(const BoolNetwork& network, const CellLibrary& library,
         const std::string& design_name)
      : network_(network),
        library_(library),
        netlist_(library, design_name),
        inv_(library.index_of("INV_X1")),
        buf_(library.index_of("BUF_X1")),
        nand2_(library.index_of("NAND2_X1")),
        nand3_(library.index_of("NAND3_X1")),
        nor2_(library.index_of("NOR2_X1")),
        nor3_(library.index_of("NOR3_X1")),
        xor2_(library.index_of("XOR2_X1")) {}

  Netlist run() {
    network_.validate();
    node_net_.resize(network_.nodes().size());
    for (std::size_t i = 0; i < network_.nodes().size(); ++i)
      node_net_[i] = map_node(i);
    for (std::size_t out : network_.outputs())
      netlist_.mark_primary_output(node_net_[out]);
    netlist_.validate();
    return std::move(netlist_);
  }

 private:
  std::string name(const char* stem) {
    return std::string(stem) + "_" + std::to_string(counter_++);
  }

  std::size_t invert(std::size_t net) {
    return netlist_.add_gate(name("inv"), inv_, {net});
  }

  /// n-ary AND (or OR) as a tree of inverting 2/3-input cells, each chunk
  /// re-inverted so the non-inverted value flows between levels.
  std::size_t reduce(const std::vector<std::size_t>& nets,
                     std::size_t cell2, std::size_t cell3) {
    SVA_REQUIRE(nets.size() >= 2);
    std::vector<std::size_t> level = nets;
    while (level.size() > 1) {
      std::vector<std::size_t> next;
      std::size_t i = 0;
      while (i < level.size()) {
        const std::size_t remaining = level.size() - i;
        if (remaining == 1) {
          next.push_back(level[i]);
          i += 1;
        } else if (remaining == 3 || remaining >= 5) {
          // Chunks of three where possible; never leave a lone net after a
          // chunk of three when a 2+2 split would avoid it.
          const std::size_t g = netlist_.add_gate(
              name("g3"), cell3, {level[i], level[i + 1], level[i + 2]});
          next.push_back(invert(g));
          i += 3;
        } else {
          const std::size_t g = netlist_.add_gate(
              name("g2"), cell2, {level[i], level[i + 1]});
          next.push_back(invert(g));
          i += 2;
        }
      }
      level = std::move(next);
    }
    return level[0];
  }

  std::size_t map_node(std::size_t index) {
    const BoolNode& node = network_.nodes()[index];
    std::vector<std::size_t> fanin_nets;
    fanin_nets.reserve(node.fanins.size());
    for (std::size_t f : node.fanins) fanin_nets.push_back(node_net_[f]);

    switch (node.op) {
      case BoolOp::Input:
        return netlist_.add_primary_input(node.name);
      case BoolOp::Not:
        return invert(fanin_nets[0]);
      case BoolOp::Buf:
        return netlist_.add_gate(name("buf"), buf_, {fanin_nets[0]});
      case BoolOp::And:
        return reduce(fanin_nets, nand2_, nand3_);
      case BoolOp::Nand:
        return invert(reduce(fanin_nets, nand2_, nand3_));
      case BoolOp::Or:
        return reduce(fanin_nets, nor2_, nor3_);
      case BoolOp::Nor:
        return invert(reduce(fanin_nets, nor2_, nor3_));
      case BoolOp::Xor: {
        std::size_t acc = fanin_nets[0];
        for (std::size_t i = 1; i < fanin_nets.size(); ++i)
          acc = netlist_.add_gate(name("xor"), xor2_, {acc, fanin_nets[i]});
        return acc;
      }
    }
    throw InvariantError("unhandled boolean op");
  }

  const BoolNetwork& network_;
  const CellLibrary& library_;
  Netlist netlist_;
  std::vector<std::size_t> node_net_;
  std::size_t counter_ = 0;
  std::size_t inv_, buf_, nand2_, nand3_, nor2_, nor3_, xor2_;
};

}  // namespace

Netlist map_to_library(const BoolNetwork& network,
                       const CellLibrary& library,
                       const std::string& design_name) {
  return Mapper(network, library, design_name).run();
}

}  // namespace sva
