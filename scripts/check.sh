#!/usr/bin/env bash
# Tier-1 verify plus robustness passes: fault-injection smoke tests on the
# CLI, ThreadSanitizer on the execution engine, AddressSanitizer over the
# full tier-1 suite, and UndefinedBehaviorSanitizer over the full suite.
#
#   scripts/check.sh            full check (build + ctest + faults + sanitizers)
#   scripts/check.sh --fast     skip the sanitizer rebuilds
#
# Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

# Hermetic persistent cache: every CLI invocation below (and any child that
# honours $SVA_CACHE_DIR) reads and writes a throwaway directory, never the
# developer's .sva_cache.
CACHE_DIR="$(mktemp -d)"
export SVA_CACHE_DIR="$CACHE_DIR"
trap 'rm -rf "$CACHE_DIR"' EXIT

echo "== tier-1: configure + build + ctest =="
cmake -B build -S .
cmake --build build -j
# --timeout backstops the per-test TIMEOUT property: nothing hangs CI.
(cd build && ctest --output-on-failure -j --timeout 300)

echo "== persistent cache: cold vs warm CLI runs =="
CLI=./build/src/cli/sva-timing
cold_out="$("$CLI" analyze C432 C880 --threads 2 --cache-dir "$CACHE_DIR" --metrics)"
warm_out="$("$CLI" analyze C432 C880 --threads 2 --cache-dir "$CACHE_DIR" --metrics)"
hits="$(echo "$warm_out" | awk '/context_cache\.disk_hits/ {print $2}')"
if [[ -z "$hits" || "$hits" -le 0 ]]; then
  echo "FAIL: warm run reported no context-cache disk hits"
  echo "$warm_out"
  exit 1
fi
echo "warm run restored $hits slots from disk"
# Only the wall-time line and the metrics section may differ between the
# two runs; the analysis table must be bit-identical.
strip_variance() { sed -e '/circuits, .* threads, .* s)$/d' -e '/^engine metrics:$/,$d'; }
if ! diff <(echo "$cold_out" | strip_variance) \
          <(echo "$warm_out" | strip_variance); then
  echo "FAIL: warm analysis output differs from cold"
  exit 1
fi
echo "cold and warm analysis tables are identical"

echo "== fault injection: graceful degradation under --keep-going =="
# Break the snapshot loads AND every per-cell OPC solve: the run must
# still complete (exit 0), fall back to the uniform drawn-CD cells, and
# say so in the diagnostics report.
degraded_out="$(SVA_FAILPOINTS="context_cache.load=throw,flow.setup_load=throw,opc.cell_solve=throw" \
  "$CLI" analyze C432 C880 --threads 2 --cache-dir "$CACHE_DIR" --diagnostics)" || {
  echo "FAIL: degraded --keep-going run exited non-zero"
  exit 1
}
if ! echo "$degraded_out" | grep -q "opc_cell_degraded"; then
  echo "FAIL: degraded run did not report opc_cell_degraded diagnostics"
  echo "$degraded_out"
  exit 1
fi
echo "degraded run completed with opc_cell_degraded warnings"

echo "== fault injection: fail-fast under --strict =="
if SVA_FAILPOINTS="opc.cell_solve=throw" \
   "$CLI" analyze C432 --strict --cache-dir "$CACHE_DIR" >/dev/null 2>&1; then
  echo "FAIL: --strict run with an injected OPC fault exited zero"
  exit 1
fi
echo "--strict run failed fast as required"

echo "== fault injection: transient faults leave the tables bit-identical =="
# Transient/cache-only faults are retried or degrade to a cold start;
# either way the analysis table must match the untroubled run exactly.
faulted_out="$(SVA_FAILPOINTS="serialize.read=prob(0.3),context_cache.load=throw,flow.setup_load=throw" \
  "$CLI" analyze C432 C880 --threads 2 --cache-dir "$CACHE_DIR" --metrics)"
if ! diff <(echo "$cold_out" | strip_variance) \
          <(echo "$faulted_out" | strip_variance); then
  echo "FAIL: analysis table changed under transient cache faults"
  exit 1
fi
echo "analysis tables identical under injected cache faults"

echo "== interruptibility: deadline-cancelled analyze resumes bit-identically =="
# Slow every pool task so a sub-second deadline lands mid-batch, then
# resume from the written checkpoint: the final table must match the
# uninterrupted run byte for byte, and the exit codes must follow the
# documented contract (4 = cancelled with checkpoint).
ANALYZE_CKPT="$CACHE_DIR/analyze_resume.ckpt"
rc=0
SVA_FAILPOINTS="engine.task=delay(100)" \
  "$CLI" analyze C432 C499 C880 C1355 --threads 2 --cache-dir "$CACHE_DIR" \
  --deadline 0.5 --checkpoint "$ANALYZE_CKPT" >/dev/null 2>&1 || rc=$?
if [[ "$rc" -ne 4 ]]; then
  echo "FAIL: deadline-cancelled analyze exited $rc, expected 4"
  exit 1
fi
if [[ ! -f "$ANALYZE_CKPT" ]]; then
  echo "FAIL: cancelled analyze left no checkpoint at $ANALYZE_CKPT"
  exit 1
fi
uninterrupted_out="$("$CLI" analyze C432 C499 C880 C1355 --threads 2 --cache-dir "$CACHE_DIR")"
resumed_out="$("$CLI" analyze C432 C499 C880 C1355 --threads 2 --cache-dir "$CACHE_DIR" \
  --resume "$ANALYZE_CKPT")"
if ! diff <(echo "$uninterrupted_out" | strip_variance) \
          <(echo "$resumed_out" | strip_variance); then
  echo "FAIL: resumed analyze table differs from the uninterrupted run"
  exit 1
fi
echo "cancelled at deadline (exit 4), resumed to an identical table"

echo "== interruptibility: SIGINT mid-optimize, then --resume =="
# Reference uninterrupted trajectory first, then an interrupted run:
# SIGINT lands while pricing (slowed by the delay failpoint), the
# optimizer winds down between commits and journals its prefix.
OPT_CKPT="$CACHE_DIR/optimize_resume.ckpt"
"$CLI" optimize C880 --max-moves 12 --threads 2 --cache-dir "$CACHE_DIR" \
  --csv "$CACHE_DIR/eco_full.csv" > "$CACHE_DIR/eco_full.txt"
rc=0
SVA_FAILPOINTS="engine.task=delay(100)" \
  "$CLI" optimize C880 --max-moves 12 --threads 2 --cache-dir "$CACHE_DIR" \
  --checkpoint "$OPT_CKPT" --csv "$CACHE_DIR/eco_part.csv" \
  > "$CACHE_DIR/eco_part.txt" 2>&1 &
opt_pid=$!
sleep 0.5
kill -INT "$opt_pid" 2>/dev/null || true
wait "$opt_pid" || rc=$?
if [[ "$rc" -ne 4 ]]; then
  echo "FAIL: SIGINT-interrupted optimize exited $rc, expected 4"
  cat "$CACHE_DIR/eco_part.txt"
  exit 1
fi
if [[ ! -f "$OPT_CKPT" ]]; then
  echo "FAIL: interrupted optimize left no checkpoint at $OPT_CKPT"
  exit 1
fi
"$CLI" optimize C880 --max-moves 12 --threads 2 --cache-dir "$CACHE_DIR" \
  --resume "$OPT_CKPT" --csv "$CACHE_DIR/eco_resumed.csv" \
  > "$CACHE_DIR/eco_resumed.txt"
if ! cmp -s "$CACHE_DIR/eco_full.csv" "$CACHE_DIR/eco_resumed.csv"; then
  echo "FAIL: resumed trajectory CSV differs from the uninterrupted run"
  diff "$CACHE_DIR/eco_full.csv" "$CACHE_DIR/eco_resumed.csv" || true
  exit 1
fi
# The printed summary (table + closure line) must match too; only the
# "wrote <csv>" trailer names a different file.
if ! diff <(grep -v '^wrote ' "$CACHE_DIR/eco_full.txt") \
          <(grep -v '^wrote ' "$CACHE_DIR/eco_resumed.txt"); then
  echo "FAIL: resumed optimize summary differs from the uninterrupted run"
  exit 1
fi
echo "SIGINT-interrupted optimize (exit 4) resumed byte-identically"

echo "== multi-process cache safety: two concurrent runs, one cache dir =="
# Two simultaneous cold CLI runs share a fresh cache directory.  The
# per-file locks and unique temp names must keep the cache uncorrupted:
# both runs exit 0 with bit-identical tables and no quarantine files.
SHARED_CACHE="$(mktemp -d)"
"$CLI" analyze C432 C499 C880 --threads 2 --cache-dir "$SHARED_CACHE" \
  > "$CACHE_DIR/mp_a.txt" 2>&1 &
pid_a=$!
"$CLI" analyze C432 C499 C880 --threads 2 --cache-dir "$SHARED_CACHE" \
  > "$CACHE_DIR/mp_b.txt" 2>&1 &
pid_b=$!
rc_a=0; rc_b=0
wait "$pid_a" || rc_a=$?
wait "$pid_b" || rc_b=$?
if [[ "$rc_a" -ne 0 || "$rc_b" -ne 0 ]]; then
  echo "FAIL: concurrent runs exited $rc_a / $rc_b"
  cat "$CACHE_DIR/mp_a.txt" "$CACHE_DIR/mp_b.txt"
  rm -rf "$SHARED_CACHE"
  exit 1
fi
if ! diff <(strip_variance < "$CACHE_DIR/mp_a.txt") \
          <(strip_variance < "$CACHE_DIR/mp_b.txt"); then
  echo "FAIL: concurrent runs disagree on the analysis table"
  rm -rf "$SHARED_CACHE"
  exit 1
fi
if compgen -G "$SHARED_CACHE/*.corrupt*" >/dev/null; then
  echo "FAIL: concurrent runs quarantined cache files:"
  ls -l "$SHARED_CACHE"
  rm -rf "$SHARED_CACHE"
  exit 1
fi
# A third (warm) run proves the surviving snapshots parse cleanly.
if ! "$CLI" analyze C432 --cache-dir "$SHARED_CACHE" >/dev/null 2>&1; then
  echo "FAIL: cache left unreadable after concurrent runs"
  rm -rf "$SHARED_CACHE"
  exit 1
fi
rm -rf "$SHARED_CACHE"
echo "concurrent runs shared the cache safely (identical tables, no quarantines)"

echo "== cache-gc: size eviction honours the budget =="
gc_out="$("$CLI" cache-gc --cache-dir "$CACHE_DIR" --cache-gc-max-mb 0)"
if compgen -G "$CACHE_DIR/*.svac" >/dev/null; then
  echo "FAIL: cache-gc --cache-gc-max-mb 0 left snapshots behind"
  ls -l "$CACHE_DIR"
  exit 1
fi
echo "$gc_out"

echo "== server mode: 3 concurrent clients byte-identical to direct runs =="
SOCK="$CACHE_DIR/sva.sock"
"$CLI" serve --socket "$SOCK" --threads 2 --cache-dir "$CACHE_DIR" \
  > "$CACHE_DIR/serve.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 100); do [[ -S "$SOCK" ]] && break; sleep 0.1; done
if [[ ! -S "$SOCK" ]]; then
  echo "FAIL: daemon never created $SOCK"
  cat "$CACHE_DIR/serve.log"
  exit 1
fi
direct_out="$("$CLI" analyze C432 C880 --threads 2 --cache-dir "$CACHE_DIR")"
client_pids=()
for i in 1 2 3; do
  "$CLI" analyze C432 C880 --connect "$SOCK" \
    > "$CACHE_DIR/client_$i.txt" 2>&1 &
  client_pids+=($!)
done
for i in 1 2 3; do
  rc=0
  wait "${client_pids[$((i - 1))]}" || rc=$?
  if [[ "$rc" -ne 0 ]]; then
    echo "FAIL: remote client $i exited $rc"
    cat "$CACHE_DIR/client_$i.txt"
    exit 1
  fi
  if ! diff <(echo "$direct_out" | strip_variance) \
            <(strip_variance < "$CACHE_DIR/client_$i.txt"); then
    echo "FAIL: remote client $i output differs from the direct run"
    exit 1
  fi
done
echo "3 concurrent remote analyzes identical to the direct run"

# Optimize through the daemon: printed summary and trajectory CSV must be
# byte-identical to a direct run (only the "wrote <csv>" trailer names a
# different file).
"$CLI" optimize C880 --max-moves 6 --threads 2 --cache-dir "$CACHE_DIR" \
  --csv "$CACHE_DIR/opt_direct.csv" > "$CACHE_DIR/opt_direct.txt"
"$CLI" optimize C880 --max-moves 6 --connect "$SOCK" \
  --csv "$CACHE_DIR/opt_remote.csv" > "$CACHE_DIR/opt_remote.txt"
if ! cmp -s "$CACHE_DIR/opt_direct.csv" "$CACHE_DIR/opt_remote.csv"; then
  echo "FAIL: remote optimize trajectory CSV differs from the direct run"
  diff "$CACHE_DIR/opt_direct.csv" "$CACHE_DIR/opt_remote.csv" || true
  exit 1
fi
if ! diff <(grep -v '^wrote ' "$CACHE_DIR/opt_direct.txt") \
          <(grep -v '^wrote ' "$CACHE_DIR/opt_remote.txt"); then
  echo "FAIL: remote optimize summary differs from the direct run"
  exit 1
fi
echo "remote optimize byte-identical to the direct run"

# A malformed client must not kill the daemon: garbage bytes get the
# connection dropped with a structured error, the next client is served.
# (tests/server_test.cpp covers this in-process too; skip when no python3.)
if command -v python3 >/dev/null 2>&1; then
  printf 'not a frame' | timeout 5 python3 -c '
import socket, sys
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sys.argv[1])
s.sendall(sys.stdin.buffer.read())
s.shutdown(socket.SHUT_WR)
s.recv(4096)
s.close()' "$SOCK" 2>/dev/null || true
  if ! "$CLI" analyze C432 --connect "$SOCK" >/dev/null 2>&1; then
    echo "FAIL: daemon stopped serving after a malformed client frame"
    exit 1
  fi
  echo "daemon survived a malformed client frame"
fi

# Graceful drain: SIGTERM must exit 0 and remove the socket file.
kill -TERM "$serve_pid"
rc=0
wait "$serve_pid" || rc=$?
if [[ "$rc" -ne 0 ]]; then
  echo "FAIL: daemon exited $rc on SIGTERM, expected 0"
  cat "$CACHE_DIR/serve.log"
  exit 1
fi
if [[ -e "$SOCK" ]]; then
  echo "FAIL: daemon left an orphaned socket file at $SOCK"
  exit 1
fi
echo "SIGTERM drained the daemon (exit 0, socket removed)"

echo "== chaos: probabilistic lane faults, retried clients byte-identical =="
# The daemon's executor lanes crash with p=0.3 per job (the connection is
# dropped without a response); clients with --retries must still land the
# exact direct-run bytes.  Result cache off so every query really runs
# the lane gauntlet.
CHAOS_SOCK="$CACHE_DIR/sva_chaos.sock"
SVA_FAILPOINTS="server.lane.run=prob(0.3)" \
  "$CLI" serve --socket "$CHAOS_SOCK" --threads 2 --lanes 2 --result-cache 0 \
  --cache-dir "$CACHE_DIR" > "$CACHE_DIR/serve_chaos.log" 2>&1 &
chaos_pid=$!
for _ in $(seq 1 100); do [[ -S "$CHAOS_SOCK" ]] && break; sleep 0.1; done
if [[ ! -S "$CHAOS_SOCK" ]]; then
  echo "FAIL: chaos daemon never created $CHAOS_SOCK"
  cat "$CACHE_DIR/serve_chaos.log"
  exit 1
fi
chaos_pids=()
for i in 1 2 3; do
  "$CLI" analyze C432 C880 --connect "$CHAOS_SOCK" --retries 25 \
    > "$CACHE_DIR/chaos_$i.txt" 2>&1 &
  chaos_pids+=($!)
done
for i in 1 2 3; do
  rc=0
  wait "${chaos_pids[$((i - 1))]}" || rc=$?
  if [[ "$rc" -ne 0 ]]; then
    echo "FAIL: chaos client $i exited $rc"
    cat "$CACHE_DIR/chaos_$i.txt"
    exit 1
  fi
  if ! diff <(echo "$direct_out" | strip_variance) \
            <(strip_variance < "$CACHE_DIR/chaos_$i.txt"); then
    echo "FAIL: chaos client $i output differs from the direct run"
    exit 1
  fi
done
echo "3 retried clients identical to the direct run under lane faults"

# The health probe answers while the chaos rages, and must eventually
# report at least one poisoned lane (keep poking until a fault lands).
if ! "$CLI" ping --connect "$CHAOS_SOCK" > "$CACHE_DIR/ping.txt"; then
  echo "FAIL: sva ping exited non-zero against a live daemon"
  cat "$CACHE_DIR/ping.txt"
  exit 1
fi
if ! grep -q "daemon healthy" "$CACHE_DIR/ping.txt"; then
  echo "FAIL: sva ping did not report a healthy daemon"
  cat "$CACHE_DIR/ping.txt"
  exit 1
fi
poisoned=0
for _ in $(seq 1 25); do
  poisoned="$(awk -F'lanes poisoned ' '/daemon healthy/ {print $2}' \
    "$CACHE_DIR/ping.txt")"
  [[ "${poisoned:-0}" -gt 0 ]] && break
  "$CLI" analyze C432 --connect "$CHAOS_SOCK" --retries 25 >/dev/null 2>&1 || true
  "$CLI" ping --connect "$CHAOS_SOCK" > "$CACHE_DIR/ping.txt" || true
done
if [[ "${poisoned:-0}" -le 0 ]]; then
  echo "FAIL: no lane was ever poisoned under prob(0.3) faults"
  cat "$CACHE_DIR/ping.txt" "$CACHE_DIR/serve_chaos.log"
  exit 1
fi
echo "health probe live under chaos ($poisoned lane faults survived)"

# After all that abuse, SIGTERM must still drain cleanly.
kill -TERM "$chaos_pid"
rc=0
wait "$chaos_pid" || rc=$?
if [[ "$rc" -ne 0 ]]; then
  echo "FAIL: chaos daemon exited $rc on SIGTERM, expected 0"
  cat "$CACHE_DIR/serve_chaos.log"
  exit 1
fi
if [[ -e "$CHAOS_SOCK" ]]; then
  echo "FAIL: chaos daemon left an orphaned socket file"
  exit 1
fi
# ...and a ping against the drained daemon reports unreachable (exit 1).
if "$CLI" ping --connect "$CHAOS_SOCK" >/dev/null 2>&1; then
  echo "FAIL: sva ping exited zero against a stopped daemon"
  exit 1
fi
echo "chaos daemon drained on SIGTERM; ping reports the gone daemon"

echo "== chaos over TCP: connection faults, retried clients byte-identical =="
# The TCP transport under injected connection faults: each accepted
# connection's first read throws with p=0.3, the daemon drops the peer
# before any response byte, and the client's retry loop must absorb the
# reset transparently -- landing the exact direct-run bytes.  The port is
# kernel-assigned (:0) and discovered from the daemon's announce line.
TCP_LOG="$CACHE_DIR/serve_tcp.log"
SVA_FAILPOINTS="server.conn.read=prob(0.3)" \
  "$CLI" serve --listen 127.0.0.1:0 --threads 2 --lanes 2 \
  --cache-dir "$CACHE_DIR" > "$TCP_LOG" 2>&1 &
tcp_pid=$!
for _ in $(seq 1 100); do
  grep -q 'listening on tcp:' "$TCP_LOG" && break; sleep 0.1
done
PORT="$(sed -n 's/.*listening on tcp:127\.0\.0\.1:\([0-9]*\).*/\1/p' \
  "$TCP_LOG" | head -1)"
if [[ -z "$PORT" ]]; then
  echo "FAIL: TCP daemon never announced its bound port"
  cat "$TCP_LOG"
  exit 1
fi
TCP_URI="tcp:127.0.0.1:$PORT"
tcp_pids=()
for i in 1 2 3; do
  "$CLI" analyze C432 C880 --connect "$TCP_URI" --retries 25 \
    > "$CACHE_DIR/tcp_$i.txt" 2>&1 &
  tcp_pids+=($!)
done
for i in 1 2 3; do
  rc=0
  wait "${tcp_pids[$((i - 1))]}" || rc=$?
  if [[ "$rc" -ne 0 ]]; then
    echo "FAIL: TCP chaos client $i exited $rc"
    cat "$CACHE_DIR/tcp_$i.txt"
    exit 1
  fi
  if ! diff <(echo "$direct_out" | strip_variance) \
            <(strip_variance < "$CACHE_DIR/tcp_$i.txt"); then
    echo "FAIL: TCP chaos client $i output differs from the direct run"
    exit 1
  fi
done
echo "3 retried TCP clients identical to the direct run under connection faults"

# The faults must actually have landed: the daemon logs every injected
# drop.  Keep poking until one does (p=0.3 per connection).
for _ in $(seq 1 25); do
  grep -q 'server: connection dropped' "$TCP_LOG" && break
  "$CLI" ping --connect "$TCP_URI" >/dev/null 2>&1 || true
done
if ! grep -q 'server: connection dropped' "$TCP_LOG"; then
  echo "FAIL: no connection fault ever fired under prob(0.3)"
  cat "$TCP_LOG"
  exit 1
fi
echo "injected connection drops confirmed in the daemon log"

# Batch: every job line ships over ONE connection and the slot outputs,
# headers stripped, must reproduce the concatenated direct runs exactly
# (only the "wrote <csv>" trailers name different files; the CSV
# artifacts themselves must cmp equal).
ssta_direct_tcp="$("$CLI" ssta C432 --clock 3.1 --mc 50 --threads 2 \
  --cache-dir "$CACHE_DIR" --csv "$CACHE_DIR/ssta_tcp_direct.csv")"
printf 'analyze C432 C880\nssta C432 --clock 3.1 --mc 50 --csv %s\n' \
  "$CACHE_DIR/ssta_tcp_batch.csv" > "$CACHE_DIR/jobs.txt"
if ! "$CLI" batch "$CACHE_DIR/jobs.txt" --connect "$TCP_URI" --retries 25 \
     > "$CACHE_DIR/batch_out.txt" 2> "$CACHE_DIR/batch_err.txt"; then
  echo "FAIL: batch client exited non-zero"
  cat "$CACHE_DIR/batch_out.txt" "$CACHE_DIR/batch_err.txt"
  exit 1
fi
if ! diff <({ echo "$direct_out"; echo "$ssta_direct_tcp"; } \
            | strip_variance | grep -v '^wrote ') \
          <(grep -v '^== batch job ' "$CACHE_DIR/batch_out.txt" \
            | strip_variance | grep -v '^wrote '); then
  echo "FAIL: batch slots differ from the concatenated direct runs"
  exit 1
fi
if ! cmp -s "$CACHE_DIR/ssta_tcp_direct.csv" "$CACHE_DIR/ssta_tcp_batch.csv"; then
  echo "FAIL: batch ssta CSV artifact differs from the direct run"
  diff "$CACHE_DIR/ssta_tcp_direct.csv" "$CACHE_DIR/ssta_tcp_batch.csv" || true
  exit 1
fi
echo "batched jobs over one TCP connection identical to the direct runs"

# After the abuse, SIGTERM must still drain the TCP daemon cleanly.
kill -TERM "$tcp_pid"
rc=0
wait "$tcp_pid" || rc=$?
if [[ "$rc" -ne 0 ]]; then
  echo "FAIL: TCP daemon exited $rc on SIGTERM, expected 0"
  cat "$TCP_LOG"
  exit 1
fi
echo "TCP daemon drained on SIGTERM (exit 0)"

echo "== kernel bench smoke: compiled/scalar bit-identity on C432 =="
cmake --build build -j --target bench_sta_kernel
./build/bench/bench_sta_kernel --smoke

if [[ "$FAST" == "1" ]]; then
  echo "== skipping sanitizer passes (--fast) =="
  exit 0
fi

echo "== TSan: engine_test + sta_test + server_test under -fsanitize=thread =="
# sta_test drives the compiled kernel through run_parallel at several
# thread counts, extending race coverage to the flat-arena evaluate path;
# server_test covers the daemon's lane pool, watchdog, and the JobQueue
# close/drain races under concurrent pushers.
cmake -B build-tsan -S . -DSVA_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j --target engine_test sta_test server_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/engine_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/sta_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/server_test

echo "== ASan: full tier-1 suite + kernel bench smoke under -fsanitize=address =="
cmake -B build-asan -S . -DSVA_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan -j
(cd build-asan && ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
  ctest --output-on-failure -j)
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
  ./build-asan/bench/bench_sta_kernel --smoke

echo "== UBSan: full tier-1 suite under -fsanitize=undefined =="
cmake -B build-ubsan -S . -DSVA_SANITIZE=undefined -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-ubsan -j
(cd build-ubsan && UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --output-on-failure -j)

echo "== ssta: cold run byte-identical through the daemon =="
# Block-based SSTA carries no wall-time trailer, so the remote bytes must
# match the direct run exactly -- report, MC cross-check lines, and the
# criticality CSV artifact (only the "wrote <csv>" trailer may differ).
SOCK="$CACHE_DIR/sva_ssta.sock"
"$CLI" serve --socket "$SOCK" --threads 2 --cache-dir "$CACHE_DIR" \
  > "$CACHE_DIR/serve_ssta.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 100); do [[ -S "$SOCK" ]] && break; sleep 0.1; done
if [[ ! -S "$SOCK" ]]; then
  echo "FAIL: daemon never created $SOCK"
  cat "$CACHE_DIR/serve_ssta.log"
  exit 1
fi
"$CLI" ssta C880 --clock 3.1 --mc 200 --threads 2 --cache-dir "$CACHE_DIR" \
  --csv "$CACHE_DIR/ssta_direct.csv" > "$CACHE_DIR/ssta_direct.txt"
"$CLI" ssta C880 --clock 3.1 --mc 200 --connect "$SOCK" \
  --csv "$CACHE_DIR/ssta_remote.csv" > "$CACHE_DIR/ssta_remote.txt"
if ! cmp -s "$CACHE_DIR/ssta_direct.csv" "$CACHE_DIR/ssta_remote.csv"; then
  echo "FAIL: remote ssta criticality CSV differs from the direct run"
  diff "$CACHE_DIR/ssta_direct.csv" "$CACHE_DIR/ssta_remote.csv" || true
  exit 1
fi
if ! diff <(grep -v '^wrote ' "$CACHE_DIR/ssta_direct.txt") \
          <(grep -v '^wrote ' "$CACHE_DIR/ssta_remote.txt"); then
  echo "FAIL: remote ssta report differs from the direct run"
  exit 1
fi
kill -TERM "$serve_pid"
rc=0
wait "$serve_pid" || rc=$?
if [[ "$rc" -ne 0 ]]; then
  echo "FAIL: ssta daemon exited $rc on SIGTERM, expected 0"
  cat "$CACHE_DIR/serve_ssta.log"
  exit 1
fi
echo "remote ssta byte-identical to the direct run"

echo "== all checks passed =="
