#!/usr/bin/env bash
# Tier-1 verify plus a ThreadSanitizer pass of the execution engine.
#
#   scripts/check.sh            full check (build + ctest + TSan engine_test)
#   scripts/check.sh --fast     skip the TSan rebuild
#
# Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "== tier-1: configure + build + ctest =="
cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [[ "$FAST" == "1" ]]; then
  echo "== skipping TSan pass (--fast) =="
  exit 0
fi

echo "== TSan: engine_test under -fsanitize=thread =="
cmake -B build-tsan -S . -DSVA_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j --target engine_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/engine_test

echo "== all checks passed =="
