#!/usr/bin/env bash
# Tier-1 verify plus sanitizer passes: ThreadSanitizer on the execution
# engine and AddressSanitizer over the full tier-1 suite.
#
#   scripts/check.sh            full check (build + ctest + TSan + ASan)
#   scripts/check.sh --fast     skip the sanitizer rebuilds
#
# Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "== tier-1: configure + build + ctest =="
cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [[ "$FAST" == "1" ]]; then
  echo "== skipping sanitizer passes (--fast) =="
  exit 0
fi

echo "== TSan: engine_test under -fsanitize=thread =="
cmake -B build-tsan -S . -DSVA_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j --target engine_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/engine_test

echo "== ASan: full tier-1 suite under -fsanitize=address =="
cmake -B build-asan -S . -DSVA_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan -j
(cd build-asan && ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
  ctest --output-on-failure -j)

echo "== all checks passed =="
