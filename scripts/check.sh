#!/usr/bin/env bash
# Tier-1 verify plus robustness passes: fault-injection smoke tests on the
# CLI, ThreadSanitizer on the execution engine, AddressSanitizer over the
# full tier-1 suite, and UndefinedBehaviorSanitizer over the full suite.
#
#   scripts/check.sh            full check (build + ctest + faults + sanitizers)
#   scripts/check.sh --fast     skip the sanitizer rebuilds
#
# Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

# Hermetic persistent cache: every CLI invocation below (and any child that
# honours $SVA_CACHE_DIR) reads and writes a throwaway directory, never the
# developer's .sva_cache.
CACHE_DIR="$(mktemp -d)"
export SVA_CACHE_DIR="$CACHE_DIR"
trap 'rm -rf "$CACHE_DIR"' EXIT

echo "== tier-1: configure + build + ctest =="
cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo "== persistent cache: cold vs warm CLI runs =="
CLI=./build/src/cli/sva-timing
cold_out="$("$CLI" analyze C432 C880 --threads 2 --cache-dir "$CACHE_DIR" --metrics)"
warm_out="$("$CLI" analyze C432 C880 --threads 2 --cache-dir "$CACHE_DIR" --metrics)"
hits="$(echo "$warm_out" | awk '/context_cache\.disk_hits/ {print $2}')"
if [[ -z "$hits" || "$hits" -le 0 ]]; then
  echo "FAIL: warm run reported no context-cache disk hits"
  echo "$warm_out"
  exit 1
fi
echo "warm run restored $hits slots from disk"
# Only the wall-time line and the metrics section may differ between the
# two runs; the analysis table must be bit-identical.
strip_variance() { sed -e '/circuits, .* threads, .* s)$/d' -e '/^engine metrics:$/,$d'; }
if ! diff <(echo "$cold_out" | strip_variance) \
          <(echo "$warm_out" | strip_variance); then
  echo "FAIL: warm analysis output differs from cold"
  exit 1
fi
echo "cold and warm analysis tables are identical"

echo "== fault injection: graceful degradation under --keep-going =="
# Break the snapshot loads AND every per-cell OPC solve: the run must
# still complete (exit 0), fall back to the uniform drawn-CD cells, and
# say so in the diagnostics report.
degraded_out="$(SVA_FAILPOINTS="context_cache.load=throw,flow.setup_load=throw,opc.cell_solve=throw" \
  "$CLI" analyze C432 C880 --threads 2 --cache-dir "$CACHE_DIR" --diagnostics)" || {
  echo "FAIL: degraded --keep-going run exited non-zero"
  exit 1
}
if ! echo "$degraded_out" | grep -q "opc_cell_degraded"; then
  echo "FAIL: degraded run did not report opc_cell_degraded diagnostics"
  echo "$degraded_out"
  exit 1
fi
echo "degraded run completed with opc_cell_degraded warnings"

echo "== fault injection: fail-fast under --strict =="
if SVA_FAILPOINTS="opc.cell_solve=throw" \
   "$CLI" analyze C432 --strict --cache-dir "$CACHE_DIR" >/dev/null 2>&1; then
  echo "FAIL: --strict run with an injected OPC fault exited zero"
  exit 1
fi
echo "--strict run failed fast as required"

echo "== fault injection: transient faults leave the tables bit-identical =="
# Transient/cache-only faults are retried or degrade to a cold start;
# either way the analysis table must match the untroubled run exactly.
faulted_out="$(SVA_FAILPOINTS="serialize.read=prob(0.3),context_cache.load=throw,flow.setup_load=throw" \
  "$CLI" analyze C432 C880 --threads 2 --cache-dir "$CACHE_DIR" --metrics)"
if ! diff <(echo "$cold_out" | strip_variance) \
          <(echo "$faulted_out" | strip_variance); then
  echo "FAIL: analysis table changed under transient cache faults"
  exit 1
fi
echo "analysis tables identical under injected cache faults"

if [[ "$FAST" == "1" ]]; then
  echo "== skipping sanitizer passes (--fast) =="
  exit 0
fi

echo "== TSan: engine_test under -fsanitize=thread =="
cmake -B build-tsan -S . -DSVA_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j --target engine_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/engine_test

echo "== ASan: full tier-1 suite under -fsanitize=address =="
cmake -B build-asan -S . -DSVA_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan -j
(cd build-asan && ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
  ctest --output-on-failure -j)

echo "== UBSan: full tier-1 suite under -fsanitize=undefined =="
cmake -B build-ubsan -S . -DSVA_SANITIZE=undefined -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-ubsan -j
(cd build-ubsan && UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --output-on-failure -j)

echo "== all checks passed =="
