// Context demo: walks through the paper's Figures 3-5 on real data
// structures --
//   Fig. 3: the library-OPC dummy environment of a NAND gate;
//   Fig. 4: the nps_LT/RT/LB/RB spacings of a cell in a 3-cell placement;
//   Fig. 5: isolated / dense / self-compensated device labeling.

#include <cstdio>

#include "cell/library.hpp"
#include "cell/library_opc.hpp"
#include "core/classify.hpp"
#include "litho/cd_model.hpp"
#include "netlist/netlist.hpp"
#include "opc/engine.hpp"
#include "place/context.hpp"
#include "place/placement.hpp"

int main() {
  using namespace sva;
  const CellLibrary library = build_standard_library();
  const CellTech tech;

  // ---------------------------------------------------- Fig. 3
  std::printf("--- Fig. 3: library-OPC environment of NAND2_X1 ---\n");
  const CellMaster& nand2 = library.by_name("NAND2_X1");
  const Layout env = library_opc_environment(nand2, LibraryOpcConfig{});
  for (const Shape& s : env.shapes())
    std::printf("  %-5s  x [%7.1f, %7.1f]  y [%6.1f, %6.1f]\n",
                layer_name(s.layer).c_str(), s.rect.x_lo, s.rect.x_hi,
                s.rect.y_lo, s.rect.y_hi);
  const LithoProcess process(OpticsConfig{}, tech.gate_length, 240.0);
  const OpcEngine engine(process, OpcConfig{});
  const auto opc = library_opc_cell(nand2, engine);
  std::printf("  per-device printed CDs after library OPC:\n");
  for (std::size_t d = 0; d < nand2.devices().size(); ++d)
    std::printf("    %-4s  drawn %.0f nm -> printed %.2f nm (mask %.0f)\n",
                nand2.devices()[d].name.c_str(), tech.gate_length,
                opc.device_cd[d], opc.device_mask_width[d]);

  // ---------------------------------------------------- Fig. 4
  std::printf("\n--- Fig. 4: nps spacings in a 3-cell placement A-B-C ---\n");
  Netlist netlist(library, "abc");
  const auto pi = netlist.add_primary_input("pi");
  const auto a = netlist.add_gate("A", library.index_of("NOR2_X1"),
                                  {pi, pi});
  const auto b = netlist.add_gate("B", library.index_of("NAND2_X1"),
                                  {a, pi});
  const auto c = netlist.add_gate("C", library.index_of("INV_X1"), {b});
  netlist.mark_primary_output(c);
  // Abut the three cells so the cross-boundary spacings are the story.
  PlacementConfig abutted;
  abutted.utilization = 0.99;
  abutted.abut_probability = 1.0;
  const Placement placement(netlist, abutted);
  const auto nps = extract_nps(placement);
  for (std::size_t gi = 0; gi < netlist.gates().size(); ++gi) {
    const auto& g = netlist.gates()[gi];
    std::printf("  %s (%s at x=%.0f): nps_LT %5.0f  nps_RT %5.0f  "
                "nps_LB %5.0f  nps_RB %5.0f\n",
                g.name.c_str(),
                library.master(g.cell_index).name().c_str(),
                placement.instances()[gi].x, nps[gi].lt, nps[gi].rt,
                nps[gi].lb, nps[gi].rb);
  }
  const ContextBins bins;
  for (std::size_t gi = 0; gi < netlist.gates().size(); ++gi) {
    const VersionKey v = nps_to_version(nps[gi], bins);
    std::printf("  %s -> version (%u,%u,%u,%u) = index %zu of %zu\n",
                netlist.gates()[gi].name.c_str(), v.lt, v.rt, v.lb, v.rb,
                version_index(v, bins.count()), bins.version_count());
  }

  // ---------------------------------------------------- Fig. 5
  std::printf("\n--- Fig. 5: device classes in AOI21_X1 (dense / "
              "self-compensated / isolated) ---\n");
  const CellMaster& aoi = library.by_name("AOI21_X1");
  for (std::size_t d = 0; d < aoi.devices().size(); ++d) {
    // Spacings inside the cell; boundary sides assumed isolated here.
    const PolyGate& gate = aoi.gates()[aoi.devices()[d].gate_index];
    Nm left = tech.radius_of_influence, right = tech.radius_of_influence;
    for (const PolyGate& other : aoi.gates()) {
      if (other.x_center < gate.x_center)
        left = std::min(left, gate.x_lo() - other.x_hi());
      if (other.x_center > gate.x_center)
        right = std::min(right, other.x_lo() - gate.x_hi());
    }
    const DeviceClass cls =
        classify_device(left, right, tech.contacted_pitch);
    std::printf("  %-4s  spacing L %5.0f / R %5.0f  -> %s\n",
                aoi.devices()[d].name.c_str(), left, right,
                to_string(cls));
  }
  return 0;
}
