// Liberty export: materialize the paper's context-expanded timing library
// as a .lib file ("we obtain a .lib which has 81 versions of each cell in
// the original library", Sec. 3.1.2), plus the base library for
// comparison.
//
// Usage: ./build/examples/liberty_export [output_dir]

#include <cstdio>
#include <string>

#include "cell/liberty_writer.hpp"
#include "core/flow.hpp"
#include "report/csv.hpp"

int main(int argc, char** argv) {
  using namespace sva;
  const std::string dir = argc > 1 ? argv[1] : ".";

  const SvaFlow flow{FlowConfig{}};

  const std::string base = to_liberty(flow.characterized(), "sva90");
  const std::string base_path = dir + "/sva90.lib";
  write_text_file(base_path, base);
  std::printf("wrote %s (%zu bytes, %zu cells)\n", base_path.c_str(),
              base.size(), flow.library().size());

  const std::string expanded = to_liberty_expanded(
      flow.characterized(), flow.context_library(), "sva90_context");
  const std::string exp_path = dir + "/sva90_context.lib";
  write_text_file(exp_path, expanded);
  std::printf("wrote %s (%zu bytes, %zu cells x %zu versions)\n",
              exp_path.c_str(), expanded.size(), flow.library().size(),
              flow.config().bins.version_count());

  // Show one version's scaling for context.
  const std::size_t inv = flow.library().index_of("INV_X1");
  for (const VersionKey key :
       {VersionKey{0, 0, 0, 0}, VersionKey{2, 2, 2, 2}}) {
    std::printf("INV_X1%s: arc A->Y effective length %.2f nm (scale "
                "%.4f)\n",
                version_suffix(key).c_str(),
                flow.context_library().arc_effective_length(inv, key, 0),
                flow.context_library().arc_delay_scale(inv, key, 0));
  }
  return 0;
}
