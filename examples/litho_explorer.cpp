// Litho explorer: poke at the lithography substrate directly -- aerial
// images, through-pitch curves, Bossung behaviour, and what OPC does to a
// line array.
//
// Usage: ./build/examples/litho_explorer [linewidth_nm] [pitch_nm]

#include <cstdio>
#include <cstdlib>

#include "litho/bossung.hpp"
#include "litho/focus_response.hpp"
#include "litho/pitch_curve.hpp"
#include "opc/pitch_table.hpp"
#include "report/ascii_plot.hpp"

int main(int argc, char** argv) {
  using namespace sva;
  const Nm linewidth = argc > 1 ? std::atof(argv[1]) : 90.0;
  const Nm pitch = argc > 2 ? std::atof(argv[2]) : 240.0;

  const OpticsConfig optics;
  const LithoProcess process(optics, linewidth, pitch);
  std::printf("process: lambda %.0f nm, NA %.2f, annular sigma "
              "[%.2f, %.2f], resist threshold %.3f\n\n",
              optics.wavelength, optics.na, optics.sigma_inner,
              optics.sigma_outer, process.resist().threshold());

  // --- Aerial image of the chosen grating.
  const auto mask = MaskPattern1D::grating(linewidth, pitch);
  const auto image = process.simulator().image(mask, 0.0);
  Series profile{"intensity", {}, {}};
  for (int i = 0; i <= 80; ++i) {
    const Nm x = pitch * i / 80.0;
    profile.x.push_back(x);
    profile.y.push_back(image.intensity(x));
  }
  PlotOptions opt;
  opt.title = "aerial image over one period (best focus)";
  opt.x_label = "x (nm)";
  opt.y_label = "relative intensity";
  opt.height = 12;
  std::printf("%s\n", render_plot({profile}, opt).c_str());

  const auto cd = process.printed_cd(mask);
  std::printf("printed CD at best focus: %s\n\n",
              cd ? (std::to_string(*cd) + " nm").c_str() : "print failure");

  // --- Through-pitch curve.
  const auto pitches = pitch_sweep(linewidth + 150.0, linewidth + 900.0, 16);
  const auto curve = through_pitch_curve(process, linewidth, pitches);
  Series pitch_series{"printed CD", {}, {}};
  for (const auto& p : curve) {
    pitch_series.x.push_back(p.pitch);
    pitch_series.y.push_back(p.cd);
  }
  opt.title = "through-pitch variation (uncorrected)";
  opt.x_label = "pitch (nm)";
  opt.y_label = "printed CD (nm)";
  std::printf("%s\n", render_plot({pitch_series}, opt).c_str());

  // --- What OPC leaves behind.
  const OpcEngine engine(process, OpcConfig{});
  const auto post = characterize_post_opc_pitch(
      process, engine, linewidth,
      {150.0, 250.0, 350.0, 450.0, 600.0});
  std::printf("post-OPC residual through-pitch CDs:\n");
  for (const auto& p : post)
    std::printf("  spacing %4.0f nm: CD %7.2f nm (mask bias %+5.1f nm)\n",
                p.spacing, p.printed_cd, p.mask_bias);
  std::printf("  residual half-range: %.2f nm\n\n",
              post_opc_pitch_half_range(post));

  // --- Bossung behaviour through the calibrated focus response.
  const PrintModel print_model(process, FocusResponseParams{}, 600.0);
  std::printf("Bossung behaviour (printed CD at defocus 0 / 150 / 300 "
              "nm):\n");
  for (const auto& [label, spacing] :
       {std::pair{"dense", 150.0}, std::pair{"interm.", 340.0},
        std::pair{"iso", 600.0}}) {
    std::printf("  %-8s", label);
    for (Nm dz : {0.0, 150.0, 300.0})
      std::printf("  %7.2f", print_model.printed_cd(linewidth, spacing,
                                                    spacing, dz, 1.0));
    std::printf("\n");
  }
  return 0;
}
