// Quickstart: run the systematic-variation aware timing flow on one
// ISCAS85 benchmark and compare against traditional corner sign-off.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [benchmark]   (default: C432)

#include <cstdio>

#include "core/flow.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace sva;
  const std::string benchmark = argc > 1 ? argv[1] : "C432";

  // 1. Flow setup: builds and characterizes the 10-cell 90 nm library,
  //    calibrates the litho process, runs library-based OPC on every
  //    master, characterizes the post-OPC pitch->CD table, and expands
  //    the library into 81 context versions.
  std::printf("setting up the SVA timing flow...\n");
  const SvaFlow flow{FlowConfig{}};
  std::printf("  library OPC + pitch characterization: %.2f s\n\n",
              flow.setup_opc_seconds());

  // 2. Per-design steps: synthesize-like netlist, placement, context
  //    binding, traditional and in-context corner STA.
  std::printf("analyzing %s...\n", benchmark.c_str());
  const CircuitAnalysis a = flow.analyze_benchmark(benchmark);

  std::printf("\n%s: %zu gates\n", a.name.c_str(), a.gate_count);
  std::printf("  traditional:  Nom %.3f ns  BC %.3f ns  WC %.3f ns  "
              "(spread %.3f ns)\n",
              units::ps_to_ns(a.trad_nom_ps), units::ps_to_ns(a.trad_bc_ps),
              units::ps_to_ns(a.trad_wc_ps),
              units::ps_to_ns(a.trad_spread_ps()));
  std::printf("  SVA-aware:    Nom %.3f ns  BC %.3f ns  WC %.3f ns  "
              "(spread %.3f ns)\n",
              units::ps_to_ns(a.sva_nom_ps), units::ps_to_ns(a.sva_bc_ps),
              units::ps_to_ns(a.sva_wc_ps),
              units::ps_to_ns(a.sva_spread_ps()));
  std::printf("  uncertainty reduction: %s (paper reports 28%%-40%%)\n",
              fmt_pct(a.uncertainty_reduction(), 1).c_str());
  std::printf("  timing arcs: %zu smile, %zu frown, %zu "
              "self-compensated\n",
              a.arc_class_counts[0], a.arc_class_counts[1],
              a.arc_class_counts[2]);
  return 0;
}
