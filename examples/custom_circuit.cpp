// Custom circuit: build your own netlist against the public API, place
// it, and run both timing flows -- the path a downstream user would take
// to analyze their own design instead of the bundled benchmarks.
//
// The circuit here is a 4-bit ripple-carry-style cone built from the
// library's NAND/NOR/XOR masters.

#include <cstdio>
#include <vector>

#include "core/flow.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

int main() {
  using namespace sva;
  const SvaFlow flow{FlowConfig{}};
  const CellLibrary& lib = flow.library();

  Netlist netlist(lib, "ripple4");
  std::vector<std::size_t> a(4), b(4);
  for (int i = 0; i < 4; ++i) {
    a[static_cast<std::size_t>(i)] =
        netlist.add_primary_input("a" + std::to_string(i));
    b[static_cast<std::size_t>(i)] =
        netlist.add_primary_input("b" + std::to_string(i));
  }

  // Full-adder-ish slices: sum_i = a_i XOR b_i XOR carry; carry via
  // NAND/NOR network (logically approximate -- the timing structure is
  // what matters here).
  std::size_t carry = netlist.add_primary_input("cin");
  for (int i = 0; i < 4; ++i) {
    const auto ai = a[static_cast<std::size_t>(i)];
    const auto bi = b[static_cast<std::size_t>(i)];
    const auto axb =
        netlist.add_gate("xor_ab" + std::to_string(i),
                         lib.index_of("XOR2_X1"), {ai, bi});
    const auto sum =
        netlist.add_gate("sum" + std::to_string(i),
                         lib.index_of("XOR2_X1"), {axb, carry});
    netlist.mark_primary_output(sum);
    const auto g1 = netlist.add_gate("cg1_" + std::to_string(i),
                                     lib.index_of("NAND2_X1"), {ai, bi});
    const auto g2 = netlist.add_gate("cg2_" + std::to_string(i),
                                     lib.index_of("NAND2_X1"), {axb, carry});
    carry = netlist.add_gate("carry" + std::to_string(i),
                             lib.index_of("NAND2_X1"), {g1, g2});
  }
  netlist.mark_primary_output(carry);
  netlist.validate();

  const Placement placement = flow.make_placement(netlist);
  const CircuitAnalysis result = flow.analyze(netlist, placement);

  std::printf("ripple4: %zu gates, %zu PIs, %zu POs\n", result.gate_count,
              netlist.primary_input_count(),
              netlist.primary_output_count());
  std::printf("  traditional spread: %.1f ps\n",
              result.trad_spread_ps());
  std::printf("  SVA-aware spread:   %.1f ps\n", result.sva_spread_ps());
  std::printf("  uncertainty reduction: %s\n",
              fmt_pct(result.uncertainty_reduction(), 1).c_str());

  // Inspect the critical path under the nominal in-context library.
  const Sta sta(netlist, flow.characterized(), flow.config().sta);
  const auto versions = flow.bind_versions(placement);
  const SvaCornerScale nominal(netlist, flow.context_library(), versions,
                               flow.config().budget, Corner::Nominal);
  const StaResult timing = sta.run(nominal);
  std::printf("\ncritical path (%.3f ns):\n",
              units::ps_to_ns(timing.critical_delay_ps));
  for (std::size_t gi : timing.critical_path) {
    const auto& g = netlist.gates()[gi];
    std::printf("  %-10s %-9s arrival %8.1f ps\n", g.name.c_str(),
                lib.master(g.cell_index).name().c_str(),
                timing.arrival_ps[g.output_net]);
  }
  return 0;
}
