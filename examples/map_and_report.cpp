// Map-and-report: take a boolean network through technology mapping,
// placement, and in-context timing, then print a report_timing-style view
// of the worst paths under the nominal and worst SVA corners.
//
// The design: an 8-bit parity-checker plus a comparator cone -- small
// enough to read, deep enough to have interesting paths.

#include <cstdio>
#include <vector>

#include "core/flow.hpp"
#include "netlist/mapper.hpp"
#include "sta/path_report.hpp"
#include "util/units.hpp"

int main() {
  using namespace sva;
  const SvaFlow flow{FlowConfig{}};

  // --- Build the boolean network.
  BoolNetwork net;
  std::vector<std::size_t> a(8), b(8);
  for (int i = 0; i < 8; ++i) {
    a[static_cast<std::size_t>(i)] =
        net.add_input("a" + std::to_string(i));
    b[static_cast<std::size_t>(i)] =
        net.add_input("b" + std::to_string(i));
  }
  // Parity of a.
  net.mark_output(net.add_op("parity", BoolOp::Xor,
                             {a[0], a[1], a[2], a[3], a[4], a[5], a[6],
                              a[7]}));
  // Equality comparator: AND of XNORs (each built as NOT(XOR)).
  std::vector<std::size_t> eq_bits;
  for (int i = 0; i < 8; ++i) {
    const auto x = net.add_op("x" + std::to_string(i), BoolOp::Xor,
                              {a[static_cast<std::size_t>(i)],
                               b[static_cast<std::size_t>(i)]});
    eq_bits.push_back(
        net.add_op("nx" + std::to_string(i), BoolOp::Not, {x}));
  }
  net.mark_output(net.add_op("equal", BoolOp::And, eq_bits));

  // --- Map, place, bind context.
  const Netlist mapped = map_to_library(net, flow.library(), "par_cmp8");
  const Placement placement = flow.make_placement(mapped);
  std::printf("mapped design: %zu gates over %zu rows\n",
              mapped.gates().size(), placement.rows().size());

  const Sta sta(mapped, flow.characterized(), flow.config().sta);
  const auto nps = extract_nps(placement);
  const auto versions = assign_versions(nps, flow.config().bins);

  for (const Corner corner : {Corner::Nominal, Corner::Worst}) {
    const SvaCornerScale scale(mapped, flow.context_library(), versions,
                               flow.config().budget, corner,
                               flow.config().arc_policy, &nps);
    const StaResult result = sta.run(scale);
    const auto paths = worst_paths(mapped, sta, scale, 2);
    std::printf("\n=== %s corner: design delay %.3f ns ===\n",
                to_string(corner),
                units::ps_to_ns(result.critical_delay_ps));
    std::printf("%s", render_paths(mapped, paths, result).c_str());
  }
  return 0;
}
